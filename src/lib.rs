//! # wootinj-repro — root package
//!
//! Re-exports the workspace crates for the runnable examples in
//! `examples/` and the cross-crate integration tests in `tests/`.
//! See README.md for the tour and DESIGN.md for the architecture.

#![forbid(unsafe_code)]

pub use baselines;
pub use exec;
pub use gpu_sim;
pub use hpclib;
pub use jlang;
pub use jvm;
pub use mpi_sim;
pub use nir;
pub use translator;
pub use wootinj;
