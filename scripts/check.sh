#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, and the tier-1 build + test pass.
# Everything runs --offline; the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: release build + tests =="
cargo build --release --offline
cargo test -q --offline

echo "== workspace tests =="
cargo test --workspace -q --offline

echo "== workspace tests again on real OS threads (WJ_EXECUTOR=threads; =="
echo "==   replay mode, so every assertion must hold bit-for-bit)       =="
WJ_EXECUTOR=threads cargo test -q --offline

echo "== fault-matrix smoke run =="
cargo run --release --offline -q -p bench --bin repro -- fault-matrix --quick

echo "== restart-cost smoke run (asserts delta < full ckpt bytes at cadence 1) =="
cargo run --release --offline -q -p bench --bin repro -- restart-cost --quick

echo "== chaos soak (fault storms x cadence x rebase; bit-identical or typed) =="
cargo run --release --offline -q -p bench --bin repro -- chaos --quick

echo "== backend-matrix smoke run (fails on cross-backend divergence) =="
cargo run --release --offline -q -p bench --bin repro -- backend-matrix --quick

echo "== wallclock smoke run (executor seam: thread-replay bit-identity =="
echo "==   with faults+restarts, free-run value identity, speedup gate)  =="
cargo run --release --offline -q -p bench --bin repro -- wallclock --quick

echo "== dist smoke run (socket ranks: threads + OS processes vs mpi-sim, =="
echo "==   ephemeral loopback ports, every wire wait deadline-bounded)    =="
cargo run --release --offline -q -p bench --bin repro -- dist --quick

echo "== service smoke run (jitd daemon: in-process boot, seeded client  =="
echo "==   storm; every request ends in a reply or typed shed in-deadline) =="
cargo run --release --offline -q -p bench --bin repro -- service --quick

echo "== incremental re-JIT smoke run (asserts >=10x body-edit speedup, =="
echo "==   strictly fewer queries than cold, bit-identical artifacts)   =="
cargo run --release --offline -q -p bench --bin repro -- incremental --quick

echo "== disk-cache round-trip smoke =="
# jit once (cold, persists the artifact), then re-jit from a fresh
# process and assert zero translator work (--expect-warm exits nonzero
# if anything translated).
CACHE_DIR="$(mktemp -d)"
trap 'rm -rf "$CACHE_DIR"' EXIT
cargo run --release --offline -q --example warm_start -- "$CACHE_DIR"
cargo run --release --offline -q --example warm_start -- "$CACHE_DIR" --expect-warm

echo "OK"
