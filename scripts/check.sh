#!/usr/bin/env bash
# Pre-PR gate: formatting, lints, and the tier-1 build + test pass.
# Everything runs --offline; the workspace has no external dependencies.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (-D warnings) =="
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "== tier-1: release build + tests =="
cargo build --release --offline
cargo test -q --offline

echo "== workspace tests =="
cargo test --workspace -q --offline

echo "== fault-matrix smoke run =="
cargo run --release --offline -q -p bench --bin repro -- fault-matrix --quick

echo "OK"
