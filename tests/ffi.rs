//! The paper's foreign-function interface: "WootinJ provides a mechanism
//! for programmers to define a method call that are translated into a
//! direct call to the corresponding C function." Here the "C function" is
//! a registered Rust closure; the same `@Native("key")` declaration runs
//! on the interpreter and compiles to a direct `CallHost` in translated
//! code.

use jvm::Value;
use wootinj::{build_table, JitOptions, Val, WootinJ};

const PROGRAM: &str = r#"
    final class Ext {
      @Native("ext.cbrt") static double cbrt(double x);
      @Native("ext.gamma_ln") static double gammaLn(double x);
    }
    @WootinJ final class UsesFfi {
      UsesFfi() { }
      double run(double x) {
        double a = Ext.cbrt(x);
        double b = Ext.gammaLn(x);
        return a + b;
      }
    }
"#;

fn setup(env: &mut WootinJ<'_>) {
    env.register_scalar_fn("ext.cbrt", f64::cbrt);
    env.register_scalar_fn("ext.gamma_ln", |x| {
        // A deterministic stand-in for lgamma (not in std): Stirling-ish.
        (x + 0.5) * x.ln() - x
    });
}

#[test]
fn ffi_works_translated_and_interpreted() {
    let table = build_table(&[("ffi.jl", PROGRAM)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    setup(&mut env);
    let app = env.new_instance("UsesFfi", &[]).unwrap();
    let x = 7.25f64;
    let expected = x.cbrt() + ((x + 0.5) * x.ln() - x);

    let interp = env
        .run_interpreted(&app, "run", &[Value::Double(x)])
        .unwrap();
    assert_eq!(interp.result, Value::Double(expected));

    for opts in [
        JitOptions::wootinj(),
        JitOptions::template(),
        JitOptions::cpp(),
    ] {
        let code = env.jit(&app, "run", &[Value::Double(x)], opts).unwrap();
        let report = code.invoke(&env).unwrap();
        assert_eq!(
            report.result,
            Some(Val::F64(expected)),
            "mode {:?}",
            code.mode()
        );
    }
}

#[test]
fn ffi_shows_up_as_a_direct_extern_call_in_generated_source() {
    let table = build_table(&[("ffi.jl", PROGRAM)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    setup(&mut env);
    let app = env.new_instance("UsesFfi", &[]).unwrap();
    let code = env
        .jit(&app, "run", &[Value::Double(1.0)], JitOptions::wootinj())
        .unwrap();
    let src = code.c_source();
    assert!(src.contains("ext_cbrt("), "{src}");
    assert!(src.contains("/* extern */"), "{src}");
}

#[test]
fn unregistered_ffi_fails_at_invoke_with_a_clear_error() {
    let table = build_table(&[("ffi.jl", PROGRAM)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    // No registration: translation succeeds (the signature is declared),
    // execution reports the missing binding.
    let app = env.new_instance("UsesFfi", &[]).unwrap();
    let code = env
        .jit(&app, "run", &[Value::Double(1.0)], JitOptions::wootinj())
        .unwrap();
    let err = code.invoke(&env).map(|_| ()).unwrap_err();
    assert!(err.to_string().contains("not registered"), "{err}");
}

#[test]
fn ffi_with_array_arguments() {
    // A foreign reduction over a float array (the paper's FFI can take
    // pointers; ours takes array handles resolved in the rank's memory).
    let program = r#"
        final class Ext2 {
          @Native("ext.sum_sq") static double sumSq(float[] a);
        }
        @WootinJ final class R {
          R() { }
          double run(float[] data) { return Ext2.sumSq(data); }
        }
    "#;
    let table = build_table(&[("ffi2.jl", program)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    env.register_host("ext.sum_sq", |args, mem| {
        let h = args.first().ok_or("missing array")?.as_arr()?;
        match mem.arr(h)? {
            exec::ArrStore::F32(v) => {
                Ok(Val::F64(v.iter().map(|x| (*x as f64) * (*x as f64)).sum()))
            }
            other => Err(format!("expected float array, got {other:?}").into()),
        }
    });
    let app = env.new_instance("R", &[]).unwrap();
    let data = env.new_f32_array(&[1.0, 2.0, 3.0]);
    let code = env
        .jit(&app, "run", &[data], JitOptions::wootinj())
        .unwrap();
    let report = code.invoke(&env).unwrap();
    assert_eq!(report.result, Some(Val::F64(14.0)));
}
