//! Cross-crate integration tests: the full pipeline from jlang source
//! through rules checking, translation, and execution on the simulated
//! platforms, validated against the interpreter and pure-Rust references.

use jvm::Value;
use wootinj::{build_table, GpuConfig, JitOptions, MpiCostModel, Val, WootinJ};

fn rel_close(a: f32, b: f32, tol: f32) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= scale * tol
}

/// A reduction program exercising arrays, dispatch, and math natives.
const REDUCE: &str = r#"
    @WootinJ interface Norm { double apply(double acc, float v); }
    @WootinJ final class L2 implements Norm {
      L2() { }
      double apply(double acc, float v) { return acc + v * v; }
    }
    @WootinJ final class L1 implements Norm {
      L1() { }
      double apply(double acc, float v) { return acc + Math.absd(v); }
    }
    @WootinJ final class Reducer {
      Norm norm;
      Reducer(Norm n) { norm = n; }
      double run(float[] data) {
        double acc = 0.0;
        for (int i = 0; i < data.length; i++) {
          acc = norm.apply(acc, data[i]);
        }
        return Math.sqrt(acc);
      }
    }
"#;

#[test]
fn reduction_all_modes_match_interpreter() {
    let table = build_table(&[("reduce.jl", REDUCE)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let l2 = env.new_instance("L2", &[]).unwrap();
    let reducer = env.new_instance("Reducer", &[l2]).unwrap();
    let data: Vec<f32> = (0..100).map(|i| (i as f32 - 50.0) * 0.25).collect();

    let arr = env.new_f32_array(&data);
    let expected = match env.run_interpreted(&reducer, "run", &[arr]).unwrap().result {
        Value::Double(v) => v,
        other => panic!("unexpected {other}"),
    };
    // Ground truth in Rust.
    let truth = data
        .iter()
        .map(|v| (*v as f64) * (*v as f64))
        .sum::<f64>()
        .sqrt();
    assert!((expected - truth).abs() < 1e-9);

    for opts in [
        JitOptions::wootinj(),
        JitOptions::template(),
        JitOptions::template_no_virt(),
        JitOptions::cpp(),
    ] {
        let arr = env.new_f32_array(&data);
        let code = env.jit(&reducer, "run", &[arr], opts).unwrap();
        let report = code.invoke(&env).unwrap();
        match report.result {
            Some(Val::F64(v)) => assert_eq!(v, expected, "mode {:?}", code.mode()),
            other => panic!("unexpected {other:?}"),
        }
    }
}

#[test]
fn component_switch_changes_translated_code_not_call_sites() {
    // Swapping L2 -> L1 must produce a different specialized program from
    // identical client code — the framework's customizability claim.
    let table = build_table(&[("reduce.jl", REDUCE)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let l1 = env.new_instance("L1", &[]).unwrap();
    let l2 = env.new_instance("L2", &[]).unwrap();
    let r1 = env.new_instance("Reducer", &[l1]).unwrap();
    let r2 = env.new_instance("Reducer", &[l2]).unwrap();
    let data = env.new_f32_array(&[-3.0, 4.0]);
    let c1 = env
        .jit(
            &r1,
            "run",
            std::slice::from_ref(&data),
            JitOptions::wootinj(),
        )
        .unwrap();
    let c2 = env.jit(&r2, "run", &[data], JitOptions::wootinj()).unwrap();
    let s1 = c1.c_source();
    let s2 = c2.c_source();
    assert!(s1.contains("L1_apply"), "{s1}");
    assert!(s2.contains("L2_apply"), "{s2}");
    // L1: |-3| + |4| = 7, sqrt(7); L2: 9 + 16 = 25, sqrt = 5.
    let v1 = match c1.invoke(&env).unwrap().result {
        Some(Val::F64(v)) => v,
        other => panic!("{other:?}"),
    };
    let v2 = match c2.invoke(&env).unwrap().result {
        Some(Val::F64(v)) => v,
        other => panic!("{other:?}"),
    };
    assert!((v1 - 7f64.sqrt()).abs() < 1e-9);
    assert!((v2 - 5.0).abs() < 1e-9);
}

#[test]
fn stencil_full_matrix_of_platforms_and_modes() {
    let table = hpclib::stencil_table(&[]).unwrap();
    let reference = hpclib::reference_diffusion(8, 8, 8, 2, 0.4, 0.1);
    for platform in [
        hpclib::StencilPlatform::Cpu,
        hpclib::StencilPlatform::CpuMpi,
        hpclib::StencilPlatform::Gpu,
        hpclib::StencilPlatform::GpuMpi,
    ] {
        for opts in [
            JitOptions::wootinj(),
            JitOptions::template(),
            JitOptions::template_no_virt(),
        ] {
            let mut env = WootinJ::new(&table).unwrap();
            let runner = hpclib::StencilApp::compose(
                &mut env,
                platform,
                hpclib::StencilApp::default_model(),
            )
            .unwrap();
            let args = [Value::Int(8), Value::Int(8), Value::Int(8), Value::Int(2)];
            let mut code = env.jit(&runner, "invoke", &args, opts).unwrap();
            if platform.uses_mpi() {
                code.set_mpi(2, MpiCostModel::default());
            }
            if platform.uses_gpu() {
                code.set_gpu(GpuConfig::default());
            }
            let got = match code.invoke(&env).unwrap().result {
                Some(Val::F32(v)) => v,
                other => panic!("unexpected {other:?}"),
            };
            assert!(
                rel_close(got, reference, 1e-4),
                "{platform:?}: {got} vs {reference}"
            );
        }
    }
}

#[test]
fn matmul_reference_against_baselines_and_library() {
    // Three independent implementations agree: pure-Rust reference,
    // native baseline styles, translated jlang library.
    let n = 16usize;
    let reference = hpclib::reference_matmul(n);
    assert_eq!(reference, baselines::matmul::c_style::matmul_checksum(n));
    assert_eq!(
        reference,
        baselines::matmul::virtual_style::matmul_checksum(n)
    );

    let table = hpclib::matmul_table(&[]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let app = hpclib::MatmulApp::compose(
        &mut env,
        hpclib::MatmulThread::CpuLoop,
        hpclib::MatmulBody::Simple,
        hpclib::MatmulCalc::Optimized,
    )
    .unwrap();
    let code = env
        .jit(
            &app,
            "start",
            &[Value::Int(n as i32)],
            JitOptions::wootinj(),
        )
        .unwrap();
    let got = match code.invoke(&env).unwrap().result {
        Some(Val::F32(v)) => v,
        other => panic!("unexpected {other:?}"),
    };
    assert!(rel_close(got, reference, 1e-4), "{got} vs {reference}");
}

#[test]
fn deterministic_vtime_across_repeated_invocations() {
    let table = hpclib::stencil_table(&[]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let runner = hpclib::StencilApp::compose(
        &mut env,
        hpclib::StencilPlatform::CpuMpi,
        hpclib::StencilApp::default_model(),
    )
    .unwrap();
    let args = [Value::Int(8), Value::Int(8), Value::Int(8), Value::Int(2)];
    let mut code = env
        .jit(&runner, "invoke", &args, JitOptions::wootinj())
        .unwrap();
    code.set_mpi(4, MpiCostModel::default());
    let a = code.invoke(&env).unwrap();
    let b = code.invoke(&env).unwrap();
    assert_eq!(a.vtime_cycles, b.vtime_cycles);
    assert_eq!(a.total_cycles, b.total_cycles);
    assert_eq!(a.results.len(), b.results.len());
}

#[test]
fn generated_source_matches_listing5_structure() {
    // The paper's Listing 3 -> Listing 5 translation, structurally.
    let table = hpclib::stencil_table(&[]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let runner = hpclib::StencilApp::compose(
        &mut env,
        hpclib::StencilPlatform::GpuMpi,
        hpclib::StencilApp::default_model(),
    )
    .unwrap();
    let args = [Value::Int(8), Value::Int(8), Value::Int(8), Value::Int(2)];
    let code = env
        .jit(&runner, "invoke", &args, JitOptions::wootinj())
        .unwrap();
    let src = code.c_source();
    for needle in [
        "__global__", // the kernel
        "<<<dim3(",   // the launch
        "MPI_Init(&argc, &argv);",
        "MPI_Finalize();",
        "MPI_Send",
        "MPI_Recv",
        "int main(int argc, char* argv[])",
    ] {
        assert!(
            src.contains(needle),
            "missing {needle:?} in generated source"
        );
    }
    // Devirtualized: no vtable machinery anywhere.
    assert!(!src.contains("VCALL"));
}

#[test]
fn errors_surface_with_context() {
    // A rules-violating program names the rule; an incomplete object
    // graph names the hole.
    let bad = r#"
        @WootinJ final class Bad {
          Bad() { }
          int f(int n) { if (n <= 1) { return 1; } return n * f(n - 1); }
        }
    "#;
    let table = build_table(&[("bad.jl", bad)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let b = env.new_instance("Bad", &[]).unwrap();
    let err = match env.jit(&b, "f", &[Value::Int(3)], JitOptions::wootinj()) {
        Err(e) => e,
        Ok(_) => panic!("expected a rules violation"),
    };
    assert!(err.to_string().contains("rule 6"), "{err}");
}

#[test]
fn mpi_world_size_must_divide_workload_errors_cleanly() {
    // 3 ranks on nz=8: slab size 8/3=2 leaves cells uncovered; the library
    // still runs (integer division) and produces a *different* checksum —
    // the framework is not expected to validate domain decomposition.
    // What must not happen is a crash or deadlock.
    let table = hpclib::stencil_table(&[]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let runner = hpclib::StencilApp::compose(
        &mut env,
        hpclib::StencilPlatform::CpuMpi,
        hpclib::StencilApp::default_model(),
    )
    .unwrap();
    let args = [Value::Int(8), Value::Int(8), Value::Int(8), Value::Int(2)];
    let mut code = env
        .jit(&runner, "invoke", &args, JitOptions::wootinj())
        .unwrap();
    code.set_mpi(3, MpiCostModel::default());
    let report = code.invoke(&env).unwrap();
    assert!(report.result.is_some());
}
