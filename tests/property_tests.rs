//! Property-based tests over the core invariants:
//!
//! * translation preserves semantics — for randomly generated straight-line
//!   arithmetic programs and randomized component compositions, the
//!   translated result equals the interpreted result in every mode;
//! * the NIR optimizer preserves semantics at every configuration;
//! * the simulators are deterministic;
//! * array contents survive the deep copy into translated memory spaces.

use proptest::prelude::*;

use jvm::Value;
use wootinj::{build_table, JitOptions, OptConfig, Val, WootinJ};

/// Generate a random arithmetic expression over locals a, b, c (ints) and
/// x, y (floats), avoiding division (translated and interpreted division
/// by zero both error, but at different times).
fn arb_expr(depth: u32) -> BoxedStrategy<String> {
    if depth == 0 {
        prop_oneof![
            Just("a".to_string()),
            Just("b".to_string()),
            Just("c".to_string()),
            (-100i32..100).prop_map(|v| format!("{v}")),
        ]
        .boxed()
    } else {
        let sub = arb_expr(depth - 1);
        prop_oneof![
            (arb_expr(depth - 1), arb_expr(depth - 1)).prop_map(|(l, r)| format!("({l} + {r})")),
            (arb_expr(depth - 1), arb_expr(depth - 1)).prop_map(|(l, r)| format!("({l} - {r})")),
            (arb_expr(depth - 1), arb_expr(depth - 1)).prop_map(|(l, r)| format!("({l} * {r})")),
            sub,
        ]
        .boxed()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_arithmetic_translates_exactly(e1 in arb_expr(3), e2 in arb_expr(3),
                                            a in -50i32..50, b in -50i32..50, c in -50i32..50) {
        let src = format!(
            "@WootinJ final class P {{
               P() {{ }}
               int run(int a, int b, int c) {{
                 int r1 = {e1};
                 int r2 = {e2};
                 int acc = 0;
                 for (int i = 0; i < 3; i++) {{
                   if (r1 > r2) {{ acc += r1 - r2; }} else {{ acc += r2 - r1 + i; }}
                 }}
                 return acc;
               }}
             }}"
        );
        let table = build_table(&[("p.jl", &src)]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let p = env.new_instance("P", &[]).unwrap();
        let args = [Value::Int(a), Value::Int(b), Value::Int(c)];
        let expected = match env.run_interpreted(&p, "run", &args).unwrap().result {
            Value::Int(v) => v,
            other => panic!("unexpected {other}"),
        };
        for opts in [JitOptions::wootinj(), JitOptions::template(), JitOptions::cpp()] {
            let code = env.jit(&p, "run", &args, opts).unwrap();
            let got = code.invoke(&env).unwrap().result;
            prop_assert_eq!(got, Some(Val::I32(expected)));
        }
    }

    #[test]
    fn optimizer_levels_agree(e in arb_expr(4), a in -20i32..20, b in -20i32..20, c in -20i32..20) {
        let src = format!(
            "@WootinJ final class P {{
               P() {{ }}
               int run(int a, int b, int c) {{ return {e}; }}
             }}"
        );
        let table = build_table(&[("p.jl", &src)]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let p = env.new_instance("P", &[]).unwrap();
        let args = [Value::Int(a), Value::Int(b), Value::Int(c)];
        let mut results = Vec::new();
        for opt in [OptConfig::none(), OptConfig::standard(), OptConfig::aggressive()] {
            let code = env.jit(&p, "run", &args, JitOptions::wootinj().with_opt(opt)).unwrap();
            results.push(code.invoke(&env).unwrap().result);
        }
        prop_assert_eq!(results[0], results[1]);
        prop_assert_eq!(results[1], results[2]);
    }

    #[test]
    fn random_component_composition_is_consistent(
        coeffs in proptest::collection::vec(-4i32..=4, 1..5),
        data in proptest::collection::vec(-100i32..100, 1..40),
    ) {
        // Build a pipeline of Scale components; the composed behavior must
        // match a direct Rust computation in every translation mode.
        let src = "
            @WootinJ interface Stage { int apply(int v); }
            @WootinJ final class Scale implements Stage {
              int k;
              Scale(int k0) { k = k0; }
              int apply(int v) { return v * k + 1; }
            }
            @WootinJ final class Pipe2 implements Stage {
              Stage first; Stage second;
              Pipe2(Stage f, Stage s) { first = f; second = s; }
              int apply(int v) { return second.apply(first.apply(v)); }
            }
            @WootinJ final class Driver {
              Stage stage;
              Driver(Stage s) { stage = s; }
              long run(int[] data) {
                long acc = 0L;
                for (int i = 0; i < data.length; i++) {
                  acc = acc + stage.apply(data[i]);
                }
                return acc;
              }
            }";
        let table = build_table(&[("pipe.jl", src)]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        // Fold the coefficient list into a Pipe2 tree.
        let mut stage = env.new_instance("Scale", &[Value::Int(coeffs[0])]).unwrap();
        for &k in &coeffs[1..] {
            let next = env.new_instance("Scale", &[Value::Int(k)]).unwrap();
            stage = env.new_instance("Pipe2", &[stage, next]).unwrap();
        }
        let driver = env.new_instance("Driver", &[stage]).unwrap();
        // Ground truth.
        let apply = |v: i32| -> i32 {
            let mut x = v.wrapping_mul(coeffs[0]).wrapping_add(1);
            for &k in &coeffs[1..] {
                x = x.wrapping_mul(k).wrapping_add(1);
            }
            x
        };
        let expected: i64 = data.iter().map(|&v| apply(v) as i64).sum();
        let arr = env.jvm.new_i32_array(&data);
        // The conservative rule-6 checker rightly rejects Pipe2 (a Pipe2
        // of Pipe2s *could* recurse); the translator itself handles the
        // finite composition, so bypass the check to exercise it.
        for opts in [
            JitOptions::wootinj().unchecked(),
            JitOptions::template().unchecked(),
            JitOptions::cpp(),
        ] {
            let code = env.jit(&driver, "run", &[arr.clone()], opts).unwrap();
            let got = code.invoke(&env).unwrap().result;
            prop_assert_eq!(got, Some(Val::I64(expected)));
        }
        // And the interpreter agrees.
        let got = env.run_interpreted(&driver, "run", &[arr]).unwrap().result;
        prop_assert_eq!(got, Value::Long(expected));
    }

    #[test]
    fn deep_copied_arrays_roundtrip(data in proptest::collection::vec(any::<f32>(), 0..64)) {
        // NaN-free comparison domain.
        let data: Vec<f32> = data.into_iter().map(|v| if v.is_finite() { v } else { 0.0 }).collect();
        let src = "
            @WootinJ final class Id {
              Id() { }
              float run(float[] a) {
                float last = 0f;
                for (int i = 0; i < a.length; i++) { last = a[i]; }
                return last;
              }
            }";
        let table = build_table(&[("id.jl", src)]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let id = env.new_instance("Id", &[]).unwrap();
        let arr = env.new_f32_array(&data);
        let code = env.jit(&id, "run", &[arr.clone()], JitOptions::wootinj()).unwrap();
        let got = code.invoke(&env).unwrap().result;
        let expected = data.last().copied().unwrap_or(0.0);
        prop_assert_eq!(got, Some(Val::F32(expected)));
        // The host array is unchanged by the run (deep copy semantics).
        prop_assert_eq!(env.f32_array(&arr).unwrap(), data);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn mpi_allreduce_matches_local_sum(per_rank in proptest::collection::vec(0.0f32..10.0, 1..6),
                                       ranks in 1u32..5) {
        // Every rank contributes f(rank) = sum(per_rank) * (rank+1); the
        // allreduce total must match the closed form on every rank.
        let src = "
            @WootinJ final class AllSum {
              AllSum() { }
              float run(float[] weights) {
                int rank = MPI.rank();
                float local = 0f;
                for (int i = 0; i < weights.length; i++) {
                  local += weights[i] * (rank + 1);
                }
                return MPI.allreduceSumF(local);
              }
            }";
        let table = build_table(&[("allsum.jl", src)]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let app = env.new_instance("AllSum", &[]).unwrap();
        let arr = env.new_f32_array(&per_rank);
        let mut code = env.jit(&app, "run", &[arr], JitOptions::wootinj()).unwrap();
        code.set_mpi(ranks, wootinj::MpiCostModel::default());
        let report = code.invoke(&env).unwrap();
        let base: f32 = per_rank.iter().sum();
        let expected: f32 = (1..=ranks).map(|r| base * r as f32).sum();
        for r in &report.results {
            match r {
                Some(Val::F32(v)) => {
                    let scale = expected.abs().max(1.0);
                    prop_assert!((v - expected).abs() <= scale * 1e-4, "{} vs {}", v, expected);
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
