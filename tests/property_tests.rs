//! Property-based tests over the core invariants:
//!
//! * translation preserves semantics — for randomly generated straight-line
//!   arithmetic programs and randomized component compositions, the
//!   translated result equals the interpreted result in every mode;
//! * the NIR optimizer preserves semantics at every configuration;
//! * the simulators are deterministic;
//! * array contents survive the deep copy into translated memory spaces.
//!
//! Inputs come from a deterministic xorshift generator so the suite builds
//! without external crates on offline hosts.

use jvm::Value;
use wootinj::{build_table, JitOptions, OptConfig, Val, WootinJ};

/// Deterministic xorshift64* PRNG — same sequence on every run.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }

    fn range_i32(&mut self, lo: i32, hi: i32) -> i32 {
        lo + (self.next_u64() % (hi - lo) as u64) as i32
    }

    /// Uniform float in [0, 1).
    fn unit_f32(&mut self) -> f32 {
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }
}

/// Generate a random arithmetic expression over locals a, b, c (ints),
/// avoiding division (translated and interpreted division by zero both
/// error, but at different times).
fn random_expr(rng: &mut Rng, depth: u32) -> String {
    if depth == 0 || rng.below(4) == 3 {
        match rng.below(4) {
            0 => "a".to_string(),
            1 => "b".to_string(),
            2 => "c".to_string(),
            _ => format!("{}", rng.range_i32(-100, 100)),
        }
    } else {
        let l = random_expr(rng, depth - 1);
        let r = random_expr(rng, depth - 1);
        let op = ["+", "-", "*"][rng.below(3)];
        format!("({l} {op} {r})")
    }
}

#[test]
fn random_arithmetic_translates_exactly() {
    let mut rng = Rng::new(0xA11C_0001);
    for _ in 0..24 {
        let e1 = random_expr(&mut rng, 3);
        let e2 = random_expr(&mut rng, 3);
        let (a, b, c) = (
            rng.range_i32(-50, 50),
            rng.range_i32(-50, 50),
            rng.range_i32(-50, 50),
        );
        let src = format!(
            "@WootinJ final class P {{
               P() {{ }}
               int run(int a, int b, int c) {{
                 int r1 = {e1};
                 int r2 = {e2};
                 int acc = 0;
                 for (int i = 0; i < 3; i++) {{
                   if (r1 > r2) {{ acc += r1 - r2; }} else {{ acc += r2 - r1 + i; }}
                 }}
                 return acc;
               }}
             }}"
        );
        let table = build_table(&[("p.jl", &src)]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let p = env.new_instance("P", &[]).unwrap();
        let args = [Value::Int(a), Value::Int(b), Value::Int(c)];
        let expected = match env.run_interpreted(&p, "run", &args).unwrap().result {
            Value::Int(v) => v,
            other => panic!("unexpected {other}"),
        };
        for opts in [
            JitOptions::wootinj(),
            JitOptions::template(),
            JitOptions::cpp(),
        ] {
            let code = env.jit(&p, "run", &args, opts).unwrap();
            let got = code.invoke(&env).unwrap().result;
            assert_eq!(
                got,
                Some(Val::I32(expected)),
                "expr ({e1}, {e2}) on ({a}, {b}, {c})"
            );
        }
    }
}

#[test]
fn optimizer_levels_agree() {
    let mut rng = Rng::new(0xA11C_0002);
    for _ in 0..24 {
        let e = random_expr(&mut rng, 4);
        let (a, b, c) = (
            rng.range_i32(-20, 20),
            rng.range_i32(-20, 20),
            rng.range_i32(-20, 20),
        );
        let src = format!(
            "@WootinJ final class P {{
               P() {{ }}
               int run(int a, int b, int c) {{ return {e}; }}
             }}"
        );
        let table = build_table(&[("p.jl", &src)]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let p = env.new_instance("P", &[]).unwrap();
        let args = [Value::Int(a), Value::Int(b), Value::Int(c)];
        let mut results = Vec::new();
        for opt in [
            OptConfig::none(),
            OptConfig::standard(),
            OptConfig::aggressive(),
        ] {
            let code = env
                .jit(&p, "run", &args, JitOptions::wootinj().with_opt(opt))
                .unwrap();
            results.push(code.invoke(&env).unwrap().result);
        }
        assert_eq!(results[0], results[1], "expr {e}");
        assert_eq!(results[1], results[2], "expr {e}");
    }
}

#[test]
fn random_component_composition_is_consistent() {
    // Build a pipeline of Scale components; the composed behavior must
    // match a direct Rust computation in every translation mode.
    let src = "
        @WootinJ interface Stage { int apply(int v); }
        @WootinJ final class Scale implements Stage {
          int k;
          Scale(int k0) { k = k0; }
          int apply(int v) { return v * k + 1; }
        }
        @WootinJ final class Pipe2 implements Stage {
          Stage first; Stage second;
          Pipe2(Stage f, Stage s) { first = f; second = s; }
          int apply(int v) { return second.apply(first.apply(v)); }
        }
        @WootinJ final class Driver {
          Stage stage;
          Driver(Stage s) { stage = s; }
          long run(int[] data) {
            long acc = 0L;
            for (int i = 0; i < data.length; i++) {
              acc = acc + stage.apply(data[i]);
            }
            return acc;
          }
        }";
    let mut rng = Rng::new(0xA11C_0003);
    for _ in 0..12 {
        let coeffs: Vec<i32> = (0..1 + rng.below(4))
            .map(|_| rng.range_i32(-4, 5))
            .collect();
        let data: Vec<i32> = (0..1 + rng.below(39))
            .map(|_| rng.range_i32(-100, 100))
            .collect();
        let table = build_table(&[("pipe.jl", src)]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        // Fold the coefficient list into a Pipe2 tree.
        let mut stage = env.new_instance("Scale", &[Value::Int(coeffs[0])]).unwrap();
        for &k in &coeffs[1..] {
            let next = env.new_instance("Scale", &[Value::Int(k)]).unwrap();
            stage = env.new_instance("Pipe2", &[stage, next]).unwrap();
        }
        let driver = env.new_instance("Driver", &[stage]).unwrap();
        // Ground truth.
        let apply = |v: i32| -> i32 {
            let mut x = v.wrapping_mul(coeffs[0]).wrapping_add(1);
            for &k in &coeffs[1..] {
                x = x.wrapping_mul(k).wrapping_add(1);
            }
            x
        };
        let expected: i64 = data.iter().map(|&v| apply(v) as i64).sum();
        let arr = env.jvm.new_i32_array(&data);
        // The conservative rule-6 checker rightly rejects Pipe2 (a Pipe2
        // of Pipe2s *could* recurse); the translator itself handles the
        // finite composition, so bypass the check to exercise it.
        for opts in [
            JitOptions::wootinj().unchecked(),
            JitOptions::template().unchecked(),
            JitOptions::cpp(),
        ] {
            let code = env
                .jit(&driver, "run", std::slice::from_ref(&arr), opts)
                .unwrap();
            let got = code.invoke(&env).unwrap().result;
            assert_eq!(got, Some(Val::I64(expected)), "coeffs {coeffs:?}");
        }
        // And the interpreter agrees.
        let got = env.run_interpreted(&driver, "run", &[arr]).unwrap().result;
        assert_eq!(got, Value::Long(expected));
    }
}

#[test]
fn deep_copied_arrays_roundtrip() {
    let src = "
        @WootinJ final class Id {
          Id() { }
          float run(float[] a) {
            float last = 0f;
            for (int i = 0; i < a.length; i++) { last = a[i]; }
            return last;
          }
        }";
    let mut rng = Rng::new(0xA11C_0004);
    for _ in 0..12 {
        let data: Vec<f32> = (0..rng.below(64))
            .map(|_| rng.unit_f32() * 200.0 - 100.0)
            .collect();
        let table = build_table(&[("id.jl", src)]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let id = env.new_instance("Id", &[]).unwrap();
        let arr = env.new_f32_array(&data);
        let code = env
            .jit(
                &id,
                "run",
                std::slice::from_ref(&arr),
                JitOptions::wootinj(),
            )
            .unwrap();
        let got = code.invoke(&env).unwrap().result;
        let expected = data.last().copied().unwrap_or(0.0);
        assert_eq!(got, Some(Val::F32(expected)));
        // The host array is unchanged by the run (deep copy semantics).
        assert_eq!(env.f32_array(&arr).unwrap(), data);
    }
}

#[test]
fn mpi_allreduce_matches_local_sum() {
    // Every rank contributes f(rank) = sum(per_rank) * (rank+1); the
    // allreduce total must match the closed form on every rank.
    let src = "
        @WootinJ final class AllSum {
          AllSum() { }
          float run(float[] weights) {
            int rank = MPI.rank();
            float local = 0f;
            for (int i = 0; i < weights.length; i++) {
              local += weights[i] * (rank + 1);
            }
            return MPI.allreduceSumF(local);
          }
        }";
    let mut rng = Rng::new(0xA11C_0005);
    for _ in 0..12 {
        let per_rank: Vec<f32> = (0..1 + rng.below(5))
            .map(|_| rng.unit_f32() * 10.0)
            .collect();
        let ranks = 1 + rng.below(4) as u32;
        let table = build_table(&[("allsum.jl", src)]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let app = env.new_instance("AllSum", &[]).unwrap();
        let arr = env.new_f32_array(&per_rank);
        let mut code = env.jit(&app, "run", &[arr], JitOptions::wootinj()).unwrap();
        code.set_mpi(ranks, wootinj::MpiCostModel::default());
        let report = code.invoke(&env).unwrap();
        let base: f32 = per_rank.iter().sum();
        let expected: f32 = (1..=ranks).map(|r| base * r as f32).sum();
        for r in &report.results {
            match r {
                Some(Val::F32(v)) => {
                    let scale = expected.abs().max(1.0);
                    assert!((v - expected).abs() <= scale * 1e-4, "{v} vs {expected}");
                }
                other => panic!("unexpected {other:?}"),
            }
        }
    }
}
