//! The shared backend-conformance suite: one property set instantiated
//! for **every registered platform** (`platform::registry()`), replacing
//! per-crate near-duplicate tests. A platform that registers itself is
//! automatically held to:
//!
//! 1. **Semantics** — the reference workload produces the *bit-identical*
//!    answer on every platform, whatever its world shape. The workload is
//!    built for that: integer-valued `double` arithmetic block-partitioned
//!    by rank and reduced with `MPI.allreduceSumD` (integer sums below
//!    2^53 are exact, so associativity — and therefore partitioning and
//!    scheduling — cannot perturb the bits).
//! 2. **Typed faults** — seeded crash injection surfaces as
//!    `WjError::Sim(SimError::Crash)` on every platform, never a panic or
//!    a hang.
//! 3. **Checkpoint roundtrip** — the same crashing seed completes under
//!    `CheckpointPolicy::every(1)` with the fault-free answer, restarting
//!    at least once. The restart machinery is shared through the
//!    `Platform` trait, not reimplemented per backend.
//! 4. **Cache scoping** — re-JIT on the same platform hits the artifact
//!    store; JIT on a *different* platform misses (platform-salted keys),
//!    and `interp` shares the unscoped legacy namespace with plain
//!    `jit()`.
//! 5. **Capability checks** — kernel workloads fail *typed at JIT time*
//!    on device-less platforms ([`wootinj::WjError::Platform`]).
//!
//! Plus the `host-mt`-specific property: results are independent of the
//! worker-scheduling seed.

use std::sync::Arc;

use jvm::Value;
use wootinj::{
    build_table, platform_by_id, platform_registry, CheckpointPolicy, FaultConfig, GpuSimPlatform,
    HostMtPlatform, InterpPlatform, JitOptions, MpiSimPlatform, Platform, PlatformError, RunReport,
    SimError, Val, WjError, WootinJ,
};

/// The cross-platform reference workload. Each rank sums an
/// integer-valued series over its own block of a global index range and
/// the blocks are combined with one allreduce per step — so the global
/// answer is the same whether one worker does everything (interp,
/// gpu-sim) or four split it (mpi-sim, host-mt). All values are exact
/// integers in f64, far below 2^53.
const BLOCK_SUM: &str = r#"
    @WootinJ final class BlockSum {
      BlockSum() { }
      double run(int total, int steps) {
        int rank = MPI.rank();
        int size = MPI.size();
        int per = total / size;
        int lo = rank * per;
        double acc = 0.0;
        for (int s = 0; s < steps; s++) {
          double local = 0.0;
          for (int i = lo; i < lo + per; i++) {
            local = local + (i % 97) * 3.0 + s;
          }
          acc = acc + MPI.allreduceSumD(local);
        }
        return acc;
      }
    }
"#;

/// Divisible by every registered world size (1 and 4).
const TOTAL: i32 = 240;
const STEPS: i32 = 8;

/// Ground truth, computed independently in Rust with the same exact
/// integer arithmetic.
fn block_sum_truth() -> f64 {
    let mut acc = 0.0f64;
    for s in 0..STEPS {
        let mut global = 0.0f64;
        for i in 0..TOTAL {
            global += (i % 97) as f64 * 3.0 + s as f64;
        }
        acc += global;
    }
    acc
}

fn run_on(
    platform: Arc<dyn Platform>,
    seed: Option<u64>,
    options: JitOptions,
) -> Result<RunReport, WjError> {
    let table = build_table(&[("block_sum.jl", BLOCK_SUM)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let app = env.new_instance("BlockSum", &[]).unwrap();
    let mut code = env
        .jit_on(
            platform,
            &app,
            "run",
            &[Value::Int(TOTAL), Value::Int(STEPS)],
            options,
        )
        .unwrap();
    if let Some(seed) = seed {
        let mut cfg = FaultConfig::seeded(seed);
        cfg.crash = 0.05;
        code.set_faults(cfg);
    }
    code.set_timeout(50_000);
    code.invoke(&env)
}

fn f64_bits(report: &RunReport) -> u64 {
    match report.result {
        Some(Val::F64(v)) => v.to_bits(),
        other => panic!("expected f64 result, got {other:?}"),
    }
}

/// Find a seed whose plain run crashes typed on this platform.
fn crashing_seed_on(platform: &Arc<dyn Platform>) -> u64 {
    for s in 0..64u64 {
        let seed = 0xC0FF_0000 + s;
        match run_on(Arc::clone(platform), Some(seed), JitOptions::wootinj()) {
            Err(WjError::Sim(SimError::Crash { .. })) => return seed,
            Ok(_) | Err(_) => continue,
        }
    }
    panic!(
        "no crashing seed for `{}` in the sweep — the fixture lost its teeth",
        platform.id()
    );
}

#[test]
fn semantics_agree_bit_identically_across_all_platforms() {
    let truth = block_sum_truth().to_bits();
    for platform in platform_registry() {
        let id = platform.id();
        let report = run_on(platform, None, JitOptions::wootinj())
            .unwrap_or_else(|e| panic!("`{id}` failed the reference workload: {e}"));
        assert_eq!(
            f64_bits(&report),
            truth,
            "`{id}` diverged from the exact ground truth"
        );
    }
}

#[test]
fn typed_faults_surface_uniformly() {
    for platform in platform_registry() {
        // The sweep itself asserts: it panics if no seed produces a
        // typed crash, and any panic/hang inside a run fails the test.
        let seed = crashing_seed_on(&platform);
        match run_on(Arc::clone(&platform), Some(seed), JitOptions::wootinj()) {
            Err(WjError::Sim(SimError::Crash { .. })) => {}
            Ok(_) => panic!("`{}` seed {seed:#x} stopped crashing", platform.id()),
            Err(e) => panic!("`{}` seed {seed:#x} failed untyped: {e}", platform.id()),
        }
    }
}

#[test]
fn checkpoint_roundtrip_recovers_bit_identically_on_every_platform() {
    for platform in platform_registry() {
        let id = platform.id();
        let clean = run_on(Arc::clone(&platform), None, JitOptions::wootinj())
            .unwrap_or_else(|e| panic!("`{id}` fault-free control failed: {e}"));
        let seed = crashing_seed_on(&platform);

        let opts = JitOptions::wootinj().with_checkpointing(CheckpointPolicy::every(1));
        let report = run_on(Arc::clone(&platform), Some(seed), opts)
            .unwrap_or_else(|e| panic!("`{id}` checkpointed run must complete: {e}"));

        assert_eq!(
            f64_bits(&report),
            f64_bits(&clean),
            "`{id}` recovered run must match the fault-free answer bit-for-bit"
        );
        assert!(
            report.restart.restarts >= 1,
            "`{id}`: no restart happened — vacuous recovery"
        );
        assert!(
            report.restart.checkpoints_taken >= 1,
            "`{id}`: no checkpoints"
        );
    }
}

#[test]
fn artifact_cache_keys_are_platform_scoped() {
    let table = build_table(&[("block_sum.jl", BLOCK_SUM)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let app = env.new_instance("BlockSum", &[]).unwrap();
    let args = [Value::Int(TOTAL), Value::Int(STEPS)];

    // Cold translate on host-mt…
    let host_mt = platform_by_id("host-mt").unwrap();
    env.jit_on(
        Arc::clone(&host_mt),
        &app,
        "run",
        &args,
        JitOptions::wootinj(),
    )
    .unwrap();
    assert_eq!(env.cache_stats().translations, 1);

    // …repeat JIT on the same platform is a pure cache hit…
    env.jit_on(host_mt, &app, "run", &args, JitOptions::wootinj())
        .unwrap();
    let stats = env.cache_stats();
    assert_eq!(stats.translations, 1, "same platform must hit the cache");
    assert!(stats.hits >= 1);

    // …but a different platform misses: its salt scopes the key.
    let mpi = platform_by_id("mpi-sim").unwrap();
    env.jit_on(mpi, &app, "run", &args, JitOptions::wootinj())
        .unwrap();
    assert_eq!(
        env.cache_stats().translations,
        2,
        "platform change must retranslate (platform-salted key)"
    );

    // `interp` owns the unscoped legacy namespace: plain `jit()` and
    // `jit_on(interp)` share artifacts.
    env.jit(&app, "run", &args, JitOptions::wootinj()).unwrap();
    assert_eq!(env.cache_stats().translations, 3);
    let interp = platform_by_id("interp").unwrap();
    env.jit_on(interp, &app, "run", &args, JitOptions::wootinj())
        .unwrap();
    assert_eq!(
        env.cache_stats().translations,
        3,
        "jit_on(interp) must reuse the legacy jit() artifact"
    );
}

#[test]
fn kernel_workloads_fail_typed_on_deviceless_platforms() {
    use hpclib::{MatmulApp, MatmulBody, MatmulCalc, MatmulThread};

    let table = hpclib::matmul_table(&[]).unwrap();
    let n = 16;

    for (id, should_run) in [
        ("interp", false),
        ("host-mt", false),
        ("dist", false),
        ("gpu-sim", true),
        ("mpi-sim", true), // the registry entry carries a device per rank
    ] {
        let mut env = WootinJ::new(&table).unwrap();
        let app = MatmulApp::compose(
            &mut env,
            MatmulThread::Gpu,
            MatmulBody::GpuNaive,
            MatmulCalc::Optimized,
        )
        .unwrap();
        let platform = platform_by_id(id).unwrap();
        let result = env.jit_on(
            platform,
            &app,
            "start",
            &[Value::Int(n)],
            JitOptions::wootinj(),
        );
        if should_run {
            let code = result.unwrap_or_else(|e| panic!("`{id}` must accept kernels: {e}"));
            code.invoke(&env)
                .unwrap_or_else(|e| panic!("`{id}` must run the kernel workload: {e}"));
        } else {
            match result {
                Err(WjError::Platform(PlatformError::Unsupported { platform, feature })) => {
                    assert_eq!(platform, id);
                    assert_eq!(feature, "global kernels");
                }
                Ok(_) => panic!("`{id}` must reject kernels typed at JIT time, but accepted"),
                Err(e) => panic!("`{id}` must reject kernels typed, got untyped: {e}"),
            }
        }
    }
}

#[test]
fn host_mt_results_are_independent_of_the_scheduling_seed() {
    let reference = block_sum_truth().to_bits();
    for seed in [1u64, 0xDEAD_BEEF, u64::MAX] {
        let platform: Arc<dyn Platform> = Arc::new(HostMtPlatform::new(4).with_seed(seed));
        let report = run_on(platform, None, JitOptions::wootinj()).unwrap();
        assert_eq!(
            f64_bits(&report),
            reference,
            "host-mt diverged under scheduling seed {seed:#x}"
        );
    }
}

#[test]
fn adding_a_platform_needs_only_a_trait_impl() {
    // The ISSUE's acceptance property, executable: a brand-new platform
    // defined *here in a test file* — no translator, facade, or registry
    // edits — immediately passes the core conformance properties.
    #[derive(Debug, Clone, Copy)]
    struct WideHostMt;

    impl Platform for WideHostMt {
        fn id(&self) -> &'static str {
            "host-mt-wide"
        }
        fn caps(&self) -> wootinj::Caps {
            HostMtPlatform::new(8).caps()
        }
        fn run(
            &self,
            req: wootinj::RunRequest<'_>,
            make_args: &mut dyn FnMut(u32, &mut exec::Machine) -> Result<Vec<Val>, String>,
        ) -> Result<wootinj::RunOutcome, SimError> {
            HostMtPlatform::new(8).with_seed(7).run(req, make_args)
        }
    }

    let report = run_on(Arc::new(WideHostMt), None, JitOptions::wootinj()).unwrap();
    assert_eq!(f64_bits(&report), block_sum_truth().to_bits());
}

#[test]
fn registry_capability_table_is_coherent() {
    // Sanity over the table DESIGN.md/README document: ids are unique,
    // every platform claims collectives (size-1 worlds run them as
    // identities), and exactly the device-bearing ones claim kernels.
    let reg = platform_registry();
    assert_eq!(reg.len(), 5);
    for p in &reg {
        assert!(
            p.caps().collectives,
            "`{}` must support collectives",
            p.id()
        );
        assert!(p.caps().parallelism >= 1);
    }
    // Host FFI is universal except where it is structurally impossible:
    // `dist` workers live across a (real or simulated) process boundary
    // and cannot share the coordinator's function pointers.
    let ffi: Vec<&str> = reg
        .iter()
        .filter(|p| p.caps().host_ffi)
        .map(|p| p.id())
        .collect();
    assert_eq!(ffi, ["interp", "gpu-sim", "mpi-sim", "host-mt"]);
    let kernels: Vec<&str> = reg
        .iter()
        .filter(|p| p.caps().global_kernels)
        .map(|p| p.id())
        .collect();
    assert_eq!(kernels, ["gpu-sim", "mpi-sim"]);

    // The concrete types are part of the public API surface.
    let _: Arc<dyn Platform> = Arc::new(InterpPlatform::default());
    let _: Arc<dyn Platform> = Arc::new(GpuSimPlatform::default());
    let _: Arc<dyn Platform> = Arc::new(MpiSimPlatform::new(2));
    let _: Arc<dyn Platform> = Arc::new(wootinj::DistPlatform::new(2));
}

/// Cache-scoping property 4 holds for database-backed (incremental)
/// envs too: the key combines the platform salt with the query-derived
/// source fingerprint, so same-platform re-JIT hits, cross-platform
/// JIT misses, and a whitespace edit (same fingerprints) still hits
/// after the revision bump.
#[test]
fn db_backed_cache_keys_are_platform_scoped() {
    let mut ws = wootinj::Workspace::new();
    ws.set_source("block_sum.jl", BLOCK_SUM).unwrap();
    let args = [Value::Int(TOTAL), Value::Int(STEPS)];

    {
        let mut env = ws.env().unwrap();
        let app = env.new_instance("BlockSum", &[]).unwrap();

        let host_mt = platform_by_id("host-mt").unwrap();
        env.jit_on(
            Arc::clone(&host_mt),
            &app,
            "run",
            &args,
            JitOptions::wootinj(),
        )
        .unwrap();
        assert_eq!(env.cache_stats().translations, 1);

        env.jit_on(host_mt, &app, "run", &args, JitOptions::wootinj())
            .unwrap();
        let stats = env.cache_stats();
        assert_eq!(stats.translations, 1, "same platform must hit the cache");
        assert!(stats.hits >= 1);

        let mpi = platform_by_id("mpi-sim").unwrap();
        env.jit_on(mpi, &app, "run", &args, JitOptions::wootinj())
            .unwrap();
        assert_eq!(
            env.cache_stats().translations,
            2,
            "platform change must retranslate (platform-salted key)"
        );
    } // envs borrow the workspace's table: drop before editing

    // A whitespace edit bumps the revision but not the fingerprints: a
    // fresh env's memory tier is empty, yet the translator does only
    // replay work (no fresh lowering) and the key namespace is stable.
    let fp = ws.db().source_fingerprint();
    ws.edit("block_sum.jl", &format!("{BLOCK_SUM}\n// comment\n"))
        .unwrap();
    assert_eq!(ws.db().source_fingerprint(), fp);
    let mut env = ws.env().unwrap();
    let app = env.new_instance("BlockSum", &[]).unwrap();
    let host_mt = platform_by_id("host-mt").unwrap();
    let code = env
        .jit_on(host_mt, &app, "run", &args, JitOptions::wootinj())
        .unwrap();
    assert_eq!(
        code.query_stats().lower_executed,
        0,
        "whitespace edit must replay every function memo"
    );
}
