//! GPU deep dive: naive vs shared-memory-tiled matmul kernels on the
//! simulated device, plus the generated CUDA source with `__global__`,
//! `__shared__`, and `__syncthreads()`.
//!
//! Run with: `cargo run --release --example gpu_kernel`

use hpclib::{MatmulApp, MatmulBody, MatmulCalc, MatmulThread};
use jvm::Value;
use wootinj::{GpuConfig, JitOptions, Val, WootinJ};

fn main() {
    let table = hpclib::matmul_table(&[]).expect("compile matmul library");
    let n = 32; // multiple of the 8x8 tile
    println!("GPU matmul, {n}x{n}\n");

    let mut naive_src = String::new();
    for (name, body) in [
        ("naive", MatmulBody::GpuNaive),
        ("tiled", MatmulBody::GpuTiled),
    ] {
        let mut env = WootinJ::new(&table).unwrap();
        let app =
            MatmulApp::compose(&mut env, MatmulThread::Gpu, body, MatmulCalc::Optimized).unwrap();
        let mut code = env
            .jit(&app, "start", &[Value::Int(n)], JitOptions::wootinj())
            .unwrap();
        code.set_gpu(GpuConfig::default());
        let report = code.invoke(&env).unwrap();
        let sum = match report.result {
            Some(Val::F32(v)) => v,
            other => panic!("unexpected {other:?}"),
        };
        let gpu_time = report.per_rank[0].gpu_time;
        println!(
            "{name:<6} kernel: checksum={sum:<12.4} device-busy={gpu_time:>9} cycles  total vtime={}",
            report.vtime_cycles
        );
        if name == "naive" {
            naive_src = code.c_source();
        } else {
            // Show the tiled kernel's CUDA source.
            let src = code.c_source();
            println!("\n--- tiled kernel source (extract) ---");
            let mut in_kernel = false;
            for line in src.lines() {
                if line.contains("__global__") {
                    in_kernel = true;
                }
                if in_kernel {
                    println!("{line}");
                    if line == "}" {
                        break;
                    }
                }
            }
        }
    }

    println!("\n--- naive kernel source (extract) ---");
    let mut in_kernel = false;
    for line in naive_src.lines() {
        if line.contains("__global__") {
            in_kernel = true;
        }
        if in_kernel {
            println!("{line}");
            if line == "}" {
                break;
            }
        }
    }

    // Device scaling: same kernel on a beefier simulated GPU.
    println!("\ndevice scaling (naive kernel, {n}x{n}):");
    for sms in [7u32, 14, 28] {
        let mut env = WootinJ::new(&table).unwrap();
        let app = MatmulApp::compose(
            &mut env,
            MatmulThread::Gpu,
            MatmulBody::GpuNaive,
            MatmulCalc::Optimized,
        )
        .unwrap();
        let mut code = env
            .jit(&app, "start", &[Value::Int(n)], JitOptions::wootinj())
            .unwrap();
        code.set_gpu(GpuConfig {
            n_sms: sms,
            ..GpuConfig::default()
        });
        let report = code.invoke(&env).unwrap();
        println!(
            "  {sms:>2} SMs: device-busy={} cycles",
            report.per_rank[0].gpu_time
        );
    }
}
