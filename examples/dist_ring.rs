//! The `dist` backend, end to end: real OS rank processes.
//!
//! The same ring-exchange workload runs three times — on the in-process
//! `mpi-sim` backend, on `dist` with worker *threads* speaking the full
//! loopback-TCP wire protocol, and on `dist` with one spawned OS
//! *process* per rank (this example re-executes itself as the worker:
//! note the `run_if_spawned` guard at the top of `main`). All three
//! must agree bit-for-bit on the result, the virtual time, and every
//! rank's clocks — the socket transport is a transparent seam, not a
//! different machine.
//!
//! Run with:
//! ```text
//! cargo run --release --example dist_ring
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use jvm::Value;
use wootinj::{
    build_table, DistPlatform, JitOptions, MpiSimPlatform, Platform, RunReport, Val, WootinJ,
};

/// Ring sendrecv with one allreduce per step — one collective boundary
/// (checkpoint cut point) per iteration, plus enough point-to-point
/// traffic to exercise the message path on every backend.
const APP: &str = r#"
    @WootinJ final class RingStepReduce {
      RingStepReduce() { }
      float run(int n, int steps) {
        int rank = MPI.rank();
        int size = MPI.size();
        float[] sbuf = new float[n];
        float[] rbuf = new float[n];
        for (int i = 0; i < n; i++) { sbuf[i] = rank * n + i; }
        int dest = (rank + 1) % size;
        int src = (rank + size - 1) % size;
        float acc = 0f;
        for (int s = 0; s < steps; s++) {
          MPI.sendrecvF(sbuf, 0, n, dest, rbuf, 0, src, 7);
          for (int i = 0; i < n; i++) { sbuf[i] = rbuf[i] * 0.5f; }
          acc += MPI.allreduceSumF(sbuf[0]);
        }
        return acc;
      }
    }
"#;

const WORLD: u32 = 4;

fn run_on(platform: Arc<dyn Platform>) -> RunReport {
    let table = build_table(&[("ring_step_reduce.jl", APP)]).unwrap();
    let mut env = WootinJ::new(&table).unwrap();
    let app = env.new_instance("RingStepReduce", &[]).unwrap();
    let args = [Value::Int(24), Value::Int(10)];
    let id = platform.id();
    let code = env
        .jit_on(platform, &app, "run", &args, JitOptions::wootinj())
        .unwrap();
    code.invoke(&env)
        .unwrap_or_else(|e| panic!("{id}: run failed: {e}"))
}

fn value_of(report: &RunReport) -> f32 {
    match report.result {
        Some(Val::F32(v)) => v,
        other => panic!("expected f32 result, got {other:?}"),
    }
}

fn diverged(a: &RunReport, b: &RunReport, what: &str) -> bool {
    let mut bad = false;
    if value_of(a).to_bits() != value_of(b).to_bits() {
        eprintln!(
            "DIVERGENCE ({what}): result {} vs {}",
            value_of(a),
            value_of(b)
        );
        bad = true;
    }
    if a.vtime_cycles != b.vtime_cycles || a.total_cycles != b.total_cycles {
        eprintln!(
            "DIVERGENCE ({what}): vtime {} vs {}, cycles {} vs {}",
            a.vtime_cycles, b.vtime_cycles, a.total_cycles, b.total_cycles
        );
        bad = true;
    }
    for (r, (x, y)) in a.per_rank.iter().zip(&b.per_rank).enumerate() {
        if x.vclock != y.vclock
            || x.compute_cycles != y.compute_cycles
            || x.comm_cycles != y.comm_cycles
        {
            eprintln!("DIVERGENCE ({what}): rank {r} clocks differ");
            bad = true;
        }
    }
    bad
}

fn main() -> ExitCode {
    // If the spawn environment is set, this invocation is one of our own
    // rank workers: serve the wire protocol and exit.
    if dist::worker::run_if_spawned() {
        return ExitCode::SUCCESS;
    }

    let reference = run_on(Arc::new(MpiSimPlatform::new(WORLD)));
    println!(
        "mpi-sim (in-process):   result {:>12.3}, vtime {} cycles",
        value_of(&reference),
        reference.vtime_cycles
    );

    let threads = run_on(Arc::new(DistPlatform::new(WORLD)));
    println!(
        "dist (worker threads):  result {:>12.3}, vtime {} cycles",
        value_of(&threads),
        threads.vtime_cycles
    );

    let exe = std::env::current_exe().expect("current_exe");
    let processes = run_on(Arc::new(
        DistPlatform::new(WORLD).with_launch(dist::Launch::Processes { exe, args: vec![] }),
    ));
    println!(
        "dist (OS processes):    result {:>12.3}, vtime {} cycles",
        value_of(&processes),
        processes.vtime_cycles
    );

    if diverged(&reference, &threads, "threads") || diverged(&reference, &processes, "processes") {
        return ExitCode::FAILURE;
    }
    println!(
        "\nall three backends agree bit-for-bit across {WORLD} ranks \
         (result, virtual time, per-rank clocks)"
    );
    ExitCode::SUCCESS
}
