//! Incremental recompilation with the query database.
//!
//! A `Workspace` owns a revision-counted database of memoized queries
//! (parse → item tree → per-body typeck → per-function lowering). An
//! edit bumps the revision and re-executes only the queries it
//! invalidated; everything else replays from memos — and the result is
//! bit-identical to a from-scratch build of the same sources.
//!
//! Run with:
//! ```text
//! cargo run --release --example incremental
//! ```

use jvm::Value;
use wootinj::{JitOptions, QueryStats, Workspace};

const OPS: &str = "
    @WootinJ final class Scale {
      float k;
      Scale(float k0) { k = k0; }
      float f(float x) { return k * x; }
    }
    @WootinJ final class Square {
      Square() { }
      float g(float x) { return x * x; }
    }";

const APP: &str = "
    @WootinJ final class App {
      Scale s; Square q;
      App(Scale s0, Square q0) { s = s0; q = q0; }
      float run(float[] data) {
        float acc = 0f;
        for (int i = 0; i < data.length; i++) {
          acc += s.f(data[i]) + q.g(data[i]);
        }
        return acc;
      }
    }";

/// JIT and run `App.run([1, 2, 3])` in a fresh env over the workspace's
/// current revision, printing the result and the query-counter delta
/// since `before` (snapshotted ahead of the edit, so re-typechecking
/// triggered by the edit itself is counted too).
fn run(ws: &Workspace, label: &str, before: QueryStats) {
    let mut env = ws.env().unwrap();
    let s = env.new_instance("Scale", &[Value::Float(3.0)]).unwrap();
    let q = env.new_instance("Square", &[]).unwrap();
    let app = env.new_instance("App", &[s, q]).unwrap();
    let data = env.new_f32_array(&[1.0, 2.0, 3.0]);
    let code = env
        .jit(&app, "run", &[data], JitOptions::wootinj())
        .unwrap();
    let result = code.invoke(&env).unwrap().result;
    let d = ws.query_stats().since(&before);
    println!(
        "{label:<18} result {result:?}  executed {:>2}  reused {:>2}  early cutoffs {}",
        d.executed(),
        d.reused(),
        d.early_cutoffs
    );
}

fn main() {
    let mut ws = Workspace::new();
    let before = ws.query_stats();
    ws.set_source("ops.jl", OPS).unwrap();
    ws.set_source("app.jl", APP).unwrap();

    // Revisions 1–2: everything is cold — every query executes.
    run(&ws, "cold build", before);

    // A value-only body edit: exactly one body re-typechecks, exactly
    // the affected functions re-lower, everything else replays.
    let before = ws.query_stats();
    ws.edit("ops.jl", &OPS.replace("x * x", "x * x + 0.5f"))
        .unwrap();
    run(&ws, "body edit", before);

    // A comment edit: the item tree re-hashes identically (early
    // cutoff), so *nothing* downstream re-executes — the artifact-store
    // key is unchanged and the jit is pure replay.
    let before = ws.query_stats();
    ws.edit("app.jl", &format!("{APP}\n// tuned today\n"))
        .unwrap();
    run(&ws, "whitespace edit", before);

    // Appending a class keeps every existing class id, so every
    // existing typeck memo replays; only the new class's bodies (and —
    // because the class hierarchy itself changed — the lowered
    // functions, whose devirtualization read it) re-execute.
    let before = ws.query_stats();
    ws.set_source(
        "extra.jl",
        "@WootinJ final class Extra { Extra() { } float e(float x) { return x + 1f; } }",
    )
    .unwrap();
    run(&ws, "new class", before);

    println!(
        "cumulative: {:?}\nrevision {} with source fingerprint {:#018x}",
        ws.query_stats(),
        ws.revision(),
        ws.db().source_fingerprint()
    );
}
