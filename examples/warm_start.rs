//! Cross-process warm start from the persistent artifact store.
//!
//! The first run against an empty cache directory translates the
//! application and persists the sealed artifact; every later run — a
//! brand-new process — decodes it from disk and does **zero**
//! translator/optimizer work.
//!
//! Run with:
//! ```text
//! cargo run --release --example warm_start -- /tmp/wj-cache
//! cargo run --release --example warm_start -- /tmp/wj-cache --expect-warm
//! ```
//! The second invocation exits nonzero if anything had to be translated
//! (i.e. the warm start did not happen), which is what
//! `scripts/check.sh` uses as its round-trip smoke test.

use std::process::ExitCode;

use jvm::Value;
use wootinj::{build_table, JitOptions, Val, WootinJ};

const APP: &str = "
    @WootinJ interface Flux { float at(float left, float mid, float right); }
    @WootinJ final class Diffusion implements Flux {
      float k;
      Diffusion(float k0) { k = k0; }
      float at(float left, float mid, float right) {
        return mid + k * (left - 2f * mid + right);
      }
    }
    @WootinJ final class Sweep {
      Flux flux;
      Sweep(Flux f) { flux = f; }
      float run(float[] cells, int steps) {
        for (int s = 0; s < steps; s++) {
          for (int i = 1; i < cells.length - 1; i++) {
            cells[i] = flux.at(cells[i - 1], cells[i], cells[i + 1]);
          }
        }
        float sum = 0f;
        for (int i = 0; i < cells.length; i++) { sum += cells[i]; }
        return sum;
      }
    }";

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(cache_dir) = args.next() else {
        eprintln!("usage: warm_start <cache-dir> [--expect-warm]");
        return ExitCode::from(2);
    };
    let expect_warm = args.next().as_deref() == Some("--expect-warm");

    let table = build_table(&[("diffusion.jl", APP)]).expect("compile");
    let mut env = WootinJ::new(&table).expect("framework env");
    let flux = env.new_instance("Diffusion", &[Value::Float(0.1)]).unwrap();
    let sweep = env.new_instance("Sweep", &[flux]).unwrap();
    let cells = env.new_f32_array(&[0.0, 0.0, 1.0, 0.0, 0.0]);

    let code = env
        .jit(
            &sweep,
            "run",
            &[cells, Value::Int(8)],
            JitOptions::wootinj().with_disk_cache(&cache_dir),
        )
        .expect("jit");
    let stats = env.cache_stats();
    println!(
        "compile: {:?}  (translations={}, disk_hits={}, decode_failures={})",
        code.compile_time, stats.translations, stats.disk_hits, stats.decode_failures
    );
    match code.invoke(&env).expect("invoke").result {
        Some(Val::F32(v)) => println!("checksum = {v}"),
        other => println!("unexpected result {other:?}"),
    }

    if stats.translations == 0 {
        println!("warm start: artifact decoded from {cache_dir}, no translator work");
    } else {
        println!("cold start: translated and persisted to {cache_dir}");
        if expect_warm {
            eprintln!(
                "error: --expect-warm but {} translation(s) ran",
                stats.translations
            );
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
