//! The paper's main evaluation workload: a 3-D diffusion-equation solver
//! built from the stencil class library, run on every platform the
//! feature model offers (Figure 1) and in every translation mode
//! (the Figure 17 series).
//!
//! Run with: `cargo run --release --example stencil_diffusion3d`

use hpclib::{StencilApp, StencilPlatform};
use jvm::Value;
use wootinj::{GpuConfig, JitOptions, MpiCostModel, Val, WootinJ};

fn main() {
    let table = hpclib::stencil_table(&[]).expect("compile stencil library");

    let (nx, ny, nz, steps) = (24, 24, 16, 4);
    let args = [
        Value::Int(nx),
        Value::Int(ny),
        Value::Int(nz),
        Value::Int(steps),
    ];
    println!("3-D diffusion, {nx}x{ny}x{nz}, {steps} steps");
    println!(
        "reference checksum: {}\n",
        hpclib::reference_diffusion(
            nx as usize,
            ny as usize,
            nz as usize,
            steps as usize,
            0.4,
            0.1
        )
    );

    // --- platform feature sweep (WootinJ mode) --------------------------
    println!("platform sweep (WootinJ translation):");
    for (platform, ranks) in [
        (StencilPlatform::Cpu, 1u32),
        (StencilPlatform::CpuMpi, 4),
        (StencilPlatform::Gpu, 1),
        (StencilPlatform::GpuMpi, 4),
    ] {
        let mut env = WootinJ::new(&table).unwrap();
        let runner = StencilApp::compose(&mut env, platform, StencilApp::default_model()).unwrap();
        let mut code = env
            .jit(&runner, "invoke", &args, JitOptions::wootinj())
            .unwrap();
        if platform.uses_mpi() {
            code.set_mpi(ranks, MpiCostModel::default());
        }
        if platform.uses_gpu() {
            code.set_gpu(GpuConfig::default());
        }
        let report = code.invoke(&env).unwrap();
        let result = match report.result {
            Some(Val::F32(v)) => v,
            other => panic!("unexpected {other:?}"),
        };
        println!(
            "  {:<22} ranks={ranks}  checksum={result:<12.4}  vtime={} cycles",
            format!("{:?}", platform),
            report.vtime_cycles
        );
    }

    // --- translation-mode sweep on the CPU (the Figure 17 series) -------
    println!("\ntranslation-mode sweep (CPU runner):");
    let mut env = WootinJ::new(&table).unwrap();
    let runner =
        StencilApp::compose(&mut env, StencilPlatform::Cpu, StencilApp::default_model()).unwrap();

    // Java series: the interpreter.
    let jreport = env.run_interpreted(&runner, "invoke", &args).unwrap();
    println!(
        "  {:<18} checksum={:<12}  steps={} (interpreter work metric)",
        "Java (interp)",
        match jreport.result {
            Value::Float(v) => format!("{v:.4}"),
            other => format!("{other}"),
        },
        jreport.steps
    );

    for (name, opts) in [
        ("C++ (virtual)", JitOptions::cpp()),
        ("Template", JitOptions::template()),
        ("Template w/o virt", JitOptions::template_no_virt()),
        ("WootinJ", JitOptions::wootinj()),
    ] {
        let code = env.jit(&runner, "invoke", &args, opts).unwrap();
        let report = code.invoke(&env).unwrap();
        let result = match report.result {
            Some(Val::F32(v)) => v,
            other => panic!("unexpected {other:?}"),
        };
        println!(
            "  {name:<18} checksum={result:<12.4}  vtime={:>12} cycles  (compile {:?})",
            report.vtime_cycles, report.compile_wall
        );
    }
    println!("\n(lower vtime is better; Java and C++ pay the object-orientation tax)");
}
