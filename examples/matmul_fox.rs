//! Matrix multiplication with the Figure-8 class library: the Fox
//! algorithm distributed over a √p × √p grid of MPI ranks, cross-checked
//! against the sequential body and the native Rust baselines.
//!
//! Run with: `cargo run --release --example matmul_fox`

use hpclib::{MatmulApp, MatmulBody, MatmulCalc, MatmulThread};
use jvm::Value;
use wootinj::{JitOptions, MpiCostModel, Val, WootinJ};

fn main() {
    let table = hpclib::matmul_table(&[]).expect("compile matmul library");
    let n = 24;
    println!("matrix multiplication, {n}x{n} (DefaultGen inputs)");
    println!(
        "reference checksum (plain Rust): {}\n",
        hpclib::reference_matmul(n as usize)
    );

    // Sequential: CPULoop + SimpleOuterBody.
    let mut env = WootinJ::new(&table).unwrap();
    let seq = MatmulApp::compose(
        &mut env,
        MatmulThread::CpuLoop,
        MatmulBody::Simple,
        MatmulCalc::Optimized,
    )
    .unwrap();
    let code = env
        .jit(&seq, "start", &[Value::Int(n)], JitOptions::wootinj())
        .unwrap();
    let report = code.invoke(&env).unwrap();
    let seq_sum = match report.result {
        Some(Val::F32(v)) => v,
        other => panic!("unexpected {other:?}"),
    };
    println!(
        "CPULoop + SimpleOuterBody:      checksum={seq_sum:<12.4} vtime={} cycles",
        report.vtime_cycles
    );

    // Distributed: MPIThread + FoxAlgorithm on 1, 4, 9 ranks.
    for ranks in [1u32, 4, 9] {
        let mut env = WootinJ::new(&table).unwrap();
        let fox = MatmulApp::compose(
            &mut env,
            MatmulThread::Mpi,
            MatmulBody::Fox,
            MatmulCalc::Optimized,
        )
        .unwrap();
        let mut code = env
            .jit(&fox, "start", &[Value::Int(n)], JitOptions::wootinj())
            .unwrap();
        code.set_mpi(ranks, MpiCostModel::default());
        let report = code.invoke(&env).unwrap();
        let sum = match report.result {
            Some(Val::F32(v)) => v,
            other => panic!("unexpected {other:?}"),
        };
        let comm: u64 = report.per_rank.iter().map(|r| r.comm_cycles).sum();
        println!(
            "MPIThread + FoxAlgorithm p={ranks:<2}: checksum={sum:<12.4} vtime={} cycles (comm {comm})",
            report.vtime_cycles
        );
    }

    // The calculator feature: per-element virtual accessors vs raw arrays.
    println!("\ncalculator feature under the C++ (virtual-dispatch) baseline:");
    for (name, calc) in [
        ("SimpleCalculator", MatmulCalc::Simple),
        ("OptimizedCalculator", MatmulCalc::Optimized),
    ] {
        let mut env = WootinJ::new(&table).unwrap();
        let app =
            MatmulApp::compose(&mut env, MatmulThread::CpuLoop, MatmulBody::Simple, calc).unwrap();
        let code = env
            .jit(&app, "start", &[Value::Int(n)], JitOptions::cpp())
            .unwrap();
        let report = code.invoke(&env).unwrap();
        println!("  {name:<22} vtime={} cycles", report.vtime_cycles);
    }

    // Native baseline cross-check.
    println!("\nnative Rust baselines (same inputs):");
    println!(
        "  c_style           checksum={}",
        baselines::matmul::c_style::matmul_checksum(n as usize)
    );
    println!(
        "  virtual_style     checksum={}",
        baselines::matmul::virtual_style::matmul_checksum(n as usize)
    );
    println!(
        "  template_style    checksum={}",
        baselines::matmul::template_style::matmul_checksum(n as usize)
    );
    println!(
        "  template_no_virt  checksum={}",
        baselines::matmul::template_no_virt::matmul_checksum(n as usize)
    );
}
