//! Quickstart: the paper's Listing 3 end to end.
//!
//! Write a tiny WootinJ "application" (a one-point stencil on GPU + MPI),
//! compose it on the Java side, JIT it, and invoke it — then peek at the
//! generated C/CUDA source (the Listing 5 analogue).
//!
//! Run with: `cargo run --release --example quickstart`

use jvm::Value;
use wootinj::{build_table, GpuConfig, JitOptions, MpiCostModel, Val, WootinJ};

const USER_PROGRAM: &str = r#"
    @WootinJ interface Generator { float[] make(int length, int seed); }
    @WootinJ interface Solver { float solve(float self, int index); }

    @WootinJ final class PhysDataGen implements Generator {
      PhysDataGen() { }
      float[] make(int length, int seed) {
        float[] a = new float[length];
        for (int i = 0; i < length; i++) { a[i] = i + seed * 1000; }
        return a;
      }
    }

    @WootinJ final class PhysSolver implements Solver {
      PhysSolver() { }
      float solve(float self, int index) { return self * 0.5f + index; }
    }

    @WootinJ final class StencilOnGpuAndMPI {
      Solver solver;
      Generator generator;
      StencilOnGpuAndMPI(Generator g, Solver s) { generator = g; solver = s; }

      float run(int length, int updateCnt) {
        int rank = MPI.rank();
        float[] array = generator.make(length, rank);
        float[] arrayOnGPU = CUDA.copyToGPU(array);
        CudaConfig conf = new CudaConfig(new dim3((length + 63) / 64, 1, 1),
                                         new dim3(64, 1, 1));
        for (int i = 0; i < updateCnt; i++) {
          runGPU(conf, arrayOnGPU);
        }
        CUDA.copyFromGPU(array, arrayOnGPU);
        float sum = 0f;
        for (int i = 0; i < length; i++) { sum += array[i]; }
        return MPI.allreduceSumF(sum);
      }

      @Global void runGPU(CudaConfig conf, float[] array) {
        int x = CUDA.blockIdxX() * CUDA.blockDimX() + CUDA.threadIdxX();
        if (x < array.length) {
          array[x] = solver.solve(array[x], x);
        }
      }
    }
"#;

fn main() {
    // 1. Compile the library + application sources (prelude included).
    let table = build_table(&[("quickstart.jl", USER_PROGRAM)]).expect("compile");
    let mut env = WootinJ::new(&table).expect("framework env");

    // 2. Compose the application object graph on the "Java" side —
    //    component selection happens here, via plain constructors.
    let generator = env.new_instance("PhysDataGen", &[]).unwrap();
    let solver = env.new_instance("PhysSolver", &[]).unwrap();
    let stencil = env
        .new_instance("StencilOnGpuAndMPI", &[generator, solver])
        .unwrap();

    // 3. JIT-translate `stencil.run(4096, 10)` — the framework reads the
    //    live object graph's exact types, devirtualizes every dispatch,
    //    inlines every object, and emits a flat kernel program.
    let mut code = env
        .jit(
            &stencil,
            "run",
            &[Value::Int(4096), Value::Int(10)],
            JitOptions::wootinj(),
        )
        .expect("jit");
    println!("translated in {:?}", code.compile_time);
    println!(
        "stats: {} specializations, {} devirtualized calls, {} kernels",
        code.stats().specializations,
        code.stats().devirtualized_calls,
        code.stats().kernels
    );

    // 4. Configure the platform (4 MPI ranks, one GPU each) and invoke.
    code.set_mpi(4, MpiCostModel::default());
    code.set_gpu(GpuConfig::default());
    let report = code.invoke(&env).expect("invoke");
    match report.result {
        Some(Val::F32(v)) => println!("global checksum = {v}"),
        other => println!("unexpected result {other:?}"),
    }
    println!(
        "virtual completion time: {} cycles ({} total executed)",
        report.vtime_cycles, report.total_cycles
    );
    for (r, pr) in report.per_rank.iter().enumerate() {
        println!(
            "  rank {r}: vclock={} compute={} comm+gpu={}",
            pr.vclock, pr.compute_cycles, pr.comm_cycles
        );
    }

    // 5. The generated "C/CUDA" source, like the paper's Listing 5.
    let src = code.c_source();
    println!("\n--- generated source (first 40 lines) ---");
    for line in src.lines().take(40) {
        println!("{line}");
    }
}
