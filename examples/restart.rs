//! Collective-boundary checkpoint/restart, end to end.
//!
//! The same seeded crash plan is run twice: once plain — the world dies
//! with a typed post-mortem — and once under
//! `JitOptions::with_checkpointing`, where the runtime snapshots every
//! completed collective, rolls the world back on the crash, reseeds the
//! fault streams, and resumes. Crash faults never corrupt surviving
//! state, so the recovered answer matches the fault-free run
//! bit-for-bit.
//!
//! Run with:
//! ```text
//! cargo run --release --example restart
//! ```

use std::process::ExitCode;

use jvm::Value;
use wootinj::{
    build_table, CheckpointPolicy, FaultConfig, JitOptions, MpiCostModel, SimError, Val, WjError,
    WootinJ,
};

/// Ring sendrecv with one allreduce per step: every step ends at a
/// collective, i.e. at a checkpointable cut point.
const APP: &str = r#"
    @WootinJ final class RingStepReduce {
      RingStepReduce() { }
      float run(int n, int steps) {
        int rank = MPI.rank();
        int size = MPI.size();
        float[] sbuf = new float[n];
        float[] rbuf = new float[n];
        for (int i = 0; i < n; i++) { sbuf[i] = rank * n + i; }
        int dest = (rank + 1) % size;
        int src = (rank + size - 1) % size;
        float acc = 0f;
        for (int s = 0; s < steps; s++) {
          MPI.sendrecvF(sbuf, 0, n, dest, rbuf, 0, src, 7);
          for (int i = 0; i < n; i++) { sbuf[i] = rbuf[i] * 0.5f; }
          acc += MPI.allreduceSumF(sbuf[0]);
        }
        return acc;
      }
    }
"#;

const WORLD: u32 = 4;
const SEED: u64 = 0xFACA_DE2E;

fn run(faulty: bool, checkpointed: bool) -> Result<(f32, u64, u64), WjError> {
    let table = build_table(&[("ring_step_reduce.jl", APP)]).expect("compile");
    let mut env = WootinJ::new(&table).expect("framework env");
    let app = env.new_instance("RingStepReduce", &[]).unwrap();
    let mut opts = JitOptions::wootinj();
    if checkpointed {
        opts = opts.with_checkpointing(CheckpointPolicy::every(1));
    }
    let mut code = env
        .jit(&app, "run", &[Value::Int(16), Value::Int(12)], opts)
        .expect("jit");
    code.set_mpi(WORLD, MpiCostModel::default());
    if faulty {
        let mut cfg = FaultConfig::seeded(SEED);
        cfg.crash = 0.02;
        code.set_faults(cfg);
    }
    let report = code.invoke(&env)?;
    let value = match report.result {
        Some(Val::F32(v)) => v,
        other => panic!("unexpected result {other:?}"),
    };
    Ok((
        value,
        report.restart.restarts,
        report.restart.virtual_time_lost,
    ))
}

fn main() -> ExitCode {
    let (clean, _, _) = run(false, false).expect("fault-free run");
    println!("fault-free answer: {clean}");

    match run(true, false) {
        Err(WjError::Sim(e @ SimError::Crash { .. })) => {
            println!("\nplain faulted run dies typed:\n{e}\n");
        }
        other => {
            eprintln!("expected a typed crash, got {other:?}");
            return ExitCode::FAILURE;
        }
    }

    match run(true, true) {
        Ok((value, restarts, lost)) => {
            println!(
                "checkpointed run completes: {value} after {restarts} restart(s), \
                 {lost} virtual cycles rolled back"
            );
            if value.to_bits() != clean.to_bits() {
                eprintln!("recovered answer diverged from the fault-free run");
                return ExitCode::FAILURE;
            }
            if restarts == 0 {
                eprintln!("no restart happened; pick a seed that actually crashes");
                return ExitCode::FAILURE;
            }
            println!("bit-identical to the fault-free answer");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("checkpointed run failed: {e}");
            ExitCode::FAILURE
        }
    }
}
