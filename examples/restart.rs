//! Collective-boundary checkpoint/restart, end to end.
//!
//! The same seeded crash plan is run three times: once plain — the world
//! dies with a typed post-mortem — once under
//! `JitOptions::with_checkpointing` with full snapshots, and once with
//! delta chains (`with_rebase_every`), where each checkpoint encodes
//! only the sections that changed since its parent. Crash faults never
//! corrupt surviving state, so both recovered answers match the
//! fault-free run bit-for-bit — and the delta run writes a fraction of
//! the checkpoint bytes.
//!
//! Run with:
//! ```text
//! cargo run --release --example restart
//! ```

use std::process::ExitCode;

use jvm::Value;
use wootinj::{
    build_table, CheckpointPolicy, FaultConfig, JitOptions, MpiCostModel, ResilienceStats,
    RestartStats, SimError, Val, WjError, WootinJ,
};

/// Ring sendrecv with one allreduce per step: every step ends at a
/// collective, i.e. at a checkpointable cut point. The `mesh` array is
/// written once and never again — the mostly-constant heap shape delta
/// chains pay for once per base instead of once per checkpoint.
const APP: &str = r#"
    @WootinJ final class RingStepReduce {
      RingStepReduce() { }
      float run(int n, int steps) {
        int rank = MPI.rank();
        int size = MPI.size();
        float[] sbuf = new float[n];
        float[] rbuf = new float[n];
        float[] mesh = new float[n * 16];
        for (int i = 0; i < n; i++) { sbuf[i] = rank * n + i; }
        for (int i = 0; i < n * 16; i++) { mesh[i] = i * 0.25f; }
        int dest = (rank + 1) % size;
        int src = (rank + size - 1) % size;
        float acc = 0f;
        for (int s = 0; s < steps; s++) {
          MPI.sendrecvF(sbuf, 0, n, dest, rbuf, 0, src, 7);
          for (int i = 0; i < n; i++) { sbuf[i] = rbuf[i] * 0.5f; }
          acc += mesh[s] + MPI.allreduceSumF(sbuf[0]);
        }
        return acc;
      }
    }
"#;

const WORLD: u32 = 4;
const SEED: u64 = 0xFACA_DE2E;

#[derive(Debug)]
struct Outcome {
    value: f32,
    restart: RestartStats,
    resilience: ResilienceStats,
}

/// `rebase_every` = 0 means full snapshots; N means a delta chain with a
/// fresh base every N deltas.
fn run(faulty: bool, checkpointed: bool, rebase_every: u32) -> Result<Outcome, WjError> {
    let table = build_table(&[("ring_step_reduce.jl", APP)]).expect("compile");
    let mut env = WootinJ::new(&table).expect("framework env");
    let app = env.new_instance("RingStepReduce", &[]).unwrap();
    let mut opts = JitOptions::wootinj();
    if checkpointed {
        opts = opts.with_checkpointing(CheckpointPolicy::every(1).with_rebase_every(rebase_every));
    }
    let mut code = env
        .jit(&app, "run", &[Value::Int(16), Value::Int(12)], opts)
        .expect("jit");
    code.set_mpi(WORLD, MpiCostModel::default());
    if faulty {
        let mut cfg = FaultConfig::seeded(SEED);
        cfg.crash = 0.02;
        code.set_faults(cfg);
    }
    let report = code.invoke(&env)?;
    let value = match report.result {
        Some(Val::F32(v)) => v,
        other => panic!("unexpected result {other:?}"),
    };
    Ok(Outcome {
        value,
        restart: report.restart,
        resilience: report.resilience,
    })
}

fn main() -> ExitCode {
    let clean = run(false, false, 0).expect("fault-free run").value;
    println!("fault-free answer: {clean}");

    match run(true, false, 0) {
        Err(WjError::Sim(e @ SimError::Crash { .. })) => {
            println!("\nplain faulted run dies typed:\n{e}\n");
        }
        other => {
            eprintln!("expected a typed crash, got {other:?}");
            return ExitCode::FAILURE;
        }
    }

    let mut bytes = Vec::new();
    for (label, rebase_every) in [("full snapshots", 0u32), ("delta chain (rebase 4)", 4)] {
        match run(true, true, rebase_every) {
            Ok(out) => {
                println!("{label}:");
                println!("  restart:    {}", out.restart);
                println!("  resilience: {}", out.resilience);
                if out.value.to_bits() != clean.to_bits() {
                    eprintln!("{label}: recovered answer diverged from the fault-free run");
                    return ExitCode::FAILURE;
                }
                if out.restart.restarts == 0 {
                    eprintln!("{label}: no restart happened; pick a seed that crashes");
                    return ExitCode::FAILURE;
                }
                bytes.push(out.restart.ckpt_bytes_written);
            }
            Err(e) => {
                eprintln!("{label}: checkpointed run failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if bytes[1] >= bytes[0] {
        eprintln!(
            "delta chain wrote {} B, full snapshots {} B — expected a strict win",
            bytes[1], bytes[0]
        );
        return ExitCode::FAILURE;
    }
    println!(
        "\nboth recoveries bit-identical; delta chain wrote {} B vs {} B full ({}% saved)",
        bytes[1],
        bytes[0],
        100 - bytes[1] * 100 / bytes[0].max(1)
    );
    ExitCode::SUCCESS
}
