//! Wall-clock complement to Figure 18: serial matrix multiplication
//! through the Matrix/Calculator components, every series. Translation is
//! hoisted out of the measurement loop.

use std::hint::black_box;

use bench::timing::Group;
use hpclib::{MatmulApp, MatmulBody, MatmulCalc, MatmulThread};
use jvm::Value;
use wootinj::{JitOptions, WootinJ};

fn main() {
    let n = 16i32;
    let args = [Value::Int(n)];
    let table = hpclib::matmul_table(&[]).unwrap();

    let mut group = Group::new("matmul_serial");
    group.sample_size(10);

    {
        let mut env = WootinJ::new(&table).unwrap();
        let app = MatmulApp::compose(
            &mut env,
            MatmulThread::CpuLoop,
            MatmulBody::Simple,
            MatmulCalc::Simple,
        )
        .unwrap();
        group.bench("Java", || {
            let r = env
                .run_interpreted(&app, "start", black_box(&args))
                .unwrap();
            black_box(r.result)
        });
    }

    for (name, opts) in [
        ("C++", JitOptions::cpp()),
        ("Template", JitOptions::template()),
        ("Template w/o virt.", JitOptions::template_no_virt()),
        ("WootinJ", JitOptions::wootinj()),
    ] {
        let mut env = WootinJ::new(&table).unwrap();
        let app = MatmulApp::compose(
            &mut env,
            MatmulThread::CpuLoop,
            MatmulBody::Simple,
            MatmulCalc::Simple,
        )
        .unwrap();
        let code = env.jit(&app, "start", &args, opts).unwrap();
        group.bench(name, || {
            let report = code.invoke(black_box(&env)).unwrap();
            black_box(report.result)
        });
    }

    {
        let table_c = hpclib::matmul_table(&[("c.jl", bench::cprogs::C_MATMUL)]).unwrap();
        let mut env = WootinJ::new(&table_c).unwrap();
        let app = env.new_instance("CMatmul", &[]).unwrap();
        let code = env
            .jit(&app, "start", &args, JitOptions::wootinj())
            .unwrap();
        group.bench("C", || {
            let report = code.invoke(black_box(&env)).unwrap();
            black_box(report.result)
        });
    }
}
