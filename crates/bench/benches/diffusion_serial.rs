//! Wall-clock complement to Figures 3 and 17: the serial 3-D diffusion
//! workload, every series, on the same engine. Translation happens once
//! outside the measurement loop; the harness measures execution only (the
//! `repro` harness reports the deterministic virtual cycles, and
//! `translator_bench` measures translation itself).

use std::hint::black_box;

use bench::timing::Group;
use hpclib::StencilApp;
use jvm::Value;
use wootinj::{JitOptions, WootinJ};

fn main() {
    let dims = (12i32, 12i32, 8i32);
    let steps = 2i32;
    let args = [
        Value::Int(dims.0),
        Value::Int(dims.1),
        Value::Int(dims.2),
        Value::Int(steps),
    ];
    let table = hpclib::stencil_table(&[]).unwrap();

    let mut group = Group::new("diffusion_serial_boxed");
    group.sample_size(10);

    // Java series: interpreter, composed once.
    {
        let mut env = WootinJ::new(&table).unwrap();
        let runner = StencilApp::compose_boxed(&mut env, 0.4, 0.1).unwrap();
        group.bench("Java", || {
            let r = env
                .run_interpreted(&runner, "invoke", black_box(&args))
                .unwrap();
            black_box(r.result)
        });
    }

    // Translated series: jit once, invoke repeatedly.
    for (name, opts) in [
        ("C++", JitOptions::cpp()),
        ("Template", JitOptions::template()),
        ("Template w/o virt.", JitOptions::template_no_virt()),
        ("WootinJ", JitOptions::wootinj()),
    ] {
        let mut env = WootinJ::new(&table).unwrap();
        let runner = StencilApp::compose_boxed(&mut env, 0.4, 0.1).unwrap();
        let code = env.jit(&runner, "invoke", &args, opts).unwrap();
        group.bench(name, || {
            let report = code.invoke(black_box(&env)).unwrap();
            black_box(report.result)
        });
    }

    // C series: the hand-inlined program.
    {
        let table_c = hpclib::stencil_table(&[("c.jl", bench::cprogs::C_DIFFUSION)]).unwrap();
        let mut env = WootinJ::new(&table_c).unwrap();
        let runner = env
            .new_instance("CDiffusion", &[Value::Float(0.4), Value::Float(0.1)])
            .unwrap();
        let code = env
            .jit(&runner, "invoke", &args, JitOptions::wootinj())
            .unwrap();
        group.bench("C", || {
            let report = code.invoke(black_box(&env)).unwrap();
            black_box(report.result)
        });
    }
}
