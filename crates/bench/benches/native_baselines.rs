//! Native-Rust cross-check: the same four dispatch/representation styles
//! in real machine code. The wall-clock ordering here validates that the
//! engine-level ordering of the translated series is not a simulator
//! artifact (DESIGN.md §3).

use std::hint::black_box;

use baselines::diffusion::{
    c_style, template_no_virt, template_style, virtual_style, DiffusionSolver,
};
use baselines::matmul;
use bench::timing::Group;

fn main() {
    {
        let (nx, ny, nz, steps) = (48, 48, 32, 4);
        let mut group = Group::new("native_diffusion");
        group.bench("c_style", || {
            black_box(c_style::diffusion3d(nx, ny, nz, steps, 0.4, 0.1))
        });
        {
            let r = virtual_style::Runner {
                solver: Box::new(DiffusionSolver { cc: 0.4, cn: 0.1 }),
            };
            group.bench("virtual_style", || black_box(r.invoke(nx, ny, nz, steps)));
        }
        {
            let r = template_style::Runner {
                solver: DiffusionSolver { cc: 0.4, cn: 0.1 },
            };
            group.bench("template_style", || black_box(r.invoke(nx, ny, nz, steps)));
        }
        {
            let r = template_no_virt::DiffusionRunner { cc: 0.4, cn: 0.1 };
            group.bench("template_no_virt", || {
                black_box(r.invoke(nx, ny, nz, steps))
            });
        }
    }

    {
        let n = 96;
        let mut group = Group::new("native_matmul");
        group.bench("c_style", || black_box(matmul::c_style::matmul_checksum(n)));
        group.bench("virtual_style", || {
            black_box(matmul::virtual_style::matmul_checksum(n))
        });
        group.bench("template_style", || {
            black_box(matmul::template_style::matmul_checksum(n))
        });
        group.bench("template_no_virt", || {
            black_box(matmul::template_no_virt::matmul_checksum(n))
        });
    }
}
