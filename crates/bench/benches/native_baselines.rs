//! Native-Rust cross-check: the same four dispatch/representation styles
//! in real machine code. The wall-clock ordering here validates that the
//! engine-level ordering of the translated series is not a simulator
//! artifact (DESIGN.md §3).

use baselines::diffusion::{
    c_style, template_no_virt, template_style, virtual_style, DiffusionSolver,
};
use baselines::matmul;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_native_diffusion(c: &mut Criterion) {
    let (nx, ny, nz, steps) = (48, 48, 32, 4);
    let mut group = c.benchmark_group("native_diffusion");
    group.bench_function("c_style", |b| {
        b.iter(|| black_box(c_style::diffusion3d(nx, ny, nz, steps, 0.4, 0.1)))
    });
    group.bench_function("virtual_style", |b| {
        let r = virtual_style::Runner { solver: Box::new(DiffusionSolver { cc: 0.4, cn: 0.1 }) };
        b.iter(|| black_box(r.invoke(nx, ny, nz, steps)))
    });
    group.bench_function("template_style", |b| {
        let r = template_style::Runner { solver: DiffusionSolver { cc: 0.4, cn: 0.1 } };
        b.iter(|| black_box(r.invoke(nx, ny, nz, steps)))
    });
    group.bench_function("template_no_virt", |b| {
        let r = template_no_virt::DiffusionRunner { cc: 0.4, cn: 0.1 };
        b.iter(|| black_box(r.invoke(nx, ny, nz, steps)))
    });
    group.finish();
}

fn bench_native_matmul(c: &mut Criterion) {
    let n = 96;
    let mut group = c.benchmark_group("native_matmul");
    group.bench_function("c_style", |b| {
        b.iter(|| black_box(matmul::c_style::matmul_checksum(n)))
    });
    group.bench_function("virtual_style", |b| {
        b.iter(|| black_box(matmul::virtual_style::matmul_checksum(n)))
    });
    group.bench_function("template_style", |b| {
        b.iter(|| black_box(matmul::template_style::matmul_checksum(n)))
    });
    group.bench_function("template_no_virt", |b| {
        b.iter(|| black_box(matmul::template_no_virt::matmul_checksum(n)))
    });
    group.finish();
}

criterion_group!(benches, bench_native_diffusion, bench_native_matmul);
criterion_main!(benches);
