//! Wall-clock translation cost (the measured component of Table 3):
//! how long the WootinJ pipeline takes per mode on the two libraries.

use std::hint::black_box;

use bench::timing::Group;
use hpclib::{MatmulApp, MatmulBody, MatmulCalc, MatmulThread, StencilApp, StencilPlatform};
use jvm::Value;
use wootinj::{JitOptions, WootinJ};

fn main() {
    let stencil_table = hpclib::stencil_table(&[]).unwrap();
    let matmul_table = hpclib::matmul_table(&[]).unwrap();
    let mut group = Group::new("translate");
    group.sample_size(20);

    for (name, opts) in [
        ("wootinj", JitOptions::wootinj()),
        ("template", JitOptions::template()),
        ("cpp", JitOptions::cpp()),
    ] {
        group.bench(&format!("diffusion_gpu_mpi/{name}"), || {
            let mut env = WootinJ::new(&stencil_table).unwrap();
            let runner = StencilApp::compose(
                &mut env,
                StencilPlatform::GpuMpi,
                StencilApp::default_model(),
            )
            .unwrap();
            let args = [
                Value::Int(16),
                Value::Int(16),
                Value::Int(16),
                Value::Int(2),
            ];
            let code = env.jit(&runner, "invoke", &args, opts.clone());
            // The C++ baseline cannot translate GPU kernels (see §4);
            // measuring its failure path is still meaningful work.
            black_box(code.map(|c| c.translated.program.instr_count()).ok())
        });
        group.bench(&format!("matmul_fox/{name}"), || {
            let mut env = WootinJ::new(&matmul_table).unwrap();
            let app = MatmulApp::compose(
                &mut env,
                MatmulThread::Mpi,
                MatmulBody::Fox,
                MatmulCalc::Simple,
            )
            .unwrap();
            let code = env.jit(&app, "start", &[Value::Int(32)], opts.clone());
            black_box(code.map(|c| c.translated.program.instr_count()).ok())
        });
    }
}
