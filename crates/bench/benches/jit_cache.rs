//! The cache-hit fast path: a warm `jit` call is a key derivation plus a
//! hash lookup plus an `Arc` clone — no translator or NIR work. Compare
//! against the cold path (capacity 0, every call translates) on the same
//! specialization key.

use std::hint::black_box;

use bench::timing::Group;
use hpclib::{StencilApp, StencilPlatform};
use jvm::Value;
use wootinj::{JitOptions, WootinJ};

fn main() {
    let table = hpclib::stencil_table(&[]).unwrap();
    let args = [
        Value::Int(16),
        Value::Int(16),
        Value::Int(16),
        Value::Int(2),
    ];
    let mut group = Group::new("jit_cache");
    group.sample_size(50);

    // Warm path: one env whose cache already holds the specialization.
    let mut env = WootinJ::new(&table).unwrap();
    let runner = StencilApp::compose(
        &mut env,
        StencilPlatform::CpuMpi,
        StencilApp::default_model(),
    )
    .unwrap();
    env.jit(&runner, "invoke", &args, JitOptions::wootinj())
        .unwrap();
    group.bench("diffusion_mpi/hit", || {
        let code = env
            .jit(&runner, "invoke", &args, JitOptions::wootinj())
            .unwrap();
        black_box(code.translated.program.instr_count())
    });

    // Cold path: capacity 0 forces a full translation per call.
    let mut cold = WootinJ::new(&table).unwrap();
    cold.set_cache_capacity(0);
    let cold_runner = StencilApp::compose(
        &mut cold,
        StencilPlatform::CpuMpi,
        StencilApp::default_model(),
    )
    .unwrap();
    group.bench("diffusion_mpi/miss", || {
        let code = cold
            .jit(&cold_runner, "invoke", &args, JitOptions::wootinj())
            .unwrap();
        black_box(code.translated.program.instr_count())
    });

    let stats = env.cache_stats();
    println!(
        "warm-env counters: {} hits / {} misses",
        stats.hits, stats.misses
    );
}
