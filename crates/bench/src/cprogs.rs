//! The paper's *C* baseline programs: "the same algorithm ... without
//! considering code reuse or modularity of components" (§4).
//!
//! Each program is a single `@WootinJ` class with everything hand-inlined
//! — no solver components, no kernels shared between runners, no `Matrix`
//! abstraction. Translated in Full mode they lower to exactly the flat
//! code a C programmer would write, and they execute on the same engine
//! as every other series, so the comparison isolates what the paper
//! isolates: the residual cost of the library abstractions.

/// Hand-inlined diffusion programs (CPU, MPI, GPU, GPU+MPI).
pub const C_DIFFUSION: &str = r#"
@WootinJ final class CDiffusion {
  float cc; float cn;
  CDiffusion(float c0, float n0) { cc = c0; cn = n0; }

  float invoke(int nx, int ny, int nz, int steps) {
    int total = nx * ny * (nz + 2);
    float[] a = new float[total];
    float[] b = new float[total];
    for (int z = 1; z <= nz; z++) {
      for (int y = 0; y < ny; y++) {
        int rowBase = (z * ny + y) * nx;
        for (int x = 0; x < nx; x++) {
          int h = x * 31 + y * 17 + (z - 1) * 7;
          a[rowBase + x] = (h % 97) * 0.01f;
        }
      }
    }
    WJ.arraycopyF(a, 0, b, 0, total);
    float[] src = a;
    float[] dst = b;
    int plane = nx * ny;
    for (int t = 0; t < steps; t++) {
      for (int z = 1; z <= nz; z++) {
        for (int y = 1; y < ny - 1; y++) {
          int rowBase = (z * ny + y) * nx;
          for (int x = 1; x < nx - 1; x++) {
            int idx = rowBase + x;
            dst[idx] = cc * src[idx]
              + cn * (src[idx - 1] + src[idx + 1]
                    + src[idx - nx] + src[idx + nx]
                    + src[idx - plane] + src[idx + plane]);
          }
        }
      }
      float[] tmp = src;
      src = dst;
      dst = tmp;
    }
    float sum = 0f;
    for (int z = 1; z <= nz; z++) {
      for (int y = 0; y < ny; y++) {
        int rowBase = (z * ny + y) * nx;
        for (int x = 0; x < nx; x++) {
          sum += src[rowBase + x];
        }
      }
    }
    return sum;
  }
}

@WootinJ final class CDiffusionMPI {
  float cc; float cn;
  CDiffusionMPI(float c0, float n0) { cc = c0; cn = n0; }

  float invoke(int nx, int ny, int nz, int steps) {
    int rank = MPI.rank();
    int size = MPI.size();
    int nzl = nz / size;
    int plane = nx * ny;
    int total = plane * (nzl + 2);
    float[] a = new float[total];
    float[] b = new float[total];
    int zOff = rank * nzl;
    for (int z = 1; z <= nzl; z++) {
      for (int y = 0; y < ny; y++) {
        int rowBase = (z * ny + y) * nx;
        for (int x = 0; x < nx; x++) {
          int h = x * 31 + y * 17 + (zOff + z - 1) * 7;
          a[rowBase + x] = (h % 97) * 0.01f;
        }
      }
    }
    WJ.arraycopyF(a, 0, b, 0, total);
    float[] src = a;
    float[] dst = b;
    for (int t = 0; t < steps; t++) {
      if (rank > 0) { MPI.sendF(src, plane, plane, rank - 1, 0); }
      if (rank < size - 1) { MPI.sendF(src, nzl * plane, plane, rank + 1, 1); }
      if (rank < size - 1) { MPI.recvF(src, (nzl + 1) * plane, plane, rank + 1, 0); }
      if (rank > 0) { MPI.recvF(src, 0, plane, rank - 1, 1); }
      for (int z = 1; z <= nzl; z++) {
        for (int y = 1; y < ny - 1; y++) {
          int rowBase = (z * ny + y) * nx;
          for (int x = 1; x < nx - 1; x++) {
            int idx = rowBase + x;
            dst[idx] = cc * src[idx]
              + cn * (src[idx - 1] + src[idx + 1]
                    + src[idx - nx] + src[idx + nx]
                    + src[idx - plane] + src[idx + plane]);
          }
        }
      }
      WJ.arraycopyF(src, 0, dst, 0, plane);
      WJ.arraycopyF(src, (nzl + 1) * plane, dst, (nzl + 1) * plane, plane);
      float[] tmp = src;
      src = dst;
      dst = tmp;
    }
    float sum = 0f;
    for (int z = 1; z <= nzl; z++) {
      for (int y = 0; y < ny; y++) {
        int rowBase = (z * ny + y) * nx;
        for (int x = 0; x < nx; x++) {
          sum += src[rowBase + x];
        }
      }
    }
    return MPI.allreduceSumF(sum);
  }
}

@WootinJ final class CDiffusionGPU {
  float cc; float cn;
  CDiffusionGPU(float c0, float n0) { cc = c0; cn = n0; }

  float invoke(int nx, int ny, int nz, int steps) {
    int total = nx * ny * (nz + 2);
    float[] host = new float[total];
    for (int z = 1; z <= nz; z++) {
      for (int y = 0; y < ny; y++) {
        int rowBase = (z * ny + y) * nx;
        for (int x = 0; x < nx; x++) {
          int h = x * 31 + y * 17 + (z - 1) * 7;
          host[rowBase + x] = (h % 97) * 0.01f;
        }
      }
    }
    float[] dSrc = CUDA.copyToGPU(host);
    float[] dDst = CUDA.copyToGPU(host);
    int cells = nx * ny * nz;
    int threads = 64;
    int blocks = (cells + threads - 1) / threads;
    CudaConfig conf = new CudaConfig(new dim3(blocks, 1, 1), new dim3(threads, 1, 1));
    for (int t = 0; t < steps; t++) {
      stepGPU(conf, dSrc, dDst, nx, ny, nz);
      float[] tmp = dSrc;
      dSrc = dDst;
      dDst = tmp;
    }
    CUDA.copyFromGPU(host, dSrc);
    CUDA.free(dSrc);
    CUDA.free(dDst);
    float sum = 0f;
    for (int z = 1; z <= nz; z++) {
      for (int y = 0; y < ny; y++) {
        int rowBase = (z * ny + y) * nx;
        for (int x = 0; x < nx; x++) {
          sum += host[rowBase + x];
        }
      }
    }
    return sum;
  }

  @Global void stepGPU(CudaConfig conf, float[] src, float[] dst, int nx, int ny, int nz) {
    int gid = CUDA.blockIdxX() * CUDA.blockDimX() + CUDA.threadIdxX();
    int cells = nx * ny * nz;
    if (gid < cells) {
      int x = gid % nx;
      int rest = gid / nx;
      int y = rest % ny;
      int z = rest / ny + 1;
      if (x > 0 && x < nx - 1 && y > 0 && y < ny - 1) {
        int idx = (z * ny + y) * nx + x;
        int plane = nx * ny;
        dst[idx] = cc * src[idx]
          + cn * (src[idx - 1] + src[idx + 1]
                + src[idx - nx] + src[idx + nx]
                + src[idx - plane] + src[idx + plane]);
      }
    }
  }
}

@WootinJ final class CDiffusionGPUMPI {
  float cc; float cn;
  CDiffusionGPUMPI(float c0, float n0) { cc = c0; cn = n0; }

  float invoke(int nx, int ny, int nz, int steps) {
    int rank = MPI.rank();
    int size = MPI.size();
    int nzl = nz / size;
    int plane = nx * ny;
    int total = plane * (nzl + 2);
    float[] host = new float[total];
    int zOff = rank * nzl;
    for (int z = 1; z <= nzl; z++) {
      for (int y = 0; y < ny; y++) {
        int rowBase = (z * ny + y) * nx;
        for (int x = 0; x < nx; x++) {
          int h = x * 31 + y * 17 + (zOff + z - 1) * 7;
          host[rowBase + x] = (h % 97) * 0.01f;
        }
      }
    }
    float[] dSrc = CUDA.copyToGPU(host);
    float[] dDst = CUDA.copyToGPU(host);
    float[] lo = new float[plane];
    float[] hi = new float[plane];
    int cells = plane * nzl;
    int threads = 64;
    int blocks = (cells + threads - 1) / threads;
    CudaConfig conf = new CudaConfig(new dim3(blocks, 1, 1), new dim3(threads, 1, 1));
    for (int t = 0; t < steps; t++) {
      if (rank > 0) {
        CUDA.copyOutRange(lo, 0, dSrc, plane, plane);
        MPI.sendF(lo, 0, plane, rank - 1, 0);
      }
      if (rank < size - 1) {
        CUDA.copyOutRange(hi, 0, dSrc, nzl * plane, plane);
        MPI.sendF(hi, 0, plane, rank + 1, 1);
      }
      if (rank < size - 1) {
        MPI.recvF(hi, 0, plane, rank + 1, 0);
        CUDA.copyInRange(dSrc, (nzl + 1) * plane, hi, 0, plane);
        CUDA.copyInRange(dDst, (nzl + 1) * plane, hi, 0, plane);
      }
      if (rank > 0) {
        MPI.recvF(lo, 0, plane, rank - 1, 1);
        CUDA.copyInRange(dSrc, 0, lo, 0, plane);
        CUDA.copyInRange(dDst, 0, lo, 0, plane);
      }
      stepGPU(conf, dSrc, dDst, nx, ny, nzl);
      float[] tmp = dSrc;
      dSrc = dDst;
      dDst = tmp;
    }
    CUDA.copyFromGPU(host, dSrc);
    CUDA.free(dSrc);
    CUDA.free(dDst);
    float sum = 0f;
    for (int z = 1; z <= nzl; z++) {
      for (int y = 0; y < ny; y++) {
        int rowBase = (z * ny + y) * nx;
        for (int x = 0; x < nx; x++) {
          sum += host[rowBase + x];
        }
      }
    }
    return MPI.allreduceSumF(sum);
  }

  @Global void stepGPU(CudaConfig conf, float[] src, float[] dst, int nx, int ny, int nz) {
    int gid = CUDA.blockIdxX() * CUDA.blockDimX() + CUDA.threadIdxX();
    int cells = nx * ny * nz;
    if (gid < cells) {
      int x = gid % nx;
      int rest = gid / nx;
      int y = rest % ny;
      int z = rest / ny + 1;
      if (x > 0 && x < nx - 1 && y > 0 && y < ny - 1) {
        int idx = (z * ny + y) * nx + x;
        int plane = nx * ny;
        dst[idx] = cc * src[idx]
          + cn * (src[idx - 1] + src[idx + 1]
                + src[idx - nx] + src[idx + nx]
                + src[idx - plane] + src[idx + plane]);
      }
    }
  }
}
"#;

/// Hand-inlined matrix-multiplication programs (CPU, Fox/MPI, GPU).
pub const C_MATMUL: &str = r#"
@WootinJ final class CMatmul {
  CMatmul() { }
  float start(int n) {
    float[] a = new float[n * n];
    float[] b = new float[n * n];
    float[] c = new float[n * n];
    for (int r = 0; r < n; r++) {
      for (int cc = 0; cc < n; cc++) {
        int h0 = r * 13 + cc * 7;
        a[r * n + cc] = ((h0 % 19) - 9) * 0.125f;
        int h1 = r * 13 + cc * 7 + 101;
        b[r * n + cc] = ((h1 % 19) - 9) * 0.125f;
      }
    }
    for (int i = 0; i < n; i++) {
      int irow = i * n;
      for (int k = 0; k < n; k++) {
        float aik = a[irow + k];
        int krow = k * n;
        for (int j = 0; j < n; j++) {
          c[irow + j] += aik * b[krow + j];
        }
      }
    }
    float sum = 0f;
    for (int i = 0; i < n * n; i++) { sum += c[i]; }
    return sum;
  }
}

@WootinJ final class CMatmulFox {
  CMatmulFox() { }
  float start(int n) {
    int rank = MPI.rank();
    int size = MPI.size();
    int q = 0;
    while ((q + 1) * (q + 1) <= size) { q = q + 1; }
    int row = rank / q;
    int col = rank % q;
    int m = n / q;
    int mm = m * m;
    float[] a = new float[mm];
    float[] b = new float[mm];
    float[] c = new float[mm];
    float[] abuf = new float[mm];
    for (int r = 0; r < m; r++) {
      for (int cc = 0; cc < m; cc++) {
        int gr = row * m + r;
        int gc = col * m + cc;
        int h0 = gr * 13 + gc * 7;
        a[r * m + cc] = ((h0 % 19) - 9) * 0.125f;
        int h1 = gr * 13 + gc * 7 + 101;
        b[r * m + cc] = ((h1 % 19) - 9) * 0.125f;
      }
    }
    for (int k = 0; k < q; k++) {
      int rootCol = (row + k) % q;
      if (col == rootCol) {
        WJ.arraycopyF(a, 0, abuf, 0, mm);
        for (int j = 0; j < q; j++) {
          if (j != col) { MPI.sendF(abuf, 0, mm, row * q + j, 10 + k); }
        }
      } else {
        MPI.recvF(abuf, 0, mm, row * q + rootCol, 10 + k);
      }
      for (int i = 0; i < m; i++) {
        int irow = i * m;
        for (int kk = 0; kk < m; kk++) {
          float aik = abuf[irow + kk];
          int krow = kk * m;
          for (int j = 0; j < m; j++) {
            c[irow + j] += aik * b[krow + j];
          }
        }
      }
      int up = ((row + q - 1) % q) * q + col;
      int down = ((row + 1) % q) * q + col;
      MPI.sendF(b, 0, mm, up, 100 + k);
      MPI.recvF(b, 0, mm, down, 100 + k);
    }
    float local = 0f;
    for (int i = 0; i < mm; i++) { local += c[i]; }
    return MPI.allreduceSumF(local);
  }
}

@WootinJ final class CMatmulFoxGPU {
  CMatmulFoxGPU() { }
  float start(int n) {
    int rank = MPI.rank();
    int size = MPI.size();
    int q = 0;
    while ((q + 1) * (q + 1) <= size) { q = q + 1; }
    int row = rank / q;
    int col = rank % q;
    int m = n / q;
    int mm = m * m;
    float[] a = new float[mm];
    float[] b = new float[mm];
    float[] c = new float[mm];
    float[] abuf = new float[mm];
    for (int r = 0; r < m; r++) {
      for (int cc = 0; cc < m; cc++) {
        int gr = row * m + r;
        int gc = col * m + cc;
        int h0 = gr * 13 + gc * 7;
        a[r * m + cc] = ((h0 % 19) - 9) * 0.125f;
        int h1 = gr * 13 + gc * 7 + 101;
        b[r * m + cc] = ((h1 % 19) - 9) * 0.125f;
      }
    }
    float[] dA = CUDA.allocF32(mm);
    float[] dB = CUDA.allocF32(mm);
    float[] dC = CUDA.copyToGPU(c);
    int threads = 64;
    int blocks = (mm + threads - 1) / threads;
    CudaConfig conf = new CudaConfig(new dim3(blocks, 1, 1), new dim3(threads, 1, 1));
    for (int k = 0; k < q; k++) {
      int rootCol = (row + k) % q;
      if (col == rootCol) {
        WJ.arraycopyF(a, 0, abuf, 0, mm);
        for (int j = 0; j < q; j++) {
          if (j != col) { MPI.sendF(abuf, 0, mm, row * q + j, 10 + k); }
        }
      } else {
        MPI.recvF(abuf, 0, mm, row * q + rootCol, 10 + k);
      }
      CUDA.copyInRange(dA, 0, abuf, 0, mm);
      CUDA.copyInRange(dB, 0, b, 0, mm);
      mmAcc(conf, dA, dB, dC, m);
      int up = ((row + q - 1) % q) * q + col;
      int down = ((row + 1) % q) * q + col;
      MPI.sendF(b, 0, mm, up, 100 + k);
      MPI.recvF(b, 0, mm, down, 100 + k);
    }
    CUDA.copyFromGPU(c, dC);
    CUDA.free(dA);
    CUDA.free(dB);
    CUDA.free(dC);
    float local = 0f;
    for (int i = 0; i < mm; i++) { local += c[i]; }
    return MPI.allreduceSumF(local);
  }

  @Global void mmAcc(CudaConfig conf, float[] a, float[] b, float[] c, int m) {
    int gid = CUDA.blockIdxX() * CUDA.blockDimX() + CUDA.threadIdxX();
    if (gid < m * m) {
      int i = gid / m;
      int j = gid % m;
      float acc = c[gid];
      for (int k = 0; k < m; k++) {
        acc += a[i * m + k] * b[k * m + j];
      }
      c[gid] = acc;
    }
  }
}

@WootinJ final class CMatmulGPU {
  CMatmulGPU() { }
  float start(int n) {
    float[] a = new float[n * n];
    float[] b = new float[n * n];
    float[] c = new float[n * n];
    for (int r = 0; r < n; r++) {
      for (int cc = 0; cc < n; cc++) {
        int h0 = r * 13 + cc * 7;
        a[r * n + cc] = ((h0 % 19) - 9) * 0.125f;
        int h1 = r * 13 + cc * 7 + 101;
        b[r * n + cc] = ((h1 % 19) - 9) * 0.125f;
      }
    }
    float[] da = CUDA.copyToGPU(a);
    float[] db = CUDA.copyToGPU(b);
    float[] dc = CUDA.copyToGPU(c);
    int threads = 64;
    int blocks = (n * n + threads - 1) / threads;
    CudaConfig conf = new CudaConfig(new dim3(blocks, 1, 1), new dim3(threads, 1, 1));
    mm(conf, da, db, dc, n);
    CUDA.copyFromGPU(c, dc);
    CUDA.free(da);
    CUDA.free(db);
    CUDA.free(dc);
    float sum = 0f;
    for (int i = 0; i < n * n; i++) { sum += c[i]; }
    return sum;
  }

  @Global void mm(CudaConfig conf, float[] a, float[] b, float[] c, int n) {
    int gid = CUDA.blockIdxX() * CUDA.blockDimX() + CUDA.threadIdxX();
    if (gid < n * n) {
      int i = gid / n;
      int j = gid % n;
      float acc = 0f;
      for (int k = 0; k < n; k++) {
        acc += a[i * n + k] * b[k * n + j];
      }
      c[gid] = acc;
    }
  }
}
"#;
