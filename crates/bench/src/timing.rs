//! Minimal wall-clock benchmark harness — a criterion stand-in that
//! builds on network-isolated hosts with no external crates.
//!
//! Each labeled closure is warmed up, then timed for a fixed number of
//! samples; min / median / mean wall time per iteration are printed as an
//! aligned table. Use `std::hint::black_box` in the closure to keep the
//! optimizer honest, exactly as with criterion.

use std::time::{Duration, Instant};

/// A named group of benchmark functions, printed as one table.
pub struct Group {
    name: String,
    samples: usize,
    warmup: usize,
}

impl Group {
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        println!(
            "{:<32}{:>14}{:>14}{:>14}",
            "benchmark", "min", "median", "mean"
        );
        Group {
            name,
            samples: 30,
            warmup: 3,
        }
    }

    /// Number of timed samples per benchmark (default 30).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Time `f`, printing one table row. Returns the median sample.
    pub fn bench<R>(&mut self, label: &str, mut f: impl FnMut() -> R) -> Duration {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(f());
                start.elapsed()
            })
            .collect();
        times.sort();
        let min = times[0];
        let median = times[times.len() / 2];
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "{:<32}{:>14}{:>14}{:>14}",
            format!("{}/{label}", self.name),
            fmt_dur(min),
            fmt_dur(median),
            fmt_dur(mean)
        );
        median
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_a_plausible_median() {
        let mut g = Group::new("t");
        g.sample_size(5);
        let d = g.bench("noop", || 1 + 1);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert!(fmt_dur(Duration::from_nanos(5)).ends_with("ns"));
        assert!(fmt_dur(Duration::from_micros(50)).ends_with("µs"));
        assert!(fmt_dur(Duration::from_millis(50)).ends_with("ms"));
        assert!(fmt_dur(Duration::from_secs(50)).ends_with("s"));
    }
}
