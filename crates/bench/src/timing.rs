//! Minimal wall-clock benchmark harness — a criterion stand-in that
//! builds on network-isolated hosts with no external crates.
//!
//! Each labeled closure is warmed up, then timed for a fixed number of
//! samples; min / median / mean wall time per iteration are printed as an
//! aligned table. Use `std::hint::black_box` in the closure to keep the
//! optimizer honest, exactly as with criterion.

use std::time::{Duration, Instant};

/// A named group of benchmark functions, printed as one table.
pub struct Group {
    name: String,
    samples: usize,
    warmup: usize,
}

impl Group {
    pub fn new(name: impl Into<String>) -> Self {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        println!(
            "{:<32}{:>14}{:>14}{:>14}",
            "benchmark", "min", "median", "mean"
        );
        Group {
            name,
            samples: 30,
            warmup: 3,
        }
    }

    /// Number of timed samples per benchmark (default 30).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Number of warmup (untimed) iterations per benchmark (default 3).
    pub fn warmup(&mut self, n: usize) -> &mut Self {
        self.warmup = n;
        self
    }

    /// Time `f`, printing one table row. Returns the median sample.
    pub fn bench<R>(&mut self, label: &str, f: impl FnMut() -> R) -> Duration {
        self.bench_stats(label, f).median
    }

    /// Time `f` with warmup + median-of-N, printing one table row and
    /// returning the full min/median/max spread. Wall-clock assertions
    /// (`repro wallclock`) compare *medians* so one descheduled
    /// iteration on a loaded machine cannot flake the gate, and the
    /// JSON series carry the spread so noise stays visible.
    pub fn bench_stats<R>(&mut self, label: &str, mut f: impl FnMut() -> R) -> Stats {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut times: Vec<Duration> = (0..self.samples)
            .map(|_| {
                let start = Instant::now();
                std::hint::black_box(f());
                start.elapsed()
            })
            .collect();
        times.sort();
        let stats = Stats {
            min: times[0],
            median: times[times.len() / 2],
            max: times[times.len() - 1],
        };
        let mean = times.iter().sum::<Duration>() / times.len() as u32;
        println!(
            "{:<32}{:>14}{:>14}{:>14}",
            format!("{}/{label}", self.name),
            fmt_dur(stats.min),
            fmt_dur(stats.median),
            fmt_dur(mean)
        );
        stats
    }
}

/// The spread of one benchmark's timed samples.
#[derive(Debug, Clone, Copy)]
pub struct Stats {
    pub min: Duration,
    pub median: Duration,
    pub max: Duration,
}

impl Stats {
    /// Median milliseconds — the number the JSON series plot.
    pub fn median_ms(&self) -> f64 {
        self.median.as_secs_f64() * 1e3
    }

    pub fn min_ms(&self) -> f64 {
        self.min.as_secs_f64() * 1e3
    }

    pub fn max_ms(&self) -> f64 {
        self.max.as_secs_f64() * 1e3
    }
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_a_plausible_median() {
        let mut g = Group::new("t");
        g.sample_size(5);
        let d = g.bench("noop", || 1 + 1);
        assert!(d < Duration::from_secs(1));
    }

    #[test]
    fn bench_stats_orders_the_spread() {
        let mut g = Group::new("t2");
        g.sample_size(7).warmup(1);
        let s = g.bench_stats("spin", || std::hint::black_box((0..1000).sum::<u64>()));
        assert!(s.min <= s.median && s.median <= s.max);
        assert!(s.min_ms() <= s.median_ms() && s.median_ms() <= s.max_ms());
    }

    #[test]
    fn duration_formatting_picks_sane_units() {
        assert!(fmt_dur(Duration::from_nanos(5)).ends_with("ns"));
        assert!(fmt_dur(Duration::from_micros(50)).ends_with("µs"));
        assert!(fmt_dur(Duration::from_millis(50)).ends_with("ms"));
        assert!(fmt_dur(Duration::from_secs(50)).ends_with("s"));
    }
}
