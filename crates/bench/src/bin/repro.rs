//! The reproduction driver: regenerate any table or figure of the paper.
//!
//! ```text
//! repro <id>             run one experiment (fig3, fig4, ..., tab3, fault-matrix)
//! repro <id> --quick     smoke-test-sized variant (where supported)
//! repro all              run everything in paper order
//! repro list             list experiment ids
//! ```
//!
//! Output: an aligned table on stdout plus `results/<id>.json`.

use std::path::Path;

fn main() {
    // The `dist` experiment spawns one OS process per rank by
    // re-executing this binary: if the spawn environment is set, this
    // invocation *is* a rank worker — serve and exit, never parse args.
    if dist::worker::run_if_spawned() {
        return;
    }
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let quick = if let Some(i) = args.iter().position(|a| a == "--quick") {
        args.remove(i);
        true
    } else {
        false
    };
    let dir = Path::new("results");
    match args.first().map(|s| s.as_str()) {
        None | Some("list") => {
            println!("experiments:");
            for id in bench::all_ids() {
                println!("  {id}");
            }
            println!("usage: repro <id> [--quick] | all | list");
        }
        Some("all") => {
            for id in bench::all_ids() {
                run_one(id, quick, dir);
            }
        }
        Some(id) => run_one(id, quick, dir),
    }
}

fn run_one(id: &str, quick: bool, dir: &Path) {
    let start = std::time::Instant::now();
    match bench::run_experiment_with(id, quick) {
        Some(fig) => {
            // Save before printing: stdout may be a pipe that closes
            // early (e.g. `repro fig4 | head`), and the JSON artifact
            // must survive that.
            if let Err(e) = fig.save(dir) {
                eprintln!("warning: could not save {id}: {e}");
            }
            print!("{}", fig.render());
            println!("    ({}: completed in {:?})\n", id, start.elapsed());
        }
        None => {
            eprintln!("unknown experiment `{id}`; try `repro list`");
            std::process::exit(1);
        }
    }
}
