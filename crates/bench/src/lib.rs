//! # bench — the reproduction harness for every table and figure
//!
//! * [`experiments`] — one function per paper table/figure (and per
//!   DESIGN.md ablation), returning a [`series::Figure`];
//! * [`cprogs`] — the hand-inlined *C* baseline programs;
//! * the `repro` binary — `repro fig4`, `repro all`, ... prints the series
//!   and writes `results/<id>.json`;
//! * [`timing`] — a minimal wall-clock harness used by `benches/` (the
//!   serial figures, the translator, and the JIT-cache fast path).

#![forbid(unsafe_code)]

pub mod cprogs;
pub mod experiments;
pub mod series;
pub mod timing;

pub use experiments::{all_ids, run_experiment, run_experiment_with};
pub use series::{Figure, Point, Series};
