//! # bench — the reproduction harness for every table and figure
//!
//! * [`experiments`] — one function per paper table/figure (and per
//!   DESIGN.md ablation), returning a [`series::Figure`];
//! * [`cprogs`] — the hand-inlined *C* baseline programs;
//! * the `repro` binary — `repro fig4`, `repro all`, ... prints the series
//!   and writes `results/<id>.json`;
//! * `benches/` — Criterion wall-clock benches for the serial figures and
//!   the translator (Table 3's wall-time component).

#![forbid(unsafe_code)]

pub mod cprogs;
pub mod experiments;
pub mod series;

pub use experiments::{all_ids, run_experiment};
pub use series::{Figure, Point, Series};
