//! One function per table/figure of the paper's evaluation (§4).
//!
//! Workloads are scaled down from TSUBAME 2.0 size to laptop size; every
//! figure records its scaling in `notes`. Scaling figures are reported in
//! deterministic virtual cycles (see `exec`/`mpi-sim`); the serial
//! figures additionally get wall-clock Criterion benches in `benches/`.
//!
//! Per the paper, the scaling figures (4–12) *include* WootinJ's runtime
//! compilation in the WootinJ series (converted to cycles at the paper's
//! 2.9 GHz), while Figures 13–16 repeat the strong-scaling figures with
//! compilation excluded.

use std::path::PathBuf;
use std::sync::OnceLock;
use std::time::Duration;

use hpclib::{MatmulApp, MatmulBody, MatmulCalc, MatmulThread, StencilApp, StencilPlatform};
use jvm::Value;
use nir::OptConfig;
use wootinj::{GpuConfig, JitOptions, MpiCostModel, Val, WootinJ};

use crate::cprogs::{C_DIFFUSION, C_MATMUL};
use crate::series::{Figure, Series};

/// The paper's Xeon clock: converts measured compile seconds to cycles.
pub const CPU_HZ: f64 = 2.9e9;

/// Deterministic model of the external compiler's cost (the icc/nvcc
/// invocation in the paper's Table 3): a fixed process-startup term plus a
/// per-generated-instruction term. Used for the "incl. compile" series so
/// the scaling figures stay reproducible; the *measured* translation wall
/// time is reported separately in Table 3.
pub const COMPILE_FIXED_CYCLES: f64 = 2.0e6;
pub const COMPILE_CYCLES_PER_INSTR: f64 = 3.0e3;

/// Modeled cost of one interpreter step in cycles (a bytecode-interpreter
/// dispatch on a 2010s x86 — documented model parameter for the *Java*
/// series, which the interpreter reports in steps).
pub const JAVA_STEP_CYCLES: u64 = 28;

/// The evaluation series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    Java,
    Cpp,
    Template,
    TemplateNoVirt,
    WootinJ,
    C,
}

impl Kind {
    pub fn name(self) -> &'static str {
        match self {
            Kind::Java => "Java",
            Kind::Cpp => "C++",
            Kind::Template => "Template",
            Kind::TemplateNoVirt => "Template w/o virt.",
            Kind::WootinJ => "WootinJ",
            Kind::C => "C",
        }
    }

    fn jit_options(self) -> JitOptions {
        match self {
            Kind::Cpp => JitOptions::cpp(),
            Kind::Template => JitOptions::template(),
            Kind::TemplateNoVirt => JitOptions::template_no_virt(),
            // The hand-inlined C programs go through the same full
            // pipeline; there is nothing left to devirtualize or inline.
            Kind::WootinJ | Kind::C => JitOptions::wootinj(),
            Kind::Java => unreachable!("Java runs on the interpreter"),
        }
    }
}

/// One measured run.
#[derive(Debug, Clone, Copy)]
pub struct Outcome {
    pub vtime: u64,
    pub compile: Duration,
    pub result: f32,
    /// Generated NIR instructions (drives the modeled compile cost).
    pub instrs: usize,
    /// True when the run paid zero translator work: the sealed artifact
    /// came out of the shared per-run store (the interpreter series is
    /// trivially warm — it never compiles anything).
    pub warm: bool,
}

impl Outcome {
    /// Virtual time plus the modeled runtime-compilation cost — applied to
    /// the WootinJ series only: the baselines are compiled ahead of time.
    pub fn with_compile(&self, kind: Kind) -> f64 {
        match kind {
            Kind::WootinJ => {
                self.vtime as f64
                    + COMPILE_FIXED_CYCLES
                    + COMPILE_CYCLES_PER_INSTR * self.instrs as f64
            }
            _ => self.vtime as f64,
        }
    }
}

fn f32_of(v: Option<Val>) -> f32 {
    match v {
        Some(Val::F32(x)) => x,
        other => panic!("expected f32 result, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Runners
// ---------------------------------------------------------------------

/// One on-disk artifact directory shared by every sweep point of a
/// `repro` process: repeated sweep points — and the warm columns — reuse
/// sealed artifacts instead of re-translating at every (kind, x). Keyed
/// by pid so concurrent `repro` invocations never contend; wiped on
/// first use so a recycled pid cannot inherit stale artifacts.
fn sweep_store() -> &'static PathBuf {
    static DIR: OnceLock<PathBuf> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = std::env::temp_dir().join(format!("wootinj-repro-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    })
}

/// Jit options for one sweep point: the series preset plus the shared
/// per-run disk store.
fn sweep_opts(kind: Kind) -> JitOptions {
    kind.jit_options().with_disk_cache(sweep_store())
}

/// The warm column of a figure: re-run sweep points in a fresh env per
/// point (a new process, in a real deployment) against the per-run
/// artifact store. A warm process pays no translation — asserted here —
/// so the column reports pure virtual time.
fn warm_column(
    name: &str,
    xs: impl IntoIterator<Item = f64>,
    mut run: impl FnMut(f64) -> Outcome,
) -> Series {
    let mut s = Series::new(name);
    for x in xs {
        let out = run(x);
        assert!(
            out.warm,
            "warm column at x={x}: artifact missing from the sweep store"
        );
        s.push(x, out.vtime as f64);
    }
    s
}

/// Note attached to every figure that carries a warm column.
const WARM_NOTE: &str =
    "warm = same sweep re-run from the shared per-run artifact store (zero translation)";

/// Run the diffusion workload in one series/platform configuration.
pub fn run_stencil(
    kind: Kind,
    platform: StencilPlatform,
    ranks: u32,
    dims: (i32, i32, i32),
    steps: i32,
    boxed: bool,
) -> Outcome {
    let table = hpclib::stencil_table(&[("c_diffusion.jl", C_DIFFUSION)]).expect("compile");
    let mut env = WootinJ::new(&table).expect("env");
    let args = [
        Value::Int(dims.0),
        Value::Int(dims.1),
        Value::Int(dims.2),
        Value::Int(steps),
    ];

    if kind == Kind::Java {
        assert_eq!(
            platform,
            StencilPlatform::Cpu,
            "the Java series is CPU-only"
        );
        let runner = if boxed {
            StencilApp::compose_boxed(&mut env, 0.4, 0.1).unwrap()
        } else {
            StencilApp::compose(&mut env, platform, StencilApp::default_model()).unwrap()
        };
        let r = env.run_interpreted(&runner, "invoke", &args).unwrap();
        let result = match r.result {
            Value::Float(v) => v,
            other => panic!("unexpected {other}"),
        };
        return Outcome {
            vtime: r.steps * JAVA_STEP_CYCLES,
            compile: Duration::ZERO,
            result,
            instrs: 0,
            warm: true,
        };
    }

    let runner = if kind == Kind::C {
        let class = match platform {
            StencilPlatform::Cpu => "CDiffusion",
            StencilPlatform::CpuMpi => "CDiffusionMPI",
            StencilPlatform::Gpu => "CDiffusionGPU",
            StencilPlatform::GpuMpi => "CDiffusionGPUMPI",
        };
        env.new_instance(class, &[Value::Float(0.4), Value::Float(0.1)])
            .unwrap()
    } else if boxed {
        assert_eq!(
            platform,
            StencilPlatform::Cpu,
            "the boxed runner is CPU-only"
        );
        StencilApp::compose_boxed(&mut env, 0.4, 0.1).unwrap()
    } else {
        StencilApp::compose(&mut env, platform, StencilApp::default_model()).unwrap()
    };

    let mut code = env.jit(&runner, "invoke", &args, sweep_opts(kind)).unwrap();
    if platform.uses_mpi() {
        code.set_mpi(ranks, MpiCostModel::default());
    }
    if platform.uses_gpu() {
        code.set_gpu(GpuConfig::default());
    }
    let report = code.invoke(&env).unwrap();
    Outcome {
        vtime: report.vtime_cycles,
        compile: code.compile_time,
        result: f32_of(report.result),
        instrs: code.translated.program.instr_count(),
        warm: env.cache_stats().translations == 0,
    }
}

/// Matmul execution target.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MatTarget {
    Cpu,
    Fox,
    Gpu,
    FoxGpu,
}

/// Run the matmul workload in one series/target configuration.
pub fn run_matmul(kind: Kind, target: MatTarget, ranks: u32, n: i32) -> Outcome {
    let table = hpclib::matmul_table(&[("c_matmul.jl", C_MATMUL)]).expect("compile");
    let mut env = WootinJ::new(&table).expect("env");
    let args = [Value::Int(n)];

    if kind == Kind::Java {
        assert_eq!(target, MatTarget::Cpu, "the Java series is CPU-only");
        let app = MatmulApp::compose(
            &mut env,
            MatmulThread::CpuLoop,
            MatmulBody::Simple,
            MatmulCalc::Simple,
        )
        .unwrap();
        let r = env.run_interpreted(&app, "start", &args).unwrap();
        let result = match r.result {
            Value::Float(v) => v,
            other => panic!("unexpected {other}"),
        };
        return Outcome {
            vtime: r.steps * JAVA_STEP_CYCLES,
            compile: Duration::ZERO,
            result,
            instrs: 0,
            warm: true,
        };
    }

    let app = if kind == Kind::C {
        let class = match target {
            MatTarget::Cpu => "CMatmul",
            MatTarget::Fox => "CMatmulFox",
            MatTarget::Gpu => "CMatmulGPU",
            MatTarget::FoxGpu => "CMatmulFoxGPU",
        };
        env.new_instance(class, &[]).unwrap()
    } else {
        let (thread, body) = match target {
            MatTarget::Cpu => (MatmulThread::CpuLoop, MatmulBody::Simple),
            MatTarget::Fox => (MatmulThread::Mpi, MatmulBody::Fox),
            MatTarget::Gpu => (MatmulThread::Gpu, MatmulBody::GpuNaive),
            MatTarget::FoxGpu => (MatmulThread::Mpi, MatmulBody::FoxGpu),
        };
        MatmulApp::compose(&mut env, thread, body, MatmulCalc::Simple).unwrap()
    };

    let mut code = env.jit(&app, "start", &args, sweep_opts(kind)).unwrap();
    if matches!(target, MatTarget::Fox | MatTarget::FoxGpu) {
        code.set_mpi(ranks, MpiCostModel::default());
    }
    if matches!(target, MatTarget::Gpu | MatTarget::FoxGpu) {
        code.set_gpu(GpuConfig::default());
    }
    let report = code.invoke(&env).unwrap();
    Outcome {
        vtime: report.vtime_cycles,
        compile: code.compile_time,
        result: f32_of(report.result),
        instrs: code.translated.program.instr_count(),
        warm: env.cache_stats().translations == 0,
    }
}

// ---------------------------------------------------------------------
// Serial comparison figures (3, 17, 18)
// ---------------------------------------------------------------------

/// Figure 3: 3-D diffusion, single thread — Java vs C++ vs C. The boxed
/// (ScalarFloat) library API, as in the paper's Listing 1.
pub fn fig3() -> Figure {
    serial_diffusion(
        "fig3",
        "3D diffusion, 1 thread (Java / C++ / C)",
        &[Kind::Java, Kind::Cpp, Kind::C],
    )
}

/// Figure 17: Figure 3 extended with Template, Template w/o virt., WootinJ.
pub fn fig17() -> Figure {
    serial_diffusion(
        "fig17",
        "3D diffusion, 1 thread (all series)",
        &[
            Kind::Java,
            Kind::Cpp,
            Kind::Template,
            Kind::TemplateNoVirt,
            Kind::WootinJ,
            Kind::C,
        ],
    )
}

fn serial_diffusion(id: &str, title: &str, kinds: &[Kind]) -> Figure {
    let (dims, steps) = ((16, 16, 12), 3);
    let mut fig = Figure::new(id, title, "series", "virtual cycles");
    fig.note("paper: 128x128x128 on a 2.9 GHz Xeon; here 16x16x12, 3 steps on the NIR engine");
    fig.note(
        "boxed ScalarFloat solver API (paper Listing 1); the C program is hand-inlined and unboxed",
    );
    fig.note(format!(
        "Java series = interpreter steps x {JAVA_STEP_CYCLES} cycles (model constant)"
    ));
    let mut s = Series::new("cycles");
    for (i, &k) in kinds.iter().enumerate() {
        let out = run_stencil(k, StencilPlatform::Cpu, 1, dims, steps, true);
        s.push(i as f64, out.vtime as f64);
        fig.note(format!("x={i}: {}", k.name()));
    }
    fig.series.push(s);
    fig.note(WARM_NOTE);
    fig.series.push(warm_column(
        "warm",
        (0..kinds.len()).map(|i| i as f64),
        |x| {
            run_stencil(
                kinds[x as usize],
                StencilPlatform::Cpu,
                1,
                dims,
                steps,
                true,
            )
        },
    ));
    fig
}

/// Figure 18: matrix multiplication, single thread, all series.
pub fn fig18() -> Figure {
    let n = 24;
    let kinds = [
        Kind::Java,
        Kind::Cpp,
        Kind::Template,
        Kind::TemplateNoVirt,
        Kind::WootinJ,
        Kind::C,
    ];
    let mut fig = Figure::new(
        "fig18",
        "matrix multiplication, 1 thread (all series)",
        "series",
        "virtual cycles",
    );
    fig.note("paper: 1024x1024x1024; here 24x24 through the Matrix/Calculator components");
    fig.note(format!(
        "Java series = interpreter steps x {JAVA_STEP_CYCLES} cycles (model constant)"
    ));
    let mut s = Series::new("cycles");
    for (i, &k) in kinds.iter().enumerate() {
        let out = run_matmul(k, MatTarget::Cpu, 1, n);
        s.push(i as f64, out.vtime as f64);
        fig.note(format!("x={i}: {}", k.name()));
    }
    fig.series.push(s);
    fig.note(WARM_NOTE);
    fig.series.push(warm_column(
        "warm",
        (0..kinds.len()).map(|i| i as f64),
        |x| run_matmul(kinds[x as usize], MatTarget::Cpu, 1, n),
    ));
    fig
}

// ---------------------------------------------------------------------
// Diffusion scaling figures (4, 5, 6, 7; 13, 14)
// ---------------------------------------------------------------------

/// Figure 4: diffusion weak scaling over MPI (CPU only).
pub fn fig4() -> Figure {
    let per_rank = (16, 16, 8);
    let steps = 4;
    let ranks = [1u32, 2, 4, 8, 16, 32];
    let kinds = [
        Kind::C,
        Kind::Cpp,
        Kind::Template,
        Kind::TemplateNoVirt,
        Kind::WootinJ,
    ];
    let mut fig = Figure::new(
        "fig4",
        "diffusion weak scaling, MPI CPU",
        "ranks",
        "virtual cycles (ideal: flat)",
    );
    fig.note("paper: 128^3 per node, 1..128 nodes; here 16x16x8 per rank, 1..32 ranks");
    fig.note("WootinJ series includes the modeled runtime-compilation cost (see tab3)");
    for kind in kinds {
        let mut s = Series::new(kind.name());
        for &r in &ranks {
            let dims = (per_rank.0, per_rank.1, per_rank.2 * r as i32);
            let out = run_stencil(kind, StencilPlatform::CpuMpi, r, dims, steps, false);
            s.push(r as f64, out.with_compile(kind));
        }
        fig.series.push(s);
    }
    fig.note(WARM_NOTE);
    fig.series.push(warm_column(
        "WootinJ (warm)",
        ranks.iter().map(|&r| r as f64),
        |x| {
            let r = x as u32;
            let dims = (per_rank.0, per_rank.1, per_rank.2 * r as i32);
            run_stencil(
                Kind::WootinJ,
                StencilPlatform::CpuMpi,
                r,
                dims,
                steps,
                false,
            )
        },
    ));
    fig
}

/// Figure 5: diffusion strong scaling over MPI (CPU), C vs WootinJ,
/// including compilation time.
pub fn fig5() -> Figure {
    strong_diffusion_mpi("fig5", true)
}

/// Figure 13: Figure 5 with compilation time excluded.
pub fn fig13() -> Figure {
    strong_diffusion_mpi("fig13", false)
}

fn strong_diffusion_mpi(id: &str, include_compile: bool) -> Figure {
    let dims = (16, 16, 64);
    let steps = 4;
    let ranks = [1u32, 2, 4, 8, 16];
    let mut fig = Figure::new(
        id,
        if include_compile {
            "diffusion strong scaling, MPI CPU (incl. compile)"
        } else {
            "diffusion strong scaling, MPI CPU (excl. compile)"
        },
        "ranks",
        "virtual cycles",
    );
    fig.note("paper: 128x128x1024 total; here 16x16x64 total, 4 steps");
    for kind in [Kind::C, Kind::WootinJ] {
        let mut s = Series::new(kind.name());
        for &r in &ranks {
            let out = run_stencil(kind, StencilPlatform::CpuMpi, r, dims, steps, false);
            let y = if include_compile {
                out.with_compile(kind)
            } else {
                out.vtime as f64
            };
            s.push(r as f64, y);
        }
        fig.series.push(s);
    }
    fig.note(WARM_NOTE);
    fig.series.push(warm_column(
        "WootinJ (warm)",
        ranks.iter().map(|&r| r as f64),
        |x| {
            run_stencil(
                Kind::WootinJ,
                StencilPlatform::CpuMpi,
                x as u32,
                dims,
                steps,
                false,
            )
        },
    ));
    fig
}

/// Figure 6: diffusion weak scaling on GPUs (one per rank).
pub fn fig6() -> Figure {
    let per_rank = (16, 16, 8);
    let steps = 4;
    let ranks = [1u32, 2, 4, 8];
    let kinds = [Kind::C, Kind::Template, Kind::TemplateNoVirt, Kind::WootinJ];
    let mut fig = Figure::new(
        "fig6",
        "diffusion weak scaling, GPU + MPI",
        "ranks",
        "virtual cycles",
    );
    fig.note("paper: 384^3 per GPU, using the whole device memory; here 16x16x8 per rank");
    fig.note("no C++ series: the paper itself avoided virtual calls in CUDA kernels (§4)");
    for kind in kinds {
        let mut s = Series::new(kind.name());
        for &r in &ranks {
            let dims = (per_rank.0, per_rank.1, per_rank.2 * r as i32);
            let out = run_stencil(kind, StencilPlatform::GpuMpi, r, dims, steps, false);
            s.push(r as f64, out.with_compile(kind));
        }
        fig.series.push(s);
    }
    fig.note(WARM_NOTE);
    fig.series.push(warm_column(
        "WootinJ (warm)",
        ranks.iter().map(|&r| r as f64),
        |x| {
            let r = x as u32;
            let dims = (per_rank.0, per_rank.1, per_rank.2 * r as i32);
            run_stencil(
                Kind::WootinJ,
                StencilPlatform::GpuMpi,
                r,
                dims,
                steps,
                false,
            )
        },
    ));
    fig
}

/// Figure 7: diffusion strong scaling on GPUs, incl. compile.
pub fn fig7() -> Figure {
    strong_diffusion_gpu("fig7", true)
}

/// Figure 14: Figure 7 with compilation excluded.
pub fn fig14() -> Figure {
    strong_diffusion_gpu("fig14", false)
}

fn strong_diffusion_gpu(id: &str, include_compile: bool) -> Figure {
    let dims = (16, 16, 32);
    let steps = 4;
    let ranks = [1u32, 2, 4, 8];
    let mut fig = Figure::new(
        id,
        if include_compile {
            "diffusion strong scaling, GPU + MPI (incl. compile)"
        } else {
            "diffusion strong scaling, GPU + MPI (excl. compile)"
        },
        "ranks",
        "virtual cycles",
    );
    fig.note("paper: 384x384x1536 total; here 16x16x32 total");
    for kind in [Kind::C, Kind::WootinJ] {
        let mut s = Series::new(kind.name());
        for &r in &ranks {
            let out = run_stencil(kind, StencilPlatform::GpuMpi, r, dims, steps, false);
            let y = if include_compile {
                out.with_compile(kind)
            } else {
                out.vtime as f64
            };
            s.push(r as f64, y);
        }
        fig.series.push(s);
    }
    fig.note(WARM_NOTE);
    fig.series.push(warm_column(
        "WootinJ (warm)",
        ranks.iter().map(|&r| r as f64),
        |x| {
            run_stencil(
                Kind::WootinJ,
                StencilPlatform::GpuMpi,
                x as u32,
                dims,
                steps,
                false,
            )
        },
    ));
    fig
}

// ---------------------------------------------------------------------
// Matmul scaling figures (9, 10, 11, 12; 15, 16)
// ---------------------------------------------------------------------

/// Figure 9: matmul weak scaling over MPI (Fox algorithm); the per-rank
/// block is fixed at 16x16, so n = 16·sqrt(p).
pub fn fig9() -> Figure {
    let m = 16;
    let ranks = [1u32, 4, 9, 16];
    let kinds = [
        Kind::C,
        Kind::Cpp,
        Kind::Template,
        Kind::TemplateNoVirt,
        Kind::WootinJ,
    ];
    let mut fig = Figure::new(
        "fig9",
        "matmul weak scaling, MPI CPU (Fox)",
        "ranks",
        "virtual cycles",
    );
    fig.note("paper: 2048^3 per node; here a fixed 16x16 block per rank (n = 16*sqrt(p))");
    fig.note("Fox per-rank work grows with sqrt(p); the ideal line is t1*sqrt(p)");
    for kind in kinds {
        let mut s = Series::new(kind.name());
        for &r in &ranks {
            let q = (r as f64).sqrt() as i32;
            let out = run_matmul(kind, MatTarget::Fox, r, m * q);
            s.push(r as f64, out.with_compile(kind));
        }
        fig.series.push(s);
    }
    fig.note(WARM_NOTE);
    fig.series.push(warm_column(
        "WootinJ (warm)",
        ranks.iter().map(|&r| r as f64),
        |x| {
            let q = x.sqrt() as i32;
            run_matmul(Kind::WootinJ, MatTarget::Fox, x as u32, m * q)
        },
    ));
    fig
}

/// Figure 10: matmul strong scaling over MPI, C vs WootinJ, incl. compile.
pub fn fig10() -> Figure {
    strong_matmul("fig10", MatTarget::Fox, true)
}

/// Figure 15: Figure 10 with compilation excluded.
pub fn fig15() -> Figure {
    strong_matmul("fig15", MatTarget::Fox, false)
}

/// Figure 11: matmul weak scaling on GPUs (Fox schedule, device multiply).
pub fn fig11() -> Figure {
    let m = 16;
    let ranks = [1u32, 4, 9];
    let kinds = [Kind::C, Kind::Template, Kind::TemplateNoVirt, Kind::WootinJ];
    let mut fig = Figure::new(
        "fig11",
        "matmul weak scaling, GPU + MPI (Fox)",
        "ranks",
        "virtual cycles",
    );
    fig.note("paper: 14592^3 per GPU (whole device memory); here a fixed 16x16 block per rank");
    for kind in kinds {
        let mut s = Series::new(kind.name());
        for &r in &ranks {
            let q = (r as f64).sqrt() as i32;
            let out = run_matmul(kind, MatTarget::FoxGpu, r, m * q);
            s.push(r as f64, out.with_compile(kind));
        }
        fig.series.push(s);
    }
    fig.note(WARM_NOTE);
    fig.series.push(warm_column(
        "WootinJ (warm)",
        ranks.iter().map(|&r| r as f64),
        |x| {
            let q = x.sqrt() as i32;
            run_matmul(Kind::WootinJ, MatTarget::FoxGpu, x as u32, m * q)
        },
    ));
    fig
}

/// Figure 12: matmul strong scaling on GPUs, incl. compile.
pub fn fig12() -> Figure {
    strong_matmul("fig12", MatTarget::FoxGpu, true)
}

/// Figure 16: Figure 12 with compilation excluded.
pub fn fig16() -> Figure {
    strong_matmul("fig16", MatTarget::FoxGpu, false)
}

fn strong_matmul(id: &str, target: MatTarget, include_compile: bool) -> Figure {
    let n = 48;
    let ranks = [1u32, 4, 9, 16];
    let what = match target {
        MatTarget::Fox => "MPI CPU",
        MatTarget::FoxGpu => "GPU + MPI",
        _ => unreachable!(),
    };
    let mut fig = Figure::new(
        id,
        format!(
            "matmul strong scaling, {what} ({})",
            if include_compile {
                "incl. compile"
            } else {
                "excl. compile"
            }
        ),
        "ranks",
        "virtual cycles",
    );
    fig.note("paper: 2048x2048x(2048*8) CPU / 14592^3 GPU; here n = 48");
    for kind in [Kind::C, Kind::WootinJ] {
        let mut s = Series::new(kind.name());
        for &r in &ranks {
            let out = run_matmul(kind, target, r, n);
            let y = if include_compile {
                out.with_compile(kind)
            } else {
                out.vtime as f64
            };
            s.push(r as f64, y);
        }
        fig.series.push(s);
    }
    fig.note(WARM_NOTE);
    fig.series.push(warm_column(
        "WootinJ (warm)",
        ranks.iter().map(|&r| r as f64),
        |x| run_matmul(Kind::WootinJ, target, x as u32, n),
    ));
    fig
}

// ---------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------

/// Table 3: WootinJ compilation time for the four evaluation programs,
/// plus generated-code statistics. Independent of problem size by
/// construction (shape analysis sees sizes only as scalars).
pub fn tab3() -> Figure {
    let mut fig = Figure::new(
        "tab3",
        "WootinJ compilation time",
        "program",
        "milliseconds",
    );
    fig.note("paper: 4-5 s dominated by the external icc/nvcc invocation; ours is the");
    fig.note("translator alone (the 'external compiler' is the NIR optimizer), hence ms-scale.");
    fig.note("x=0 diffusion MPI, x=1 diffusion GPU+MPI, x=2 matmul Fox, x=3 matmul Fox GPU");
    let mut ms = Series::new("compile-ms");
    let mut funcs = Series::new("generated-functions");
    let mut instrs = Series::new("nir-instructions");

    let stencil_table = hpclib::stencil_table(&[]).unwrap();
    let matmul_table = hpclib::matmul_table(&[]).unwrap();

    // Program 0/1: diffusion MPI + GPU.
    for (i, platform) in [StencilPlatform::CpuMpi, StencilPlatform::GpuMpi]
        .iter()
        .enumerate()
    {
        let mut env = WootinJ::new(&stencil_table).unwrap();
        let runner = StencilApp::compose(&mut env, *platform, StencilApp::default_model()).unwrap();
        let args = [
            Value::Int(16),
            Value::Int(16),
            Value::Int(16),
            Value::Int(2),
        ];
        let code = env
            .jit(&runner, "invoke", &args, JitOptions::wootinj())
            .unwrap();
        ms.push(i as f64, code.compile_time.as_secs_f64() * 1e3);
        funcs.push(i as f64, code.translated.program.funcs.len() as f64);
        instrs.push(i as f64, code.translated.program.instr_count() as f64);
    }
    // Program 2/3: matmul Fox + Fox GPU.
    for (i, body) in [MatmulBody::Fox, MatmulBody::FoxGpu].iter().enumerate() {
        let mut env = WootinJ::new(&matmul_table).unwrap();
        let app =
            MatmulApp::compose(&mut env, MatmulThread::Mpi, *body, MatmulCalc::Simple).unwrap();
        let code = env
            .jit(&app, "start", &[Value::Int(32)], JitOptions::wootinj())
            .unwrap();
        ms.push((i + 2) as f64, code.compile_time.as_secs_f64() * 1e3);
        funcs.push((i + 2) as f64, code.translated.program.funcs.len() as f64);
        instrs.push((i + 2) as f64, code.translated.program.instr_count() as f64);
    }
    fig.series.push(ms);
    fig.series.push(funcs);
    fig.series.push(instrs);
    fig
}

/// Table 3 follow-on: cumulative compilation cost vs. call count, with
/// the specialization-keyed code cache on (default capacity) and off
/// (capacity 0). The paper amortizes its 4-5 s compile over a long
/// simulation; the cache amortizes ours over *repeat* `jit` calls — the
/// cached curve is flat after the first call, the uncached one linear.
pub fn tab3_amortized() -> Figure {
    let mut fig = Figure::new(
        "tab3-amortized",
        "cumulative compile cost vs. call count",
        "jit calls",
        "cumulative compile ms",
    );
    fig.note("same specialization key every call (diffusion MPI runner, WootinJ mode)");
    fig.note("cached = default LRU cache; uncached = capacity 0 (every call translates)");
    let checkpoints = [1u64, 2, 5, 10, 20, 50];
    let max_calls = *checkpoints.last().unwrap();

    let table = hpclib::stencil_table(&[]).unwrap();
    let args = [
        Value::Int(16),
        Value::Int(16),
        Value::Int(16),
        Value::Int(2),
    ];

    let run = |name: &str, capacity: usize| -> Series {
        let mut env = WootinJ::new(&table).unwrap();
        env.set_cache_capacity(capacity);
        let runner = StencilApp::compose(
            &mut env,
            StencilPlatform::CpuMpi,
            StencilApp::default_model(),
        )
        .unwrap();
        let mut s = Series::new(name);
        let mut cumulative = 0.0;
        for call in 1..=max_calls {
            let code = env
                .jit(&runner, "invoke", &args, JitOptions::wootinj())
                .unwrap();
            cumulative += code.compile_time.as_secs_f64() * 1e3;
            if checkpoints.contains(&call) {
                s.push(call as f64, cumulative);
            }
        }
        s
    };

    fig.series
        .push(run("cached", wootinj::cache::DEFAULT_CAPACITY));
    fig.series.push(run("uncached", 0));

    // Warm-process series: every checkpoint is a *fresh* env — a new
    // process in a real deployment — warm-starting from a shared on-disk
    // artifact store. The first call decodes the persisted artifact,
    // later calls hit the promoted memory tier; no checkpoint ever
    // translates, so the curve stays near zero at every call count.
    fig.note("warm-process = fresh env per checkpoint, artifacts from a shared disk store");
    let disk_dir = std::env::temp_dir().join(format!("wootinj-tab3-warm-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&disk_dir);
    let warm_opts = || JitOptions::wootinj().with_disk_cache(&disk_dir);
    {
        // A prior cold process populates the store.
        let mut env = WootinJ::new(&table).unwrap();
        let runner = StencilApp::compose(
            &mut env,
            StencilPlatform::CpuMpi,
            StencilApp::default_model(),
        )
        .unwrap();
        env.jit(&runner, "invoke", &args, warm_opts()).unwrap();
    }
    let mut warm = Series::new("warm-process");
    for &calls in &checkpoints {
        let mut env = WootinJ::new(&table).unwrap();
        let runner = StencilApp::compose(
            &mut env,
            StencilPlatform::CpuMpi,
            StencilApp::default_model(),
        )
        .unwrap();
        let mut cumulative = 0.0;
        for _ in 0..calls {
            let code = env.jit(&runner, "invoke", &args, warm_opts()).unwrap();
            cumulative += code.compile_time.as_secs_f64() * 1e3;
        }
        assert_eq!(
            env.cache_stats().translations,
            0,
            "warm process must never translate"
        );
        warm.push(calls as f64, cumulative);
    }
    let _ = std::fs::remove_dir_all(&disk_dir);
    fig.series.push(warm);
    fig
}

/// Pass-level decomposition of Table 3's compile-time column: per NIR
/// optimizer pass, the accumulated wall time and net instruction delta
/// on two representative workloads (the diffusion MPI stencil and
/// matmul Fox), surfacing `TransStats::passes`.
pub fn pass_profile() -> Figure {
    let mut fig = Figure::new(
        "pass-profile",
        "NIR optimizer pass profile",
        "pass index (execution order; names in notes)",
        "wall ms / instruction delta",
    );
    fig.note("per workload: '<name> wall ms' and '<name> instr delta' series");
    fig.note("instr delta = instrs_after - instrs_before (negative = the pass shrank the program)");
    fig.note(
        "profiles are merged per pass name into canonical order (nir::merge_profiles), \
         so the report is order-stable no matter who optimized which function",
    );

    let mut profiled: Vec<(&str, Vec<nir::PassProfile>)> = Vec::new();
    {
        let table = hpclib::stencil_table(&[]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let runner = StencilApp::compose(
            &mut env,
            StencilPlatform::CpuMpi,
            StencilApp::default_model(),
        )
        .unwrap();
        let args = [
            Value::Int(16),
            Value::Int(16),
            Value::Int(16),
            Value::Int(2),
        ];
        let code = env
            .jit(&runner, "invoke", &args, JitOptions::wootinj())
            .unwrap();
        profiled.push((
            "diffusion",
            nir::merge_profiles(code.translated.stats.passes.clone()),
        ));
    }
    {
        let table = hpclib::matmul_table(&[]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let app = MatmulApp::compose(
            &mut env,
            MatmulThread::Mpi,
            MatmulBody::Fox,
            MatmulCalc::Simple,
        )
        .unwrap();
        let code = env
            .jit(&app, "start", &[Value::Int(32)], JitOptions::wootinj())
            .unwrap();
        profiled.push((
            "matmul-fox",
            nir::merge_profiles(code.translated.stats.passes.clone()),
        ));
    }

    // Order-stability gate: lowering the same workload with parallel
    // per-function passes must merge to the same profile shape — pass
    // names and instruction counts bit-equal to serial; only the wall
    // times (which reflect the measuring thread) may differ.
    {
        let table = hpclib::stencil_table(&[]).unwrap();
        let mut env = WootinJ::new(&table).unwrap();
        let runner = StencilApp::compose(
            &mut env,
            StencilPlatform::CpuMpi,
            StencilApp::default_model(),
        )
        .unwrap();
        let args = [
            Value::Int(16),
            Value::Int(16),
            Value::Int(16),
            Value::Int(2),
        ];
        let mut opts = JitOptions::wootinj();
        opts.config.parallel_lowering = true;
        let code = env.jit(&runner, "invoke", &args, opts).unwrap();
        let par = nir::merge_profiles(code.translated.stats.passes.clone());
        let serial = &profiled[0].1;
        assert!(
            par.len() == serial.len(),
            "pass-profile: parallel lowering changed the pass set ({} vs {})",
            par.len(),
            serial.len()
        );
        for (p, s) in par.iter().zip(serial) {
            assert!(
                p.pass == s.pass
                    && p.instrs_before == s.instrs_before
                    && p.instrs_after == s.instrs_after,
                "pass-profile: parallel lowering diverged on `{}`",
                s.pass
            );
        }
        fig.note("parallel-lowering parity: merged profile shape identical to serial (asserted)");
    }

    for (name, passes) in &profiled {
        let order: Vec<&str> = passes.iter().map(|p| p.pass).collect();
        fig.note(format!("{name} passes: {}", order.join(" -> ")));
        let mut wall = Series::new(format!("{name} wall ms"));
        let mut delta = Series::new(format!("{name} instr delta"));
        for (i, p) in passes.iter().enumerate() {
            wall.push(i as f64, p.wall.as_secs_f64() * 1e3);
            delta.push(i as f64, p.instrs_after as f64 - p.instrs_before as f64);
        }
        fig.series.push(wall);
        fig.series.push(delta);
    }
    fig
}

/// Table 1 analogue: the NIR optimizer configuration sweep on the
/// diffusion solver (our stand-in for the icc option rows).
pub fn tab1() -> Figure {
    opt_sweep("tab1", "optimizer configuration sweep (diffusion)", true)
}

/// Table 2 analogue: the same sweep on matmul.
pub fn tab2() -> Figure {
    opt_sweep("tab2", "optimizer configuration sweep (matmul)", false)
}

fn opt_sweep(id: &str, title: &str, diffusion: bool) -> Figure {
    let mut fig = Figure::new(id, title, "config", "virtual cycles");
    fig.note(
        "x=0 no passes (-O0), x=1 standard (fold+copyprop+dce), x=2 aggressive (+inline+SROA)",
    );
    fig.note("our analogue of the paper's icc option rows (Table 1/2)");
    let configs = [
        OptConfig::none(),
        OptConfig::standard(),
        OptConfig::aggressive(),
    ];
    let mut s = Series::new("WootinJ-translated");
    for (i, opt) in configs.iter().enumerate() {
        let vtime = if diffusion {
            let table = hpclib::stencil_table(&[]).unwrap();
            let mut env = WootinJ::new(&table).unwrap();
            let runner =
                StencilApp::compose(&mut env, StencilPlatform::Cpu, StencilApp::default_model())
                    .unwrap();
            let args = [
                Value::Int(16),
                Value::Int(16),
                Value::Int(12),
                Value::Int(3),
            ];
            let code = env
                .jit(
                    &runner,
                    "invoke",
                    &args,
                    JitOptions::wootinj().with_opt(*opt),
                )
                .unwrap();
            code.invoke(&env).unwrap().vtime_cycles
        } else {
            let table = hpclib::matmul_table(&[]).unwrap();
            let mut env = WootinJ::new(&table).unwrap();
            let app = MatmulApp::compose(
                &mut env,
                MatmulThread::CpuLoop,
                MatmulBody::Simple,
                MatmulCalc::Simple,
            )
            .unwrap();
            let code = env
                .jit(
                    &app,
                    "start",
                    &[Value::Int(24)],
                    JitOptions::wootinj().with_opt(*opt),
                )
                .unwrap();
            code.invoke(&env).unwrap().vtime_cycles
        };
        s.push(i as f64, vtime as f64);
    }
    fig.series.push(s);
    fig
}

// ---------------------------------------------------------------------
// Ablations (design-choice benches from DESIGN.md)
// ---------------------------------------------------------------------

/// Ablation: which pipeline stage buys what — Virtual -> Devirt -> Full
/// on the boxed diffusion workload.
pub fn ablate_devirt() -> Figure {
    let mut fig = Figure::new(
        "ablate-devirt",
        "pipeline ablation: dispatch/representation strategy",
        "stage",
        "virtual cycles",
    );
    fig.note(
        "x=0 vtable dispatch (Virtual), x=1 devirtualized (Devirt), x=2 + object inlining (Full)",
    );
    fig.note("boxed ScalarFloat diffusion, 16x16x12, 3 steps; all with standard NIR passes");
    let table = hpclib::stencil_table(&[]).unwrap();
    let mut s = Series::new("cycles");
    let opts = [
        JitOptions::cpp(),
        JitOptions {
            config: translator::TransConfig::devirt(),
            degrade: false,
            disk_cache: None,
            checkpoint: None,
            executor: wootinj::ExecutorCfg::Sim,
        },
        JitOptions::wootinj(),
    ];
    for (i, o) in opts.iter().enumerate() {
        let mut env = WootinJ::new(&table).unwrap();
        let runner = StencilApp::compose_boxed(&mut env, 0.4, 0.1).unwrap();
        let args = [
            Value::Int(16),
            Value::Int(16),
            Value::Int(12),
            Value::Int(3),
        ];
        let code = env.jit(&runner, "invoke", &args, o.clone()).unwrap();
        s.push(i as f64, code.invoke(&env).unwrap().vtime_cycles as f64);
    }
    fig.series.push(s);
    fig
}

/// Ablation: the NIR function-inlining limit (the Template-w/o-virt knob).
pub fn ablate_inline() -> Figure {
    let mut fig = Figure::new(
        "ablate-inline",
        "NIR inline-limit sweep (boxed diffusion, Devirt mode + SROA)",
        "inline limit",
        "virtual cycles",
    );
    let table = hpclib::stencil_table(&[]).unwrap();
    let mut s = Series::new("cycles");
    for limit in [0usize, 4, 16, 64] {
        let mut env = WootinJ::new(&table).unwrap();
        let runner = StencilApp::compose_boxed(&mut env, 0.4, 0.1).unwrap();
        let args = [
            Value::Int(16),
            Value::Int(16),
            Value::Int(12),
            Value::Int(3),
        ];
        let mut opt = OptConfig::aggressive();
        opt.inline_limit = limit;
        let mut config = translator::TransConfig::devirt();
        config.opt = opt;
        let code = env
            .jit(
                &runner,
                "invoke",
                &args,
                JitOptions {
                    config,
                    degrade: false,
                    disk_cache: None,
                    checkpoint: None,
                    executor: wootinj::ExecutorCfg::Sim,
                },
            )
            .unwrap();
        s.push(limit as f64, code.invoke(&env).unwrap().vtime_cycles as f64);
    }
    fig.series.push(s);
    fig
}

/// Ablation: communication cost model sensitivity — the Figure 4 point at
/// 8 ranks under a latency sweep.
pub fn ablate_comm() -> Figure {
    let mut fig = Figure::new(
        "ablate-comm",
        "comm cost sensitivity (diffusion weak scaling point, 8 ranks)",
        "alpha (cycles)",
        "virtual cycles",
    );
    fig.note("per-rank 16x16x8, 4 steps; the crossover between compute- and latency-bound");
    let table = hpclib::stencil_table(&[]).unwrap();
    let mut s = Series::new("WootinJ");
    for alpha in [500u64, 2_000, 8_000, 32_000, 128_000] {
        let mut env = WootinJ::new(&table).unwrap();
        let runner = StencilApp::compose(
            &mut env,
            StencilPlatform::CpuMpi,
            StencilApp::default_model(),
        )
        .unwrap();
        let args = [
            Value::Int(16),
            Value::Int(16),
            Value::Int(64),
            Value::Int(4),
        ];
        let mut code = env
            .jit(&runner, "invoke", &args, JitOptions::wootinj())
            .unwrap();
        code.set_mpi(
            8,
            MpiCostModel {
                alpha,
                beta: 0.4,
                collective_alpha: alpha * 2,
            },
        );
        s.push(alpha as f64, code.invoke(&env).unwrap().vtime_cycles as f64);
    }
    fig.series.push(s);
    fig
}

/// Extension experiment: the third (reduction) class library across
/// platforms — evidence for the paper's future-work claim that the rules
/// support larger libraries.
pub fn ext_reduce() -> Figure {
    use hpclib::{ReduceApp, ReduceOp, ReducePlatform};
    let mut fig = Figure::new(
        "ext-reduce",
        "extension: map-reduce library across platforms (WootinJ mode)",
        "platform",
        "virtual cycles",
    );
    fig.note("x=0 CPU, x=1 MPI x4 ranks, x=2 GPU (shared-memory tree kernel)");
    fig.note("SquareOp over 4096 elements; not a paper figure — library-generality evidence");
    let table = hpclib::reduce_table(&[]).unwrap();
    let n = 4096;
    let mut s = Series::new("cycles");
    for (i, platform) in [
        ReducePlatform::Cpu,
        ReducePlatform::Mpi,
        ReducePlatform::Gpu,
    ]
    .iter()
    .enumerate()
    {
        let mut env = WootinJ::new(&table).unwrap();
        let app = ReduceApp::compose(&mut env, *platform, ReduceOp::Square, 0.125).unwrap();
        let mut code = env
            .jit(&app, "reduce", &[Value::Int(n)], JitOptions::wootinj())
            .unwrap();
        if *platform == ReducePlatform::Mpi {
            code.set_mpi(4, MpiCostModel::default());
        }
        if *platform == ReducePlatform::Gpu {
            code.set_gpu(GpuConfig::default());
        }
        s.push(i as f64, code.invoke(&env).unwrap().vtime_cycles as f64);
    }
    fig.series.push(s);
    fig
}

/// Ablation: device-model sensitivity — the same GPU stencil under
/// different SM counts and copy bandwidths (is the model responding the
/// way an M2050 -> K20 upgrade would?).
pub fn ablate_gpu() -> Figure {
    let mut fig = Figure::new(
        "ablate-gpu",
        "GPU model sensitivity (diffusion, 16x16x16, 4 steps)",
        "SMs",
        "virtual cycles",
    );
    fig.note("series: copy bandwidth 4 vs 16 bytes/cycle; more SMs and faster copies both help");
    let table = hpclib::stencil_table(&[]).unwrap();
    for bw in [4.0f64, 16.0] {
        let mut s = Series::new(format!("{bw} B/cycle"));
        for sms in [7u32, 14, 28, 56] {
            let mut env = WootinJ::new(&table).unwrap();
            let runner =
                StencilApp::compose(&mut env, StencilPlatform::Gpu, StencilApp::default_model())
                    .unwrap();
            let args = [
                Value::Int(16),
                Value::Int(16),
                Value::Int(16),
                Value::Int(4),
            ];
            let mut code = env
                .jit(&runner, "invoke", &args, JitOptions::wootinj())
                .unwrap();
            code.set_gpu(GpuConfig {
                n_sms: sms,
                copy_bytes_per_cycle: bw,
                ..GpuConfig::default()
            });
            s.push(sms as f64, code.invoke(&env).unwrap().vtime_cycles as f64);
        }
        fig.series.push(s);
    }
    fig
}

/// Robustness experiment: the fault-injection matrix. One cell per
/// (fault kind x rate x world size); the y value is an outcome code, not a
/// time. Every cell uses a fixed seed, so the whole table is reproducible
/// bit-for-bit across runs and machines.
/// The `fault-matrix` workload: ring sendrecv over `n` floats per rank,
/// with one allreduce at the end.
const RING_REDUCE: &str = r#"
    @WootinJ final class RingReduce {
      RingReduce() { }
      float run(int n, int steps) {
        int rank = MPI.rank();
        int size = MPI.size();
        float[] sbuf = new float[n];
        float[] rbuf = new float[n];
        for (int i = 0; i < n; i++) { sbuf[i] = rank * n + i; }
        int dest = (rank + 1) % size;
        int src = (rank + size - 1) % size;
        for (int s = 0; s < steps; s++) {
          MPI.sendrecvF(sbuf, 0, n, dest, rbuf, 0, src, 7);
          for (int i = 0; i < n; i++) { sbuf[i] = rbuf[i] * 0.5f; }
        }
        float local = 0f;
        for (int i = 0; i < n; i++) { local += sbuf[i]; }
        return MPI.allreduceSumF(local);
      }
    }
"#;

pub fn fault_matrix(quick: bool) -> Figure {
    use wootinj::{FaultConfig, SimError, WjError};

    let mut fig = Figure::new(
        "fault-matrix",
        "fault injection matrix: outcome per (fault kind x rate x world size)",
        "world size (ranks)",
        "outcome code",
    );
    fig.note(
        "outcome codes: 3 = completed, no fault fired; 2 = completed despite \
         injected faults; 1 = typed failure (crash post-mortem, timeout, \
         deadlock, or rank error); 0 = untyped failure (must never appear)",
    );
    fig.note("workload: ring sendrecv + allreduce over n floats per rank; fixed seeds per cell");

    let rates: &[f64] = if quick { &[0.02] } else { &[0.005, 0.02, 0.1] };
    let sizes: &[u32] = if quick { &[2, 4] } else { &[2, 4, 8] };
    let n: i32 = if quick { 32 } else { 128 };
    let steps: i32 = if quick { 16 } else { 40 };
    fig.note(if quick {
        "quick mode: n=32, 16 steps, rate 0.02, worlds {2,4}"
    } else {
        "full mode: n=128, 40 steps, rates {0.005,0.02,0.1}, worlds {2,4,8}"
    });

    let table = wootinj::build_table(&[("ring_reduce.jl", RING_REDUCE)]).unwrap();
    let kinds = ["none", "delay", "corrupt", "fuel", "drop", "crash"];
    for (ki, kind) in kinds.iter().enumerate() {
        for (ri, &rate) in rates.iter().enumerate() {
            // The fault-free control row is rate-independent; emit it once.
            if *kind == "none" && ri > 0 {
                continue;
            }
            let mut s = Series::new(if *kind == "none" {
                "none".to_string()
            } else {
                format!("{kind}@{rate}")
            });
            for &size in sizes {
                let mut cfg = FaultConfig::seeded(
                    0xFA17_0000_0000_0000 | ((ki as u64) << 16) | ((ri as u64) << 8) | size as u64,
                );
                match *kind {
                    "delay" => cfg.msg_delay = rate,
                    "corrupt" => cfg.msg_corrupt = rate,
                    "fuel" => cfg.fuel_exhaust = rate,
                    "drop" => cfg.msg_drop = rate,
                    "crash" => cfg.crash = rate,
                    _ => {}
                }

                let mut env = WootinJ::new(&table).unwrap();
                let app = env.new_instance("RingReduce", &[]).unwrap();
                let mut code = env
                    .jit(
                        &app,
                        "run",
                        &[Value::Int(n), Value::Int(steps)],
                        JitOptions::wootinj(),
                    )
                    .unwrap();
                code.set_mpi(size, MpiCostModel::default());
                code.set_faults(cfg);
                code.set_timeout(50_000);
                let outcome = match code.invoke(&env) {
                    Ok(report) => {
                        if report.resilience.injected() == 0 {
                            3.0
                        } else {
                            2.0
                        }
                    }
                    Err(WjError::Sim(
                        SimError::Crash { .. }
                        | SimError::Timeout { .. }
                        | SimError::Deadlock { .. }
                        | SimError::Rank { .. }
                        | SimError::World { .. },
                    )) => 1.0,
                    Err(_) => 0.0,
                };
                s.push(size as f64, outcome);
            }
            fig.series.push(s);
        }
    }
    fig
}

/// The restart/chaos workload. Unlike `RING_REDUCE`, every step ends in
/// an allreduce: collectives are the checkpoint cut points, so cadence
/// sweeps need one per step to have anything to vary. The `mesh` array
/// (16n floats, written once) models the mostly-constant rank heap of a
/// real mesh code — the shape delta checkpoints exist for: full
/// snapshots re-serialize it at every cut point, deltas never do.
const RING_STEP_REDUCE: &str = r#"
    @WootinJ final class RingStepReduce {
      RingStepReduce() { }
      float run(int n, int steps) {
        int rank = MPI.rank();
        int size = MPI.size();
        float[] sbuf = new float[n];
        float[] rbuf = new float[n];
        float[] mesh = new float[n * 16];
        for (int i = 0; i < n; i++) { sbuf[i] = rank * n + i; }
        for (int i = 0; i < n * 16; i++) { mesh[i] = i * 0.25f; }
        int dest = (rank + 1) % size;
        int src = (rank + size - 1) % size;
        float acc = 0f;
        for (int s = 0; s < steps; s++) {
          MPI.sendrecvF(sbuf, 0, n, dest, rbuf, 0, src, 7);
          for (int i = 0; i < n; i++) { sbuf[i] = rbuf[i] * 0.5f; }
          acc += mesh[s] + MPI.allreduceSumF(sbuf[0]);
        }
        return acc;
      }
    }
"#;

/// Robustness experiment: checkpoint cadence vs. the cost of crash
/// recovery. One seed sweep, crash-only faults, four cadences (every 1,
/// 4, or 16 collectives, and checkpointing off). Crash-only faults
/// never perturb surviving state, so every completed run must reproduce
/// the fault-free answer bit-for-bit — counted in the `bit-identical`
/// series. Each cadence also runs in delta-chain mode on the same seeds:
/// the outcome must be identical (the fault stream does not depend on
/// the checkpoint encoding), and the `ckpt-bytes-*` series track the
/// bytes-written win, which must be strict at cadence 1.
pub fn restart_cost(quick: bool) -> Figure {
    use wootinj::{CheckpointPolicy, FaultConfig, RestartStats};

    let mut fig = Figure::new(
        "restart-cost",
        "checkpoint cadence vs. virtual time lost to crashes",
        "cadence (collectives per checkpoint; 0 = off)",
        "see series",
    );
    fig.note(
        "crash-only faults over a ring sendrecv + per-step allreduce; same fixed seeds per cadence",
    );
    fig.note(
        "completed / bit-identical count seeds; restarts, checkpoints and \
         vtime-lost are totals across the sweep",
    );
    fig.note(
        "ckpt-bytes-full / ckpt-bytes-delta: total checkpoint bytes written \
         across the sweep — full snapshots vs delta chains (rebase every 8) \
         at the same cadence; delta must win strictly at cadence 1",
    );

    let (n, steps, size, nseeds) = if quick {
        (16, 12, 4u32, 6u64)
    } else {
        (64, 32, 4, 16)
    };
    fig.note(if quick {
        "quick mode: n=16, 12 steps, world 4, 6 seeds, crash rate 0.02"
    } else {
        "full mode: n=64, 32 steps, world 4, 16 seeds, crash rate 0.02"
    });

    let table = wootinj::build_table(&[("ring_step_reduce.jl", RING_STEP_REDUCE)]).unwrap();
    let args = [Value::Int(n), Value::Int(steps)];
    let run_one = |faults: Option<u64>, cadence: u32, rebase: u32| -> (Option<f32>, RestartStats) {
        let mut env = WootinJ::new(&table).unwrap();
        let app = env.new_instance("RingStepReduce", &[]).unwrap();
        let mut opts = JitOptions::wootinj();
        if cadence > 0 {
            opts =
                opts.with_checkpointing(CheckpointPolicy::every(cadence).with_rebase_every(rebase));
        }
        let mut code = env.jit(&app, "run", &args, opts).unwrap();
        code.set_mpi(size, MpiCostModel::default());
        if let Some(seed) = faults {
            let mut cfg = FaultConfig::seeded(seed);
            cfg.crash = 0.02;
            code.set_faults(cfg);
        }
        code.set_timeout(50_000);
        match code.invoke(&env) {
            Ok(report) => match report.result {
                Some(Val::F32(v)) => (Some(v), report.restart),
                other => panic!("expected f32 result, got {other:?}"),
            },
            Err(_) => (None, RestartStats::default()),
        }
    };

    let (fault_free, _) = run_one(None, 0, 0);
    let fault_free = fault_free.expect("the fault-free control run must complete");

    let mut completed = Series::new("completed");
    let mut identical = Series::new("bit-identical");
    let mut restarts = Series::new("restarts");
    let mut checkpoints = Series::new("checkpoints");
    let mut lost = Series::new("vtime-lost");
    let mut bytes_full = Series::new("ckpt-bytes-full");
    let mut bytes_delta = Series::new("ckpt-bytes-delta");
    for &cadence in &[1u32, 4, 16, 0] {
        let (mut done, mut same, mut rs, mut cps, mut vl) = (0u64, 0u64, 0u64, 0u64, 0u64);
        let (mut bf, mut bd) = (0u64, 0u64);
        for s in 0..nseeds {
            let seed = 0xC057_0000_0000_0000 | s;
            let (result, stats) = run_one(Some(seed), cadence, 0);
            if let Some(v) = result {
                done += 1;
                same += u64::from(v.to_bits() == fault_free.to_bits());
            }
            rs += stats.restarts;
            cps += stats.checkpoints_taken;
            vl += stats.virtual_time_lost;
            bf += stats.ckpt_bytes_written;
            if cadence > 0 {
                let (dresult, dstats) = run_one(Some(seed), cadence, 8);
                assert_eq!(
                    dresult.map(f32::to_bits),
                    result.map(f32::to_bits),
                    "cadence {cadence} seed {s}: delta chains must not change the outcome"
                );
                bd += dstats.ckpt_bytes_written;
            }
        }
        let x = cadence as f64;
        completed.push(x, done as f64);
        identical.push(x, same as f64);
        restarts.push(x, rs as f64);
        checkpoints.push(x, cps as f64);
        lost.push(x, vl as f64);
        bytes_full.push(x, bf as f64);
        bytes_delta.push(x, bd as f64);
    }
    // The tracked cost win (acceptance gate): at cadence 1 — a checkpoint
    // at every collective — delta chains must write strictly fewer bytes
    // than full snapshots.
    let (f1, d1) = (bytes_full.points[0].y, bytes_delta.points[0].y);
    assert!(
        d1 > 0.0 && d1 < f1,
        "delta chains must strictly beat full snapshots on bytes written \
         at cadence 1: delta {d1} vs full {f1}"
    );
    for s in [
        completed,
        identical,
        restarts,
        checkpoints,
        lost,
        bytes_full,
        bytes_delta,
    ] {
        fig.series.push(s);
    }
    fig
}

/// The chaos soak gate: seeded fault storms (crashes, checkpoint-write
/// I/O faults) × cadence × rebase interval, plus a persisted-chain
/// damage pass (seeded truncation and bit-flips with warm restarts).
/// Every world must complete bit-identically to the fault-free control
/// or fail typed — outcome code 0 must never appear — and at cadence 1
/// delta chains must strictly beat full snapshots on both bytes written
/// and virtual time lost, under a write-cost model that charges for the
/// bytes each snapshot moves.
/// A chaos storm: a named mutation layered onto the base crash config.
type Storm = fn(&mut wootinj::FaultConfig);

pub fn chaos(quick: bool) -> Figure {
    use wootinj::{
        probe_chain, CheckpointPolicy, FaultConfig, ResilienceStats, RestartStats, WjError,
    };

    let mut fig = Figure::new(
        "chaos",
        "chaos soak: fault storms x cadence x rebase interval",
        "seed index",
        "outcome code",
    );
    fig.note(
        "outcome codes: 2 = completed bit-identical to the fault-free \
         control; 1 = typed failure; 0 = anything else (must never appear)",
    );
    fig.note(
        "storms: crash-only, crash + checkpoint-write I/O faults, and \
         crash + socket-transport faults (connect refusal, frame \
         truncation, delayed ack), each run in full-snapshot and \
         delta-chain mode on the same seeds; chain-damage rows corrupt \
         one persisted link, then warm-restart",
    );
    fig.note(
        "gate: at cadence 1, delta chains must strictly beat full \
         snapshots on bytes written and on virtual time lost (write cost: \
         200 cycles flat + 1 per 32 bytes)",
    );

    let (n, steps, size, nseeds) = if quick {
        (16, 12, 4u32, 5u64)
    } else {
        (48, 24, 4, 12)
    };
    let cadences: &[u32] = if quick { &[1, 4] } else { &[1, 4, 16] };
    fig.note(if quick {
        "quick mode: n=16, 12 steps, world 4, 5 seeds per cell, cadences {1,4}"
    } else {
        "full mode: n=48, 24 steps, world 4, 12 seeds per cell, cadences {1,4,16}"
    });

    let table = wootinj::build_table(&[("ring_step_reduce.jl", RING_STEP_REDUCE)]).unwrap();
    let args = [Value::Int(n), Value::Int(steps)];

    enum Run {
        Done(f32),
        Typed,
        Untyped,
    }
    let run_one = |seed: Option<u64>,
                   storm: Storm,
                   policy: Option<CheckpointPolicy>|
     -> (Run, RestartStats, ResilienceStats) {
        let mut env = WootinJ::new(&table).unwrap();
        let app = env.new_instance("RingStepReduce", &[]).unwrap();
        let mut opts = JitOptions::wootinj();
        if let Some(p) = policy {
            opts = opts.with_checkpointing(p);
        }
        let mut code = env.jit(&app, "run", &args, opts).unwrap();
        code.set_mpi(size, MpiCostModel::default());
        if let Some(seed) = seed {
            let mut cfg = FaultConfig::seeded(seed);
            cfg.crash = 0.02;
            storm(&mut cfg);
            code.set_faults(cfg);
        }
        code.set_timeout(200_000);
        match code.invoke(&env) {
            Ok(report) => match report.result {
                Some(Val::F32(v)) => (Run::Done(v), report.restart, report.resilience),
                other => panic!("expected f32 result, got {other:?}"),
            },
            Err(WjError::Sim(_)) => (
                Run::Typed,
                RestartStats::default(),
                ResilienceStats::default(),
            ),
            Err(_) => (
                Run::Untyped,
                RestartStats::default(),
                ResilienceStats::default(),
            ),
        }
    };
    let no_storm: Storm = |_| {};
    let control = match run_one(None, no_storm, None).0 {
        Run::Done(v) => v,
        _ => panic!("the fault-free control run must complete"),
    };
    let grade = |r: &Run| match r {
        Run::Done(v) if v.to_bits() == control.to_bits() => 2.0,
        Run::Done(_) | Run::Untyped => 0.0,
        Run::Typed => 1.0,
    };

    // Fault storms. Full and delta modes run the same seed; fault draws
    // are per-event, not per-cycle, so the outcome class (and the restart
    // pattern) must not depend on the checkpoint encoding.
    let storms: &[(&str, Storm)] = &[
        ("crash", |_| {}),
        ("crash+ckpt-io", |c| c.ckpt_write_fail = 0.25),
        // Truncation rates are per-frame and a lost frame costs a full
        // timeout + rollback, so the rate is kept low enough that the
        // restart budget converges while every counter still fires.
        ("crash+transport", |c| {
            c.connect_refuse = 0.02;
            c.frame_truncate = 0.01;
            c.ack_delay = 0.05;
        }),
    ];
    let (mut bytes_full, mut bytes_delta) = (0u64, 0u64);
    let (mut vt_full, mut vt_delta) = (0u64, 0u64);
    let (mut restarts_full, mut restarts_delta) = (0u64, 0u64);
    let mut transport_events = 0u64;
    for (si, (storm, mutator)) in storms.iter().enumerate() {
        for &cadence in cadences {
            let mut s_full = Series::new(format!("{storm} c{cadence} full"));
            let mut s_delta = Series::new(format!("{storm} c{cadence} delta"));
            for s in 0..nseeds {
                let seed =
                    0xC4A0_0000_0000_0000 | ((si as u64) << 24) | (u64::from(cadence) << 16) | s;
                let policy = |rebase: u32| {
                    CheckpointPolicy::every(cadence)
                        .with_rebase_every(rebase)
                        .with_write_cost(200, 32)
                };
                let (rf, stf, resf) = run_one(Some(seed), *mutator, Some(policy(0)));
                let (rd, std, resd) = run_one(Some(seed), *mutator, Some(policy(8)));
                if *storm == "crash+transport" {
                    transport_events += resf.truncated_frames
                        + resf.delayed_acks
                        + resf.connect_refusals
                        + resd.truncated_frames
                        + resd.delayed_acks
                        + resd.connect_refusals;
                }
                let (gf, gd) = (grade(&rf), grade(&rd));
                assert!(
                    gf > 0.0 && gd > 0.0,
                    "{storm} c{cadence} seed {s}: every world must complete \
                     bit-identically or fail typed (full {gf}, delta {gd})"
                );
                assert_eq!(
                    gf, gd,
                    "{storm} c{cadence} seed {s}: the checkpoint encoding \
                     must not change the outcome class"
                );
                s_full.push(s as f64, gf);
                s_delta.push(s as f64, gd);
                if cadence == 1 {
                    bytes_full += stf.ckpt_bytes_written;
                    vt_full += stf.virtual_time_lost;
                    restarts_full += stf.restarts;
                    bytes_delta += std.ckpt_bytes_written;
                    vt_delta += std.virtual_time_lost;
                    restarts_delta += std.restarts;
                }
            }
            fig.series.push(s_full);
            fig.series.push(s_delta);
        }
    }

    // The transport storm must actually land transport faults — the
    // seeded draws are per-event, so a silent zero here would mean the
    // injection points fell out of the message/reconnect paths.
    assert!(
        transport_events > 0,
        "the crash+transport storm produced no transport fault events"
    );
    let mut s_transport = Series::new("transport fault events (crash+transport storm)");
    s_transport.push(0.0, transport_events as f64);
    fig.series.push(s_transport);

    // The cadence-1 cost gate. Restart parity first: a vacuous vtime
    // comparison (no restarts) or a skewed one (different restart
    // patterns) would make the win meaningless.
    assert!(
        restarts_full >= 1,
        "chaos sweep produced no cadence-1 restarts — the vtime gate is vacuous"
    );
    assert_eq!(
        restarts_full, restarts_delta,
        "restart pattern must not depend on the checkpoint encoding"
    );
    assert!(
        bytes_delta > 0 && bytes_delta < bytes_full,
        "delta cadence-1 must strictly beat full cadence-1 on bytes \
         written: delta {bytes_delta} vs full {bytes_full}"
    );
    assert!(
        vt_delta < vt_full,
        "delta cadence-1 must strictly beat full cadence-1 on virtual \
         time lost: delta {vt_delta} vs full {vt_full}"
    );
    let mut c1_bytes = Series::new("c1-bytes-written (x: 0=full, 1=delta)");
    c1_bytes.push(0.0, bytes_full as f64);
    c1_bytes.push(1.0, bytes_delta as f64);
    let mut c1_vtime = Series::new("c1-vtime-lost (x: 0=full, 1=delta)");
    c1_vtime.push(0.0, vt_full as f64);
    c1_vtime.push(1.0, vt_delta as f64);
    fig.series.push(c1_bytes);
    fig.series.push(c1_vtime);

    // Chain-damage pass: lay a persisted delta chain, corrupt one seeded
    // link (alternating truncation and bit-flips, walking the link
    // index), and warm-restart over the damage. The probe must stop at
    // the damaged link; the rerun must land on the deepest valid
    // ancestor — dropping exactly the damaged tail — and still finish
    // bit-identically.
    let dir = std::env::temp_dir().join(format!("wj-chaos-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let mut s_damage = Series::new("chain-damage warm restart");
    for d in 0..nseeds {
        let base = dir.join(format!("chaos-{d}.wckpt"));
        let policy = CheckpointPolicy::every(1)
            .with_rebase_every(64)
            .with_persist(&base);
        match run_one(None, no_storm, Some(policy.clone())).0 {
            Run::Done(v) if v.to_bits() == control.to_bits() => {}
            _ => panic!("chain-damage seed {d}: chain-laying run must complete"),
        }
        let links = probe_chain(&base).links_found;
        assert!(links >= 2, "chain-damage seed {d}: need a base plus deltas");
        let k = (d as usize) % links;
        let file = if k == 0 {
            base.clone()
        } else {
            dir.join(format!("chaos-{d}.d{k}.wckpt"))
        };
        let good = std::fs::read(&file).unwrap();
        let damaged = if d % 2 == 0 {
            good[..good.len() / 2].to_vec()
        } else {
            let mut b = good;
            let mid = b.len() / 2;
            b[mid] ^= 0x04;
            b
        };
        std::fs::write(&file, &damaged).unwrap();
        let probe = probe_chain(&base);
        assert_eq!(
            probe.links_valid, k,
            "chain-damage seed {d}: probe must stop at the damaged link"
        );
        assert!(
            probe.error.is_some(),
            "chain-damage seed {d}: damage must surface a typed error"
        );
        let (rerun, stats, _) = run_one(None, no_storm, Some(policy));
        match rerun {
            Run::Done(v) if v.to_bits() == control.to_bits() => {}
            _ => panic!("chain-damage seed {d}: warm restart must finish bit-identically"),
        }
        assert_eq!(
            stats.chain_links_dropped,
            (links - k) as u64,
            "chain-damage seed {d}: dropped-link accounting"
        );
        s_damage.push(d as f64, 2.0);
    }
    fig.series.push(s_damage);
    std::fs::remove_dir_all(&dir).ok();
    fig
}

/// The `backend-matrix` workload: integer-valued f64 arithmetic,
/// block-partitioned by rank and reduced with `allreduceSumD`. Integer
/// sums below 2^53 are exact in f64, so associativity — and therefore
/// the platform's world size and scheduling — cannot perturb the bits:
/// every platform must produce the *same* f64, bit for bit.
const BLOCK_SUM: &str = r#"
    @WootinJ final class BlockSum {
      BlockSum() { }
      double run(int total, int steps) {
        int rank = MPI.rank();
        int size = MPI.size();
        int per = total / size;
        int lo = rank * per;
        double acc = 0.0;
        for (int s = 0; s < steps; s++) {
          double local = 0.0;
          for (int i = lo; i < lo + per; i++) {
            local = local + (i % 97) * 3.0 + s;
          }
          acc = acc + MPI.allreduceSumD(local);
        }
        return acc;
      }
    }
"#;

/// The multiplatform acceptance sweep: the same workload on **every
/// registered platform** (`platform::registry()`), asserting bit-identical
/// result agreement — fault-free, under crash injection with
/// checkpoint/restart, and (between device-bearing platforms) for a GPU
/// kernel workload. Any divergence panics, which is what lets
/// `scripts/check.sh` gate on this experiment.
pub fn backend_matrix(quick: bool) -> Figure {
    use platform::registry;
    use std::sync::Arc;
    use wootinj::{CheckpointPolicy, FaultConfig};

    let mut fig = Figure::new(
        "backend-matrix",
        "cross-backend agreement: one workload, every registered platform",
        "platform index (registry order)",
        "see series",
    );
    fig.note(
        "platforms: 0=interp, 1=gpu-sim, 2=mpi-sim, 3=host-mt, 4=dist \
         (platform::registry order)",
    );
    fig.note(
        "agree / recovered-agree are 1 when the platform's f64 result bits match the \
         exact ground truth; any mismatch panics (check.sh fails on divergence)",
    );
    fig.note(
        "vtime-cycles / wall-ms are the paired virtual and real costs of the \
         fault-free run on each platform",
    );

    let (total, steps, nseeds) = if quick { (240, 8, 3u64) } else { (960, 24, 10) };
    fig.note(if quick {
        "quick mode: total=240, 8 steps, 3 crash seeds per platform"
    } else {
        "full mode: total=960, 24 steps, 10 crash seeds per platform"
    });

    // Exact ground truth, computed independently in Rust.
    let mut truth = 0.0f64;
    for s in 0..steps {
        for i in 0..total {
            truth += (i % 97) as f64 * 3.0 + s as f64;
        }
    }
    let truth = truth.to_bits();

    let table = wootinj::build_table(&[("block_sum.jl", BLOCK_SUM)]).unwrap();
    let args = [Value::Int(total), Value::Int(steps)];
    let run_on = |plat: &Arc<dyn platform::Platform>,
                  seed: Option<u64>,
                  ckpt: bool|
     -> Result<wootinj::RunReport, wootinj::WjError> {
        let mut env = WootinJ::new(&table).unwrap();
        let app = env.new_instance("BlockSum", &[]).unwrap();
        let mut opts = JitOptions::wootinj();
        if ckpt {
            opts = opts.with_checkpointing(CheckpointPolicy::adaptive(4));
        }
        let mut code = env
            .jit_on(Arc::clone(plat), &app, "run", &args, opts)
            .unwrap();
        if let Some(seed) = seed {
            let mut cfg = FaultConfig::seeded(seed);
            cfg.crash = 0.05;
            code.set_faults(cfg);
        }
        code.set_timeout(50_000);
        code.invoke(&env)
    };
    let f64_bits = |report: &wootinj::RunReport| -> u64 {
        match report.result {
            Some(Val::F64(v)) => v.to_bits(),
            other => panic!("expected f64 result, got {other:?}"),
        }
    };

    let mut agree = Series::new("agree");
    let mut recovered = Series::new("recovered-agree");
    let mut restarts = Series::new("restarts");
    let mut vtime = Series::new("vtime-cycles");
    let mut wallms = Series::new("wall-ms");
    let mut parallelism = Series::new("parallelism");
    for (idx, plat) in registry().iter().enumerate() {
        let id = plat.id();
        let x = idx as f64;

        let clean = run_on(plat, None, false)
            .unwrap_or_else(|e| panic!("backend-matrix: `{id}` failed fault-free: {e}"));
        let bits = f64_bits(&clean);
        assert!(
            bits == truth,
            "backend-matrix DIVERGENCE: `{id}` returned {bits:#018x}, ground truth {truth:#018x}"
        );
        agree.push(x, 1.0);
        vtime.push(x, clean.vtime_cycles as f64);
        wallms.push(x, clean.wall_ms);
        parallelism.push(x, plat.caps().parallelism as f64);

        // Crash injection + adaptive checkpointing: every seed must
        // complete and still land on the exact answer, on every backend
        // — the fault/checkpoint machinery is shared through the trait.
        let mut rs = 0u64;
        for s in 0..nseeds {
            let seed = 0xBAC2_0000_0000_0000 | ((idx as u64) << 32) | s;
            let report = run_on(plat, Some(seed), true).unwrap_or_else(|e| {
                panic!("backend-matrix: `{id}` seed {seed:#x} failed under checkpointing: {e}")
            });
            let rbits = f64_bits(&report);
            assert!(
                rbits == truth,
                "backend-matrix DIVERGENCE: `{id}` recovered run returned {rbits:#018x}, \
                 ground truth {truth:#018x}"
            );
            rs += report.restart.restarts;
        }
        recovered.push(x, 1.0);
        restarts.push(x, rs as f64);
    }

    // Device-bearing platforms additionally agree on a kernel workload.
    let kernel_table = hpclib::matmul_table(&[]).unwrap();
    let mut kernel_bits: Vec<(String, u32)> = Vec::new();
    for plat in registry() {
        if !plat.caps().global_kernels {
            continue;
        }
        let mut env = WootinJ::new(&kernel_table).unwrap();
        let app = MatmulApp::compose(
            &mut env,
            MatmulThread::Gpu,
            MatmulBody::GpuNaive,
            MatmulCalc::Optimized,
        )
        .unwrap();
        let code = env
            .jit_on(
                Arc::clone(&plat),
                &app,
                "start",
                &[Value::Int(16)],
                JitOptions::wootinj(),
            )
            .unwrap();
        let report = code.invoke(&env).unwrap();
        let checksum = match report.result {
            Some(Val::F32(v)) => v.to_bits(),
            other => panic!("expected f32 kernel checksum, got {other:?}"),
        };
        kernel_bits.push((plat.id().to_string(), checksum));
    }
    let mut kernel = Series::new("kernel-agree");
    if let Some((first_id, first)) = kernel_bits.first().cloned() {
        for (i, (id, bits)) in kernel_bits.iter().enumerate() {
            assert!(
                *bits == first,
                "backend-matrix DIVERGENCE: kernel checksum `{id}` {bits:#010x} != \
                 `{first_id}` {first:#010x}"
            );
            kernel.push(i as f64, 1.0);
        }
    }
    fig.note("kernel-agree covers the global_kernels-capable platforms (gpu-sim, mpi-sim)");

    for s in [
        agree,
        recovered,
        restarts,
        vtime,
        wallms,
        parallelism,
        kernel,
    ] {
        fig.series.push(s);
    }
    fig
}

/// The executor-seam acceptance gate. Three claims, in escalating
/// strength:
///
/// 1. **Replay ≡ sim, bit for bit.** OS-thread workers in replay mode
///    must reproduce the cooperative loop exactly — results, virtual
///    time, and per-rank clocks — across worker counts, with crash
///    injection and checkpoint/restart included. Any divergence panics
///    (`scripts/check.sh` gates on this experiment).
/// 2. **Free-running stays value-identical** on the exact-arithmetic
///    ring workload: completion-order hand-off is just another service
///    permutation, the same family the seeded-shuffle conformance
///    tests already quantify over.
/// 3. **Free-running buys real time** on the matmul/stencil sweep:
///    median wall time at 4 workers must beat 1 worker by ≥ 1.5×.
///    This gate only arms when `available_parallelism() >= 4` — on
///    smaller hosts the sweep still runs and reports, but physics is
///    not asserted.
pub fn wallclock(quick: bool) -> Figure {
    use crate::timing;
    use std::sync::Arc;
    use wootinj::{CheckpointPolicy, ExecMode, ExecutorCfg, FaultConfig, MpiSimPlatform};

    let mut fig = Figure::new(
        "wallclock",
        "executor seam: threads-replay == sim bit-identity, free-running throughput",
        "worker count",
        "see series",
    );
    fig.note(
        "replay-identical / replay-identical-faults are 1 when the threads-replay \
         run matches sim bit-for-bit on result, vtime, and per-rank clocks; any \
         mismatch panics (check.sh fails on divergence)",
    );

    let (n, steps, nseeds, workers): (i32, i32, u64, &[u32]) = if quick {
        (12, 6, 2, &[2, 4])
    } else {
        (24, 10, 4, &[1, 2, 4, 8])
    };
    fig.note(if quick {
        "quick mode: n=12, 6 steps, 2 fault seeds, workers {2,4}"
    } else {
        "full mode: n=24, 10 steps, 4 fault seeds, workers {1,2,4,8}"
    });

    let size = 4u32;
    let table = wootinj::build_table(&[("ring_step_reduce.jl", RING_STEP_REDUCE)]).unwrap();
    let args = [Value::Int(n), Value::Int(steps)];
    let run_cfg = |cfg: ExecutorCfg, seed: Option<u64>| -> wootinj::RunReport {
        let mut env = WootinJ::new(&table).unwrap();
        let app = env.new_instance("RingStepReduce", &[]).unwrap();
        let mut opts = JitOptions::wootinj().with_executor(cfg);
        if seed.is_some() {
            opts = opts.with_checkpointing(CheckpointPolicy::every(1));
        }
        let mut code = env
            .jit_on(
                Arc::new(MpiSimPlatform::new(size)),
                &app,
                "run",
                &args,
                opts,
            )
            .unwrap();
        if let Some(seed) = seed {
            let mut fcfg = FaultConfig::seeded(seed);
            fcfg.crash = 0.05;
            code.set_faults(fcfg);
        }
        code.set_timeout(200_000);
        code.invoke(&env)
            .unwrap_or_else(|e| panic!("wallclock: run under {cfg:?} failed: {e}"))
    };
    let assert_identical = |a: &wootinj::RunReport, b: &wootinj::RunReport, what: &str| {
        let (ab, bb) = (format!("{:?}", a.results), format!("{:?}", b.results));
        assert!(
            ab == bb,
            "wallclock DIVERGENCE ({what}): results {ab} vs {bb}"
        );
        assert!(
            a.vtime_cycles == b.vtime_cycles && a.total_cycles == b.total_cycles,
            "wallclock DIVERGENCE ({what}): vtime {} vs {}, cycles {} vs {}",
            a.vtime_cycles,
            b.vtime_cycles,
            a.total_cycles,
            b.total_cycles
        );
        for (r, (x, y)) in a.per_rank.iter().zip(&b.per_rank).enumerate() {
            assert!(
                x.vclock == y.vclock
                    && x.compute_cycles == y.compute_cycles
                    && x.comm_cycles == y.comm_cycles,
                "wallclock DIVERGENCE ({what}): rank {r} clocks differ"
            );
        }
    };

    let reference = run_cfg(ExecutorCfg::Sim, None);
    let mut s_replay = Series::new("replay-identical");
    let mut s_replay_faults = Series::new("replay-identical-faults");
    for &w in workers {
        let cfg = ExecutorCfg::Threads {
            workers: w,
            mode: ExecMode::Replay,
        };
        let rep = run_cfg(cfg, None);
        assert_identical(&reference, &rep, &format!("fault-free, {w} workers"));
        s_replay.push(w as f64, 1.0);
        for s in 0..nseeds {
            let seed = 0x3A11_0000_0000_0000 | ((w as u64) << 32) | s;
            let sim = run_cfg(ExecutorCfg::Sim, Some(seed));
            let rep = run_cfg(cfg, Some(seed));
            assert_identical(&sim, &rep, &format!("seed {seed:#x}, {w} workers"));
            assert!(
                sim.restart.restarts == rep.restart.restarts,
                "wallclock DIVERGENCE: restart counts differ under seed {seed:#x}"
            );
        }
        s_replay_faults.push(w as f64, 1.0);
    }
    fig.series.push(s_replay);
    fig.series.push(s_replay_faults);

    // Free-running value identity on the exact-arithmetic workload:
    // virtual timing may legitimately drift (and is not compared), but
    // the values must not.
    let free = run_cfg(
        ExecutorCfg::Threads {
            workers: 4,
            mode: ExecMode::Free,
        },
        None,
    );
    assert!(
        format!("{:?}", free.results) == format!("{:?}", reference.results),
        "wallclock DIVERGENCE: free-running values drifted on exact arithmetic"
    );
    let mut s_free = Series::new("free-value-identical");
    s_free.push(4.0, 1.0);
    fig.series.push(s_free);

    // Throughput sweep: matmul Fox and the diffusion stencil,
    // free-running, 1 worker vs 4. min/median/max wall ms land in the
    // JSON so noise stays visible; the speedup gate compares medians.
    let cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let (msize, sdim, ssteps) = if quick { (16, 12, 2) } else { (32, 16, 4) };
    let mat_table = hpclib::matmul_table(&[]).unwrap();
    let sten_table = hpclib::stencil_table(&[]).unwrap();
    let bench_workload = |g: &mut timing::Group, which: &str, w: u32| -> (timing::Stats, String) {
        let cfg = ExecutorCfg::Threads {
            workers: w,
            mode: ExecMode::Free,
        };
        let opts = JitOptions::wootinj().with_executor(cfg);
        let label = format!("{which}/free-w{w}");
        if which == "matmul-fox" {
            let mut env = WootinJ::new(&mat_table).unwrap();
            let app = MatmulApp::compose(
                &mut env,
                MatmulThread::Mpi,
                MatmulBody::Fox,
                MatmulCalc::Simple,
            )
            .unwrap();
            let code = env.jit(&app, "start", &[Value::Int(msize)], opts).unwrap();
            let probe = format!("{:?}", code.invoke(&env).unwrap().result);
            (g.bench_stats(&label, || code.invoke(&env).unwrap()), probe)
        } else {
            let mut env = WootinJ::new(&sten_table).unwrap();
            let runner = StencilApp::compose(
                &mut env,
                StencilPlatform::CpuMpi,
                StencilApp::default_model(),
            )
            .unwrap();
            let sargs = [
                Value::Int(sdim),
                Value::Int(sdim),
                Value::Int(sdim),
                Value::Int(ssteps),
            ];
            let code = env.jit(&runner, "invoke", &sargs, opts).unwrap();
            let probe = format!("{:?}", code.invoke(&env).unwrap().result);
            (g.bench_stats(&label, || code.invoke(&env).unwrap()), probe)
        }
    };

    let mut g = timing::Group::new("wallclock");
    g.sample_size(if quick { 3 } else { 7 }).warmup(1);
    let mut s_speedup = Series::new("free-speedup-4w-over-1w");
    for (wi, which) in ["matmul-fox", "diffusion"].iter().enumerate() {
        let mut s_min = Series::new(format!("{which} wall-ms min"));
        let mut s_med = Series::new(format!("{which} wall-ms median"));
        let mut s_max = Series::new(format!("{which} wall-ms max"));
        let (base, base_val) = bench_workload(&mut g, which, 1);
        let (par, par_val) = bench_workload(&mut g, which, 4);
        assert!(
            base_val == par_val,
            "wallclock DIVERGENCE: {which} free-running value drifted across worker counts \
             ({base_val} vs {par_val})"
        );
        for (w, st) in [(1.0, &base), (4.0, &par)] {
            s_min.push(w, st.min_ms());
            s_med.push(w, st.median_ms());
            s_max.push(w, st.max_ms());
        }
        fig.series.push(s_min);
        fig.series.push(s_med);
        fig.series.push(s_max);
        let speedup = base.median_ms() / par.median_ms();
        s_speedup.push(wi as f64, speedup);
        if cores >= 4 {
            assert!(
                speedup >= 1.5,
                "wallclock: {which} free-running speedup {speedup:.2}x < 1.5x \
                 with {cores} cores available"
            );
        }
    }
    fig.series.push(s_speedup);
    if cores >= 4 {
        fig.note(format!(
            "speedup gate ARMED: available_parallelism()={cores}, \
             median 4-worker wall must beat 1-worker by >=1.5x"
        ));
    } else {
        fig.note(format!(
            "speedup gate SKIPPED: available_parallelism()={cores} < 4 \
             (sweep still reported above)"
        ));
    }
    fig
}

/// One `Stage{i}` class for the incremental-churn workload: a heavy
/// straight-line float body so per-body typeck + lowering cost is
/// visible. `salt` perturbs one literal (a "value edit"); `extra_stmt`
/// adds a statement (a "body edit"); `extra_method` adds a method (a
/// "signature edit" — the item tree changes, the body does not).
fn incr_stage(i: usize, salt: u64, extra_stmt: bool, extra_method: bool) -> String {
    let mut body = format!("    float a = x * {}.{}f + k;\n", 1 + i % 3, salt % 10);
    for j in 0..192 {
        body.push_str(&format!(
            "    a = a * 1.000{}f + {}f + x * 0.{}f;\n",
            1 + j % 4,
            (i * 31 + j * 7) % 13,
            1 + (i + j) % 9,
        ));
    }
    if extra_stmt {
        body.push_str("    a = a + a * 0.125f;\n");
    }
    let method = if extra_method {
        format!("  float probe{salt}(float x) {{ return x; }}\n")
    } else {
        String::new()
    };
    format!(
        "@WootinJ final class Stage{i} {{\n  float k;\n  Stage{i}(float k0) {{ k = k0; }}\n\
         {method}  float f(float x) {{\n{body}    return a;\n  }}\n}}\n"
    )
}

/// The full source set: `k` stage files plus an `App` entry summing
/// every stage over the data array.
fn incr_sources(k: usize) -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = (0..k)
        .map(|i| (format!("stage{i}.jl"), incr_stage(i, 0, false, false)))
        .collect();
    let fields: String = (0..k).map(|i| format!("  Stage{i} s{i};\n")).collect();
    let params: Vec<String> = (0..k).map(|i| format!("Stage{i} a{i}")).collect();
    let inits: String = (0..k).map(|i| format!("    s{i} = a{i};\n")).collect();
    let calls: String = (0..k)
        .map(|i| format!("      acc += s{i}.f(x);\n"))
        .collect();
    files.push((
        "app.jl".into(),
        format!(
            "@WootinJ final class App {{\n{fields}  App({}) {{\n{inits}  }}\n\
             \x20 float run(float[] data) {{\n    float acc = 0f;\n\
             \x20   for (int i = 0; i < data.length; i++) {{\n      float x = data[i];\n\
             {calls}    }}\n    return acc;\n  }}\n}}\n",
            params.join(", "),
        ),
    ));
    files
}

/// The `incremental` experiment: re-JIT latency after source churn,
/// cold vs incremental (ISSUE 6). A `Workspace` holds the memoized
/// query database; each probe edits one of `k` stage classes and
/// re-JITs through a fresh env (so the memory code-cache never helps —
/// the measured win is pure query reuse). Four churn kinds: value edit
/// (one literal), body edit (one statement added), signature edit (one
/// method added — invalidates callers), new class (trailing file).
///
/// Asserted here (and therefore by `scripts/check.sh`, which runs the
/// quick variant): the incremental body edit executes strictly fewer
/// queries than a cold build, the incremental artifact is bit-identical
/// to a from-scratch build of the same sources, and the median body-edit
/// re-JIT is ≥10× faster than cold.
pub fn incremental(quick: bool) -> Figure {
    use wootinj::Workspace;

    let k = if quick { 24 } else { 40 };
    let probes = if quick { 3 } else { 7 };
    let mut files = incr_sources(k);

    let build = |files: &[(String, String)]| -> Workspace {
        let mut ws = Workspace::new();
        for (name, text) in files {
            ws.set_source(name, text)
                .unwrap_or_else(|d| panic!("incremental: workload does not compile: {d:?}"));
        }
        ws
    };
    // JIT `App.run(data)` through a fresh env; returns the translated
    // program so callers can assert bit-identity (encoding happens
    // outside the timed regions — it is not part of re-JIT latency).
    let jit = |ws: &Workspace| -> std::sync::Arc<translator::Translated> {
        let mut env = ws.env().unwrap();
        let stages: Vec<Value> = (0..k)
            .map(|i| {
                env.new_instance(&format!("Stage{i}"), &[Value::Float(i as f32)])
                    .unwrap()
            })
            .collect();
        let app = env.new_instance("App", &stages).unwrap();
        let data = env.new_f32_array(&[0.5, 1.0, 1.5, 2.0]);
        let code = env
            .jit(&app, "run", &[data], JitOptions::wootinj())
            .unwrap();
        std::sync::Arc::clone(&code.translated)
    };
    let upsert = |files: &mut Vec<(String, String)>, name: &str, text: String| match files
        .iter_mut()
        .find(|(n, _)| n == name)
    {
        Some((_, t)) => *t = text,
        None => files.push((name.to_string(), text)),
    };

    // Cold baseline: median full build (parse + typeck + lower every
    // body) across fresh workspaces, and its executed-query count.
    let mut cold_walls: Vec<Duration> = Vec::new();
    for _ in 0..probes.max(3) {
        let t0 = std::time::Instant::now();
        let ws = build(&files);
        std::hint::black_box(jit(&ws));
        cold_walls.push(t0.elapsed());
    }
    cold_walls.sort();
    let cold_wall = cold_walls[cold_walls.len() / 2];
    let cold_ws = build(&files);
    std::hint::black_box(jit(&cold_ws));
    let cold_executed = cold_ws.query_stats().executed();
    drop(cold_ws);

    // The persistent workspace every incremental probe edits.
    let mut ws = build(&files);
    std::hint::black_box(jit(&ws));

    let mut fig = Figure::new(
        "incremental",
        "incremental re-JIT latency after source churn (cold vs query reuse)",
        "probe index",
        "re-JIT wall time (ms)",
    );
    fig.note(format!(
        "{k} stage classes + App entry; every re-JIT goes through a fresh env, so the \
         memory code-cache never hits — the speedup is pure query-memo reuse"
    ));
    fig.note(
        "asserted: body-edit executes strictly fewer queries than cold, incremental \
         artifact is bit-identical to from-scratch, median body-edit speedup >= 10x",
    );

    let mut cold_series = Series::new("cold-ms");
    for (n, w) in cold_walls.iter().enumerate() {
        cold_series.push(n as f64, w.as_secs_f64() * 1e3);
    }
    fig.series.push(cold_series);

    // One churn series per edit kind. Each probe edits a different
    // stage class (spread over the program) with a per-probe salt so
    // no two probes produce identical text.
    type EditFn = Box<dyn Fn(usize, u64) -> (String, String)>;
    let kinds: [(&str, EditFn); 4] = [
        (
            "value-edit-ms",
            Box::new(|i, salt| (format!("stage{i}.jl"), incr_stage(i, salt, false, false))),
        ),
        (
            "body-edit-ms",
            Box::new(|i, salt| (format!("stage{i}.jl"), incr_stage(i, salt, true, false))),
        ),
        (
            "signature-edit-ms",
            Box::new(|i, salt| (format!("stage{i}.jl"), incr_stage(i, salt, false, true))),
        ),
        (
            "new-class-ms",
            Box::new(|_, salt| {
                (
                    format!("extra{salt}.jl"),
                    format!(
                        "@WootinJ final class Extra{salt} {{ Extra{salt}() {{ }} \
                         float e(float x) {{ return x + {salt}f; }} }}\n"
                    ),
                )
            }),
        ),
    ];

    let mut body_edit_walls: Vec<Duration> = Vec::new();
    let mut body_edit_executed: Vec<u64> = Vec::new();
    for (kind_idx, (name, make)) in kinds.iter().enumerate() {
        let mut series = Series::new(*name);
        for n in 0..probes {
            let salt = (kind_idx * probes + n + 1) as u64;
            let (file, text) = make(1 + (n * 5) % k, salt);
            upsert(&mut files, &file, text.clone());
            let before = ws.query_stats();
            let t0 = std::time::Instant::now();
            ws.edit(&file, &text)
                .or_else(|_| ws.set_source(&file, &text))
                .unwrap();
            let program = jit(&ws);
            let wall = t0.elapsed();
            series.push(n as f64, wall.as_secs_f64() * 1e3);
            if *name == "body-edit-ms" {
                body_edit_walls.push(wall);
                body_edit_executed.push(ws.query_stats().since(&before).executed());
                // Determinism contract: bit-identical to from-scratch.
                let scratch = jit(&build(&files));
                assert_eq!(
                    program.encode_semantic(),
                    scratch.encode_semantic(),
                    "incremental: artifact diverged from from-scratch after body edit {n}"
                );
            } else {
                std::hint::black_box(program);
            }
        }
        fig.series.push(series);
    }

    body_edit_walls.sort();
    let body_wall = body_edit_walls[body_edit_walls.len() / 2];
    let speedup = cold_wall.as_secs_f64() / body_wall.as_secs_f64();
    let mut sp = Series::new("body-edit-speedup");
    sp.push(0.0, speedup);
    fig.series.push(sp);
    let mut qx = Series::new("queries-executed");
    qx.push(0.0, cold_executed as f64);
    qx.push(1.0, *body_edit_executed.iter().max().unwrap() as f64);
    fig.series.push(qx);
    fig.note(format!(
        "cold {:?} vs median body-edit re-JIT {:?} ({speedup:.1}x); queries executed \
         cold {} vs body-edit max {}",
        cold_wall,
        body_wall,
        cold_executed,
        body_edit_executed.iter().max().unwrap(),
    ));

    for &executed in &body_edit_executed {
        assert!(
            executed < cold_executed,
            "incremental: body edit executed {executed} queries, cold {cold_executed} — \
             incremental must do strictly less work"
        );
    }
    assert!(
        speedup >= 10.0,
        "incremental: median body-edit re-JIT must be >= 10x faster than cold: \
         cold {cold_wall:?}, incremental {body_wall:?} ({speedup:.1}x)"
    );
    fig
}

/// The `dist` acceptance sweep: RING_STEP_REDUCE on the socket-backed
/// backend in both launch modes — in-process worker threads and real
/// per-rank OS processes (the `repro` binary re-executing itself
/// through `dist::worker::run_if_spawned`) — held bit-identical to
/// `mpi-sim` at every world size, plus a seeded crash-recovery pass
/// through the shared checkpoint chain on real processes. Rendezvous
/// ports are ephemeral (`127.0.0.1:0`) and every wire wait is
/// deadline-bounded, so the experiment cannot hang `scripts/check.sh`.
pub fn dist_processes(quick: bool) -> Figure {
    use std::sync::Arc;
    use wootinj::{CheckpointPolicy, DistPlatform, FaultConfig, MpiSimPlatform};

    let mut fig = Figure::new(
        "dist",
        "dist backend: socket-connected ranks vs mpi-sim, threads and OS processes",
        "world size",
        "see series",
    );
    fig.note(
        "identical-threads / identical-procs are 1 when the dist run matches \
         mpi-sim bit-for-bit on result, vtime, and per-rank clocks; any \
         mismatch panics (check.sh fails on divergence)",
    );

    let (n, steps, sizes, nseeds): (i32, i32, &[u32], u64) = if quick {
        (12, 6, &[2, 4], 2)
    } else {
        (32, 12, &[2, 4, 8], 5)
    };
    fig.note(if quick {
        "quick mode: n=12, 6 steps, sizes {2,4}, 2 recovery seeds"
    } else {
        "full mode: n=32, 12 steps, sizes {2,4,8}, 5 recovery seeds"
    });

    let table = wootinj::build_table(&[("ring_step_reduce.jl", RING_STEP_REDUCE)]).unwrap();
    let args = [Value::Int(n), Value::Int(steps)];
    let worker_exe = std::env::current_exe().expect("dist experiment: current_exe");
    let run_on =
        |plat: Arc<dyn platform::Platform>, seed: Option<u64>, ckpt: bool| -> wootinj::RunReport {
            let id = plat.id();
            let mut env = WootinJ::new(&table).unwrap();
            let app = env.new_instance("RingStepReduce", &[]).unwrap();
            let mut opts = JitOptions::wootinj();
            if ckpt {
                opts = opts.with_checkpointing(CheckpointPolicy::every(1));
            }
            let mut code = env.jit_on(plat, &app, "run", &args, opts).unwrap();
            if let Some(seed) = seed {
                let mut cfg = FaultConfig::seeded(seed);
                cfg.crash = 0.05;
                code.set_faults(cfg);
            }
            code.set_timeout(200_000);
            code.invoke(&env)
                .unwrap_or_else(|e| panic!("dist experiment: `{id}` run failed: {e}"))
        };
    let assert_identical = |a: &wootinj::RunReport, b: &wootinj::RunReport, what: &str| {
        let (ab, bb) = (format!("{:?}", a.results), format!("{:?}", b.results));
        assert!(ab == bb, "dist DIVERGENCE ({what}): results {ab} vs {bb}");
        assert!(
            a.vtime_cycles == b.vtime_cycles && a.total_cycles == b.total_cycles,
            "dist DIVERGENCE ({what}): vtime {} vs {}, cycles {} vs {}",
            a.vtime_cycles,
            b.vtime_cycles,
            a.total_cycles,
            b.total_cycles
        );
        for (r, (x, y)) in a.per_rank.iter().zip(&b.per_rank).enumerate() {
            assert!(
                x.vclock == y.vclock
                    && x.compute_cycles == y.compute_cycles
                    && x.comm_cycles == y.comm_cycles,
                "dist DIVERGENCE ({what}): rank {r} clocks differ"
            );
        }
    };

    let procs = |size: u32| {
        Arc::new(
            DistPlatform::new(size).with_launch(dist::Launch::Processes {
                exe: worker_exe.clone(),
                args: vec![],
            }),
        )
    };

    let mut s_threads = Series::new("identical-threads");
    let mut s_procs = Series::new("identical-procs");
    let mut s_vtime = Series::new("vtime-cycles (mpi-sim == dist)");
    let mut s_overlap = Series::new("overlapped-rounds");
    for &size in sizes {
        let reference = run_on(Arc::new(MpiSimPlatform::new(size)), None, false);
        let threads = run_on(Arc::new(DistPlatform::new(size)), None, false);
        assert_identical(&reference, &threads, &format!("threads, size {size}"));
        s_threads.push(size as f64, 1.0);
        let processes = run_on(procs(size), None, false);
        assert_identical(&reference, &processes, &format!("procs, size {size}"));
        s_procs.push(size as f64, 1.0);
        s_vtime.push(size as f64, reference.vtime_cycles as f64);
        // The coordinator broadcasts Init, Restore, and Finish with an
        // overlapped fan-out (all requests written, then replies
        // awaited). Stats are drained before the Finish broadcast, so
        // a clean run reports the Init and Restore rounds; the
        // in-process backend never fans out at all.
        assert!(
            reference.resilience.overlapped_rounds == 0,
            "dist: mpi-sim counted overlapped fan-out rounds"
        );
        assert!(
            threads.resilience.overlapped_rounds >= 2,
            "dist: expected >=2 overlapped rounds (Init/Restore), got {}",
            threads.resilience.overlapped_rounds
        );
        s_overlap.push(size as f64, threads.resilience.overlapped_rounds as f64);
    }
    fig.series.push(s_threads);
    fig.series.push(s_procs);
    fig.series.push(s_vtime);
    fig.series.push(s_overlap);

    // Crash recovery on real processes: seeded crashes under cadence-1
    // checkpointing must land on the fault-free answer, bit for bit,
    // through the same chain-rollback machinery as every other backend.
    let size = 4u32;
    let clean = run_on(Arc::new(MpiSimPlatform::new(size)), None, false);
    let mut s_recover = Series::new("procs recovered-identical");
    let mut s_restarts = Series::new("procs restarts");
    let mut restarts = 0u64;
    for s in 0..nseeds {
        let seed = 0xD157_0000_0000_0000 | s;
        let report = run_on(procs(size), Some(seed), true);
        assert_eq!(
            format!("{:?}", report.results),
            format!("{:?}", clean.results),
            "dist DIVERGENCE: recovered process run, seed {seed:#x}"
        );
        s_recover.push(s as f64, 1.0);
        restarts += report.restart.restarts;
    }
    assert!(
        restarts >= 1,
        "dist crash seeds produced no restarts — the recovery gate is vacuous"
    );
    s_restarts.push(0.0, restarts as f64);
    fig.series.push(s_recover);
    fig.series.push(s_restarts);
    fig
}

pub fn service(quick: bool) -> Figure {
    use jitd::client::{jit_request, Client};
    use jitd::proto::{Arg, Reply, Request, ServiceStats, ShedReason};
    use jitd::{Daemon, DaemonConfig};
    use std::time::{Duration, Instant};

    let mut fig = Figure::new(
        "service",
        "jitd daemon: seeded client storm under overload, chaos, quotas, and faults",
        "counter",
        "value",
    );
    fig.note(
        "gate: every request ends in a reply or a typed shed within its \
         deadline; same-key concurrent clients cause exactly one translation; \
         chaos clients (mid-request death, truncated frames, garbage) and \
         injected translate faults never hang or kill the daemon",
    );

    // programs × clients-per-program; capacity (workers + queue) must admit
    // a full same-key wave so the single-flight gate is not masked by sheds.
    let (programs, clients, workers, queue_cap) = if quick { (2, 4, 4, 8) } else { (4, 8, 8, 16) };
    fig.note(if quick {
        "quick mode: 2 programs x 4 clients, 4 workers, queue 8"
    } else {
        "full mode: 4 programs x 8 clients, 8 workers, queue 16"
    });

    let root = std::env::temp_dir().join(format!("wj-bench-service-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let daemon = Daemon::bind(
        DaemonConfig {
            workers,
            queue_cap,
            root: root.clone(),
            quotas: vec![("capped".into(), 1)],
            ..DaemonConfig::default()
        },
        0,
    )
    .expect("service experiment: bind");
    let port = daemon.port();
    let handle = std::thread::spawn(move || daemon.serve());

    // Each distinct multiplier is a distinct source, hence a distinct
    // cache key; every client of one program shares that key.
    let source_for = |m: i32| {
        format!("@WootinJ final class Svc {{ Svc() {{ }} int run(int x) {{ return x * {m}; }} }}")
    };
    // Every reply must land well inside the default 10s request deadline.
    let reply_bound = Duration::from_secs(10);
    let mut max_latency = Duration::ZERO;
    let mut expected_requests = 0u64;

    // Wave 1 — single-flight: for each program, a concurrent same-key
    // burst. Every client completes on its own argument values.
    for p in 0..programs {
        let m = p + 2;
        let src = source_for(m);
        let burst: Vec<_> = (0..clients)
            .map(|c| {
                let src = src.clone();
                std::thread::spawn(move || {
                    let x = 11 + 7 * p + 13 * c; // seeded per-client args
                    let mut cl = Client::connect(port, "acme").unwrap();
                    let t0 = Instant::now();
                    let reply = cl
                        .jit(jit_request("svc.jl", &src, "Svc", "run", vec![Arg::I32(x)]))
                        .unwrap();
                    (reply, t0.elapsed(), x)
                })
            })
            .collect();
        for h in burst {
            let (reply, took, x) = h.join().expect("storm client panicked");
            assert!(
                took < reply_bound,
                "reply exceeded deadline bound: {took:?}"
            );
            max_latency = max_latency.max(took);
            expected_requests += 1;
            match reply {
                Reply::Done(o) => assert_eq!(
                    o.result,
                    Some(wootinj::Val::I32(m * x)),
                    "program x{m} client must run the shared artifact on its own args"
                ),
                other => panic!("single-flight wave client got {other:?}"),
            }
        }
    }

    // Wave 2 — overload: saturate every worker slot with held requests,
    // then pile on. Everything still terminates typed within bound.
    let holders: Vec<_> = (0..workers)
        .map(|_| {
            std::thread::spawn(move || {
                let mut cl = Client::connect(port, "acme").unwrap();
                let mut req =
                    jit_request("svc.jl", &source_for(2), "Svc", "run", vec![Arg::I32(1)]);
                req.hold_ms = 1_000;
                cl.jit(req).unwrap()
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(250));
    let squeezed: Vec<_> = (0..queue_cap + 4)
        .map(|i| {
            std::thread::spawn(move || {
                let mut cl = Client::connect(port, "acme").unwrap();
                let mut req = jit_request(
                    "svc.jl",
                    &source_for(2),
                    "Svc",
                    "run",
                    vec![Arg::I32(2 + i as i32)],
                );
                req.deadline_ms = 300;
                let t0 = Instant::now();
                (cl.jit(req).unwrap(), t0.elapsed())
            })
        })
        .collect();
    let mut shed_typed = 0u64;
    for h in squeezed {
        let (reply, took) = h.join().expect("squeezed client panicked");
        assert!(
            took < reply_bound,
            "overload reply exceeded bound: {took:?}"
        );
        max_latency = max_latency.max(took);
        expected_requests += 1;
        match reply {
            Reply::Done(_) => {}
            Reply::Shed { reason, .. } => {
                assert!(
                    matches!(reason, ShedReason::QueueFull | ShedReason::Deadline),
                    "overload shed must be queue-full or deadline, got {reason}"
                );
                shed_typed += 1;
            }
            other => panic!("overload wave client got {other:?}"),
        }
    }
    assert!(
        shed_typed >= 1,
        "the overload wave must shed at least one request typed"
    );
    for h in holders {
        expected_requests += 1;
        match h.join().expect("holder panicked") {
            Reply::Done(_) => {}
            other => panic!("slot holder must complete, got {other:?}"),
        }
    }

    // Wave 3 — quotas: a 1-byte tenant fits its first artifact, then any
    // *new* key is refused typed while the warm key keeps serving.
    let mut capped = Client::connect(port, "capped").unwrap();
    expected_requests += 3;
    match capped
        .jit(jit_request(
            "svc.jl",
            &source_for(9),
            "Svc",
            "run",
            vec![Arg::I32(3)],
        ))
        .unwrap()
    {
        Reply::Done(o) => assert_eq!(o.result, Some(wootinj::Val::I32(27))),
        other => panic!("capped tenant's first artifact must serve, got {other:?}"),
    }
    match capped
        .jit(jit_request(
            "svc.jl",
            &source_for(10),
            "Svc",
            "run",
            vec![Arg::I32(3)],
        ))
        .unwrap()
    {
        Reply::Shed { reason, .. } => assert_eq!(reason, ShedReason::OverQuota),
        other => panic!("over-quota key must shed typed, got {other:?}"),
    }
    match capped
        .jit(jit_request(
            "svc.jl",
            &source_for(9),
            "Svc",
            "run",
            vec![Arg::I32(5)],
        ))
        .unwrap()
    {
        Reply::Done(o) => assert_eq!(o.result, Some(wootinj::Val::I32(45))),
        other => panic!("warm key must serve an over-quota tenant, got {other:?}"),
    }

    // Wave 4 — chaos: a mid-request death, a truncated frame, and raw
    // garbage; a healthy client must still be served afterwards.
    let ghost_req = Request::Jit(jit_request(
        "svc.jl",
        &source_for(2),
        "Svc",
        "run",
        vec![Arg::I32(4)],
    ));
    Client::connect(port, "ghost")
        .unwrap()
        .send_and_die(&ghost_req);
    expected_requests += 1; // the ghost's request is decoded and served
    Client::connect(port, "cutter")
        .unwrap()
        .send_truncated_frame(&ghost_req, 9);
    Client::connect(port, "noise")
        .unwrap()
        .send_garbage(b"not WFR1 at all");
    let mut healthy = Client::connect(port, "acme").unwrap();
    expected_requests += 1;
    match healthy
        .jit(jit_request(
            "svc.jl",
            &source_for(2),
            "Svc",
            "run",
            vec![Arg::I32(8)],
        ))
        .unwrap()
    {
        Reply::Done(o) => assert_eq!(o.result, Some(wootinj::Val::I32(16))),
        other => panic!("daemon must survive chaos clients, got {other:?}"),
    }
    let absorb = Instant::now() + Duration::from_secs(20);
    loop {
        let s = healthy.stats().unwrap();
        if (s.disconnects >= 1 && s.bad_frames >= 2) || Instant::now() > absorb {
            assert!(
                s.disconnects >= 1,
                "mid-request death must be counted: {s:?}"
            );
            assert!(s.bad_frames >= 2, "bad frames must be counted: {s:?}");
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    Client::connect(port, "ops").unwrap().shutdown().unwrap();
    let stats: ServiceStats = handle.join().expect("daemon panicked under the storm");
    let _ = std::fs::remove_dir_all(&root);

    // Every decodable request ends in exactly one terminal counter.
    let terminal = stats.completed + stats.request_errors + stats.sheds();
    assert_eq!(
        terminal, expected_requests,
        "every request must end typed exactly once: {stats:?}"
    );
    // One translation per storm program, plus two cold tenant-scoped
    // artifacts (the capped tenant's x9 and the ghost tenant's x2 —
    // disk stores are per-tenant, so those keys start cold).
    assert_eq!(
        stats.translations,
        programs as u64 + 2,
        "single-flight must hold across the whole storm: {stats:?}"
    );
    assert_eq!(stats.request_errors, 0, "no untyped failures: {stats:?}");
    // Whether a same-key client follows the in-flight leader or
    // warm-starts from the sealed artifact is a thread race; the *sum*
    // is an invariant: every completed request that did not translate.
    assert_eq!(
        stats.warm_hits + stats.follower_serves,
        (programs * (clients - 1)) as u64 + workers as u64 + 2,
        "every non-leader completion is a warm hit or a follower serve: {stats:?}"
    );

    // Wave 5 — injected translate faults on a separate seeded daemon.
    let fault_root = std::env::temp_dir().join(format!("wj-bench-svcfault-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&fault_root);
    let mut fault = wootinj::FaultConfig::seeded(0x5EED);
    fault.translate_fail = 1.0;
    let fd = Daemon::bind(
        DaemonConfig {
            root: fault_root.clone(),
            fault: Some(fault),
            ..DaemonConfig::default()
        },
        0,
    )
    .expect("service experiment: fault bind");
    let fport = fd.port();
    let fhandle = std::thread::spawn(move || fd.serve());
    let mut fc = Client::connect(fport, "acme").unwrap();
    for _ in 0..2 {
        match fc
            .jit(jit_request(
                "svc.jl",
                &source_for(2),
                "Svc",
                "run",
                vec![Arg::I32(1)],
            ))
            .unwrap()
        {
            Reply::Err { message } => assert!(
                message.contains("injected translate failure"),
                "fault must surface typed: {message}"
            ),
            other => panic!("rate-1.0 translate fault must fail typed, got {other:?}"),
        }
    }
    Client::connect(fport, "ops").unwrap().shutdown().unwrap();
    let fstats = fhandle.join().expect("fault daemon panicked");
    let _ = std::fs::remove_dir_all(&fault_root);
    assert_eq!(fstats.resilience.translate_failures, 2);
    assert_eq!(fstats.translations, 0, "a failed draw must never translate");

    let mut counters = Series::new("storm counters");
    for (i, (_, v)) in [
        ("admitted", stats.admitted),
        ("completed", stats.completed),
        ("translations", stats.translations),
        (
            "warm-or-follower-serves",
            stats.warm_hits + stats.follower_serves,
        ),
        ("shed-queue-full", stats.shed_queue_full),
        ("shed-deadline", stats.shed_deadline),
        ("shed-over-quota", stats.shed_over_quota),
        ("request-errors", stats.request_errors),
        ("bad-frames", stats.bad_frames),
        ("disconnects", stats.disconnects),
        (
            "injected-translate-failures",
            fstats.resilience.translate_failures,
        ),
    ]
    .iter()
    .enumerate()
    {
        counters.push(i as f64, *v as f64);
    }
    fig.note(
        "storm counters series order: admitted, completed, translations, \
         warm-or-follower-serves, shed-queue-full, shed-deadline, \
         shed-over-quota, request-errors, bad-frames, disconnects, \
         injected-translate-failures",
    );
    fig.series.push(counters);
    let mut s_lat = Series::new("max-reply-latency-ms");
    s_lat.push(0.0, max_latency.as_secs_f64() * 1e3);
    fig.series.push(s_lat);
    let mut s_gate = Series::new("reply-or-typed-shed");
    s_gate.push(0.0, 1.0);
    fig.series.push(s_gate);
    fig
}

/// All figure/table ids, in paper order.
pub fn all_ids() -> Vec<&'static str> {
    vec![
        "fig3",
        "tab1",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "tab2",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "tab3",
        "tab3-amortized",
        "pass-profile",
        "fig13",
        "fig14",
        "fig15",
        "fig16",
        "fig17",
        "fig18",
        "ablate-devirt",
        "ablate-inline",
        "ablate-comm",
        "ablate-gpu",
        "ext-reduce",
        "fault-matrix",
        "restart-cost",
        "chaos",
        "backend-matrix",
        "wallclock",
        "incremental",
        "dist",
        "service",
    ]
}

/// Dispatch by id (full-size variant of every experiment).
pub fn run_experiment(id: &str) -> Option<Figure> {
    run_experiment_with(id, false)
}

/// Dispatch by id; `quick` selects a smoke-test-sized variant where the
/// experiment supports one (`fault-matrix`, `restart-cost`, `chaos`,
/// `backend-matrix`, `wallclock`, `incremental`, `dist`, and `service`).
pub fn run_experiment_with(id: &str, quick: bool) -> Option<Figure> {
    Some(match id {
        "fig3" => fig3(),
        "fig4" => fig4(),
        "fig5" => fig5(),
        "fig6" => fig6(),
        "fig7" => fig7(),
        "fig9" => fig9(),
        "fig10" => fig10(),
        "fig11" => fig11(),
        "fig12" => fig12(),
        "fig13" => fig13(),
        "fig14" => fig14(),
        "fig15" => fig15(),
        "fig16" => fig16(),
        "fig17" => fig17(),
        "fig18" => fig18(),
        "tab1" => tab1(),
        "tab2" => tab2(),
        "tab3" => tab3(),
        "tab3-amortized" => tab3_amortized(),
        "pass-profile" => pass_profile(),
        "ablate-devirt" => ablate_devirt(),
        "ablate-inline" => ablate_inline(),
        "ablate-comm" => ablate_comm(),
        "ablate-gpu" => ablate_gpu(),
        "ext-reduce" => ext_reduce(),
        "fault-matrix" => fault_matrix(quick),
        "restart-cost" => restart_cost(quick),
        "chaos" => chaos(quick),
        "backend-matrix" => backend_matrix(quick),
        "wallclock" => wallclock(quick),
        "incremental" => incremental(quick),
        "dist" => dist_processes(quick),
        "service" => service(quick),
        _ => return None,
    })
}
