//! Figure/series data model for the reproduction harness: what the paper
//! plots, we print as aligned tables and persist as JSON under `results/`.
//!
//! JSON (de)serialization is hand-rolled so the harness builds on
//! network-isolated hosts with no external crates.

use std::fmt::Write as _;
use std::path::Path;

/// One plotted point.
#[derive(Debug, Clone, Copy)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

/// One plotted series (a line in the paper's figure).
#[derive(Debug, Clone)]
pub struct Series {
    pub name: String,
    pub points: Vec<Point>,
}

impl Series {
    pub fn new(name: impl Into<String>) -> Self {
        Series {
            name: name.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push(Point { x, y });
    }
}

/// A reproduced figure or table.
#[derive(Debug, Clone)]
pub struct Figure {
    /// e.g. "fig4", "tab3".
    pub id: String,
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    pub series: Vec<Series>,
    /// Workload scaling and substitutions relative to the paper.
    pub notes: Vec<String>,
}

impl Figure {
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn note(&mut self, n: impl Into<String>) {
        self.notes.push(n.into());
    }

    /// Render as an aligned text table (x down the rows, series across).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        // Collect the x values of the longest series.
        let xs: Vec<f64> = self
            .series
            .iter()
            .max_by_key(|s| s.points.len())
            .map(|s| s.points.iter().map(|p| p.x).collect())
            .unwrap_or_default();
        let _ = write!(out, "{:>14}", self.x_label);
        for s in &self.series {
            let _ = write!(out, "{:>20}", s.name);
        }
        let _ = writeln!(out);
        for (i, x) in xs.iter().enumerate() {
            let _ = write!(out, "{x:>14}");
            for s in &self.series {
                match s
                    .points
                    .iter()
                    .find(|p| (p.x - x).abs() < 1e-9)
                    .or(s.points.get(i))
                {
                    Some(p) => {
                        let _ = write!(out, "{:>20.3}", p.y);
                    }
                    None => {
                        let _ = write!(out, "{:>20}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "    (y: {})", self.y_label);
        for n in &self.notes {
            let _ = writeln!(out, "    note: {n}");
        }
        out
    }

    /// Serialize to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"id\": {},", json_str(&self.id));
        let _ = writeln!(out, "  \"title\": {},", json_str(&self.title));
        let _ = writeln!(out, "  \"x_label\": {},", json_str(&self.x_label));
        let _ = writeln!(out, "  \"y_label\": {},", json_str(&self.y_label));
        out.push_str("  \"series\": [");
        for (i, s) in self.series.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\n");
            let _ = writeln!(out, "      \"name\": {},", json_str(&s.name));
            out.push_str("      \"points\": [");
            for (j, p) in s.points.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(
                    out,
                    "\n        {{ \"x\": {}, \"y\": {} }}",
                    json_num(p.x),
                    json_num(p.y)
                );
            }
            if !s.points.is_empty() {
                out.push_str("\n      ");
            }
            out.push_str("]\n    }");
        }
        if !self.series.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("],\n");
        out.push_str("  \"notes\": [");
        for (i, n) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&json_str(n));
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parse a figure back from JSON produced by [`Figure::to_json`].
    pub fn from_json(text: &str) -> Result<Figure, String> {
        let v = JsonValue::parse(text)?;
        let obj = v.as_obj()?;
        let get = |k: &str| -> Result<&JsonValue, String> {
            obj.iter()
                .find(|(key, _)| key == k)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing key `{k}`"))
        };
        let mut fig = Figure::new(
            get("id")?.as_str()?,
            get("title")?.as_str()?,
            get("x_label")?.as_str()?,
            get("y_label")?.as_str()?,
        );
        for sv in get("series")?.as_arr()? {
            let sobj = sv.as_obj()?;
            let name = sobj
                .iter()
                .find(|(k, _)| k == "name")
                .ok_or("series missing `name`")?
                .1
                .as_str()?;
            let mut s = Series::new(name);
            if let Some((_, pts)) = sobj.iter().find(|(k, _)| k == "points") {
                for pv in pts.as_arr()? {
                    let pobj = pv.as_obj()?;
                    let coord = |k: &str| -> Result<f64, String> {
                        pobj.iter()
                            .find(|(key, _)| key == k)
                            .ok_or_else(|| format!("point missing `{k}`"))?
                            .1
                            .as_num()
                    };
                    s.push(coord("x")?, coord("y")?);
                }
            }
            fig.series.push(s);
        }
        for nv in get("notes")?.as_arr()? {
            fig.note(nv.as_str()?);
        }
        Ok(fig)
    }

    /// Persist to `results/<id>.json`.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(path, self.to_json())
    }

    /// Ratio of the last y to the first y of the named series (for the
    /// EXPERIMENTS.md shape checks and unit tests).
    pub fn series_ratio(&self, name: &str) -> Option<f64> {
        let s = self.series.iter().find(|s| s.name == name)?;
        let first = s.points.first()?.y;
        let last = s.points.last()?.y;
        if first == 0.0 {
            None
        } else {
            Some(last / first)
        }
    }

    /// y value of `series` at x (exact match).
    pub fn value_at(&self, name: &str, x: f64) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.name == name)?
            .points
            .iter()
            .find(|p| (p.x - x).abs() < 1e-9)
            .map(|p| p.y)
    }
}

/// Escape and quote a string for JSON output.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a finite f64 as a JSON number (NaN/inf become null, which
/// `from_json` reads back as 0).
fn json_num(x: f64) -> String {
    if !x.is_finite() {
        return "null".to_string();
    }
    // `{}` on f64 always includes enough digits to round-trip.
    let s = format!("{x}");
    s
}

/// A minimal JSON value — just enough to round-trip what `to_json` emits.
enum JsonValue {
    Null,
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes: Vec<char> = text.chars().collect();
        let mut pos = 0;
        let v = parse_value(&bytes, &mut pos)?;
        skip_ws(&bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing characters at offset {pos}"));
        }
        Ok(v)
    }

    fn as_obj(&self) -> Result<&[(String, JsonValue)], String> {
        match self {
            JsonValue::Obj(m) => Ok(m),
            _ => Err("expected object".into()),
        }
    }

    fn as_arr(&self) -> Result<&[JsonValue], String> {
        match self {
            JsonValue::Arr(a) => Ok(a),
            _ => Err("expected array".into()),
        }
    }

    fn as_str(&self) -> Result<&str, String> {
        match self {
            JsonValue::Str(s) => Ok(s),
            _ => Err("expected string".into()),
        }
    }

    fn as_num(&self) -> Result<f64, String> {
        match self {
            JsonValue::Num(n) => Ok(*n),
            JsonValue::Null => Ok(0.0),
            _ => Err("expected number".into()),
        }
    }
}

fn skip_ws(s: &[char], pos: &mut usize) {
    while *pos < s.len() && s[*pos].is_whitespace() {
        *pos += 1;
    }
}

fn expect(s: &[char], pos: &mut usize, c: char) -> Result<(), String> {
    skip_ws(s, pos);
    if s.get(*pos) == Some(&c) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected `{c}` at offset {pos}", pos = *pos))
    }
}

fn parse_value(s: &[char], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(s, pos);
    match s.get(*pos) {
        Some('{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(s, pos);
            if s.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            loop {
                skip_ws(s, pos);
                let key = parse_string(s, pos)?;
                expect(s, pos, ':')?;
                let val = parse_value(s, pos)?;
                fields.push((key, val));
                skip_ws(s, pos);
                match s.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(JsonValue::Obj(fields));
                    }
                    _ => return Err(format!("expected `,` or `}}` at offset {pos}", pos = *pos)),
                }
            }
        }
        Some('[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(s, pos);
            if s.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            loop {
                items.push(parse_value(s, pos)?);
                skip_ws(s, pos);
                match s.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(JsonValue::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at offset {pos}", pos = *pos)),
                }
            }
        }
        Some('"') => Ok(JsonValue::Str(parse_string(s, pos)?)),
        Some('n') => {
            if s[*pos..].starts_with(&['n', 'u', 'l', 'l']) {
                *pos += 4;
                Ok(JsonValue::Null)
            } else {
                Err(format!("bad literal at offset {pos}", pos = *pos))
            }
        }
        Some(c) if *c == '-' || c.is_ascii_digit() => {
            let start = *pos;
            while *pos < s.len() && matches!(s[*pos], '-' | '+' | '.' | 'e' | 'E' | '0'..='9') {
                *pos += 1;
            }
            let text: String = s[start..*pos].iter().collect();
            text.parse::<f64>()
                .map(JsonValue::Num)
                .map_err(|e| format!("bad number `{text}`: {e}"))
        }
        _ => Err(format!("unexpected character at offset {pos}", pos = *pos)),
    }
}

fn parse_string(s: &[char], pos: &mut usize) -> Result<String, String> {
    if s.get(*pos) != Some(&'"') {
        return Err(format!("expected string at offset {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = s.get(*pos) {
        *pos += 1;
        match c {
            '"' => return Ok(out),
            '\\' => {
                let esc = s.get(*pos).copied().ok_or("unterminated escape")?;
                *pos += 1;
                match esc {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'u' => {
                        if *pos + 4 > s.len() {
                            return Err("truncated \\u escape".into());
                        }
                        let hex: String = s[*pos..*pos + 4].iter().collect();
                        *pos += 4;
                        let code = u32::from_str_radix(&hex, 16)
                            .map_err(|e| format!("bad \\u escape `{hex}`: {e}"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    other => return Err(format!("bad escape `\\{other}`")),
                }
            }
            c => out.push(c),
        }
    }
    Err("unterminated string".into())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_series() {
        let mut fig = Figure::new("figX", "test", "ranks", "cycles");
        let mut a = Series::new("A");
        a.push(1.0, 10.0);
        a.push(2.0, 20.0);
        let mut b = Series::new("B");
        b.push(1.0, 11.0);
        b.push(2.0, 21.0);
        fig.series.push(a);
        fig.series.push(b);
        let r = fig.render();
        assert!(r.contains("figX"));
        assert!(r.contains("A"));
        assert!(r.contains("21.000"));
    }

    #[test]
    fn ratios_and_lookup() {
        let mut fig = Figure::new("f", "t", "x", "y");
        let mut s = Series::new("S");
        s.push(1.0, 5.0);
        s.push(4.0, 20.0);
        fig.series.push(s);
        assert_eq!(fig.series_ratio("S"), Some(4.0));
        assert_eq!(fig.value_at("S", 4.0), Some(20.0));
        assert_eq!(fig.value_at("S", 3.0), None);
    }

    #[test]
    fn json_roundtrip() {
        let mut fig = Figure::new("f", "t \"quoted\"\n", "x", "y");
        let mut s = Series::new("S");
        s.push(1.0, 5.0);
        s.push(0.5, -3.25e-4);
        fig.series.push(s);
        fig.note("scaled down");
        let j = fig.to_json();
        let back = Figure::from_json(&j).unwrap();
        assert_eq!(back.id, "f");
        assert_eq!(back.title, "t \"quoted\"\n");
        assert_eq!(back.notes.len(), 1);
        assert_eq!(back.series.len(), 1);
        assert_eq!(back.series[0].points.len(), 2);
        assert_eq!(back.series[0].points[1].y, -3.25e-4);
    }
}
