//! Figure/series data model for the reproduction harness: what the paper
//! plots, we print as aligned tables and persist as JSON under `results/`.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::Path;

/// One plotted point.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Point {
    pub x: f64,
    pub y: f64,
}

/// One plotted series (a line in the paper's figure).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    pub name: String,
    pub points: Vec<Point>,
}

impl Series {
    pub fn new(name: impl Into<String>) -> Self {
        Series { name: name.into(), points: Vec::new() }
    }

    pub fn push(&mut self, x: f64, y: f64) {
        self.points.push(Point { x, y });
    }
}

/// A reproduced figure or table.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Figure {
    /// e.g. "fig4", "tab3".
    pub id: String,
    pub title: String,
    pub x_label: String,
    pub y_label: String,
    pub series: Vec<Series>,
    /// Workload scaling and substitutions relative to the paper.
    pub notes: Vec<String>,
}

impl Figure {
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        y_label: impl Into<String>,
    ) -> Self {
        Figure {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            y_label: y_label.into(),
            series: Vec::new(),
            notes: Vec::new(),
        }
    }

    pub fn note(&mut self, n: impl Into<String>) {
        self.notes.push(n.into());
    }

    /// Render as an aligned text table (x down the rows, series across).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== {} — {} ==", self.id, self.title);
        // Collect the x values of the longest series.
        let xs: Vec<f64> = self
            .series
            .iter()
            .max_by_key(|s| s.points.len())
            .map(|s| s.points.iter().map(|p| p.x).collect())
            .unwrap_or_default();
        let _ = write!(out, "{:>14}", self.x_label);
        for s in &self.series {
            let _ = write!(out, "{:>20}", s.name);
        }
        let _ = writeln!(out);
        for (i, x) in xs.iter().enumerate() {
            let _ = write!(out, "{x:>14}");
            for s in &self.series {
                match s.points.iter().find(|p| (p.x - x).abs() < 1e-9).or(s.points.get(i)) {
                    Some(p) => {
                        let _ = write!(out, "{:>20.3}", p.y);
                    }
                    None => {
                        let _ = write!(out, "{:>20}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        let _ = writeln!(out, "    (y: {})", self.y_label);
        for n in &self.notes {
            let _ = writeln!(out, "    note: {n}");
        }
        out
    }

    /// Persist to `results/<id>.json`.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.json", self.id));
        std::fs::write(path, serde_json::to_string_pretty(self).unwrap())
    }

    /// Ratio of the last y to the first y of the named series (for the
    /// EXPERIMENTS.md shape checks and unit tests).
    pub fn series_ratio(&self, name: &str) -> Option<f64> {
        let s = self.series.iter().find(|s| s.name == name)?;
        let first = s.points.first()?.y;
        let last = s.points.last()?.y;
        if first == 0.0 {
            None
        } else {
            Some(last / first)
        }
    }

    /// y value of `series` at x (exact match).
    pub fn value_at(&self, name: &str, x: f64) -> Option<f64> {
        self.series
            .iter()
            .find(|s| s.name == name)?
            .points
            .iter()
            .find(|p| (p.x - x).abs() < 1e-9)
            .map(|p| p.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_series() {
        let mut fig = Figure::new("figX", "test", "ranks", "cycles");
        let mut a = Series::new("A");
        a.push(1.0, 10.0);
        a.push(2.0, 20.0);
        let mut b = Series::new("B");
        b.push(1.0, 11.0);
        b.push(2.0, 21.0);
        fig.series.push(a);
        fig.series.push(b);
        let r = fig.render();
        assert!(r.contains("figX"));
        assert!(r.contains("A"));
        assert!(r.contains("21.000"));
    }

    #[test]
    fn ratios_and_lookup() {
        let mut fig = Figure::new("f", "t", "x", "y");
        let mut s = Series::new("S");
        s.push(1.0, 5.0);
        s.push(4.0, 20.0);
        fig.series.push(s);
        assert_eq!(fig.series_ratio("S"), Some(4.0));
        assert_eq!(fig.value_at("S", 4.0), Some(20.0));
        assert_eq!(fig.value_at("S", 3.0), None);
    }

    #[test]
    fn json_roundtrip() {
        let mut fig = Figure::new("f", "t", "x", "y");
        let mut s = Series::new("S");
        s.push(1.0, 5.0);
        fig.series.push(s);
        fig.note("scaled down");
        let j = serde_json::to_string(&fig).unwrap();
        let back: Figure = serde_json::from_str(&j).unwrap();
        assert_eq!(back.id, "f");
        assert_eq!(back.notes.len(), 1);
    }
}
