//! Shape tests: the qualitative findings of the paper's evaluation,
//! asserted on small deterministic workloads. If a code change breaks one
//! of these, the corresponding figure no longer reproduces.

use bench::experiments::{run_matmul, run_stencil, Kind, MatTarget};
use hpclib::StencilPlatform;

const DIMS: (i32, i32, i32) = (10, 10, 6);
const STEPS: i32 = 2;

#[test]
fn figure3_ordering_java_cpp_c() {
    let java = run_stencil(Kind::Java, StencilPlatform::Cpu, 1, DIMS, STEPS, true).vtime;
    let cpp = run_stencil(Kind::Cpp, StencilPlatform::Cpu, 1, DIMS, STEPS, true).vtime;
    let c = run_stencil(Kind::C, StencilPlatform::Cpu, 1, DIMS, STEPS, true).vtime;
    assert!(java > cpp, "Java {java} must exceed C++ {cpp}");
    assert!(
        cpp > c * 5,
        "C++ {cpp} must be far above C {c} (paper: >10x)"
    );
}

#[test]
fn figure17_optimized_series_land_between_cpp_and_c() {
    let cpp = run_stencil(Kind::Cpp, StencilPlatform::Cpu, 1, DIMS, STEPS, true).vtime;
    let tmpl = run_stencil(Kind::Template, StencilPlatform::Cpu, 1, DIMS, STEPS, true).vtime;
    let tnv = run_stencil(
        Kind::TemplateNoVirt,
        StencilPlatform::Cpu,
        1,
        DIMS,
        STEPS,
        true,
    )
    .vtime;
    let wj = run_stencil(Kind::WootinJ, StencilPlatform::Cpu, 1, DIMS, STEPS, true).vtime;
    let c = run_stencil(Kind::C, StencilPlatform::Cpu, 1, DIMS, STEPS, true).vtime;
    for (name, v) in [("Template", tmpl), ("TemplateNoVirt", tnv), ("WootinJ", wj)] {
        assert!(v < cpp / 2, "{name} {v} must be well below C++ {cpp}");
        assert!(v >= c, "{name} {v} cannot beat hand-written C {c}");
        assert!(
            v < c * 3,
            "{name} {v} must be within a small factor of C {c}"
        );
    }
    // The paper's diffusion-specific finding.
    assert!(
        tnv < wj,
        "Template w/o virt. {tnv} outperforms WootinJ {wj} on diffusion"
    );
}

#[test]
fn all_series_compute_the_same_checksum() {
    let kinds = [
        Kind::Java,
        Kind::Cpp,
        Kind::Template,
        Kind::TemplateNoVirt,
        Kind::WootinJ,
    ];
    let results: Vec<f32> = kinds
        .iter()
        .map(|&k| run_stencil(k, StencilPlatform::Cpu, 1, DIMS, STEPS, true).result)
        .collect();
    for w in results.windows(2) {
        assert_eq!(w[0], w[1]);
    }
    // The hand-inlined C program computes the same physics (identical
    // float operation order), so it matches exactly too.
    let c = run_stencil(Kind::C, StencilPlatform::Cpu, 1, DIMS, STEPS, true).result;
    assert_eq!(results[0], c);
}

#[test]
fn weak_scaling_is_nearly_flat() {
    // Figure 4's property: doubling ranks with fixed per-rank work adds
    // only communication.
    let per_rank = (8, 8, 4);
    let t1 = run_stencil(
        Kind::WootinJ,
        StencilPlatform::CpuMpi,
        1,
        per_rank,
        2,
        false,
    )
    .vtime;
    let t4 = run_stencil(
        Kind::WootinJ,
        StencilPlatform::CpuMpi,
        4,
        (per_rank.0, per_rank.1, per_rank.2 * 4),
        2,
        false,
    )
    .vtime;
    assert!(
        t4 < t1 * 2,
        "weak scaling 1->4 ranks must stay near flat: {t1} -> {t4}"
    );
    assert!(t4 > t1, "halo exchange must cost something: {t1} -> {t4}");
}

#[test]
fn strong_scaling_speeds_up() {
    // Figure 13's property: fixed global problem, more ranks, less time.
    let dims = (8, 8, 16);
    let t1 = run_stencil(Kind::WootinJ, StencilPlatform::CpuMpi, 1, dims, 2, false).vtime;
    let t4 = run_stencil(Kind::WootinJ, StencilPlatform::CpuMpi, 4, dims, 2, false).vtime;
    // At this miniature size the halo planes are a large fraction of the
    // slab, so expect a real but sub-ideal speedup.
    assert!(
        (t4 as f64) < t1 as f64 * 0.6,
        "4 ranks must be >1.6x faster: {t1} -> {t4}"
    );
}

#[test]
fn wootinj_tracks_c_once_compile_time_is_excluded() {
    // Figures 13-16's headline: WootinJ within a modest factor of C.
    let dims = (8, 8, 16);
    for ranks in [1u32, 4] {
        let c = run_stencil(Kind::C, StencilPlatform::CpuMpi, ranks, dims, 2, false).vtime;
        let wj = run_stencil(
            Kind::WootinJ,
            StencilPlatform::CpuMpi,
            ranks,
            dims,
            2,
            false,
        )
        .vtime;
        assert!(
            (wj as f64) < c as f64 * 1.5,
            "ranks {ranks}: WootinJ {wj} must be within 50% of C {c}"
        );
    }
}

#[test]
fn gpu_offload_beats_cpu_for_the_same_workload() {
    let dims = (12, 12, 8);
    let cpu = run_stencil(Kind::WootinJ, StencilPlatform::Cpu, 1, dims, 3, false).vtime;
    let gpu = run_stencil(Kind::WootinJ, StencilPlatform::Gpu, 1, dims, 3, false).vtime;
    assert!(
        gpu < cpu,
        "the simulated GPU must accelerate the stencil: {cpu} -> {gpu}"
    );
}

#[test]
fn matmul_series_orderings() {
    let n = 16;
    let java = run_matmul(Kind::Java, MatTarget::Cpu, 1, n).vtime;
    let cpp = run_matmul(Kind::Cpp, MatTarget::Cpu, 1, n).vtime;
    let wj = run_matmul(Kind::WootinJ, MatTarget::Cpu, 1, n).vtime;
    let c = run_matmul(Kind::C, MatTarget::Cpu, 1, n).vtime;
    assert!(
        java > cpp && cpp > wj && wj > c,
        "{java} > {cpp} > {wj} > {c}"
    );
}

#[test]
fn fox_strong_scaling_speeds_up() {
    let n = 24;
    let t1 = run_matmul(Kind::C, MatTarget::Fox, 1, n).vtime;
    let t4 = run_matmul(Kind::C, MatTarget::Fox, 4, n).vtime;
    assert!(t4 < t1, "Fox on 4 ranks must beat 1 rank: {t1} -> {t4}");
}

#[test]
fn compile_cost_is_independent_of_problem_size() {
    // Table 3's property, checked on generated-code size: the translated
    // program is identical for different problem sizes (sizes are runtime
    // scalars, not shapes).
    let small = run_stencil(Kind::WootinJ, StencilPlatform::Cpu, 1, (8, 8, 4), 1, false);
    let large = run_stencil(
        Kind::WootinJ,
        StencilPlatform::Cpu,
        1,
        (16, 16, 12),
        5,
        false,
    );
    assert_eq!(small.instrs, large.instrs);
    assert!(large.vtime > small.vtime * 5);
}
