//! The executor-seam replay property: for *any* seeded fault plan,
//! world size, and worker count, a [`ThreadExecutor`] in
//! [`ExecMode::Replay`] is observationally identical to the historical
//! serial loop — same results, same per-rank virtual clocks, same
//! resilience counters, same typed error on failure — because replay
//! hands slices back in the seeded batch order the scheduler chose.
//!
//! No proptest/quickcheck: cases are driven by the same xorshift64*
//! idiom the fault plans themselves use, so the suite is deterministic.

use exec::FaultConfig;
use jlang::ast::BinOp;
use jlang::types::PrimKind;
use mpi_sim::{CheckpointPolicy, ExecMode, ExecutorCfg, World, WorldRun};
use nir::{ElemTy, FuncBuilder, FuncId, FuncKind, Instr, IntrinOp, Program, Ty};

/// xorshift64* (the in-tree PRNG idiom) for deriving per-case parameters.
fn next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

fn unit(state: &mut u64) -> f64 {
    (next(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Each rank runs `steps` rounds of a ring exchange (send to rank+1,
/// recv from rank-1), then contributes buf[0] to an allreduce-sum:
/// point-to-point traffic for the fault plan to chew on, a collective,
/// and plenty of yield points for crash/fuel draws to land.
fn ring_program(steps: i32) -> (Program, FuncId) {
    let mut fb = FuncBuilder::new("ring", vec![], Some(Ty::F32), FuncKind::Host);
    let rank = fb.reg(Ty::I32);
    let size = fb.reg(Ty::I32);
    let zero = fb.reg(Ty::I32);
    let one = fb.reg(Ty::I32);
    let n = fb.reg(Ty::I32);
    let limit = fb.reg(Ty::I32);
    let i = fb.reg(Ty::I32);
    let dest = fb.reg(Ty::I32);
    let src = fb.reg(Ty::I32);
    let tag = fb.reg(Ty::I32);
    let buf = fb.reg(Ty::Arr(ElemTy::F32));
    let v = fb.reg(Ty::F32);
    let cond = fb.reg(Ty::Bool);
    let out = fb.reg(Ty::F32);
    let head = fb.label();
    let body = fb.label();
    let done = fb.label();

    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiRank,
        args: vec![],
        dst: Some(rank),
    });
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiSize,
        args: vec![],
        dst: Some(size),
    });
    fb.emit(Instr::ConstI32(zero, 0));
    fb.emit(Instr::ConstI32(one, 1));
    fb.emit(Instr::ConstI32(n, 2));
    fb.emit(Instr::ConstI32(tag, 3));
    fb.emit(Instr::ConstI32(limit, steps));
    fb.emit(Instr::ConstI32(i, 0));
    fb.emit(Instr::NewArr {
        elem: ElemTy::F32,
        len: n,
        dst: buf,
    });
    fb.emit(Instr::ConstF32(v, 1.0));
    fb.emit(Instr::StArr {
        arr: buf,
        idx: zero,
        src: v,
    });
    // dest = (rank + 1) % size; src = (rank + size - 1) % size
    fb.emit(Instr::Bin {
        op: BinOp::Add,
        kind: PrimKind::Int,
        dst: dest,
        lhs: rank,
        rhs: one,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Rem,
        kind: PrimKind::Int,
        dst: dest,
        lhs: dest,
        rhs: size,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Add,
        kind: PrimKind::Int,
        dst: src,
        lhs: rank,
        rhs: size,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Sub,
        kind: PrimKind::Int,
        dst: src,
        lhs: src,
        rhs: one,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Rem,
        kind: PrimKind::Int,
        dst: src,
        lhs: src,
        rhs: size,
    });
    fb.jmp(head);
    fb.bind(head);
    fb.emit(Instr::Bin {
        op: BinOp::Lt,
        kind: PrimKind::Int,
        dst: cond,
        lhs: i,
        rhs: limit,
    });
    fb.br(cond, body, done);
    fb.bind(body);
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiSendF32,
        args: vec![buf, zero, n, dest, tag],
        dst: None,
    });
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiRecvF32,
        args: vec![buf, zero, n, src, tag],
        dst: None,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Add,
        kind: PrimKind::Int,
        dst: i,
        lhs: i,
        rhs: one,
    });
    fb.jmp(head);
    fb.bind(done);
    fb.emit(Instr::LdArr {
        arr: buf,
        idx: zero,
        dst: v,
    });
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiAllreduceSumF32,
        args: vec![v],
        dst: Some(out),
    });
    fb.emit(Instr::Ret(Some(out)));
    let mut p = Program::default();
    let id = p.add_func(fb.finish().unwrap());
    p.validate().unwrap();
    (p, id)
}

/// Everything an executor could plausibly perturb, flattened to one
/// comparable string: per-rank results + virtual clocks + cycle splits,
/// world figure-of-merit, and the resilience/restart counters.
fn fingerprint(run: &WorldRun) -> String {
    let ranks: Vec<String> = run
        .ranks
        .iter()
        .map(|r| {
            format!(
                "{:?}/v{}/c{}/m{}",
                r.result, r.vclock, r.compute_cycles, r.comm_cycles
            )
        })
        .collect();
    format!(
        "[{}] vtime={} total={} res={:?} restarts={}",
        ranks.join(" "),
        run.vtime,
        run.total_cycles,
        run.resilience,
        run.restart.restarts
    )
}

/// One case: Ok(fingerprint) on completion, Err(typed display) on a
/// typed failure — both sides of the property must match exactly.
fn run_case(
    program: &Program,
    entry: FuncId,
    size: u32,
    cfg: FaultConfig,
    executor: ExecutorCfg,
) -> Result<String, String> {
    let world = World::new(program, size)
        .with_faults(cfg)
        .with_timeout(5_000)
        .with_executor(executor);
    world
        .run(entry, |_, _| Ok(vec![]))
        .map(|run| fingerprint(&run))
        .map_err(|e| e.to_string())
}

/// The headline property: 64 seeds × worker counts {1,2,4,8}. Every
/// seed derives a world size and a fault mix (drops, corruption,
/// delays, crashes, fuel exhaustion); the serial reference outcome —
/// completion fingerprint or typed error — must be reproduced
/// bit-for-bit by replay-mode OS threads at every worker count.
#[test]
fn thread_replay_matches_sim_for_any_fault_plan_and_worker_count() {
    let (program, entry) = ring_program(5);
    let mut completed = 0usize;
    let mut failed = 0usize;
    for seed in 0..64u64 {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let size = 2 + (next(&mut s) % 4) as u32; // 2..=5
        let mut cfg = FaultConfig::seeded(0xE8EC + seed);
        cfg.crash = unit(&mut s) * 0.04;
        cfg.fuel_exhaust = unit(&mut s) * 0.04;
        cfg.msg_drop = unit(&mut s) * 0.04;
        cfg.msg_corrupt = unit(&mut s) * 0.08;
        cfg.msg_delay = unit(&mut s) * 0.10;
        let reference = run_case(&program, entry, size, cfg, ExecutorCfg::Sim);
        for workers in [1u32, 2, 4, 8] {
            let threaded = run_case(
                &program,
                entry,
                size,
                cfg,
                ExecutorCfg::Threads {
                    workers,
                    mode: ExecMode::Replay,
                },
            );
            assert_eq!(
                reference, threaded,
                "seed {seed} size {size} workers {workers}: replay must be bit-identical to sim"
            );
        }
        match reference {
            Ok(_) => completed += 1,
            Err(_) => failed += 1,
        }
    }
    // Both outcomes must occur across the sweep, or the property is
    // vacuous (all-clean would never exercise the fault paths under
    // threads; all-failed would never exercise full completion).
    assert!(completed > 0, "no case completed");
    assert!(failed > 0, "no case hit a typed failure");
}

/// Checkpoint/rollback under threads: crash-heavy plans that *recover*
/// via `run_with_restart` must also be bit-identical — rollback
/// bookkeeping (restart counts, vtime lost, reseeded fault cursors) is
/// scheduler state the executor seam must not perturb.
#[test]
fn thread_replay_matches_sim_through_restarts() {
    let (program, entry) = ring_program(4);
    let policy = CheckpointPolicy::every(1);
    let mut recovered = 0usize;
    for seed in 0..12u64 {
        let mut cfg = FaultConfig::seeded(0xC4A5_0000 + seed);
        cfg.crash = 0.05;
        let run = |executor: ExecutorCfg| {
            World::new(&program, 4)
                .with_faults(cfg)
                .with_timeout(20_000)
                .with_executor(executor)
                .run_with_restart(entry, |_, _| Ok(vec![]), &policy, 16)
                .map(|r| fingerprint(&r))
                .map_err(|e| e.to_string())
        };
        let reference = run(ExecutorCfg::Sim);
        for workers in [2u32, 8] {
            let threaded = run(ExecutorCfg::Threads {
                workers,
                mode: ExecMode::Replay,
            });
            assert_eq!(
                reference, threaded,
                "seed {seed} workers {workers}: restart path must replay identically"
            );
        }
        if matches!(&reference, Ok(fp) if fp.contains("restarts=") && !fp.contains("restarts=0")) {
            recovered += 1;
        }
    }
    assert!(
        recovered > 0,
        "no seed actually crashed and recovered — the restart property is vacuous"
    );
}

/// The `WJ_EXECUTOR` contract names replay mode precisely because of
/// the property above; free mode is the one knob that may not claim
/// bit-identity. Sanity-check the gap is real where it must be: a
/// fault-free run in free mode still produces identical *values*.
#[test]
fn free_mode_preserves_values_fault_free() {
    let (program, entry) = ring_program(5);
    let values = |executor: ExecutorCfg| {
        let run = World::new(&program, 4)
            .with_executor(executor)
            .run(entry, |_, _| Ok(vec![]))
            .unwrap();
        run.ranks
            .iter()
            .map(|r| format!("{:?}", r.result))
            .collect::<Vec<_>>()
    };
    let sim = values(ExecutorCfg::Sim);
    let free = values(ExecutorCfg::Threads {
        workers: 4,
        mode: ExecMode::Free,
    });
    assert_eq!(sim, free, "free-running must keep world values identical");
}
