//! MPI-sim collectives and messaging edge cases: broadcast, max-reduce,
//! FIFO ordering, tag separation, and cost-model monotonicity.

use exec::{ArrStore, Val};
use jlang::ast::BinOp;
use jlang::types::PrimKind;
use mpi_sim::{CostModel, World};
use nir::{ElemTy, FuncBuilder, FuncId, FuncKind, Instr, IntrinOp, Program, Ty};

/// Every rank calls bcastF(buf, 0, 4, root=1) and returns buf[0]. Rank 1
/// pre-fills its buffer; everyone must end up with rank 1's data.
fn bcast_program() -> (Program, FuncId) {
    let mut fb = FuncBuilder::new(
        "bc",
        vec![Ty::Arr(ElemTy::F32)],
        Some(Ty::F32),
        FuncKind::Host,
    );
    let zero = fb.reg(Ty::I32);
    let four = fb.reg(Ty::I32);
    let one = fb.reg(Ty::I32);
    let out = fb.reg(Ty::F32);
    fb.emit(Instr::ConstI32(zero, 0));
    fb.emit(Instr::ConstI32(four, 4));
    fb.emit(Instr::ConstI32(one, 1));
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiBcastF32,
        args: vec![0, zero, four, one],
        dst: None,
    });
    fb.emit(Instr::LdArr {
        arr: 0,
        idx: zero,
        dst: out,
    });
    fb.emit(Instr::Ret(Some(out)));
    let mut p = Program::default();
    let id = p.add_func(fb.finish().unwrap());
    p.validate().unwrap();
    (p, id)
}

#[test]
fn broadcast_distributes_the_roots_buffer() {
    let (p, entry) = bcast_program();
    let world = World::new(&p, 4);
    let run = world
        .run(entry, |r, machine| {
            let v = if r == 1 { 42.5 } else { r as f32 };
            Ok(vec![Val::Arr(machine.mem.alloc(ArrStore::F32(vec![v; 4])))])
        })
        .unwrap();
    for (r, out) in run.ranks.iter().enumerate() {
        assert_eq!(out.result, Some(Val::F32(42.5)), "rank {r}");
    }
}

fn allreduce_max_program() -> (Program, FuncId) {
    let mut fb = FuncBuilder::new("mx", vec![Ty::F64], Some(Ty::F64), FuncKind::Host);
    let out = fb.reg(Ty::F64);
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiAllreduceMaxF64,
        args: vec![0],
        dst: Some(out),
    });
    fb.emit(Instr::Ret(Some(out)));
    let mut p = Program::default();
    let id = p.add_func(fb.finish().unwrap());
    (p, id)
}

#[test]
fn allreduce_max_takes_the_maximum() {
    let (p, entry) = allreduce_max_program();
    let world = World::new(&p, 5);
    let run = world
        .run(entry, |r, _| Ok(vec![Val::F64((r as f64 - 2.0) * 3.0)]))
        .unwrap();
    for out in &run.ranks {
        assert_eq!(out.result, Some(Val::F64(6.0))); // rank 4: (4-2)*3
    }
}

/// Rank 0 sends two messages with the same tag; rank 1 receives twice and
/// must get them in order (FIFO per (src, dest, tag)).
fn fifo_program() -> (Program, FuncId) {
    let mut fb = FuncBuilder::new("fifo", vec![], Some(Ty::F32), FuncKind::Host);
    let rank = fb.reg(Ty::I32);
    let zero = fb.reg(Ty::I32);
    let one = fb.reg(Ty::I32);
    let n = fb.reg(Ty::I32);
    let buf = fb.reg(Ty::Arr(ElemTy::F32));
    let v1 = fb.reg(Ty::F32);
    let v2 = fb.reg(Ty::F32);
    let cond = fb.reg(Ty::Bool);
    let out = fb.reg(Ty::F32);
    let sender = fb.label();
    let receiver = fb.label();
    let done = fb.label();
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiRank,
        args: vec![],
        dst: Some(rank),
    });
    fb.emit(Instr::ConstI32(zero, 0));
    fb.emit(Instr::ConstI32(one, 1));
    fb.emit(Instr::ConstI32(n, 1));
    fb.emit(Instr::NewArr {
        elem: ElemTy::F32,
        len: n,
        dst: buf,
    });
    fb.emit(Instr::ConstF32(out, 0.0));
    fb.emit(Instr::Bin {
        op: BinOp::Eq,
        kind: PrimKind::Int,
        dst: cond,
        lhs: rank,
        rhs: zero,
    });
    fb.br(cond, sender, receiver);
    fb.bind(sender);
    // send 10.0 then 20.0, same tag
    fb.emit(Instr::ConstF32(v1, 10.0));
    fb.emit(Instr::StArr {
        arr: buf,
        idx: zero,
        src: v1,
    });
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiSendF32,
        args: vec![buf, zero, n, one, zero],
        dst: None,
    });
    fb.emit(Instr::ConstF32(v2, 20.0));
    fb.emit(Instr::StArr {
        arr: buf,
        idx: zero,
        src: v2,
    });
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiSendF32,
        args: vec![buf, zero, n, one, zero],
        dst: None,
    });
    fb.jmp(done);
    fb.bind(receiver);
    // recv twice: out = first + 0.001 * second
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiRecvF32,
        args: vec![buf, zero, n, zero, zero],
        dst: None,
    });
    fb.emit(Instr::LdArr {
        arr: buf,
        idx: zero,
        dst: v1,
    });
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiRecvF32,
        args: vec![buf, zero, n, zero, zero],
        dst: None,
    });
    fb.emit(Instr::LdArr {
        arr: buf,
        idx: zero,
        dst: v2,
    });
    fb.emit(Instr::ConstF32(out, 0.001));
    fb.emit(Instr::Bin {
        op: BinOp::Mul,
        kind: PrimKind::Float,
        dst: v2,
        lhs: v2,
        rhs: out,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Add,
        kind: PrimKind::Float,
        dst: out,
        lhs: v1,
        rhs: v2,
    });
    fb.jmp(done);
    fb.bind(done);
    fb.emit(Instr::Ret(Some(out)));
    let mut p = Program::default();
    let id = p.add_func(fb.finish().unwrap());
    p.validate().unwrap();
    (p, id)
}

#[test]
fn same_tag_messages_arrive_in_fifo_order() {
    let (p, entry) = fifo_program();
    let world = World::new(&p, 2);
    let run = world.run(entry, |_, _| Ok(vec![])).unwrap();
    // receiver: 10.0 + 0.001 * 20.0
    assert_eq!(run.ranks[1].result, Some(Val::F32(10.0 + 0.001 * 20.0)));
}

/// Messages with different tags match the receive with the same tag, not
/// arrival order.
fn tag_program() -> (Program, FuncId) {
    let mut fb = FuncBuilder::new("tags", vec![], Some(Ty::F32), FuncKind::Host);
    let rank = fb.reg(Ty::I32);
    let zero = fb.reg(Ty::I32);
    let one = fb.reg(Ty::I32);
    let seven = fb.reg(Ty::I32);
    let n = fb.reg(Ty::I32);
    let buf = fb.reg(Ty::Arr(ElemTy::F32));
    let v = fb.reg(Ty::F32);
    let cond = fb.reg(Ty::Bool);
    let out = fb.reg(Ty::F32);
    let sender = fb.label();
    let receiver = fb.label();
    let done = fb.label();
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiRank,
        args: vec![],
        dst: Some(rank),
    });
    fb.emit(Instr::ConstI32(zero, 0));
    fb.emit(Instr::ConstI32(one, 1));
    fb.emit(Instr::ConstI32(seven, 7));
    fb.emit(Instr::ConstI32(n, 1));
    fb.emit(Instr::NewArr {
        elem: ElemTy::F32,
        len: n,
        dst: buf,
    });
    fb.emit(Instr::ConstF32(out, 0.0));
    fb.emit(Instr::Bin {
        op: BinOp::Eq,
        kind: PrimKind::Int,
        dst: cond,
        lhs: rank,
        rhs: zero,
    });
    fb.br(cond, sender, receiver);
    fb.bind(sender);
    // send tag 0 = 1.0 first, then tag 7 = 2.0
    fb.emit(Instr::ConstF32(v, 1.0));
    fb.emit(Instr::StArr {
        arr: buf,
        idx: zero,
        src: v,
    });
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiSendF32,
        args: vec![buf, zero, n, one, zero],
        dst: None,
    });
    fb.emit(Instr::ConstF32(v, 2.0));
    fb.emit(Instr::StArr {
        arr: buf,
        idx: zero,
        src: v,
    });
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiSendF32,
        args: vec![buf, zero, n, one, seven],
        dst: None,
    });
    fb.jmp(done);
    fb.bind(receiver);
    // receive tag 7 FIRST: must get 2.0 even though tag-0 arrived first
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiRecvF32,
        args: vec![buf, zero, n, zero, seven],
        dst: None,
    });
    fb.emit(Instr::LdArr {
        arr: buf,
        idx: zero,
        dst: out,
    });
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiRecvF32,
        args: vec![buf, zero, n, zero, zero],
        dst: None,
    });
    fb.jmp(done);
    fb.bind(done);
    fb.emit(Instr::Ret(Some(out)));
    let mut p = Program::default();
    let id = p.add_func(fb.finish().unwrap());
    p.validate().unwrap();
    (p, id)
}

#[test]
fn tags_select_matching_messages() {
    let (p, entry) = tag_program();
    let world = World::new(&p, 2);
    let run = world.run(entry, |_, _| Ok(vec![])).unwrap();
    assert_eq!(run.ranks[1].result, Some(Val::F32(2.0)));
}

#[test]
fn collective_cost_scales_with_world_size() {
    let (p, entry) = allreduce_max_program();
    let t = |size: u32| {
        World::new(&p, size)
            .with_cost(CostModel {
                alpha: 1000,
                beta: 0.5,
                collective_alpha: 5000,
            })
            .run(entry, |_, _| Ok(vec![Val::F64(1.0)]))
            .unwrap()
            .vtime
    };
    // log2(size) latency term: more ranks, later completion.
    assert!(t(16) > t(2), "t(16)={} t(2)={}", t(16), t(2));
}

#[test]
fn rank_out_of_range_is_an_error() {
    // sendF to rank 9 in a world of 2.
    let mut fb = FuncBuilder::new("bad", vec![], None, FuncKind::Host);
    let zero = fb.reg(Ty::I32);
    let n = fb.reg(Ty::I32);
    let nine = fb.reg(Ty::I32);
    let buf = fb.reg(Ty::Arr(ElemTy::F32));
    fb.emit(Instr::ConstI32(zero, 0));
    fb.emit(Instr::ConstI32(n, 1));
    fb.emit(Instr::ConstI32(nine, 9));
    fb.emit(Instr::NewArr {
        elem: ElemTy::F32,
        len: n,
        dst: buf,
    });
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiSendF32,
        args: vec![buf, zero, n, nine, zero],
        dst: None,
    });
    fb.emit(Instr::Ret(None));
    let mut p = Program::default();
    let id = p.add_func(fb.finish().unwrap());
    let world = World::new(&p, 2);
    let e = world.run(id, |_, _| Ok(vec![])).unwrap_err();
    assert!(matches!(e, mpi_sim::SimError::Rank { rank: 0, .. }), "{e}");
    assert!(e.to_string().contains("out of range"), "{e}");
}
