//! Seeded property tests for collective-boundary checkpoint/restart: at
//! crash rates where plain `World::run` fails typed, a checkpointed world
//! completes with **bit-identical** final buffers to a fault-free run —
//! for every seed in the sweep. Corrupt or truncated persisted
//! checkpoints degrade to a cold restart (never a panic, never an error),
//! and an exhausted restart budget surfaces the typed error with its last
//! post-mortem intact.
//!
//! No proptest/quickcheck: cases are driven by the same xorshift64* idiom
//! the fault plans themselves use, so the whole suite is deterministic.

use std::path::PathBuf;

use exec::{FaultConfig, Val};
use jlang::ast::BinOp;
use jlang::types::PrimKind;
use mpi_sim::{probe_chain, CheckpointPolicy, CkptError, SimError, World, WorldRun};
use nir::{ElemTy, FuncBuilder, FuncId, FuncKind, Instr, IntrinOp, Program, Ty};

/// Each rank seeds `buf[0] = rank`, then runs `steps` iterations of: ring
/// sendrecv (shift buf one rank to the right), allreduce-sum of `buf[0]`,
/// `buf[0] = sum + rank`. One collective boundary per iteration gives
/// checkpoints places to land; the p2p traffic keeps message queues in
/// play; the value depends on every iteration completing in order.
fn ring_step_allreduce(steps: i32) -> (Program, FuncId) {
    ring_step_allreduce_mesh(steps, 2)
}

/// Like [`ring_step_allreduce`] but with `mesh`-element rank arrays of
/// which only element 0 ever changes — the mostly-constant heap shape
/// delta checkpoints exist for.
fn ring_step_allreduce_mesh(steps: i32, mesh: i32) -> (Program, FuncId) {
    let mut fb = FuncBuilder::new("rsa", vec![], Some(Ty::F32), FuncKind::Host);
    let rank = fb.reg(Ty::I32);
    let size = fb.reg(Ty::I32);
    let zero = fb.reg(Ty::I32);
    let one = fb.reg(Ty::I32);
    let n = fb.reg(Ty::I32);
    let tag = fb.reg(Ty::I32);
    let limit = fb.reg(Ty::I32);
    let i = fb.reg(Ty::I32);
    let dest = fb.reg(Ty::I32);
    let src = fb.reg(Ty::I32);
    let mlen = fb.reg(Ty::I32);
    let buf = fb.reg(Ty::Arr(ElemTy::F32));
    let rbuf = fb.reg(Ty::Arr(ElemTy::F32));
    let cond = fb.reg(Ty::Bool);
    let frank = fb.reg(Ty::F32);
    let v = fb.reg(Ty::F32);
    let s = fb.reg(Ty::F32);
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiRank,
        args: vec![],
        dst: Some(rank),
    });
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiSize,
        args: vec![],
        dst: Some(size),
    });
    fb.emit(Instr::ConstI32(zero, 0));
    fb.emit(Instr::ConstI32(one, 1));
    fb.emit(Instr::ConstI32(n, 2));
    fb.emit(Instr::ConstI32(tag, 5));
    fb.emit(Instr::ConstI32(limit, steps));
    fb.emit(Instr::ConstI32(i, 0));
    fb.emit(Instr::ConstI32(mlen, mesh.max(2)));
    fb.emit(Instr::NewArr {
        elem: ElemTy::F32,
        len: mlen,
        dst: buf,
    });
    fb.emit(Instr::NewArr {
        elem: ElemTy::F32,
        len: mlen,
        dst: rbuf,
    });
    fb.emit(Instr::Cast {
        to: PrimKind::Float,
        from: PrimKind::Int,
        dst: frank,
        src: rank,
    });
    fb.emit(Instr::StArr {
        arr: buf,
        idx: zero,
        src: frank,
    });
    // dest = (rank + 1) % size; src = (rank + size - 1) % size
    fb.emit(Instr::Bin {
        op: BinOp::Add,
        kind: PrimKind::Int,
        dst: dest,
        lhs: rank,
        rhs: one,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Rem,
        kind: PrimKind::Int,
        dst: dest,
        lhs: dest,
        rhs: size,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Add,
        kind: PrimKind::Int,
        dst: src,
        lhs: rank,
        rhs: size,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Sub,
        kind: PrimKind::Int,
        dst: src,
        lhs: src,
        rhs: one,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Rem,
        kind: PrimKind::Int,
        dst: src,
        lhs: src,
        rhs: size,
    });
    let head = fb.label();
    let body = fb.label();
    let done = fb.label();
    fb.bind(head);
    fb.emit(Instr::Bin {
        op: BinOp::Lt,
        kind: PrimKind::Int,
        dst: cond,
        lhs: i,
        rhs: limit,
    });
    fb.br(cond, body, done);
    fb.bind(body);
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiSendRecvF32,
        args: vec![buf, zero, n, dest, rbuf, zero, src, tag],
        dst: None,
    });
    fb.emit(Instr::LdArr {
        arr: rbuf,
        idx: zero,
        dst: v,
    });
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiAllreduceSumF32,
        args: vec![v],
        dst: Some(s),
    });
    fb.emit(Instr::Bin {
        op: BinOp::Add,
        kind: PrimKind::Float,
        dst: s,
        lhs: s,
        rhs: frank,
    });
    fb.emit(Instr::StArr {
        arr: buf,
        idx: zero,
        src: s,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Add,
        kind: PrimKind::Int,
        dst: i,
        lhs: i,
        rhs: one,
    });
    fb.jmp(head);
    fb.bind(done);
    fb.emit(Instr::LdArr {
        arr: buf,
        idx: zero,
        dst: v,
    });
    fb.emit(Instr::Ret(Some(v)));
    let mut p = Program::default();
    let id = p.add_func(fb.finish().unwrap());
    p.validate().unwrap();
    (p, id)
}

/// Final per-rank buffers, bit-comparable across runs (F32 results are
/// compared by identity, not tolerance: restart must be exact).
fn results(run: WorldRun) -> Vec<Option<Val>> {
    run.ranks.into_iter().map(|r| r.result).collect()
}

/// The acceptance property: sweep seeds, keep the ones whose crash-only
/// plan kills the plain run with a typed `Crash`, and require the
/// checkpointed world to complete every one of them with the fault-free
/// answer — restarts observed, checkpoints taken, nothing lost silently.
#[test]
fn crashed_worlds_resume_to_the_fault_free_answer_for_every_seed() {
    const SIZE: u32 = 4;
    let (program, entry) = ring_step_allreduce(8);
    let clean = results(
        World::new(&program, SIZE)
            .run(entry, |_, _| Ok(vec![]))
            .unwrap(),
    );
    let mut crashed_seeds = 0u32;
    for seed in 0..48u64 {
        let mut cfg = FaultConfig::seeded(0x8E57_A127 ^ seed);
        cfg.crash = 0.003;
        let world = World::new(&program, SIZE)
            .with_faults(cfg)
            .with_timeout(5_000);
        match world.run(entry, |_, _| Ok(vec![])) {
            Err(SimError::Crash { .. }) => {}
            _ => continue, // survived (or timed out) — not this property
        }
        crashed_seeds += 1;
        let run = world
            .run_with_restart(entry, |_, _| Ok(vec![]), &CheckpointPolicy::every(1), 128)
            .unwrap_or_else(|e| panic!("seed {seed}: checkpointed world failed: {e}"));
        assert!(
            run.restart.restarts >= 1,
            "seed {seed}: no restart recorded"
        );
        assert!(run.resilience.crashes >= 1, "seed {seed}");
        assert_eq!(
            results(run),
            clean,
            "seed {seed}: resumed world must reproduce the fault-free buffers exactly"
        );
    }
    assert!(
        crashed_seeds >= 3,
        "sweep produced only {crashed_seeds} crashing seeds — property is vacuous"
    );
}

/// Checkpoint cadence must not change the answer: N ∈ {1, 4, 16} all land
/// on the fault-free result for a crashing seed, and coarser cadence
/// never takes more checkpoints than finer.
#[test]
fn checkpoint_cadence_changes_cost_not_the_answer() {
    const SIZE: u32 = 3;
    let (program, entry) = ring_step_allreduce(9);
    let clean = results(
        World::new(&program, SIZE)
            .run(entry, |_, _| Ok(vec![]))
            .unwrap(),
    );
    // A seed that demonstrably crashes the plain run.
    let seed = (0..64u64)
        .find(|&s| {
            let mut cfg = FaultConfig::seeded(0xCAD + s);
            cfg.crash = 0.003;
            matches!(
                World::new(&program, SIZE)
                    .with_faults(cfg)
                    .with_timeout(5_000)
                    .run(entry, |_, _| Ok(vec![])),
                Err(SimError::Crash { .. })
            )
        })
        .expect("no crashing seed in the sweep");
    let mut cfg = FaultConfig::seeded(0xCAD + seed);
    cfg.crash = 0.003;
    let mut taken = Vec::new();
    for every in [1u32, 4, 16] {
        let run = World::new(&program, SIZE)
            .with_faults(cfg)
            .with_timeout(5_000)
            .run_with_restart(
                entry,
                |_, _| Ok(vec![]),
                &CheckpointPolicy::every(every),
                128,
            )
            .unwrap_or_else(|e| panic!("cadence {every}: {e}"));
        taken.push(run.restart.checkpoints_taken);
        assert_eq!(results(run), clean, "cadence {every}");
    }
    assert!(
        taken[0] >= taken[1] && taken[1] >= taken[2],
        "coarser cadence must not checkpoint more: {taken:?}"
    );
}

/// Corrupt and truncated persisted checkpoints degrade to a cold restart:
/// the run still completes with the right answer and never panics.
#[test]
fn corrupt_persisted_checkpoints_degrade_to_cold_restart() {
    let dir = std::env::temp_dir().join(format!("wj-restart-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("world.wckpt");
    let (program, entry) = ring_step_allreduce(5);
    let world = World::new(&program, 3);
    let policy = CheckpointPolicy::every(1).with_persist(&path);
    let clean = results(world.run(entry, |_, _| Ok(vec![])).unwrap());

    // Seed the file, then serve it back damaged in every way we model.
    let run = world
        .run_with_restart(entry, |_, _| Ok(vec![]), &policy, 8)
        .unwrap();
    assert_eq!(results(run), clean);
    let good = std::fs::read(&path).unwrap();
    let damaged: Vec<Vec<u8>> = vec![
        Vec::new(),                      // empty file
        good[..good.len() / 2].to_vec(), // truncated
        {
            let mut b = good.clone();
            let mid = b.len() / 2;
            b[mid] ^= 0x40; // flipped payload bit (checksum mismatch)
            b
        },
        b"not a checkpoint at all".to_vec(),
    ];
    for (i, bytes) in damaged.iter().enumerate() {
        std::fs::write(&path, bytes).unwrap();
        let run = world
            .run_with_restart(entry, |_, _| Ok(vec![]), &policy, 8)
            .unwrap_or_else(|e| panic!("damage case {i}: cold restart failed: {e}"));
        assert_eq!(results(run), clean, "damage case {i}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Delta chains answer exactly like full snapshots on a crashing seed —
/// the fault stream is policy-independent, so even the restart pattern
/// matches — while writing far fewer checkpoint bytes when rank heaps
/// are mostly constant (the common mesh-plus-halo shape).
#[test]
fn delta_chains_match_full_snapshots_and_write_fewer_bytes() {
    const SIZE: u32 = 3;
    let (program, entry) = ring_step_allreduce_mesh(8, 2048);
    let clean = results(
        World::new(&program, SIZE)
            .run(entry, |_, _| Ok(vec![]))
            .unwrap(),
    );
    let seed = (0..64u64)
        .find(|&s| {
            let mut cfg = FaultConfig::seeded(0xDE17A ^ s);
            cfg.crash = 0.003;
            matches!(
                World::new(&program, SIZE)
                    .with_faults(cfg)
                    .with_timeout(5_000)
                    .run(entry, |_, _| Ok(vec![])),
                Err(SimError::Crash { .. })
            )
        })
        .expect("no crashing seed in the sweep");
    let mut cfg = FaultConfig::seeded(0xDE17A ^ seed);
    cfg.crash = 0.003;
    let mut stats = Vec::new();
    for rebase_every in [0u32, 4] {
        let run = World::new(&program, SIZE)
            .with_faults(cfg)
            .with_timeout(5_000)
            .run_with_restart(
                entry,
                |_, _| Ok(vec![]),
                &CheckpointPolicy::every(1).with_rebase_every(rebase_every),
                128,
            )
            .unwrap_or_else(|e| panic!("rebase_every {rebase_every}: {e}"));
        stats.push(run.restart);
        assert_eq!(results(run), clean, "rebase_every {rebase_every}");
    }
    let (full, delta) = (&stats[0], &stats[1]);
    assert_eq!(
        full.delta_checkpoints, 0,
        "rebase_every 0 is full snapshots"
    );
    assert!(delta.delta_checkpoints > 0, "delta mode must take deltas");
    assert_eq!(
        full.restarts, delta.restarts,
        "the fault stream must not depend on the checkpoint encoding"
    );
    assert!(
        delta.ckpt_bytes_written < full.ckpt_bytes_written,
        "deltas over a mostly-constant mesh must write fewer bytes: \
         delta {} vs full {}",
        delta.ckpt_bytes_written,
        full.ckpt_bytes_written
    );
}

/// The chain-corruption sweep: damage each persisted link in turn
/// (truncation and a flipped bit), and require the probe to stop at
/// exactly that link with a typed error, and a warm restart to roll back
/// to the deepest valid ancestor — counting precisely the dropped tail,
/// finishing bit-identically, never panicking. Deleting a middle link
/// cuts the chain at the gap; deleting the base degrades to cold.
#[test]
fn chain_corruption_sweep_degrades_to_the_deepest_valid_ancestor() {
    let dir = std::env::temp_dir().join(format!("wj-chain-sweep-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let base = dir.join("world.wckpt");
    let (program, entry) = ring_step_allreduce(6);
    let world = World::new(&program, 3);
    let policy = CheckpointPolicy::every(1)
        .with_persist(&base)
        .with_rebase_every(64);
    let clean = results(world.run(entry, |_, _| Ok(vec![])).unwrap());

    // Lay down a pristine chain, then snapshot every link file.
    let run = world
        .run_with_restart(entry, |_, _| Ok(vec![]), &policy, 8)
        .unwrap();
    assert_eq!(results(run), clean);
    let n = {
        let p = probe_chain(&base);
        assert_eq!(p.links_valid, p.links_found, "pristine chain must validate");
        assert!(p.error.is_none(), "pristine chain: {:?}", p.error);
        p.links_found
    };
    assert!(n >= 3, "need a base plus deltas to sweep, got {n} links");
    let link_file = |k: usize| -> PathBuf {
        if k == 0 {
            base.clone()
        } else {
            dir.join(format!("world.d{k}.wckpt"))
        }
    };
    let pristine: Vec<Vec<u8>> = (0..n)
        .map(|k| std::fs::read(link_file(k)).unwrap())
        .collect();
    let restore_all = || {
        for (k, bytes) in pristine.iter().enumerate() {
            std::fs::write(link_file(k), bytes).unwrap();
        }
    };

    for (k, good) in pristine.iter().enumerate() {
        for mode in ["truncate", "bitflip"] {
            restore_all();
            let damaged = if mode == "truncate" {
                good[..good.len() / 2].to_vec()
            } else {
                let mut b = good.clone();
                let mid = b.len() / 2;
                b[mid] ^= 0x10;
                b
            };
            std::fs::write(link_file(k), &damaged).unwrap();
            let p = probe_chain(&base);
            assert_eq!(p.links_found, n, "{mode} at link {k}");
            assert_eq!(
                p.links_valid, k,
                "{mode} at link {k}: probe must stop at the damaged link"
            );
            match p.error {
                None => panic!("{mode} at link {k}: expected a typed error"),
                Some(CkptError::Corrupt { .. })
                | Some(CkptError::Truncated { .. })
                | Some(CkptError::ChainBroken { .. }) => {}
                Some(other) => panic!("{mode} at link {k}: unexpected error {other}"),
            }
            // Warm restart over the damaged chain: rolls back to link k-1,
            // counts exactly the dropped tail, finishes with the clean
            // answer.
            let run = world
                .run_with_restart(entry, |_, _| Ok(vec![]), &policy, 8)
                .unwrap_or_else(|e| panic!("{mode} at link {k}: {e}"));
            assert_eq!(
                run.restart.chain_links_dropped,
                (n - k) as u64,
                "{mode} at link {k}: dropped-link accounting"
            );
            assert_eq!(results(run), clean, "{mode} at link {k}");
        }
    }

    // A deleted middle link cuts the chain at the gap (deltas are dense,
    // so everything past the gap is orphaned, not an error).
    restore_all();
    std::fs::remove_file(link_file(1)).unwrap();
    let p = probe_chain(&base);
    assert_eq!(p.links_found, 1, "gap must end the dense run");
    assert_eq!(p.links_valid, 1);
    assert!(p.error.is_none(), "a gap is not damage: {:?}", p.error);
    let run = world
        .run_with_restart(entry, |_, _| Ok(vec![]), &policy, 8)
        .unwrap();
    assert_eq!(results(run), clean, "gapped chain");

    // A missing base is a cold start — still the right answer, and
    // nothing counted as dropped (there was no chain to drop from).
    restore_all();
    std::fs::remove_file(&base).unwrap();
    let p = probe_chain(&base);
    assert_eq!(p.links_found, 0, "missing base means no chain");
    let run = world
        .run_with_restart(entry, |_, _| Ok(vec![]), &policy, 8)
        .unwrap();
    assert_eq!(
        run.restart.chain_links_dropped, 0,
        "cold start drops nothing"
    );
    assert_eq!(results(run), clean, "cold start");

    std::fs::remove_dir_all(&dir).ok();
}

/// When the budget runs out the typed error propagates, carrying the last
/// attempt's post-mortem (the diagnosing contract survives the retrying).
#[test]
fn exhausted_restart_budget_carries_the_last_post_mortem() {
    let (program, entry) = ring_step_allreduce(6);
    let mut cfg = FaultConfig::seeded(99);
    cfg.crash = 1.0;
    let err = World::new(&program, 3)
        .with_faults(cfg)
        .run_with_restart(entry, |_, _| Ok(vec![]), &CheckpointPolicy::every(1), 3)
        .unwrap_err();
    let SimError::Crash {
        rank, post_mortem, ..
    } = err
    else {
        panic!("expected Crash, got {err}");
    };
    assert!(rank < 3);
    assert!(
        post_mortem.contains("crashed at step"),
        "post-mortem must survive budget exhaustion: {post_mortem}"
    );
}

/// Non-recoverable failures (deadlock from dropped messages, with no
/// timeout bound nothing to roll back to helps) must not burn restarts
/// forever: a Deadlock propagates immediately.
#[test]
fn non_crash_failures_propagate_without_restarting() {
    let (program, entry) = ring_step_allreduce(4);
    let mut cfg = FaultConfig::seeded(13);
    cfg.msg_drop = 1.0; // every p2p message lost -> receivers starve
    let err = World::new(&program, 2)
        .with_faults(cfg)
        .run_with_restart(entry, |_, _| Ok(vec![]), &CheckpointPolicy::every(1), 64)
        .unwrap_err();
    assert!(
        matches!(err, SimError::Deadlock { .. }),
        "expected immediate Deadlock, got {err}"
    );
}
