//! Seeded, dependency-free property tests for the fault-injection layer:
//! for *any* fault plan and small world, `World::run` either completes or
//! returns a typed [`SimError`] — it never panics and never hangs — and the
//! same seed reproduces the exact same outcome bit-for-bit.
//!
//! No proptest/quickcheck: cases are driven by the same xorshift64* idiom
//! the fault plans themselves use, so the whole suite is deterministic.

use exec::{FaultConfig, Val};
use jlang::ast::BinOp;
use jlang::types::PrimKind;
use mpi_sim::{SimError, World};
use nir::{ElemTy, FuncBuilder, FuncId, FuncKind, Instr, IntrinOp, Program, Ty};

/// xorshift64* (the in-tree PRNG idiom) for deriving per-case parameters.
fn next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

fn unit(state: &mut u64) -> f64 {
    (next(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Each rank runs `steps` rounds of a ring exchange (send to rank+1, recv
/// from rank-1), then contributes buf[0] to an allreduce-sum. Exercises
/// point-to-point sends/recvs (drop/corrupt/delay targets), a collective,
/// and enough yield points for crash/fuel draws to land.
fn ring_program(steps: i32) -> (Program, FuncId) {
    let mut fb = FuncBuilder::new("ring", vec![], Some(Ty::F32), FuncKind::Host);
    let rank = fb.reg(Ty::I32);
    let size = fb.reg(Ty::I32);
    let zero = fb.reg(Ty::I32);
    let one = fb.reg(Ty::I32);
    let n = fb.reg(Ty::I32);
    let limit = fb.reg(Ty::I32);
    let i = fb.reg(Ty::I32);
    let dest = fb.reg(Ty::I32);
    let src = fb.reg(Ty::I32);
    let tag = fb.reg(Ty::I32);
    let buf = fb.reg(Ty::Arr(ElemTy::F32));
    let v = fb.reg(Ty::F32);
    let cond = fb.reg(Ty::Bool);
    let out = fb.reg(Ty::F32);
    let head = fb.label();
    let body = fb.label();
    let done = fb.label();

    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiRank,
        args: vec![],
        dst: Some(rank),
    });
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiSize,
        args: vec![],
        dst: Some(size),
    });
    fb.emit(Instr::ConstI32(zero, 0));
    fb.emit(Instr::ConstI32(one, 1));
    fb.emit(Instr::ConstI32(n, 2));
    fb.emit(Instr::ConstI32(tag, 3));
    fb.emit(Instr::ConstI32(limit, steps));
    fb.emit(Instr::ConstI32(i, 0));
    fb.emit(Instr::NewArr {
        elem: ElemTy::F32,
        len: n,
        dst: buf,
    });
    // buf[0] = rank (as float via int->float add with 0.0f is not available;
    // store a constant then add the int rank through a Cast-free path:
    // simply seed with 1.0 so corruption/averaging still shows up in sums).
    fb.emit(Instr::ConstF32(v, 1.0));
    fb.emit(Instr::StArr {
        arr: buf,
        idx: zero,
        src: v,
    });
    // dest = (rank + 1) % size; src = (rank + size - 1) % size
    fb.emit(Instr::Bin {
        op: BinOp::Add,
        kind: PrimKind::Int,
        dst: dest,
        lhs: rank,
        rhs: one,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Rem,
        kind: PrimKind::Int,
        dst: dest,
        lhs: dest,
        rhs: size,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Add,
        kind: PrimKind::Int,
        dst: src,
        lhs: rank,
        rhs: size,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Sub,
        kind: PrimKind::Int,
        dst: src,
        lhs: src,
        rhs: one,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Rem,
        kind: PrimKind::Int,
        dst: src,
        lhs: src,
        rhs: size,
    });
    fb.jmp(head);
    fb.bind(head);
    fb.emit(Instr::Bin {
        op: BinOp::Lt,
        kind: PrimKind::Int,
        dst: cond,
        lhs: i,
        rhs: limit,
    });
    fb.br(cond, body, done);
    fb.bind(body);
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiSendF32,
        args: vec![buf, zero, n, dest, tag],
        dst: None,
    });
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiRecvF32,
        args: vec![buf, zero, n, src, tag],
        dst: None,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Add,
        kind: PrimKind::Int,
        dst: i,
        lhs: i,
        rhs: one,
    });
    fb.jmp(head);
    fb.bind(done);
    fb.emit(Instr::LdArr {
        arr: buf,
        idx: zero,
        dst: v,
    });
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiAllreduceSumF32,
        args: vec![v],
        dst: Some(out),
    });
    fb.emit(Instr::Ret(Some(out)));
    let mut p = Program::default();
    let id = p.add_func(fb.finish().unwrap());
    p.validate().unwrap();
    (p, id)
}

/// One case: run the ring world under a seed-derived fault plan and return
/// either the (stats, vtime) pair or the typed error's display string.
fn run_case(
    program: &Program,
    entry: FuncId,
    size: u32,
    cfg: FaultConfig,
) -> Result<String, String> {
    let world = World::new(program, size)
        .with_faults(cfg)
        .with_timeout(5_000);
    match world.run(entry, |_, _| Ok(vec![])) {
        Ok(run) => Ok(format!("{:?} vtime={}", run.resilience, run.vtime)),
        Err(
            e @ (SimError::Rank { .. }
            | SimError::Crash { .. }
            | SimError::Timeout { .. }
            | SimError::Deadlock { .. }
            | SimError::CheckpointScope { .. }
            | SimError::World { .. }),
        ) => Err(e.to_string()),
    }
}

/// The headline property: 64+ seeds, arbitrary small rates and world
/// sizes — every run returns (Ok or typed error), and re-running with the
/// same seed reproduces the outcome exactly.
#[test]
fn any_fault_plan_completes_or_fails_typed_and_reproducibly() {
    let (program, entry) = ring_program(6);
    let mut completed = 0usize;
    let mut failed = 0usize;
    for seed in 0..72u64 {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).max(1);
        let size = 2 + (next(&mut s) % 4) as u32; // 2..=5
        let mut cfg = FaultConfig::seeded(0xF_A17 + seed);
        cfg.crash = unit(&mut s) * 0.05;
        cfg.fuel_exhaust = unit(&mut s) * 0.05;
        cfg.msg_drop = unit(&mut s) * 0.05;
        cfg.msg_corrupt = unit(&mut s) * 0.10;
        cfg.msg_delay = unit(&mut s) * 0.10;
        let first = run_case(&program, entry, size, cfg);
        let second = run_case(&program, entry, size, cfg);
        assert_eq!(
            first, second,
            "seed {seed}: same plan must reproduce the same outcome"
        );
        match first {
            Ok(_) => completed += 1,
            Err(_) => failed += 1,
        }
    }
    // The rates are low enough that both outcomes must occur across the
    // sweep — otherwise the property is vacuous.
    assert!(completed > 0, "no case completed");
    assert!(failed > 0, "no case hit a typed failure");
}

/// With crash probability 1.0 every rank dies at its first yield point and
/// the world must fail with a crash post-mortem naming a rank, not hang.
#[test]
fn certain_crash_yields_post_mortem_not_hang() {
    let (program, entry) = ring_program(4);
    let mut cfg = FaultConfig::seeded(11);
    cfg.crash = 1.0;
    let world = World::new(&program, 3).with_faults(cfg);
    let err = world.run(entry, |_, _| Ok(vec![])).unwrap_err();
    match err {
        SimError::Crash {
            rank, post_mortem, ..
        } => {
            assert!(rank < 3);
            assert!(
                post_mortem.contains("crashed at step"),
                "post-mortem must show the crash: {post_mortem}"
            );
        }
        other => panic!("expected Crash, got {other}"),
    }
}

/// With every message dropped, receivers starve. The run must end in a
/// typed Deadlock/Timeout whose report shows the blocked Recv with its
/// waited-on source, tag, and pending-queue depth (the debuggability
/// contract of the blocked-state report).
#[test]
fn certain_drop_fails_typed_with_queue_depth_report() {
    let (program, entry) = ring_program(2);
    let mut cfg = FaultConfig::seeded(7);
    cfg.msg_drop = 1.0;
    let world = World::new(&program, 2).with_faults(cfg);
    let err = world.run(entry, |_, _| Ok(vec![])).unwrap_err();
    let report = match err {
        SimError::Deadlock { ref report } => report.clone(),
        SimError::Timeout { ref report, .. } => report.clone(),
        ref other => panic!("expected Deadlock or Timeout, got {other}"),
    };
    assert!(report.contains("blocked on Recv"), "report: {report}");
    assert!(report.contains("tag 3"), "report: {report}");
    assert!(report.contains("matching queued"), "report: {report}");
}

/// A genuine hang — one rank spinning forever in pure compute while its
/// peer waits in a Recv — must be converted into a typed Timeout by the
/// per-collective round bound rather than looping forever.
#[test]
fn genuine_hang_becomes_typed_timeout() {
    // rank 0: infinite loop; rank != 0: recv that can never be satisfied.
    let mut fb = FuncBuilder::new("hang", vec![], Some(Ty::F32), FuncKind::Host);
    let rank = fb.reg(Ty::I32);
    let zero = fb.reg(Ty::I32);
    let n = fb.reg(Ty::I32);
    let buf = fb.reg(Ty::Arr(ElemTy::F32));
    let cond = fb.reg(Ty::Bool);
    let out = fb.reg(Ty::F32);
    let spin = fb.label();
    let wait = fb.label();
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiRank,
        args: vec![],
        dst: Some(rank),
    });
    fb.emit(Instr::ConstI32(zero, 0));
    fb.emit(Instr::ConstI32(n, 1));
    fb.emit(Instr::NewArr {
        elem: ElemTy::F32,
        len: n,
        dst: buf,
    });
    fb.emit(Instr::ConstF32(out, 0.0));
    fb.emit(Instr::Bin {
        op: BinOp::Eq,
        kind: PrimKind::Int,
        dst: cond,
        lhs: rank,
        rhs: zero,
    });
    fb.br(cond, spin, wait);
    fb.bind(spin);
    fb.jmp(spin);
    fb.bind(wait);
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiRecvF32,
        args: vec![buf, zero, n, zero, zero],
        dst: None,
    });
    fb.emit(Instr::Ret(Some(out)));
    let mut p = Program::default();
    let entry = p.add_func(fb.finish().unwrap());
    p.validate().unwrap();

    let mut world = World::new(&p, 2);
    world.slice = 10_000; // keep each spin round cheap
    let world = world.with_timeout(50);
    match world.run(entry, |_, _| Ok(vec![])) {
        Err(SimError::Timeout {
            rank,
            waited_rounds,
            report,
        }) => {
            assert_eq!(rank, 1, "the blocked rank is reported");
            assert!(waited_rounds > 50);
            assert!(report.contains("blocked on Recv"), "report: {report}");
            assert!(report.contains("runnable"), "report: {report}");
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
}

/// Fault-free worlds are unaffected by the resilience layer: no stats, and
/// the ring completes with the expected allreduce value.
#[test]
fn fault_free_ring_is_clean_and_stats_are_zero() {
    let (program, entry) = ring_program(5);
    let world = World::new(&program, 4);
    let run = world.run(entry, |_, _| Ok(vec![])).unwrap();
    assert_eq!(run.resilience.injected(), 0);
    assert_eq!(run.resilience, exec::ResilienceStats::default());
    for out in &run.ranks {
        // every buf[0] stays 1.0 through the ring, so the sum is 4.0
        assert_eq!(out.result, Some(Val::F32(4.0)));
    }
}

/// Injected-but-survivable plans produce *identical* ResilienceStats and
/// virtual time across repeated runs (bit-for-bit determinism), and the
/// stats actually record injections.
#[test]
fn surviving_runs_report_identical_nonzero_stats() {
    let (program, entry) = ring_program(8);
    let mut cfg = FaultConfig::seeded(0xD00D);
    cfg.msg_delay = 0.3;
    cfg.msg_corrupt = 0.3;
    cfg.fuel_exhaust = 0.2;
    let world = World::new(&program, 4).with_faults(cfg);
    let a = world.run(entry, |_, _| Ok(vec![])).unwrap();
    let b = world.run(entry, |_, _| Ok(vec![])).unwrap();
    assert!(a.resilience.injected() > 0, "stats: {:?}", a.resilience);
    assert_eq!(a.resilience, b.resilience);
    assert_eq!(a.vtime, b.vtime);
    for (x, y) in a.ranks.iter().zip(&b.ranks) {
        assert_eq!(x.result, y.result);
        assert_eq!(x.vclock, y.vclock);
    }
}

/// Host program with a device kernel in its step loop: fill an array,
/// copy it to the GPU, run `steps` rounds of (scale-by-2 kernel launch,
/// allreduce barrier), copy back, return `arr[0]` (= 2^steps). The
/// allreduce per step gives the checkpointing layer collective
/// boundaries; the kernel gives the per-SM device fault streams yield
/// points to crash at.
fn gpu_step_program(steps: i32) -> (Program, FuncId) {
    let mut p = Program::default();
    // Kernel: a[gid] *= 2 for gid < len.
    let mut kb = FuncBuilder::new("scale", vec![Ty::Arr(ElemTy::F32)], None, FuncKind::Kernel);
    let tid = kb.reg(Ty::I32);
    let bid = kb.reg(Ty::I32);
    let bdim = kb.reg(Ty::I32);
    let gid = kb.reg(Ty::I32);
    let len = kb.reg(Ty::I32);
    let inb = kb.reg(Ty::Bool);
    let v = kb.reg(Ty::F32);
    let two = kb.reg(Ty::F32);
    let kbody = kb.label();
    let kdone = kb.label();
    kb.emit(Instr::Intrin {
        op: IntrinOp::ThreadIdx(0),
        args: vec![],
        dst: Some(tid),
    });
    kb.emit(Instr::Intrin {
        op: IntrinOp::BlockIdx(0),
        args: vec![],
        dst: Some(bid),
    });
    kb.emit(Instr::Intrin {
        op: IntrinOp::BlockDim(0),
        args: vec![],
        dst: Some(bdim),
    });
    kb.emit(Instr::Bin {
        op: BinOp::Mul,
        kind: PrimKind::Int,
        dst: gid,
        lhs: bid,
        rhs: bdim,
    });
    kb.emit(Instr::Bin {
        op: BinOp::Add,
        kind: PrimKind::Int,
        dst: gid,
        lhs: gid,
        rhs: tid,
    });
    kb.emit(Instr::ArrLen { arr: 0, dst: len });
    kb.emit(Instr::Bin {
        op: BinOp::Lt,
        kind: PrimKind::Int,
        dst: inb,
        lhs: gid,
        rhs: len,
    });
    kb.br(inb, kbody, kdone);
    kb.bind(kbody);
    kb.emit(Instr::LdArr {
        arr: 0,
        idx: gid,
        dst: v,
    });
    kb.emit(Instr::ConstF32(two, 2.0));
    kb.emit(Instr::Bin {
        op: BinOp::Mul,
        kind: PrimKind::Float,
        dst: v,
        lhs: v,
        rhs: two,
    });
    kb.emit(Instr::StArr {
        arr: 0,
        idx: gid,
        src: v,
    });
    kb.jmp(kdone);
    kb.bind(kdone);
    kb.emit(Instr::Ret(None));
    let kid = p.add_func(kb.finish().unwrap());

    // Host driver.
    let mut fb = FuncBuilder::new("run", vec![], Some(Ty::F32), FuncKind::Host);
    let zero = fb.reg(Ty::I32);
    let one = fb.reg(Ty::I32);
    let two_i = fb.reg(Ty::I32);
    let four = fb.reg(Ty::I32);
    let n = fb.reg(Ty::I32);
    let limit = fb.reg(Ty::I32);
    let i = fb.reg(Ty::I32);
    let cond = fb.reg(Ty::Bool);
    let arr = fb.reg(Ty::Arr(ElemTy::F32));
    let dev = fb.reg(Ty::Arr(ElemTy::F32));
    let fone = fb.reg(Ty::F32);
    let s = fb.reg(Ty::F32);
    let out = fb.reg(Ty::F32);
    fb.emit(Instr::ConstI32(zero, 0));
    fb.emit(Instr::ConstI32(one, 1));
    fb.emit(Instr::ConstI32(two_i, 2));
    fb.emit(Instr::ConstI32(four, 4));
    fb.emit(Instr::ConstI32(n, 8));
    fb.emit(Instr::ConstI32(limit, steps));
    fb.emit(Instr::ConstF32(fone, 1.0));
    fb.emit(Instr::NewArr {
        elem: ElemTy::F32,
        len: n,
        dst: arr,
    });
    // arr[j] = 1.0 for all j
    fb.emit(Instr::ConstI32(i, 0));
    let fhead = fb.label();
    let fbody = fb.label();
    let fdone = fb.label();
    fb.bind(fhead);
    fb.emit(Instr::Bin {
        op: BinOp::Lt,
        kind: PrimKind::Int,
        dst: cond,
        lhs: i,
        rhs: n,
    });
    fb.br(cond, fbody, fdone);
    fb.bind(fbody);
    fb.emit(Instr::StArr {
        arr,
        idx: i,
        src: fone,
    });
    fb.emit(Instr::Bin {
        op: BinOp::Add,
        kind: PrimKind::Int,
        dst: i,
        lhs: i,
        rhs: one,
    });
    fb.jmp(fhead);
    fb.bind(fdone);
    fb.emit(Instr::Intrin {
        op: IntrinOp::CopyToGpu,
        args: vec![arr],
        dst: Some(dev),
    });
    fb.emit(Instr::ConstI32(i, 0));
    let head = fb.label();
    let body = fb.label();
    let done = fb.label();
    fb.bind(head);
    fb.emit(Instr::Bin {
        op: BinOp::Lt,
        kind: PrimKind::Int,
        dst: cond,
        lhs: i,
        rhs: limit,
    });
    fb.br(cond, body, done);
    fb.bind(body);
    fb.emit(Instr::Launch {
        kernel: kid,
        grid: [two_i, one, one],
        block: [four, one, one],
        args: vec![dev],
    });
    fb.emit(Instr::Intrin {
        op: IntrinOp::MpiAllreduceSumF32,
        args: vec![fone],
        dst: Some(s),
    });
    fb.emit(Instr::Bin {
        op: BinOp::Add,
        kind: PrimKind::Int,
        dst: i,
        lhs: i,
        rhs: one,
    });
    fb.jmp(head);
    fb.bind(done);
    fb.emit(Instr::Intrin {
        op: IntrinOp::CopyFromGpu,
        args: vec![arr, dev],
        dst: None,
    });
    fb.emit(Instr::LdArr {
        arr,
        idx: zero,
        dst: out,
    });
    fb.emit(Instr::Ret(Some(out)));
    let id = p.add_func(fb.finish().unwrap());
    p.validate().unwrap();
    (p, id)
}

/// Device-side fault plans: worlds with GPUs under injected crashes fail
/// *typed* (never a panic, never an untyped rank error), reproducibly —
/// and the kernel-heavy program gives the per-SM streams plenty of draws.
#[test]
fn device_faults_fail_typed_and_reproducibly() {
    let (program, entry) = gpu_step_program(6);
    let mut crashed = 0usize;
    for seed in 0..24u64 {
        let mut cfg = FaultConfig::seeded(0x6B0 + seed);
        cfg.crash = 0.002;
        let world = || {
            World::new(&program, 2)
                .with_gpu(gpu_sim::GpuConfig::default())
                .with_faults(cfg)
                .with_timeout(5_000)
        };
        let outcome = |w: World| match w.run(entry, |_, _| Ok(vec![])) {
            Ok(run) => Ok(format!("{:?} vtime={}", run.resilience, run.vtime)),
            Err(e) => Err(e.to_string()),
        };
        let first = outcome(world());
        let second = outcome(world());
        assert_eq!(first, second, "seed {seed} must reproduce");
        if let Err(msg) = first {
            assert!(
                msg.contains("crashed") || msg.contains("timed out"),
                "seed {seed}: unexpected failure {msg}"
            );
            crashed += 1;
        }
    }
    assert!(
        crashed > 0,
        "no seed crashed — the device plans never fired"
    );
}

/// The restart path recovers injected *device* crashes too: the world
/// rolls back (device memory included), reseeds every per-SM stream, and
/// completes with the fault-free answer (2^steps in every rank's buffer).
#[test]
fn restart_recovers_device_crashes_bit_identically() {
    let (program, entry) = gpu_step_program(6);
    let clean: Vec<_> = World::new(&program, 2)
        .with_gpu(gpu_sim::GpuConfig::default())
        .run(entry, |_, _| Ok(vec![]))
        .unwrap()
        .ranks
        .into_iter()
        .map(|r| r.result)
        .collect();
    assert_eq!(clean, vec![Some(Val::F32(64.0)); 2]); // 2^6
    let mut recovered = 0usize;
    for seed in 0..24u64 {
        let mut cfg = FaultConfig::seeded(0x6B0 + seed);
        cfg.crash = 0.002;
        let world = World::new(&program, 2)
            .with_gpu(gpu_sim::GpuConfig::default())
            .with_faults(cfg)
            .with_timeout(5_000);
        let Err(mpi_sim::SimError::Crash { .. }) = world.run(entry, |_, _| Ok(vec![])) else {
            continue;
        };
        let run = world
            .run_with_restart(
                entry,
                |_, _| Ok(vec![]),
                &mpi_sim::CheckpointPolicy::every(1),
                128,
            )
            .unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        let got: Vec<_> = run.ranks.into_iter().map(|r| r.result).collect();
        assert_eq!(got, clean, "seed {seed}");
        recovered += 1;
    }
    assert!(recovered > 0, "no crashing seed to recover");
}
