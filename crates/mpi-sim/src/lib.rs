//! # mpi-sim — simulated MPI ranks with a LogP-style cost model
//!
//! Each rank is a resumable [`exec::Thread`] with its **own memory space**
//! (a separate [`exec::Machine`]) and optionally its own simulated GPU —
//! one GPU per node, as on the paper's TSUBAME 2.0 nodes. Ranks are
//! scheduled cooperatively and deterministically in a single host thread:
//! a rank runs until it blocks on communication, finishes, or exhausts its
//! fuel slice.
//!
//! **Virtual time.** Every rank carries a virtual clock: executed cycles
//! advance it; a message costs `alpha + beta·bytes` and its receiver's
//! clock is pulled up to the sender's completion time (Lamport-style);
//! collectives synchronize all clocks to the maximum plus a collective
//! cost. The weak/strong-scaling figures are plotted in this deterministic
//! virtual time — on a one-core host, wall-clock "parallel" runs would
//! measure the host scheduler, not the algorithm.
//!
//! This `World` is also the general runtime driver used for single-rank
//! programs (with or without a GPU): `size == 1` gives `rank()==0`,
//! collectives become identities, and self-messages still match.

#![forbid(unsafe_code)]

pub mod shared;

use std::collections::{HashMap, VecDeque};
use std::path::{Path, PathBuf};

pub use shared::{SharedCache, SharedCacheStats};

pub use exec::ckpt::CkptError;
use exec::ckpt::{self, chain};
use exec::{
    run, ArrStore, ExecError, FaultConfig, FaultPlan, HostRegistry, Machine, MsgFault,
    ResilienceStats, Thread, Val, Yield,
};
use gpu_sim::{Gpu, GpuConfig, GpuErrorKind};
use nir::codec::{Reader, Writer};
use nir::{FuncId, IntrinOp, Program};

/// Communication cost model (cycles).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Per-message latency.
    pub alpha: u64,
    /// Per-byte cost (inverse bandwidth).
    pub beta: f64,
    /// Base cost of a collective (barrier/allreduce/bcast).
    pub collective_alpha: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Shaped after a fat-tree InfiniBand fabric relative to ~1 cycle
        // per scalar op: ~2 µs latency, ~5 GB/s effective per-link.
        CostModel {
            alpha: 4_000,
            beta: 0.4,
            collective_alpha: 8_000,
        }
    }
}

/// The order in which runnable ranks are serviced each scheduler round.
///
/// Results are schedule-independent by construction — clocks are computed
/// from per-rank virtual times and allreduce combines contributions in
/// rank order — so this knob exists to *prove* that, and to model
/// platforms whose workers are genuinely unordered (the `host-mt` thread
/// pool backend, where the OS scheduler would pick any interleaving).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Schedule {
    /// Service runnable ranks in rank-id order (the historical behavior).
    #[default]
    RankOrder,
    /// Service runnable ranks in a seeded per-round permutation — a
    /// deterministic stand-in for an OS thread scheduler. The same seed
    /// reproduces the same interleaving bit-for-bit.
    Seeded(u64),
}

/// xorshift64* step for the seeded scheduler permutation.
fn sched_next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// Typed simulation error. Every failure mode of a world run has its own
/// variant so callers (the wootinj facade, the bench fault matrix, the
/// property suites) can classify outcomes without string matching.
#[derive(Debug)]
pub enum SimError {
    /// One rank's execution or MPI protocol failed (with func/pc context
    /// when the faulting frame is known).
    Rank { rank: u32, message: String },
    /// An injected fault crashed a rank; the world ran on until no
    /// surviving rank could make progress, then failed with a full
    /// post-mortem of every rank's state.
    Crash {
        rank: u32,
        /// Retired-instruction count at which the rank died.
        step: u64,
        post_mortem: String,
    },
    /// A rank waited in one blocked state (recv or collective) past the
    /// configured fuel bound — a would-be hang converted into an error.
    Timeout {
        rank: u32,
        waited_rounds: u64,
        report: String,
    },
    /// No rank can make progress and none is mid-collective.
    Deadlock { report: String },
    /// World-level inconsistency not attributable to one rank.
    World { message: String },
}

impl SimError {
    /// The offending rank, when one is attributable.
    pub fn rank(&self) -> Option<u32> {
        match self {
            SimError::Rank { rank, .. }
            | SimError::Crash { rank, .. }
            | SimError::Timeout { rank, .. } => Some(*rank),
            SimError::Deadlock { .. } | SimError::World { .. } => None,
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Rank { rank, message } => {
                write!(f, "mpi-sim error on rank {rank}: {message}")
            }
            SimError::Crash {
                rank,
                step,
                post_mortem,
            } => write!(
                f,
                "mpi-sim: rank {rank} crashed at step {step} (injected fault); world state:\n{post_mortem}"
            ),
            SimError::Timeout {
                rank,
                waited_rounds,
                report,
            } => write!(
                f,
                "mpi-sim: rank {rank} timed out after {waited_rounds} blocked rounds; world state:\n{report}"
            ),
            SimError::Deadlock { report } => write!(f, "mpi-sim: deadlock detected:\n{report}"),
            SimError::World { message } => write!(f, "mpi-sim error: {message}"),
        }
    }
}

impl std::error::Error for SimError {}

fn err_on(rank: u32, message: impl ToString) -> SimError {
    SimError::Rank {
        rank,
        message: message.to_string(),
    }
}

/// The (function, pc) of the instruction a yielded thread is stopped at —
/// the yield bumped the pc first, so the faulting instruction is `pc - 1`.
/// Used to give intrinsic-path errors the same location context the
/// interpreter loop attaches to its own.
fn yield_location(program: &Program, thread: &Thread) -> Option<(String, u32)> {
    thread
        .frame_location()
        .map(|(f, pc)| (program.func(f).name.clone(), pc.saturating_sub(1)))
}

/// Attach a yield location to a context-free [`ExecError`].
fn locate(e: impl Into<ExecError>, loc: &Option<(String, u32)>) -> ExecError {
    let e = e.into();
    match loc {
        Some((func, pc)) => e.at(func, *pc),
        None => e,
    }
}

/// Flip a mantissa bit of a float contribution (deterministic payload
/// corruption for collectives).
fn corrupt_val(v: Val) -> Val {
    match v {
        Val::F32(x) => Val::F32(f32::from_bits(x.to_bits() ^ (1 << 21))),
        Val::F64(x) => Val::F64(f64::from_bits(x.to_bits() ^ (1 << 40))),
        other => other,
    }
}

/// Outcome of one rank.
#[derive(Debug)]
pub struct RankOutcome {
    pub result: Option<Val>,
    /// Final virtual clock (compute + communication).
    pub vclock: u64,
    /// Cycles spent computing.
    pub compute_cycles: u64,
    /// Virtual time spent in communication and GPU waits.
    pub comm_cycles: u64,
    pub output: Vec<String>,
    /// The rank's final memory space (for reading back results).
    pub machine: Machine,
    /// Device time if this rank had a GPU.
    pub gpu_time: u64,
}

/// Outcome of a whole-world run.
#[derive(Debug)]
pub struct WorldRun {
    pub ranks: Vec<RankOutcome>,
    /// Completion time of the slowest rank — the figure-of-merit plotted
    /// by the scalability experiments.
    pub vtime: u64,
    /// Total executed cycles across ranks.
    pub total_cycles: u64,
    /// Aggregated fault-injection / recovery counters across all ranks
    /// (all-zero when no fault plan is configured). Deterministic: the
    /// same `FaultConfig` seed yields a bit-identical value.
    pub resilience: ResilienceStats,
    /// Per-world translate-once counters when the code driving this world
    /// came through a shared (rank-0-owned) JIT cache — see
    /// [`shared::SharedCache`]. All-zero for unshared runs; the `wootinj`
    /// facade fills it in from the `jit4mpi` snapshot.
    pub shared_jit: SharedCacheStats,
    /// Checkpoint/restart accounting; all-zero for plain [`World::run`].
    pub restart: RestartStats,
}

/// When (and where) to checkpoint a world. Collective boundaries are the
/// only safe cut points: completing a collective synchronizes every
/// participant's clock and leaves no rank mid-protocol, so a snapshot
/// there is globally consistent by construction (only already-posted
/// point-to-point messages can be in flight, and those are captured too).
#[derive(Debug, Clone, Default)]
pub struct CheckpointPolicy {
    /// Take a checkpoint after every `every` completed collectives
    /// (values below 1 behave as 1).
    pub every: u32,
    /// When set, the latest checkpoint also persists to this file
    /// (written temp-then-rename), so a killed *process* can
    /// warm-restart. By convention `<fingerprint>.wckpt` next to the JIT
    /// disk store's artifacts.
    pub persist: Option<PathBuf>,
    /// When set, the cadence *tightens after every restart* — halved
    /// (floor 1) each time a rollback happens. A healthy world pays the
    /// coarse cadence's low overhead; a crashing one converges toward
    /// cadence 1, bounding the virtual time each further crash can
    /// discard. `repro restart-cost` motivates this: cadence 16 exhausts
    /// restart budgets that cadence 1 survives, but costs ~16× fewer
    /// snapshots when nothing goes wrong.
    pub adaptive: bool,
    /// Delta checkpointing: 0 (default) captures a full snapshot every
    /// time; N > 0 captures delta links against the previous snapshot
    /// and starts a fresh base every N deltas (the rebase interval).
    /// Deltas form a verified chain (`base + delta*`, each link carrying
    /// its parent's digest); a damaged link degrades rollback to the
    /// deepest valid ancestor, and persisted chains are
    /// `<name>.wckpt` + `<name>.d1.wckpt`, `<name>.d2.wckpt`, …
    pub rebase_every: u32,
    /// Fixed virtual-cycle latency charged to every live rank per
    /// checkpoint write (0 = checkpoints are free, the historic model).
    pub write_alpha: u64,
    /// Checkpoint write bandwidth in bytes per virtual cycle (0 =
    /// infinite). Together with `write_alpha` this makes
    /// `virtual_time_lost` reflect snapshot size, so delta chains pay
    /// off in time as well as bytes.
    pub write_bytes_per_cycle: u64,
}

impl CheckpointPolicy {
    /// Checkpoint after every `every` completed collectives.
    pub fn every(every: u32) -> Self {
        CheckpointPolicy {
            every,
            ..CheckpointPolicy::default()
        }
    }

    /// Start at cadence `start`, halving (floor 1) after each restart —
    /// see [`CheckpointPolicy::adaptive`].
    pub fn adaptive(start: u32) -> Self {
        CheckpointPolicy {
            every: start,
            adaptive: true,
            ..CheckpointPolicy::default()
        }
    }

    /// Also persist the latest checkpoint to `path`.
    pub fn with_persist(mut self, path: impl Into<PathBuf>) -> Self {
        self.persist = Some(path.into());
        self
    }

    /// Capture deltas against the previous snapshot, rebasing (fresh
    /// full base) every `rebase_every` deltas.
    pub fn with_rebase_every(mut self, rebase_every: u32) -> Self {
        self.rebase_every = rebase_every;
        self
    }

    /// Model checkpoint writes in virtual time: `alpha` fixed cycles
    /// plus size / `bytes_per_cycle` cycles, charged to every live rank
    /// after each capture.
    pub fn with_write_cost(mut self, alpha: u64, bytes_per_cycle: u64) -> Self {
        self.write_alpha = alpha;
        self.write_bytes_per_cycle = bytes_per_cycle;
        self
    }
}

/// Checkpoint/restart accounting for one [`World::run_with_restart`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RestartStats {
    /// Checkpoints captured at collective boundaries.
    pub checkpoints_taken: u64,
    /// Rollback-and-resume cycles performed (0 = the first attempt ran
    /// to completion).
    pub restarts: u64,
    /// Ranks restored from a checkpoint (or re-initialized cold),
    /// summed over all restarts.
    pub ranks_rolled_back: u64,
    /// Virtual cycles discarded by rollbacks: failure-time clock minus
    /// the restored checkpoint's clock, summed over all restarts.
    pub virtual_time_lost: u64,
    /// Checkpoints captured as delta links (subset of
    /// `checkpoints_taken`; the rest were full bases).
    pub delta_checkpoints: u64,
    /// Fresh bases started because the rebase interval elapsed.
    pub rebases: u64,
    /// Total sealed checkpoint bytes produced (bases + deltas) — the
    /// number delta chains exist to shrink.
    pub ckpt_bytes_written: u64,
    /// Damaged/unusable chain links discarded while rolling back or
    /// warm-starting (each drop moves one snapshot deeper in history).
    pub chain_links_dropped: u64,
}

impl std::fmt::Display for RestartStats {
    /// Compact one-line summary for bench output and post-mortems.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ckpts {} ({} delta, {} rebases, {} B) · restarts {} · ranks \
             rolled back {} · vtime lost {} · links dropped {}",
            self.checkpoints_taken,
            self.delta_checkpoints,
            self.rebases,
            self.ckpt_bytes_written,
            self.restarts,
            self.ranks_rolled_back,
            self.virtual_time_lost,
            self.chain_links_dropped,
        )
    }
}

/// A sealed, checksummed snapshot of a whole world at a collective
/// boundary: every rank's interpreter + machine state (including the
/// fault-stream cursors and any device state) plus the in-flight message
/// queues. Produced by [`World::run_with_restart`] per its
/// [`CheckpointPolicy`]; the `bytes` are an `exec::ckpt` world payload.
#[derive(Debug, Clone)]
pub struct WorldCheckpoint {
    /// Sealed container bytes (restorable only by a same-shaped world
    /// over the same program).
    pub bytes: Vec<u8>,
    /// Max rank clock at capture (rollback bookkeeping).
    pub vtime: u64,
}

/// (from, to, tag) -> FIFO of (payload, available_at).
type MsgQueues = HashMap<(u32, u32, i32), VecDeque<(Vec<f32>, u64)>>;

/// Per-rank entry-argument builder: rank id + its machine -> entry args.
type ArgBuilder<'a> = &'a mut dyn FnMut(u32, &mut Machine) -> Result<Vec<Val>, String>;

/// Live checkpointing state threaded through the scheduler by
/// [`World::run_with_restart`]: the current chain epoch (sealed links,
/// base first) plus the incremental encoder positioned at its head.
struct CkptState {
    every: u64,
    rebase_every: u64,
    write_alpha: u64,
    write_bytes_per_cycle: u64,
    persist: Option<PathBuf>,
    since_last: u64,
    chain: chain::ChainState,
    links: Vec<Vec<u8>>,
    deltas_since_base: u64,
    latest_vtime: Option<u64>,
    taken: u64,
    deltas: u64,
    rebases: u64,
    bytes_written: u64,
    links_dropped: u64,
}

impl CkptState {
    fn new(policy: &CheckpointPolicy) -> Self {
        CkptState {
            every: policy.every.max(1) as u64,
            rebase_every: policy.rebase_every as u64,
            write_alpha: policy.write_alpha,
            write_bytes_per_cycle: policy.write_bytes_per_cycle,
            persist: policy.persist.clone(),
            since_last: 0,
            chain: chain::ChainState::new(),
            links: Vec::new(),
            deltas_since_base: 0,
            latest_vtime: None,
            taken: 0,
            deltas: 0,
            rebases: 0,
            bytes_written: 0,
            links_dropped: 0,
        }
    }

    /// Called by the scheduler immediately after a collective completes —
    /// the only globally consistent cut points (see [`CheckpointPolicy`]).
    fn collective_completed(&mut self, world: &World, ranks: &mut [Rank], messages: &MsgQueues) {
        self.since_last += 1;
        if self.since_last < self.every {
            return;
        }
        self.since_last = 0;
        // Injected checkpoint-write I/O fault — a world-level decision
        // drawn from the first live fault stream (rank 0). The write is
        // skipped; the world keeps running on its previous snapshot.
        // Drawn before capture so full and delta modes see identical
        // streams.
        if let Some(plan) = ranks.iter_mut().find_map(|r| r.machine.fault.as_mut()) {
            if plan.ckpt_write_fails() {
                return;
            }
        }
        let sections = world.world_sections(ranks, messages);
        let force_base = self.rebase_every == 0
            || self.links.is_empty()
            || self.deltas_since_base >= self.rebase_every;
        let link = self.chain.push(sections, force_base);
        self.bytes_written += link.bytes.len() as u64;
        if link.is_base {
            if !self.links.is_empty() && self.rebase_every > 0 {
                self.rebases += 1;
            }
            if let Some(path) = &self.persist {
                // Old-epoch deltas go first so a crash mid-rebase leaves
                // either the old base alone (a valid, older ancestor) or
                // the new base alone — never a base with foreign deltas
                // (parent digests would reject those anyway).
                remove_persisted_deltas(path);
                persist_checkpoint(path, &link.bytes);
            }
            self.links.clear();
            self.deltas_since_base = 0;
        } else {
            self.deltas += 1;
            self.deltas_since_base += 1;
            if let Some(path) = &self.persist {
                persist_checkpoint(&delta_path(path, link.seq), &link.bytes);
            }
        }
        let link_len = link.bytes.len() as u64;
        self.links.push(link.bytes);
        self.latest_vtime = Some(ranks.iter().map(|r| r.vclock).max().unwrap_or(0));
        self.taken += 1;
        // Charge the write cost after capture: the snapshot itself is
        // pre-cost, so a rollback also re-pays the time spent writing —
        // exactly the term delta chains shrink.
        // bytes_per_cycle == 0 means "size is free" (the default).
        let cost = self.write_alpha
            + link_len
                .checked_div(self.write_bytes_per_cycle)
                .unwrap_or(0);
        if cost > 0 {
            for rank in ranks.iter_mut().filter(|r| r.done.is_none()) {
                rank.vclock += cost;
                rank.comm_cycles += cost;
            }
        }
    }

    /// Resolve the current chain into runnable world state, degrading to
    /// the deepest valid ancestor: any damaged or undecodable tail link
    /// is dropped (counted) and the next-older snapshot is tried. `None`
    /// means the base itself is gone — a cold restart.
    fn restore_latest(&mut self, world: &World) -> Option<(Vec<Rank>, MsgQueues)> {
        loop {
            if self.links.is_empty() {
                self.latest_vtime = None;
                self.deltas_since_base = 0;
                return None;
            }
            let out = chain::resolve_prefix(&self.links);
            if out.valid_links == self.links.len() {
                match world.world_from_sections(&out.sections) {
                    Ok(rm) => {
                        let head = self.links.last().expect("non-empty chain");
                        self.chain =
                            chain::ChainState::resume(out.sections, head, self.links.len() as u64);
                        self.deltas_since_base = (self.links.len() - 1) as u64;
                        self.latest_vtime = Some(rm.0.iter().map(|r| r.vclock).max().unwrap_or(0));
                        return Some(rm);
                    }
                    Err(_) => {
                        // Chain-valid but not decodable by this world
                        // (program/topology skew): try one link deeper.
                        self.links.pop();
                        self.links_dropped += 1;
                    }
                }
            } else {
                self.links_dropped += (self.links.len() - out.valid_links) as u64;
                self.links.truncate(out.valid_links);
            }
        }
    }
}

/// Path of delta link `seq` beside its chain's base file:
/// `world.wckpt` → `world.d3.wckpt`.
fn delta_path(base: &Path, seq: u64) -> PathBuf {
    let name = base
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("chain.wckpt");
    let stem = name.strip_suffix(".wckpt").unwrap_or(name);
    base.with_file_name(format!("{stem}.d{seq}.wckpt"))
}

/// Load a persisted chain: the base file, then `d1`, `d2`, … until the
/// first missing file (deltas are written densely, so a gap means the
/// rest of the chain is orphaned). Missing base = no chain.
fn load_chain_files(base: &Path) -> Vec<Vec<u8>> {
    let mut links = Vec::new();
    match std::fs::read(base) {
        Ok(bytes) => links.push(bytes),
        Err(_) => return links,
    }
    let mut seq = 1u64;
    while let Ok(bytes) = std::fs::read(delta_path(base, seq)) {
        links.push(bytes);
        seq += 1;
    }
    links
}

/// Remove the dense run of persisted delta files (rebase cleanup).
fn remove_persisted_deltas(base: &Path) {
    let mut seq = 1u64;
    while std::fs::remove_file(delta_path(base, seq)).is_ok() {
        seq += 1;
    }
}

/// Offline inspection of a persisted checkpoint chain: how many link
/// files exist, how many validate (version, checksum, sequence, parent
/// digest), and the typed error at the first bad hop. World-independent —
/// tests and tooling use it to observe exactly which ancestor a
/// warm start will land on.
#[derive(Debug)]
pub struct ChainProbe {
    /// Link files found on disk (base + dense delta run).
    pub links_found: usize,
    /// Leading links that validate and apply cleanly.
    pub links_valid: usize,
    /// Why validation stopped, when `links_valid < links_found`.
    pub error: Option<CkptError>,
}

/// Probe the persisted chain rooted at `base` (see [`ChainProbe`]).
pub fn probe_chain(base: &Path) -> ChainProbe {
    let links = load_chain_files(base);
    let out = chain::resolve_prefix(&links);
    ChainProbe {
        links_found: links.len(),
        links_valid: out.valid_links,
        error: out.error,
    }
}

/// Persist checkpoint bytes via temp-then-rename so a reader (including a
/// warm-restarting process) never observes a torn file. Best-effort: IO
/// failures only cost the warm-restart capability, never the run.
fn persist_checkpoint(path: &Path, bytes: &[u8]) {
    static TMP_UNIQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let file_name = match path.file_name() {
        Some(n) => n.to_os_string(),
        None => return,
    };
    let uniq = TMP_UNIQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp_name = std::ffi::OsString::from(format!(".tmp-{}-{uniq}-", std::process::id()));
    tmp_name.push(&file_name);
    let tmp = path.with_file_name(tmp_name);
    if std::fs::write(&tmp, bytes).is_ok() && std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

/// Derive the device-side fault config for one rank: same rates as the
/// host config, seed decorrelated from the host streams (which already
/// decorrelate per rank via [`FaultPlan::for_rank`]) so a device crash
/// and a host crash never fire in lockstep.
fn device_fault_config(cfg: FaultConfig, rank: u32) -> FaultConfig {
    FaultConfig {
        seed: cfg
            .seed
            .rotate_left(29)
            .wrapping_add(0xD1B5_4A32_D192_ED03u64.wrapping_mul(rank as u64 + 1)),
        ..cfg
    }
}

#[derive(Debug)]
enum Blocked {
    Recv {
        buf: u32,
        off: usize,
        count: usize,
        src: u32,
        tag: i32,
    },
    Barrier,
    Allreduce,
    Bcast {
        buf: u32,
        off: usize,
        count: usize,
        root: u32,
    },
}

#[derive(Debug, Clone, Copy)]
enum AllOp {
    SumF64,
    SumF32,
    MaxF64,
}

struct Rank {
    thread: Thread,
    machine: Machine,
    gpu: Option<Gpu>,
    vclock: u64,
    compute_cycles: u64,
    comm_cycles: u64,
    last_cycles: u64,
    blocked: Option<Blocked>,
    done: Option<Option<Val>>,
    /// Step count at which an injected fault killed this rank.
    crashed: Option<u64>,
    /// Consecutive scheduler rounds spent in the current blocked state
    /// (the per-collective timeout clock).
    blocked_rounds: u64,
}

/// A simulated MPI world over a translated program.
pub struct World<'p> {
    pub program: &'p Program,
    pub size: u32,
    pub cost: CostModel,
    /// One GPU per rank when set (the paper's GPU experiments).
    pub gpu: Option<GpuConfig>,
    /// Fuel per scheduling slice.
    pub slice: u64,
    /// Registered foreign functions (the paper's FFI); `CallHost`
    /// instructions are resolved against this by key.
    pub host: Option<&'p HostRegistry>,
    /// Deterministic fault injection; each rank derives its own stream
    /// from this seed. `None` injects nothing.
    pub fault: Option<FaultConfig>,
    /// Per-collective fuel bound: a rank blocked in one recv/collective
    /// for more than this many scheduler rounds (and, as a backstop, a
    /// world exceeding it globally while any rank is blocked) fails with
    /// [`SimError::Timeout`] instead of hanging. `None` disables it.
    pub timeout_rounds: Option<u64>,
    /// Service order for runnable ranks each round (see [`Schedule`]).
    pub schedule: Schedule,
}

/// Default [`World::timeout_rounds`] once fault injection is enabled:
/// generous enough for every in-repo workload, small enough that an
/// injected would-be hang fails in bounded time.
pub const DEFAULT_FAULT_TIMEOUT_ROUNDS: u64 = 100_000;

impl<'p> World<'p> {
    pub fn new(program: &'p Program, size: u32) -> Self {
        World {
            program,
            size,
            cost: CostModel::default(),
            gpu: None,
            slice: 4_000_000,
            host: None,
            fault: None,
            timeout_rounds: None,
            schedule: Schedule::RankOrder,
        }
    }

    /// Pick the per-round service order for runnable ranks.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    pub fn with_host(mut self, host: &'p HostRegistry) -> Self {
        self.host = Some(host);
        self
    }

    /// Enable deterministic fault injection. Also arms the timeout
    /// backstop (at [`DEFAULT_FAULT_TIMEOUT_ROUNDS`]) unless one was set
    /// explicitly — injected message loss must fail, not hang.
    pub fn with_faults(mut self, fault: FaultConfig) -> Self {
        self.fault = Some(fault);
        self.timeout_rounds
            .get_or_insert(DEFAULT_FAULT_TIMEOUT_ROUNDS);
        self
    }

    /// Bound the rounds a rank may stay blocked in one recv/collective.
    pub fn with_timeout(mut self, rounds: u64) -> Self {
        self.timeout_rounds = Some(rounds);
        self
    }

    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    pub fn with_gpu(mut self, gpu: GpuConfig) -> Self {
        self.gpu = Some(gpu);
        self
    }

    fn msg_cost(&self, bytes: u64) -> u64 {
        self.cost.alpha + (bytes as f64 * self.cost.beta) as u64
    }

    /// Run `entry` on every rank. `make_args` builds each rank's entry
    /// arguments *into that rank's own memory space* (deep copies).
    pub fn run(
        &self,
        entry: FuncId,
        mut make_args: impl FnMut(u32, &mut Machine) -> Result<Vec<Val>, String>,
    ) -> Result<WorldRun, SimError> {
        let mut ranks = self.init_ranks(entry, &mut make_args)?;
        let mut messages: MsgQueues = HashMap::new();
        self.drive(&mut ranks, &mut messages, None)
    }

    /// Like [`World::run`], but checkpoint every
    /// [`CheckpointPolicy::every`] completed collectives and, on
    /// [`SimError::Crash`] / [`SimError::Timeout`], roll every rank back
    /// to the last checkpoint (cold-restart when none exists yet), reseed
    /// every fault stream past its consumed cursor, and resume — up to
    /// `max_restarts` times. Other errors, and restart-budget exhaustion,
    /// propagate the typed error (with its last post-mortem) unchanged.
    pub fn run_with_restart(
        &self,
        entry: FuncId,
        mut make_args: impl FnMut(u32, &mut Machine) -> Result<Vec<Val>, String>,
        policy: &CheckpointPolicy,
        max_restarts: u32,
    ) -> Result<WorldRun, SimError> {
        let mut ck = CkptState::new(policy);
        // Warm start: a killed process may have left a persisted chain
        // behind. Unreadable, corrupt, or mismatched links simply shorten
        // the chain (deepest valid ancestor); a bad base means a cold
        // start — never an error, never a panic.
        if let Some(path) = ck.persist.clone() {
            ck.links = load_chain_files(&path);
        }
        let mut stats = RestartStats::default();
        let mut carried = ResilienceStats::default();
        loop {
            let attempt = stats.restarts;
            // Roll back to the deepest valid snapshot in the chain,
            // degrading link by link and to a cold restart at the end.
            let restored = ck.restore_latest(self);
            let (mut ranks, mut messages) = match restored {
                Some(rm) => rm,
                None => (self.init_ranks(entry, &mut make_args)?, MsgQueues::new()),
            };
            if attempt > 0 {
                stats.ranks_rolled_back += ranks.iter().filter(|r| r.done.is_none()).count() as u64;
                // Everything the failed attempt observed is already in
                // `carried`; zero the counters and move every stream past
                // its consumed cursor so the fault that killed the last
                // attempt is not re-drawn identically forever.
                for rank in ranks.iter_mut() {
                    if let Some(plan) = rank.machine.fault.as_mut() {
                        plan.stats = ResilienceStats::default();
                        plan.reseed(attempt);
                    }
                    if let Some(gpu) = rank.gpu.as_mut() {
                        gpu.reseed_faults(attempt);
                    }
                }
            }
            match self.drive(&mut ranks, &mut messages, Some(&mut ck)) {
                Ok(mut run) => {
                    stats.checkpoints_taken = ck.taken;
                    stats.delta_checkpoints = ck.deltas;
                    stats.rebases = ck.rebases;
                    stats.ckpt_bytes_written = ck.bytes_written;
                    stats.chain_links_dropped = ck.links_dropped;
                    run.resilience.merge(&carried);
                    run.resilience.checkpoints_taken += ck.taken;
                    run.resilience.restarts += stats.restarts;
                    run.restart = stats;
                    return Ok(run);
                }
                Err(err) => {
                    let recoverable =
                        matches!(err, SimError::Crash { .. } | SimError::Timeout { .. });
                    if !recoverable || stats.restarts >= max_restarts as u64 {
                        return Err(err);
                    }
                    for rank in ranks.iter() {
                        if let Some(plan) = &rank.machine.fault {
                            carried.merge(&plan.stats);
                        }
                        if let Some(gpu) = &rank.gpu {
                            carried.merge(&gpu.fault_stats());
                        }
                    }
                    let fail_vtime = ranks.iter().map(|r| r.vclock).max().unwrap_or(0);
                    let base = ck.latest_vtime.unwrap_or(0);
                    stats.virtual_time_lost += fail_vtime.saturating_sub(base);
                    stats.restarts += 1;
                    // Adaptive cadence: each restart halves the interval
                    // (floor 1), so a world that keeps crashing pays for
                    // snapshots exactly when they earn their keep.
                    if policy.adaptive {
                        ck.every = (ck.every / 2).max(1);
                        ck.since_last = 0;
                    }
                }
            }
        }
    }

    fn init_ranks(&self, entry: FuncId, make_args: ArgBuilder<'_>) -> Result<Vec<Rank>, SimError> {
        let mut ranks: Vec<Rank> = Vec::with_capacity(self.size as usize);
        for r in 0..self.size {
            let mut machine = Machine::with_globals(self.program);
            if let Some(cfg) = self.fault {
                machine.fault = Some(FaultPlan::for_rank(cfg, r));
            }
            let args = make_args(r, &mut machine)
                .map_err(|m| err_on(r, format!("building entry args: {m}")))?;
            let thread =
                Thread::new(self.program, entry, args).map_err(|e| err_on(r, e.to_string()))?;
            let mut gpu = self.gpu.map(Gpu::new);
            if let (Some(g), Some(cfg)) = (gpu.as_mut(), self.fault) {
                g.set_fault(device_fault_config(cfg, r));
            }
            ranks.push(Rank {
                thread,
                machine,
                gpu,
                vclock: 0,
                compute_cycles: 0,
                comm_cycles: 0,
                last_cycles: 0,
                blocked: None,
                done: None,
                crashed: None,
                blocked_rounds: 0,
            });
        }
        Ok(ranks)
    }

    /// The cooperative scheduler: drives `ranks` to completion (or a
    /// typed failure), optionally checkpointing at collective boundaries.
    fn drive(
        &self,
        ranks: &mut Vec<Rank>,
        messages: &mut MsgQueues,
        mut ckpt: Option<&mut CkptState>,
    ) -> Result<WorldRun, SimError> {
        // Collective rendezvous state.
        let mut barrier_waiters: Vec<u32> = Vec::new();
        let mut allreduce: Vec<(u32, AllOp, Val)> = Vec::new();
        let mut bcast_waiters: Vec<u32> = Vec::new();
        // Scheduler rounds so far (the global half of the timeout bound).
        let mut rounds: u64 = 0;
        // PRNG for `Schedule::Seeded` (fresh per drive, so every restart
        // attempt replays the same interleaving for the same seed).
        let mut sched_rng = match self.schedule {
            Schedule::RankOrder => 0,
            Schedule::Seeded(seed) => seed | 1,
        };
        let mut order: Vec<usize> = (0..self.size as usize).collect();

        loop {
            let mut progress = false;

            // 1. Try to unblock receivers / collectives.
            #[allow(clippy::needless_range_loop)] // r is also a rank id
            for r in 0..self.size as usize {
                let Some(blocked) = ranks[r].blocked.as_ref() else {
                    continue;
                };
                match *blocked {
                    Blocked::Recv {
                        buf,
                        off,
                        count,
                        src,
                        tag,
                    } => {
                        let key = (src, r as u32, tag);
                        let ready = messages.get_mut(&key).and_then(|q| q.pop_front());
                        if let Some((payload, avail_at)) = ready {
                            let loc = yield_location(self.program, &ranks[r].thread);
                            if payload.len() != count {
                                return Err(err_on(
                                    r as u32,
                                    locate(
                                        format!(
                                            "recv of {count} floats matched a message of {}",
                                            payload.len()
                                        ),
                                        &loc,
                                    ),
                                ));
                            }
                            write_floats(&mut ranks[r].machine, buf, off, &payload)
                                .map_err(|m| err_on(r as u32, locate(m, &loc)))?;
                            let rank = &mut ranks[r];
                            let arrival = rank.vclock.max(avail_at);
                            rank.comm_cycles += arrival - rank.vclock;
                            rank.vclock = arrival;
                            rank.blocked = None;
                            rank.thread.resume_with(Val::Unit);
                            progress = true;
                        }
                    }
                    Blocked::Barrier => {}
                    Blocked::Allreduce => {}
                    Blocked::Bcast { .. } => {}
                }
            }

            // 2. Complete collectives when everyone arrived.
            let live = ranks.iter().filter(|r| r.done.is_none()).count() as u32;
            if !barrier_waiters.is_empty() && barrier_waiters.len() as u32 == live {
                let t = self.complete_collective(ranks, &barrier_waiters);
                for &r in &barrier_waiters {
                    let rank = &mut ranks[r as usize];
                    rank.vclock = t;
                    rank.blocked = None;
                    rank.thread.resume_with(Val::Unit);
                }
                barrier_waiters.clear();
                progress = true;
                if let Some(ck) = ckpt.as_deref_mut() {
                    ck.collective_completed(self, ranks, messages);
                }
            }
            if !allreduce.is_empty() && allreduce.len() as u32 == live {
                let participants: Vec<u32> = allreduce.iter().map(|(r, _, _)| *r).collect();
                let t = self.complete_collective(ranks, &participants);
                let op = allreduce[0].1;
                let combined = combine(op, &allreduce).map_err(|m| SimError::World {
                    message: m.to_string(),
                })?;
                for &(r, _, _) in allreduce.iter() {
                    let rank = &mut ranks[r as usize];
                    rank.vclock = t;
                    rank.blocked = None;
                    rank.thread.resume_with(combined);
                }
                allreduce.clear();
                progress = true;
                if let Some(ck) = ckpt.as_deref_mut() {
                    ck.collective_completed(self, ranks, messages);
                }
            }
            if !bcast_waiters.is_empty() && bcast_waiters.len() as u32 == live {
                // Copy the root's payload into everyone else's buffer.
                let (root, count) = {
                    let Some(Blocked::Bcast { root, count, .. }) =
                        &ranks[bcast_waiters[0] as usize].blocked
                    else {
                        return Err(SimError::World {
                            message: "inconsistent bcast state".into(),
                        });
                    };
                    (*root, *count)
                };
                let mut payload = {
                    let Some(Blocked::Bcast { buf, off, .. }) = &ranks[root as usize].blocked
                    else {
                        return Err(err_on(root, "bcast root is not at the bcast"));
                    };
                    let loc = yield_location(self.program, &ranks[root as usize].thread);
                    read_floats(&ranks[root as usize].machine, *buf, *off, count)
                        .map_err(|m| err_on(root, locate(m, &loc)))?
                };
                // Fault injection on the broadcast payload, drawn from
                // the root's stream (collectives corrupt or delay — a
                // dropped collective is a crash, not a message fault).
                let mut extra_delay = 0;
                if let Some(plan) = ranks[root as usize].machine.fault.as_mut() {
                    match plan.collective_fault() {
                        MsgFault::Corrupt => exec::fault::corrupt_f32(&mut payload),
                        MsgFault::Delay(d) => extra_delay = d,
                        MsgFault::None | MsgFault::Drop => {}
                    }
                }
                let t = self.complete_collective(ranks, &bcast_waiters)
                    + self.msg_cost((count * 4) as u64)
                    + extra_delay;
                for &r in &bcast_waiters {
                    let rank = &mut ranks[r as usize];
                    let loc = yield_location(self.program, &rank.thread);
                    if r != root {
                        let Some(Blocked::Bcast { buf, off, .. }) = &rank.blocked else {
                            unreachable!()
                        };
                        let (buf, off) = (*buf, *off);
                        write_floats(&mut rank.machine, buf, off, &payload)
                            .map_err(|m| err_on(r, locate(m, &loc)))?;
                    }
                    rank.vclock = t;
                    rank.blocked = None;
                    rank.thread.resume_with(Val::Unit);
                }
                bcast_waiters.clear();
                progress = true;
                if let Some(ck) = ckpt.as_deref_mut() {
                    ck.collective_completed(self, ranks, messages);
                }
            }

            // 3. Run runnable ranks for a slice. Under `Seeded`, the
            // service order is a fresh Fisher–Yates permutation each
            // round — the deterministic analogue of an OS thread
            // scheduler picking workers in arbitrary order.
            if let Schedule::Seeded(_) = self.schedule {
                for i in (1..order.len()).rev() {
                    let j = (sched_next(&mut sched_rng) % (i as u64 + 1)) as usize;
                    order.swap(i, j);
                }
            }
            for &r in &order {
                if ranks[r].done.is_some()
                    || ranks[r].blocked.is_some()
                    || ranks[r].crashed.is_some()
                {
                    continue;
                }
                progress = true;
                let y = {
                    let rank = &mut ranks[r];
                    let y = run(
                        &mut rank.thread,
                        self.program,
                        &mut rank.machine,
                        self.slice,
                    )
                    .map_err(|e| err_on(r as u32, e.to_string()))?;
                    let delta = rank.machine.counters.cycles - rank.last_cycles;
                    rank.last_cycles = rank.machine.counters.cycles;
                    rank.vclock += delta;
                    rank.compute_cycles += delta;
                    y
                };
                match y {
                    Yield::Done(v) => ranks[r].done = Some(v),
                    Yield::OutOfFuel => {}
                    Yield::Crashed { step } => {
                        // The rank is dead. Let the survivors run on —
                        // the world fails with a post-mortem once no one
                        // can make progress (see below).
                        ranks[r].crashed = Some(step);
                    }
                    Yield::Sync | Yield::SharedAlloc { .. } => {
                        return Err(err_on(
                            r as u32,
                            "__syncthreads / __shared__ outside a kernel launch",
                        ));
                    }
                    Yield::Launch {
                        kernel,
                        grid,
                        block,
                        args,
                    } => {
                        let rank = &mut ranks[r];
                        let gpu = rank.gpu.as_mut().ok_or_else(|| {
                            err_on(r as u32, "kernel launch but no GPU configured for this run")
                        })?;
                        match gpu.launch(self.program, kernel, grid, block, args) {
                            Ok(stats) => {
                                rank.vclock += stats.kernel_time;
                                rank.comm_cycles += stats.kernel_time;
                            }
                            // An injected device fault kills the rank
                            // (typed), exactly like a host-side crash —
                            // the restart path can recover it.
                            Err(e) if e.is_injected() => {
                                let GpuErrorKind::InjectedCrash { step, .. } = e.kind else {
                                    unreachable!()
                                };
                                rank.crashed = Some(step);
                            }
                            Err(e) => return Err(err_on(r as u32, e.to_string())),
                        }
                    }
                    Yield::GpuMem { op, args } => {
                        self.service_gpu_mem(&mut ranks[r], r as u32, op, args)?;
                    }
                    Yield::Host { host, args } => {
                        let rank = &mut ranks[r];
                        let loc = yield_location(self.program, &rank.thread);
                        let sig = self.program.host_fns.get(host as usize).ok_or_else(|| {
                            err_on(r as u32, locate("unknown host function", &loc))
                        })?;
                        let registry = self.host.ok_or_else(|| {
                            err_on(
                                r as u32,
                                locate(
                                    format!(
                                    "foreign function `{}` called but no host registry configured",
                                    sig.name
                                ),
                                    &loc,
                                ),
                            )
                        })?;
                        let id = registry.id_of(&sig.name).ok_or_else(|| {
                            err_on(
                                r as u32,
                                locate(
                                    format!("foreign function `{}` is not registered", sig.name),
                                    &loc,
                                ),
                            )
                        })?;
                        // Transient host-FFI failures (injected) are
                        // retried with exponential virtual-time backoff
                        // up to the configured budget; the call itself
                        // only runs once the attempt survives the draw.
                        let mut attempt: u32 = 0;
                        loop {
                            let transient = rank
                                .machine
                                .fault
                                .as_mut()
                                .is_some_and(|p| p.host_attempt_fails());
                            if !transient {
                                break;
                            }
                            let plan = rank.machine.fault.as_mut().unwrap();
                            if attempt >= plan.config.max_host_retries {
                                return Err(err_on(
                                    r as u32,
                                    locate(
                                        format!(
                                            "foreign function `{}` failed {} times \
                                             (injected transient errors, retry budget exhausted)",
                                            sig.name,
                                            attempt + 1
                                        ),
                                        &loc,
                                    ),
                                ));
                            }
                            attempt += 1;
                            plan.stats.host_retries += 1;
                            let backoff = plan.backoff_cycles(attempt);
                            rank.vclock += backoff;
                            rank.comm_cycles += backoff;
                        }
                        let v = registry
                            .call(id, &args, &mut rank.machine.mem)
                            .map_err(|m| {
                                err_on(r as u32, format!("in `{}`: {}", sig.name, locate(m, &loc)))
                            })?;
                        rank.thread.resume_with(v);
                    }
                    Yield::Mpi { op, args } => {
                        self.service_mpi(
                            ranks,
                            r as u32,
                            op,
                            args,
                            messages,
                            &mut barrier_waiters,
                            &mut allreduce,
                            &mut bcast_waiters,
                        )?;
                    }
                }
            }

            if ranks.iter().all(|r| r.done.is_some()) {
                break;
            }
            if !progress {
                // A crashed rank explains the stall: fail with its
                // post-mortem instead of reporting a plain deadlock.
                if let Some((cr, step)) = ranks
                    .iter()
                    .enumerate()
                    .find_map(|(i, rk)| rk.crashed.map(|s| (i as u32, s)))
                {
                    return Err(SimError::Crash {
                        rank: cr,
                        step,
                        post_mortem: world_report(ranks, messages),
                    });
                }
                return Err(SimError::Deadlock {
                    report: world_report(ranks, messages),
                });
            }

            // Per-collective timeout clock: rounds spent in the current
            // blocked state. A would-be hang (e.g. a dropped message's
            // receiver while its sender spins) becomes a typed Timeout.
            rounds += 1;
            for rank in ranks.iter_mut() {
                if rank.blocked.is_some() {
                    rank.blocked_rounds += 1;
                } else {
                    rank.blocked_rounds = 0;
                }
            }
            if let Some(bound) = self.timeout_rounds {
                let over = ranks
                    .iter()
                    .enumerate()
                    .filter(|(_, rk)| rk.blocked.is_some())
                    .map(|(i, rk)| (i as u32, rk.blocked_rounds))
                    .max_by_key(|&(_, w)| w)
                    .filter(|&(_, w)| w > bound || rounds > bound);
                if let Some((tr, waited)) = over {
                    return Err(SimError::Timeout {
                        rank: tr,
                        waited_rounds: waited.max(rounds),
                        report: world_report(ranks, messages),
                    });
                }
            }
        }

        let vtime = ranks.iter().map(|r| r.vclock).max().unwrap_or(0);
        let total_cycles = ranks.iter().map(|r| r.compute_cycles).sum();
        let mut resilience = ResilienceStats::default();
        for r in ranks.iter() {
            if let Some(plan) = &r.machine.fault {
                resilience.merge(&plan.stats);
            }
            if let Some(gpu) = &r.gpu {
                resilience.merge(&gpu.fault_stats());
            }
        }
        Ok(WorldRun {
            shared_jit: SharedCacheStats::default(),
            ranks: std::mem::take(ranks)
                .into_iter()
                .map(|r| RankOutcome {
                    result: r.done.flatten(),
                    vclock: r.vclock,
                    compute_cycles: r.compute_cycles,
                    comm_cycles: r.comm_cycles,
                    output: r.machine.output.clone(),
                    gpu_time: r.gpu.as_ref().map(|g| g.vtime).unwrap_or(0),
                    machine: r.machine,
                })
                .collect(),
            vtime,
            total_cycles,
            resilience,
            restart: RestartStats::default(),
        })
    }

    /// Decompose the world into the ordered byte sections a checkpoint
    /// chain diffs over: one header section (sizes, clocks, completion),
    /// then per rank a call-stack section, one section *per heap array*
    /// (so an untouched mesh costs nothing in a delta link), the rest of
    /// the machine (objects, globals, output, counters, fault-PRNG
    /// cursor), and any device state — and finally the in-flight message
    /// queues. Only ever called at a collective boundary, where all live
    /// ranks' clocks are synchronized and no collective is partially
    /// complete.
    fn world_sections(&self, ranks: &[Rank], messages: &MsgQueues) -> Vec<Vec<u8>> {
        let mut header = Writer::new();
        header.u32(self.size);
        header.len(ranks.len());
        let mut body: Vec<Vec<u8>> = Vec::new();
        for rank in ranks {
            match &rank.done {
                None => header.u8(0),
                Some(None) => header.u8(1),
                Some(Some(v)) => {
                    header.u8(2);
                    ckpt::write_val(&mut header, *v);
                }
            }
            header.u64(rank.vclock);
            header.u64(rank.compute_cycles);
            header.u64(rank.comm_cycles);
            header.u64(rank.last_cycles);
            header.bool(rank.gpu.is_some());
            let arrays = ckpt::machine_array_sections(&rank.machine);
            // Count of sections elsewhere — not a same-buffer length, so
            // it must not go through the reader's `len()` sanity bound.
            header.u32(arrays.len() as u32);
            let mut t = Writer::new();
            ckpt::write_thread(&mut t, &rank.thread);
            body.push(t.into_bytes());
            body.extend(arrays);
            let mut m = Writer::new();
            ckpt::write_machine_rest(&mut m, &rank.machine);
            body.push(m.into_bytes());
            if let Some(gpu) = &rank.gpu {
                let mut g = Writer::new();
                ckpt::write_machine(&mut g, &gpu.machine);
                g.u64(gpu.vtime);
                g.u64(gpu.allocated_bytes);
                body.push(g.into_bytes());
            }
        }
        // HashMap iteration order is nondeterministic — sort the keys so
        // identical worlds produce bit-identical checkpoints.
        let mut msgs = Writer::new();
        let mut keys: Vec<&(u32, u32, i32)> = messages.keys().collect();
        keys.sort();
        msgs.len(keys.len());
        for key in keys {
            let q = &messages[key];
            msgs.u32(key.0);
            msgs.u32(key.1);
            msgs.i32(key.2);
            msgs.len(q.len());
            for (payload, avail_at) in q {
                msgs.len(payload.len());
                for &f in payload {
                    msgs.f32(f);
                }
                msgs.u64(*avail_at);
            }
        }
        let mut sections = Vec::with_capacity(body.len() + 2);
        sections.push(header.into_bytes());
        sections.append(&mut body);
        sections.push(msgs.into_bytes());
        sections
    }

    /// Decode resolved chain sections back into runnable ranks and
    /// message queues. Every failure mode — truncation, corruption,
    /// version or topology skew — is a typed [`CkptError`], never a
    /// panic. Fault plans are restored with their exact PRNG cursors;
    /// device-side plans are re-armed from the world's fault config
    /// (their cursors advance via [`Gpu::reseed_faults`] on restart
    /// instead).
    fn world_from_sections(
        &self,
        sections: &[Vec<u8>],
    ) -> Result<(Vec<Rank>, MsgQueues), CkptError> {
        fn bad(message: impl Into<String>) -> CkptError {
            CkptError::Corrupt {
                offset: 0,
                message: message.into(),
            }
        }
        let mut it = sections.iter();
        let mut h = Reader::new(it.next().ok_or_else(|| bad("empty snapshot"))?);
        let size = h.u32()?;
        if size != self.size {
            return Err(bad(format!(
                "checkpoint is for a {size}-rank world, this world has {} ranks",
                self.size
            )));
        }
        let n = h.len()?;
        if n != self.size as usize {
            return Err(bad("rank count does not match world size"));
        }
        let mut ranks = Vec::with_capacity(n);
        for rank_id in 0..n {
            let done = match h.u8()? {
                0 => None,
                1 => Some(None),
                2 => Some(Some(ckpt::read_val(&mut h)?)),
                t => return Err(bad(format!("bad rank-done tag {t:#x}"))),
            };
            let vclock = h.u64()?;
            let compute_cycles = h.u64()?;
            let comm_cycles = h.u64()?;
            let last_cycles = h.u64()?;
            let has_gpu = h.bool()?;
            let n_arrays = h.u32()? as usize;
            if n_arrays > sections.len() {
                return Err(bad(format!(
                    "rank {rank_id} claims {n_arrays} arrays in a {}-section snapshot",
                    sections.len()
                )));
            }
            let mut section = |what: &str| {
                it.next()
                    .ok_or_else(|| bad(format!("missing {what} section of rank {rank_id}")))
            };
            let mut t = Reader::new(section("thread")?);
            let thread = ckpt::read_thread(&mut t, self.program)?;
            let mut arrays = Vec::with_capacity(n_arrays);
            for i in 0..n_arrays {
                let mut a = Reader::new(section(&format!("array {i}"))?);
                arrays.push(ckpt::read_arr(&mut a)?);
            }
            let mut m = Reader::new(section("machine")?);
            let machine = ckpt::read_machine_rest(&mut m, arrays)?;
            let gpu = if has_gpu {
                let Some(cfg) = self.gpu else {
                    return Err(bad("checkpoint has device state but this world has no GPU"));
                };
                let mut gr = Reader::new(section("device")?);
                let mut g = Gpu::new(cfg);
                g.machine = ckpt::read_machine(&mut gr)?;
                g.vtime = gr.u64()?;
                g.allocated_bytes = gr.u64()?;
                if let Some(fault) = self.fault {
                    g.set_fault(device_fault_config(fault, rank_id as u32));
                }
                Some(g)
            } else {
                None
            };
            ranks.push(Rank {
                thread,
                machine,
                gpu,
                vclock,
                compute_cycles,
                comm_cycles,
                last_cycles,
                blocked: None,
                done,
                crashed: None,
                blocked_rounds: 0,
            });
        }
        let mut messages: MsgQueues = HashMap::new();
        let mut r = Reader::new(it.next().ok_or_else(|| bad("missing message section"))?);
        let n_queues = r.len()?;
        for _ in 0..n_queues {
            let from = r.u32()?;
            let to = r.u32()?;
            let tag = r.i32()?;
            let n_msgs = r.len()?;
            let mut q = VecDeque::with_capacity(n_msgs);
            for _ in 0..n_msgs {
                let n_floats = r.len()?;
                let mut payload = Vec::with_capacity(n_floats);
                for _ in 0..n_floats {
                    payload.push(r.f32()?);
                }
                let avail_at = r.u64()?;
                q.push_back((payload, avail_at));
            }
            messages.insert((from, to, tag), q);
        }
        if !r.is_at_end() {
            return Err(bad("trailing bytes after message queues"));
        }
        if it.next().is_some() {
            return Err(bad("trailing sections after world snapshot"));
        }
        Ok((ranks, messages))
    }

    /// Serialize the world as a standalone full snapshot — a single-link
    /// chain (one sealed base).
    #[cfg(test)]
    fn capture_checkpoint(&self, ranks: &[Rank], messages: &MsgQueues) -> WorldCheckpoint {
        let sections = self.world_sections(ranks, messages);
        let vtime = ranks.iter().map(|r| r.vclock).max().unwrap_or(0);
        WorldCheckpoint {
            bytes: chain::base_link(&sections),
            vtime,
        }
    }

    /// Decode a standalone full snapshot ([`World::capture_checkpoint`]).
    #[cfg(test)]
    fn restore_checkpoint(&self, bytes: &[u8]) -> Result<(Vec<Rank>, MsgQueues), CkptError> {
        let links = [bytes.to_vec()];
        let out = chain::resolve_prefix(&links);
        if let Some(e) = out.error {
            return Err(e);
        }
        self.world_from_sections(&out.sections)
    }

    /// Enqueue an outgoing point-to-point message, applying the sending
    /// rank's injected message faults: dropped messages are lost in
    /// flight (the sender still pays the cost — it cannot tell), corrupt
    /// ones arrive with a flipped payload bit, delayed ones become
    /// available later in virtual time.
    fn post_message(
        &self,
        sender: &mut Rank,
        from: u32,
        dest: u32,
        tag: i32,
        mut payload: Vec<f32>,
        messages: &mut MsgQueues,
    ) {
        let mut avail_at = sender.vclock;
        if let Some(plan) = sender.machine.fault.as_mut() {
            match plan.message_fault() {
                MsgFault::Drop => return,
                MsgFault::Corrupt => exec::fault::corrupt_f32(&mut payload),
                MsgFault::Delay(d) => avail_at += d,
                MsgFault::None => {}
            }
        }
        messages
            .entry((from, dest, tag))
            .or_default()
            .push_back((payload, avail_at));
    }

    /// An allreduce contribution, possibly corrupted or delayed by the
    /// contributing rank's fault stream (delay pushes the rank's clock,
    /// which delays the collective's completion time).
    fn contribute(&self, rank: &mut Rank, v: Val) -> Val {
        let Some(plan) = rank.machine.fault.as_mut() else {
            return v;
        };
        match plan.collective_fault() {
            MsgFault::Corrupt => corrupt_val(v),
            MsgFault::Delay(d) => {
                rank.vclock += d;
                rank.comm_cycles += d;
                v
            }
            MsgFault::None | MsgFault::Drop => v,
        }
    }

    /// Collective completion time: max participant clock + base cost +
    /// a log2(size) latency term.
    fn complete_collective(&self, ranks: &mut [Rank], participants: &[u32]) -> u64 {
        let max = participants
            .iter()
            .map(|&r| ranks[r as usize].vclock)
            .max()
            .unwrap_or(0);
        let log2 = 32 - (self.size.max(1)).leading_zeros() as u64;
        let t = max + self.cost.collective_alpha + self.cost.alpha * log2;
        for &r in participants {
            let rank = &mut ranks[r as usize];
            rank.comm_cycles += t - rank.vclock;
        }
        t
    }

    fn service_gpu_mem(
        &self,
        rank: &mut Rank,
        r: u32,
        op: IntrinOp,
        args: Vec<Val>,
    ) -> Result<(), SimError> {
        let loc = yield_location(self.program, &rank.thread);
        let gpu = rank.gpu.as_mut().ok_or_else(|| {
            err_on(
                r,
                format!("GPU operation {op:?} but no GPU configured for this run"),
            )
        })?;
        let before = gpu.vtime;
        match op {
            IntrinOp::CopyToGpu => {
                let host = args[0].as_arr().map_err(|m| err_on(r, locate(m, &loc)))?;
                let store = rank
                    .machine
                    .mem
                    .arr(host)
                    .map_err(|m| err_on(r, locate(m, &loc)))?
                    .clone();
                let dev = gpu.copy_in(&store).map_err(|e| err_on(r, e.to_string()))?;
                rank.thread.resume_with(Val::Arr(dev));
            }
            IntrinOp::CopyFromGpu => {
                let host = args[0].as_arr().map_err(|m| err_on(r, locate(m, &loc)))?;
                let dev = args[1].as_arr().map_err(|m| err_on(r, locate(m, &loc)))?;
                let mut tmp = rank
                    .machine
                    .mem
                    .arr(host)
                    .map_err(|m| err_on(r, locate(m, &loc)))?
                    .clone();
                gpu.copy_out(dev, &mut tmp)
                    .map_err(|e| err_on(r, e.to_string()))?;
                *rank
                    .machine
                    .mem
                    .arr_mut(host)
                    .map_err(|m| err_on(r, locate(m, &loc)))? = tmp;
                rank.thread.resume_with(Val::Unit);
            }
            IntrinOp::CopyToGpuRange => {
                // (dev, devOff, host, hostOff, len)
                let dev = args[0].as_arr().map_err(|m| err_on(r, locate(m, &loc)))?;
                let doff = args[1].as_i32().map_err(|m| err_on(r, locate(m, &loc)))? as usize;
                let host = args[2].as_arr().map_err(|m| err_on(r, locate(m, &loc)))?;
                let hoff = args[3].as_i32().map_err(|m| err_on(r, locate(m, &loc)))? as usize;
                let len = args[4].as_i32().map_err(|m| err_on(r, locate(m, &loc)))? as usize;
                let payload = read_floats(&rank.machine, host, hoff, len)
                    .map_err(|m| err_on(r, locate(m, &loc)))?;
                gpu.write_range(dev, doff, &payload)
                    .map_err(|e| err_on(r, e.to_string()))?;
                rank.thread.resume_with(Val::Unit);
            }
            IntrinOp::CopyFromGpuRange => {
                // (host, hostOff, dev, devOff, len)
                let host = args[0].as_arr().map_err(|m| err_on(r, locate(m, &loc)))?;
                let hoff = args[1].as_i32().map_err(|m| err_on(r, locate(m, &loc)))? as usize;
                let dev = args[2].as_arr().map_err(|m| err_on(r, locate(m, &loc)))?;
                let doff = args[3].as_i32().map_err(|m| err_on(r, locate(m, &loc)))? as usize;
                let len = args[4].as_i32().map_err(|m| err_on(r, locate(m, &loc)))? as usize;
                let payload = gpu
                    .read_range(dev, doff, len)
                    .map_err(|e| err_on(r, e.to_string()))?;
                write_floats(&mut rank.machine, host, hoff, &payload)
                    .map_err(|m| err_on(r, locate(m, &loc)))?;
                rank.thread.resume_with(Val::Unit);
            }
            IntrinOp::GpuAllocF32 => {
                let n = args[0].as_i32().map_err(|m| err_on(r, locate(m, &loc)))?;
                if n < 0 {
                    return Err(err_on(r, "negative device allocation"));
                }
                let dev = gpu.alloc_f32(n as usize);
                rank.thread.resume_with(Val::Arr(dev));
            }
            IntrinOp::GpuFree => {
                let dev = args[0].as_arr().map_err(|m| err_on(r, locate(m, &loc)))?;
                gpu.free(dev).map_err(|e| err_on(r, e.to_string()))?;
                rank.thread.resume_with(Val::Unit);
            }
            other => {
                return Err(err_on(
                    r,
                    format!("CUDA thread register {other:?} read outside a kernel"),
                ))
            }
        }
        let delta = gpu.vtime - before;
        rank.vclock += delta;
        rank.comm_cycles += delta;
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn service_mpi(
        &self,
        ranks: &mut [Rank],
        r: u32,
        op: IntrinOp,
        args: Vec<Val>,
        messages: &mut MsgQueues,
        barrier_waiters: &mut Vec<u32>,
        allreduce: &mut Vec<(u32, AllOp, Val)>,
        bcast_waiters: &mut Vec<u32>,
    ) -> Result<(), SimError> {
        let ri = r as usize;
        let loc = yield_location(self.program, &ranks[ri].thread);
        let check_rank = |v: i32| -> Result<u32, SimError> {
            if v < 0 || v as u32 >= self.size {
                Err(err_on(
                    r,
                    locate(
                        format!("rank {v} out of range (world size {})", self.size),
                        &loc,
                    ),
                ))
            } else {
                Ok(v as u32)
            }
        };
        match op {
            IntrinOp::MpiRank => {
                ranks[ri].thread.resume_with(Val::I32(r as i32));
            }
            IntrinOp::MpiSize => {
                ranks[ri].thread.resume_with(Val::I32(self.size as i32));
            }
            IntrinOp::MpiBarrier => {
                ranks[ri].blocked = Some(Blocked::Barrier);
                barrier_waiters.push(r);
            }
            IntrinOp::MpiSendF32 => {
                // sendF(buf, off, count, dest, tag)
                let buf = args[0].as_arr().map_err(|m| err_on(r, locate(m, &loc)))?;
                let off = args[1].as_i32().map_err(|m| err_on(r, locate(m, &loc)))? as usize;
                let count = args[2].as_i32().map_err(|m| err_on(r, locate(m, &loc)))? as usize;
                let dest = check_rank(args[3].as_i32().map_err(|m| err_on(r, locate(m, &loc)))?)?;
                let tag = args[4].as_i32().map_err(|m| err_on(r, locate(m, &loc)))?;
                let payload = read_floats(&ranks[ri].machine, buf, off, count)
                    .map_err(|m| err_on(r, locate(m, &loc)))?;
                let cost = self.msg_cost((count * 4) as u64);
                ranks[ri].vclock += cost;
                ranks[ri].comm_cycles += cost;
                self.post_message(&mut ranks[ri], r, dest, tag, payload, messages);
                ranks[ri].thread.resume_with(Val::Unit);
            }
            IntrinOp::MpiRecvF32 => {
                // recvF(buf, off, count, src, tag)
                let buf = args[0].as_arr().map_err(|m| err_on(r, locate(m, &loc)))?;
                let off = args[1].as_i32().map_err(|m| err_on(r, locate(m, &loc)))? as usize;
                let count = args[2].as_i32().map_err(|m| err_on(r, locate(m, &loc)))? as usize;
                let src = check_rank(args[3].as_i32().map_err(|m| err_on(r, locate(m, &loc)))?)?;
                let tag = args[4].as_i32().map_err(|m| err_on(r, locate(m, &loc)))?;
                ranks[ri].blocked = Some(Blocked::Recv {
                    buf,
                    off,
                    count,
                    src,
                    tag,
                });
            }
            IntrinOp::MpiSendRecvF32 => {
                // sendrecvF(sbuf, soff, count, dest, rbuf, roff, src, tag)
                let sbuf = args[0].as_arr().map_err(|m| err_on(r, locate(m, &loc)))?;
                let soff = args[1].as_i32().map_err(|m| err_on(r, locate(m, &loc)))? as usize;
                let count = args[2].as_i32().map_err(|m| err_on(r, locate(m, &loc)))? as usize;
                let dest = check_rank(args[3].as_i32().map_err(|m| err_on(r, locate(m, &loc)))?)?;
                let rbuf = args[4].as_arr().map_err(|m| err_on(r, locate(m, &loc)))?;
                let roff = args[5].as_i32().map_err(|m| err_on(r, locate(m, &loc)))? as usize;
                let src = check_rank(args[6].as_i32().map_err(|m| err_on(r, locate(m, &loc)))?)?;
                let tag = args[7].as_i32().map_err(|m| err_on(r, locate(m, &loc)))?;
                let payload = read_floats(&ranks[ri].machine, sbuf, soff, count)
                    .map_err(|m| err_on(r, locate(m, &loc)))?;
                let cost = self.msg_cost((count * 4) as u64);
                ranks[ri].vclock += cost;
                ranks[ri].comm_cycles += cost;
                self.post_message(&mut ranks[ri], r, dest, tag, payload, messages);
                ranks[ri].blocked = Some(Blocked::Recv {
                    buf: rbuf,
                    off: roff,
                    count,
                    src,
                    tag,
                });
            }
            IntrinOp::MpiBcastF32 => {
                // bcastF(buf, off, count, root)
                let buf = args[0].as_arr().map_err(|m| err_on(r, locate(m, &loc)))?;
                let off = args[1].as_i32().map_err(|m| err_on(r, locate(m, &loc)))? as usize;
                let count = args[2].as_i32().map_err(|m| err_on(r, locate(m, &loc)))? as usize;
                let root = check_rank(args[3].as_i32().map_err(|m| err_on(r, locate(m, &loc)))?)?;
                ranks[ri].blocked = Some(Blocked::Bcast {
                    buf,
                    off,
                    count,
                    root,
                });
                bcast_waiters.push(r);
            }
            IntrinOp::MpiAllreduceSumF64 => {
                ranks[ri].blocked = Some(Blocked::Allreduce);
                let v = self.contribute(&mut ranks[ri], args[0]);
                allreduce.push((r, AllOp::SumF64, v));
            }
            IntrinOp::MpiAllreduceSumF32 => {
                ranks[ri].blocked = Some(Blocked::Allreduce);
                let v = self.contribute(&mut ranks[ri], args[0]);
                allreduce.push((r, AllOp::SumF32, v));
            }
            IntrinOp::MpiAllreduceMaxF64 => {
                ranks[ri].blocked = Some(Blocked::Allreduce);
                let v = self.contribute(&mut ranks[ri], args[0]);
                allreduce.push((r, AllOp::MaxF64, v));
            }
            other => return Err(err_on(r, format!("unexpected MPI op {other:?}"))),
        }
        Ok(())
    }
}

/// One line per rank describing its state — the post-mortem attached to
/// deadlock, timeout, and crash errors. `Recv` lines include the
/// waited-on source/tag and the pending queue depths, so a mismatched
/// send/recv pair is diagnosable from the error text alone.
fn world_report(ranks: &[Rank], messages: &MsgQueues) -> String {
    ranks
        .iter()
        .enumerate()
        .map(|(i, rk)| {
            let state = if let Some(step) = rk.crashed {
                format!("crashed at step {step} (injected fault)")
            } else if rk.done.is_some() {
                "done".to_string()
            } else if let Some(b) = &rk.blocked {
                match b {
                    Blocked::Recv {
                        src, tag, count, ..
                    } => {
                        let matching = messages.get(&(*src, i as u32, *tag)).map_or(0, |q| q.len());
                        let inbound: usize = messages
                            .iter()
                            .filter(|(&(_, to, _), _)| to == i as u32)
                            .map(|(_, q)| q.len())
                            .sum();
                        format!(
                            "blocked on Recv {{ {count} floats from rank {src}, tag {tag} }} \
                             ({matching} matching queued, {inbound} inbound total)"
                        )
                    }
                    Blocked::Barrier => "blocked on Barrier".to_string(),
                    Blocked::Allreduce => "blocked on Allreduce".to_string(),
                    Blocked::Bcast { root, count, .. } => {
                        format!("blocked on Bcast {{ {count} floats, root {root} }}")
                    }
                }
            } else {
                format!("runnable (vclock {})", rk.vclock)
            };
            format!("rank {i}: {state}")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// Fold allreduce contributions **in rank order**, not arrival order.
/// Ranks reach the collective in schedule-dependent order; sorting by
/// rank id first makes the float reduction's association (and so its
/// exact bits) a function of the world alone — the property the
/// backend-matrix sweep asserts across schedules and platforms.
fn combine(op: AllOp, contributions: &[(u32, AllOp, Val)]) -> Result<Val, ExecError> {
    let mut contributions: Vec<(u32, AllOp, Val)> = contributions.to_vec();
    contributions.sort_by_key(|(r, _, _)| *r);
    let contributions = &contributions;
    match op {
        AllOp::SumF64 => {
            let mut s = 0.0f64;
            for (_, _, v) in contributions {
                s += v.as_f64()?;
            }
            Ok(Val::F64(s))
        }
        AllOp::SumF32 => {
            let mut s = 0.0f32;
            for (_, _, v) in contributions {
                s += v.as_f32()?;
            }
            Ok(Val::F32(s))
        }
        AllOp::MaxF64 => {
            let mut m = f64::NEG_INFINITY;
            for (_, _, v) in contributions {
                m = m.max(v.as_f64()?);
            }
            Ok(Val::F64(m))
        }
    }
}

fn read_floats(
    machine: &Machine,
    buf: u32,
    off: usize,
    count: usize,
) -> Result<Vec<f32>, ExecError> {
    match machine.mem.arr(buf)? {
        ArrStore::F32(v) => v.get(off..off + count).map(|s| s.to_vec()).ok_or_else(|| {
            ExecError::msg(format!(
                "send range {off}..{} out of bounds (len {})",
                off + count,
                v.len()
            ))
        }),
        other => Err(ExecError::msg(format!(
            "MPI float op on non-float array {other:?}"
        ))),
    }
}

fn write_floats(
    machine: &mut Machine,
    buf: u32,
    off: usize,
    payload: &[f32],
) -> Result<(), ExecError> {
    match machine.mem.arr_mut(buf)? {
        ArrStore::F32(v) => {
            let vlen = v.len();
            let tgt = v.get_mut(off..off + payload.len()).ok_or_else(|| {
                ExecError::msg(format!(
                    "recv range {off}..{} out of bounds (len {vlen})",
                    off + payload.len()
                ))
            })?;
            tgt.copy_from_slice(payload);
            Ok(())
        }
        other => Err(ExecError::msg(format!(
            "MPI float op on non-float array {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use jlang::ast::BinOp;
    use jlang::types::PrimKind;
    use nir::{ElemTy, FuncBuilder, FuncKind, Instr, Ty};

    /// Program: each rank fills a buffer with its rank, sends it right
    /// (ring), receives from the left, returns received[0].
    fn ring_program() -> (Program, FuncId) {
        let mut fb = FuncBuilder::new("ring", vec![], Some(Ty::F32), FuncKind::Host);
        let rank = fb.reg(Ty::I32);
        let size = fb.reg(Ty::I32);
        let one = fb.reg(Ty::I32);
        let n = fb.reg(Ty::I32);
        let buf = fb.reg(Ty::Arr(ElemTy::F32));
        let rbuf = fb.reg(Ty::Arr(ElemTy::F32));
        let zero = fb.reg(Ty::I32);
        let dest = fb.reg(Ty::I32);
        let src = fb.reg(Ty::I32);
        let tag = fb.reg(Ty::I32);
        let i = fb.reg(Ty::I32);
        let cond = fb.reg(Ty::Bool);
        let fv = fb.reg(Ty::F32);
        let out = fb.reg(Ty::F32);
        fb.emit(Instr::Intrin {
            op: IntrinOp::MpiRank,
            args: vec![],
            dst: Some(rank),
        });
        fb.emit(Instr::Intrin {
            op: IntrinOp::MpiSize,
            args: vec![],
            dst: Some(size),
        });
        fb.emit(Instr::ConstI32(one, 1));
        fb.emit(Instr::ConstI32(zero, 0));
        fb.emit(Instr::ConstI32(n, 8));
        fb.emit(Instr::ConstI32(tag, 7));
        fb.emit(Instr::NewArr {
            elem: ElemTy::F32,
            len: n,
            dst: buf,
        });
        fb.emit(Instr::NewArr {
            elem: ElemTy::F32,
            len: n,
            dst: rbuf,
        });
        // fill buf with rank
        fb.emit(Instr::Cast {
            to: PrimKind::Float,
            from: PrimKind::Int,
            dst: fv,
            src: rank,
        });
        fb.emit(Instr::ConstI32(i, 0));
        let head = fb.label();
        let body = fb.label();
        let done = fb.label();
        fb.bind(head);
        fb.emit(Instr::Bin {
            op: BinOp::Lt,
            kind: PrimKind::Int,
            dst: cond,
            lhs: i,
            rhs: n,
        });
        fb.br(cond, body, done);
        fb.bind(body);
        fb.emit(Instr::StArr {
            arr: buf,
            idx: i,
            src: fv,
        });
        fb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: i,
            lhs: i,
            rhs: one,
        });
        fb.jmp(head);
        fb.bind(done);
        // dest = (rank+1) % size; src = (rank+size-1) % size
        fb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: dest,
            lhs: rank,
            rhs: one,
        });
        fb.emit(Instr::Bin {
            op: BinOp::Rem,
            kind: PrimKind::Int,
            dst: dest,
            lhs: dest,
            rhs: size,
        });
        fb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: src,
            lhs: rank,
            rhs: size,
        });
        fb.emit(Instr::Bin {
            op: BinOp::Sub,
            kind: PrimKind::Int,
            dst: src,
            lhs: src,
            rhs: one,
        });
        fb.emit(Instr::Bin {
            op: BinOp::Rem,
            kind: PrimKind::Int,
            dst: src,
            lhs: src,
            rhs: size,
        });
        // sendrecv
        fb.emit(Instr::Intrin {
            op: IntrinOp::MpiSendRecvF32,
            args: vec![buf, zero, n, dest, rbuf, zero, src, tag],
            dst: None,
        });
        fb.emit(Instr::LdArr {
            arr: rbuf,
            idx: zero,
            dst: out,
        });
        fb.emit(Instr::Ret(Some(out)));
        let mut p = Program::default();
        let id = p.add_func(fb.finish().unwrap());
        p.entry = Some(id);
        p.validate().unwrap();
        (p, id)
    }

    #[test]
    fn ring_exchange_across_four_ranks() {
        let (p, entry) = ring_program();
        let world = World::new(&p, 4);
        let run = world.run(entry, |_, _| Ok(vec![])).unwrap();
        // Each rank receives from its left neighbor.
        for (r, out) in run.ranks.iter().enumerate() {
            let left = (r + 4 - 1) % 4;
            assert_eq!(out.result, Some(Val::F32(left as f32)), "rank {r}");
        }
        assert!(run.vtime > 0);
    }

    #[test]
    fn single_rank_world_is_self_consistent() {
        let (p, entry) = ring_program();
        let world = World::new(&p, 1);
        let run = world.run(entry, |_, _| Ok(vec![])).unwrap();
        // Self-send: rank 0 receives its own data.
        assert_eq!(run.ranks[0].result, Some(Val::F32(0.0)));
    }

    fn allreduce_program() -> (Program, FuncId) {
        let mut fb = FuncBuilder::new("ar", vec![], Some(Ty::F64), FuncKind::Host);
        let rank = fb.reg(Ty::I32);
        let x = fb.reg(Ty::F64);
        let s = fb.reg(Ty::F64);
        fb.emit(Instr::Intrin {
            op: IntrinOp::MpiRank,
            args: vec![],
            dst: Some(rank),
        });
        fb.emit(Instr::Cast {
            to: PrimKind::Double,
            from: PrimKind::Int,
            dst: x,
            src: rank,
        });
        fb.emit(Instr::Intrin {
            op: IntrinOp::MpiAllreduceSumF64,
            args: vec![x],
            dst: Some(s),
        });
        fb.emit(Instr::Ret(Some(s)));
        let mut p = Program::default();
        let id = p.add_func(fb.finish().unwrap());
        p.validate().unwrap();
        (p, id)
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let (p, entry) = allreduce_program();
        let world = World::new(&p, 5);
        let run = world.run(entry, |_, _| Ok(vec![])).unwrap();
        for out in &run.ranks {
            assert_eq!(out.result, Some(Val::F64(10.0))); // 0+1+2+3+4
        }
        // Collectives synchronize the clocks.
        let clocks: Vec<u64> = run.ranks.iter().map(|r| r.vclock).collect();
        let spread = clocks.iter().max().unwrap() - clocks.iter().min().unwrap();
        assert!(
            spread < 1000,
            "clocks should be nearly synchronized: {clocks:?}"
        );
    }

    #[test]
    fn deadlock_detected() {
        // Rank 0 receives from rank 1, which never sends.
        let mut fb = FuncBuilder::new("dead", vec![], None, FuncKind::Host);
        let rank = fb.reg(Ty::I32);
        let zero = fb.reg(Ty::I32);
        let one = fb.reg(Ty::I32);
        let n = fb.reg(Ty::I32);
        let buf = fb.reg(Ty::Arr(ElemTy::F32));
        let cond = fb.reg(Ty::Bool);
        fb.emit(Instr::Intrin {
            op: IntrinOp::MpiRank,
            args: vec![],
            dst: Some(rank),
        });
        fb.emit(Instr::ConstI32(zero, 0));
        fb.emit(Instr::ConstI32(one, 1));
        fb.emit(Instr::ConstI32(n, 4));
        fb.emit(Instr::NewArr {
            elem: ElemTy::F32,
            len: n,
            dst: buf,
        });
        let recv = fb.label();
        let end = fb.label();
        fb.emit(Instr::Bin {
            op: BinOp::Eq,
            kind: PrimKind::Int,
            dst: cond,
            lhs: rank,
            rhs: zero,
        });
        fb.br(cond, recv, end);
        fb.bind(recv);
        fb.emit(Instr::Intrin {
            op: IntrinOp::MpiRecvF32,
            args: vec![buf, zero, n, one, zero],
            dst: None,
        });
        fb.jmp(end);
        fb.bind(end);
        fb.emit(Instr::Ret(None));
        let mut p = Program::default();
        let id = p.add_func(fb.finish().unwrap());
        p.validate().unwrap();
        let world = World::new(&p, 2);
        let e = world.run(id, |_, _| Ok(vec![])).unwrap_err();
        let SimError::Deadlock { report } = &e else {
            panic!("expected Deadlock, got {e}");
        };
        // The report names the waited-on source/tag and queue depths
        // (rank 0 waits on rank 1, tag 0, nothing queued).
        assert!(report.contains("rank 0: blocked on Recv"), "{report}");
        assert!(report.contains("from rank 1, tag 0"), "{report}");
        assert!(report.contains("0 matching queued"), "{report}");
        assert!(report.contains("rank 1: done"), "{report}");
    }

    #[test]
    fn virtual_time_grows_with_message_volume() {
        let (p, entry) = ring_program();
        let cheap = World::new(&p, 4).with_cost(CostModel {
            alpha: 10,
            beta: 0.01,
            collective_alpha: 10,
        });
        let costly = World::new(&p, 4).with_cost(CostModel {
            alpha: 100_000,
            beta: 10.0,
            collective_alpha: 10,
        });
        let t1 = cheap.run(entry, |_, _| Ok(vec![])).unwrap().vtime;
        let t2 = costly.run(entry, |_, _| Ok(vec![])).unwrap().vtime;
        assert!(
            t2 > t1,
            "expensive network must increase completion time: {t1} vs {t2}"
        );
    }

    #[test]
    fn determinism() {
        let (p, entry) = ring_program();
        let world = World::new(&p, 4);
        let a = world.run(entry, |_, _| Ok(vec![])).unwrap();
        let b = world.run(entry, |_, _| Ok(vec![])).unwrap();
        assert_eq!(a.vtime, b.vtime);
        assert_eq!(a.total_cycles, b.total_cycles);
    }

    #[test]
    fn separate_memory_spaces() {
        // Each rank allocates and writes; handles are rank-local.
        let mut fb = FuncBuilder::new(
            "m",
            vec![Ty::Arr(ElemTy::F32)],
            Some(Ty::F32),
            FuncKind::Host,
        );
        let zero = fb.reg(Ty::I32);
        let out = fb.reg(Ty::F32);
        fb.emit(Instr::ConstI32(zero, 0));
        fb.emit(Instr::LdArr {
            arr: 0,
            idx: zero,
            dst: out,
        });
        fb.emit(Instr::Ret(Some(out)));
        let mut p = Program::default();
        let id = p.add_func(fb.finish().unwrap());
        p.validate().unwrap();
        let world = World::new(&p, 3);
        let run = world
            .run(id, |r, machine| {
                let h = machine.mem.alloc(ArrStore::F32(vec![r as f32 * 10.0]));
                Ok(vec![Val::Arr(h)])
            })
            .unwrap();
        assert_eq!(run.ranks[0].result, Some(Val::F32(0.0)));
        assert_eq!(run.ranks[1].result, Some(Val::F32(10.0)));
        assert_eq!(run.ranks[2].result, Some(Val::F32(20.0)));
    }

    /// Each rank allreduce-sums a value `steps` times, folding the result
    /// back in each iteration: one collective boundary per step, so
    /// checkpoints have places to land mid-run.
    fn stepped_allreduce(steps: i32) -> (Program, FuncId) {
        let mut fb = FuncBuilder::new("sar", vec![], Some(Ty::F64), FuncKind::Host);
        let rank = fb.reg(Ty::I32);
        let one = fb.reg(Ty::I32);
        let limit = fb.reg(Ty::I32);
        let i = fb.reg(Ty::I32);
        let cond = fb.reg(Ty::Bool);
        let x = fb.reg(Ty::F64);
        let s = fb.reg(Ty::F64);
        let bump = fb.reg(Ty::F64);
        fb.emit(Instr::Intrin {
            op: IntrinOp::MpiRank,
            args: vec![],
            dst: Some(rank),
        });
        fb.emit(Instr::Cast {
            to: PrimKind::Double,
            from: PrimKind::Int,
            dst: x,
            src: rank,
        });
        fb.emit(Instr::ConstI32(one, 1));
        fb.emit(Instr::ConstI32(limit, steps));
        fb.emit(Instr::ConstI32(i, 0));
        fb.emit(Instr::ConstF64(bump, 1.0));
        let head = fb.label();
        let body = fb.label();
        let done = fb.label();
        fb.bind(head);
        fb.emit(Instr::Bin {
            op: BinOp::Lt,
            kind: PrimKind::Int,
            dst: cond,
            lhs: i,
            rhs: limit,
        });
        fb.br(cond, body, done);
        fb.bind(body);
        fb.emit(Instr::Intrin {
            op: IntrinOp::MpiAllreduceSumF64,
            args: vec![x],
            dst: Some(s),
        });
        fb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Double,
            dst: x,
            lhs: s,
            rhs: bump,
        });
        fb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: i,
            lhs: i,
            rhs: one,
        });
        fb.jmp(head);
        fb.bind(done);
        fb.emit(Instr::Ret(Some(x)));
        let mut p = Program::default();
        let id = p.add_func(fb.finish().unwrap());
        p.validate().unwrap();
        (p, id)
    }

    #[test]
    fn checkpoint_capture_restore_capture_is_bit_identical() {
        let (p, entry) = stepped_allreduce(3);
        let mut cfg = FaultConfig::seeded(42);
        cfg.crash = 0.001;
        let world = World::new(&p, 3).with_faults(cfg);
        let ranks = world.init_ranks(entry, &mut |_, _| Ok(vec![])).unwrap();
        let messages = MsgQueues::new();
        let first = world.capture_checkpoint(&ranks, &messages);
        let (ranks2, messages2) = world.restore_checkpoint(&first.bytes).unwrap();
        let second = world.capture_checkpoint(&ranks2, &messages2);
        assert_eq!(first.bytes, second.bytes);
        assert_eq!(first.vtime, second.vtime);
    }

    #[test]
    fn restore_rejects_wrong_world_size_and_garbage() {
        let (p, entry) = stepped_allreduce(2);
        let world = World::new(&p, 3);
        let ranks = world.init_ranks(entry, &mut |_, _| Ok(vec![])).unwrap();
        let wc = world.capture_checkpoint(&ranks, &MsgQueues::new());
        let smaller = World::new(&p, 2);
        assert!(smaller.restore_checkpoint(&wc.bytes).is_err());
        // Truncations and bit flips must come back typed, never panic.
        for cut in 0..wc.bytes.len() {
            assert!(world.restore_checkpoint(&wc.bytes[..cut]).is_err());
        }
        for i in 0..wc.bytes.len() {
            let mut bad = wc.bytes.clone();
            bad[i] ^= 0x10;
            let _ = world.restore_checkpoint(&bad);
        }
    }

    #[test]
    fn restart_recovers_a_crashing_world_bit_identically() {
        let (p, entry) = stepped_allreduce(10);
        let clean: Vec<Option<Val>> = World::new(&p, 4)
            .run(entry, |_, _| Ok(vec![]))
            .unwrap()
            .ranks
            .into_iter()
            .map(|r| r.result)
            .collect();
        // Find a seed whose crash-only plan kills the plain run, then show
        // the checkpointed run completes with the fault-free answer.
        let mut recovered = 0u32;
        for seed in 0..64u64 {
            let mut cfg = FaultConfig::seeded(0xC0DE + seed);
            cfg.crash = 0.004;
            let world = World::new(&p, 4).with_faults(cfg).with_timeout(5_000);
            let Err(SimError::Crash { .. }) = world.run(entry, |_, _| Ok(vec![])) else {
                continue;
            };
            let run = world
                .run_with_restart(entry, |_, _| Ok(vec![]), &CheckpointPolicy::every(1), 64)
                .expect("checkpointed world must recover from injected crashes");
            let got: Vec<Option<Val>> = run.ranks.into_iter().map(|r| r.result).collect();
            assert_eq!(got, clean, "seed {seed}: recovered result must match");
            assert!(run.restart.restarts >= 1, "seed {seed}");
            assert_eq!(run.restart.restarts, run.resilience.restarts);
            assert!(run.restart.checkpoints_taken >= 1, "seed {seed}");
            assert_eq!(
                run.restart.checkpoints_taken,
                run.resilience.checkpoints_taken
            );
            assert!(run.restart.ranks_rolled_back >= 1, "seed {seed}");
            assert!(run.resilience.crashes >= 1, "seed {seed}");
            recovered += 1;
            if recovered >= 3 {
                break;
            }
        }
        assert!(recovered >= 1, "no seed produced a plain-run crash");
    }

    #[test]
    fn restart_budget_exhaustion_returns_the_typed_error() {
        let (p, entry) = stepped_allreduce(6);
        let mut cfg = FaultConfig::seeded(5);
        cfg.crash = 1.0; // every attempt dies at its first draw
        let world = World::new(&p, 3).with_faults(cfg);
        let err = world
            .run_with_restart(entry, |_, _| Ok(vec![]), &CheckpointPolicy::every(1), 2)
            .unwrap_err();
        let SimError::Crash {
            rank, post_mortem, ..
        } = err
        else {
            panic!("expected Crash after budget exhaustion, got {err}");
        };
        assert!(rank < 3);
        assert!(
            post_mortem.contains("crashed at step"),
            "the last post-mortem must survive: {post_mortem}"
        );
    }

    #[test]
    fn restart_is_a_no_op_for_healthy_worlds() {
        let (p, entry) = stepped_allreduce(5);
        let plain = World::new(&p, 4).run(entry, |_, _| Ok(vec![])).unwrap();
        let ck = World::new(&p, 4)
            .run_with_restart(entry, |_, _| Ok(vec![]), &CheckpointPolicy::every(2), 8)
            .unwrap();
        assert_eq!(ck.restart.restarts, 0);
        assert_eq!(ck.restart.virtual_time_lost, 0);
        assert!(ck.restart.checkpoints_taken >= 1);
        let a: Vec<Option<Val>> = plain.ranks.into_iter().map(|r| r.result).collect();
        let b: Vec<Option<Val>> = ck.ranks.into_iter().map(|r| r.result).collect();
        assert_eq!(a, b);
        assert_eq!(plain.vtime, ck.vtime);
    }

    #[test]
    fn persisted_checkpoint_warm_restarts_and_corruption_degrades_cold() {
        let dir = std::env::temp_dir().join(format!("wj-wckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("world.wckpt");
        let (p, entry) = stepped_allreduce(6);
        let policy = CheckpointPolicy::every(1).with_persist(&path);
        let world = World::new(&p, 3);
        let expect = world
            .run_with_restart(entry, |_, _| Ok(vec![]), &policy, 4)
            .unwrap();
        assert!(path.exists(), "persist path must be written");
        // A fresh "process" (same world shape) warm-starts from the file
        // (the snapshot taken after the last collective) and must still
        // land on the same answers.
        let warm = world
            .run_with_restart(entry, |_, _| Ok(vec![]), &policy, 4)
            .unwrap();
        let a: Vec<Option<Val>> = expect.ranks.into_iter().map(|r| r.result).collect();
        let b: Vec<Option<Val>> = warm.ranks.into_iter().map(|r| r.result).collect();
        assert_eq!(a, b);
        // Corrupt the file: must degrade to a cold start, never panic.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let cold = world
            .run_with_restart(entry, |_, _| Ok(vec![]), &policy, 4)
            .unwrap();
        let c: Vec<Option<Val>> = cold.ranks.into_iter().map(|r| r.result).collect();
        assert_eq!(b, c);
        std::fs::remove_dir_all(&dir).ok();
    }
}
