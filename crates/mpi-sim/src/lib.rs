//! # mpi-sim — simulated MPI ranks with a LogP-style cost model
//!
//! Each rank is a resumable [`exec::Thread`] with its **own memory space**
//! (a separate [`exec::Machine`]) and optionally its own simulated GPU —
//! one GPU per node, as on the paper's TSUBAME 2.0 nodes. Ranks are
//! scheduled cooperatively and deterministically in a single host thread:
//! a rank runs until it blocks on communication, finishes, or exhausts its
//! fuel slice.
//!
//! **Virtual time.** Every rank carries a virtual clock: executed cycles
//! advance it; a message costs `alpha + beta·bytes` and its receiver's
//! clock is pulled up to the sender's completion time (Lamport-style);
//! collectives synchronize all clocks to the maximum plus a collective
//! cost. The weak/strong-scaling figures are plotted in this deterministic
//! virtual time — on a one-core host, wall-clock "parallel" runs would
//! measure the host scheduler, not the algorithm.
//!
//! This `World` is also the general runtime driver used for single-rank
//! programs (with or without a GPU): `size == 1` gives `rank()==0`,
//! collectives become identities, and self-messages still match.

#![forbid(unsafe_code)]

pub mod runtime;
pub mod shared;
pub mod transport;

use std::path::{Path, PathBuf};

pub use runtime::{
    run_world, run_world_with_restart, service_device_yield, service_host_yield, ArgBuilder,
    Blocked, DeviceOutcome, LocalPool, RankCtl, RankPool, RankSnapshot, RankYield, RunCfg,
};
pub use shared::{SharedCache, SharedCacheStats};
pub use transport::{
    read_frame, write_frame, InMemTransport, MsgQueues, Transport, TransportError, FRAME_MAGIC,
    MAX_FRAME_LEN, WIRE_VERSION,
};

use exec::ckpt::chain;
pub use exec::ckpt::CkptError;
pub use exec::pool::{ExecMode, ExecutorCfg};
use exec::{FaultConfig, HostRegistry, Machine, ResilienceStats, Val};
use gpu_sim::GpuConfig;
use nir::{FuncId, Program};

/// Communication cost model (cycles).
#[derive(Debug, Clone, Copy)]
pub struct CostModel {
    /// Per-message latency.
    pub alpha: u64,
    /// Per-byte cost (inverse bandwidth).
    pub beta: f64,
    /// Base cost of a collective (barrier/allreduce/bcast).
    pub collective_alpha: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Shaped after a fat-tree InfiniBand fabric relative to ~1 cycle
        // per scalar op: ~2 µs latency, ~5 GB/s effective per-link.
        CostModel {
            alpha: 4_000,
            beta: 0.4,
            collective_alpha: 8_000,
        }
    }
}

/// The order in which runnable ranks are serviced each scheduler round.
///
/// Results are schedule-independent by construction — clocks are computed
/// from per-rank virtual times and allreduce combines contributions in
/// rank order — so this knob exists to *prove* that, and to model
/// platforms whose workers are genuinely unordered (the `host-mt` thread
/// pool backend, where the OS scheduler would pick any interleaving).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Schedule {
    /// Service runnable ranks in rank-id order (the historical behavior).
    #[default]
    RankOrder,
    /// Service runnable ranks in a seeded per-round permutation — a
    /// deterministic stand-in for an OS thread scheduler. The same seed
    /// reproduces the same interleaving bit-for-bit.
    Seeded(u64),
}

/// Typed simulation error. Every failure mode of a world run has its own
/// variant so callers (the wootinj facade, the bench fault matrix, the
/// property suites) can classify outcomes without string matching.
#[derive(Debug)]
pub enum SimError {
    /// One rank's execution or MPI protocol failed (with func/pc context
    /// when the faulting frame is known).
    Rank { rank: u32, message: String },
    /// An injected fault crashed a rank; the world ran on until no
    /// surviving rank could make progress, then failed with a full
    /// post-mortem of every rank's state.
    Crash {
        rank: u32,
        /// Retired-instruction count at which the rank died.
        step: u64,
        post_mortem: String,
    },
    /// A rank waited in one blocked state (recv or collective) past the
    /// configured fuel bound — a would-be hang converted into an error.
    Timeout {
        rank: u32,
        waited_rounds: u64,
        report: String,
    },
    /// No rank can make progress and none is mid-collective.
    Deadlock { report: String },
    /// A persisted checkpoint chain belongs to a different platform
    /// namespace (fingerprint salt): a `dist` chain must never
    /// warm-start an `mpi-sim` world, and vice versa.
    CheckpointScope { expected: u64, found: u64 },
    /// World-level inconsistency not attributable to one rank.
    World { message: String },
}

impl SimError {
    /// The offending rank, when one is attributable.
    pub fn rank(&self) -> Option<u32> {
        match self {
            SimError::Rank { rank, .. }
            | SimError::Crash { rank, .. }
            | SimError::Timeout { rank, .. } => Some(*rank),
            SimError::Deadlock { .. }
            | SimError::CheckpointScope { .. }
            | SimError::World { .. } => None,
        }
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Rank { rank, message } => {
                write!(f, "mpi-sim error on rank {rank}: {message}")
            }
            SimError::Crash {
                rank,
                step,
                post_mortem,
            } => write!(
                f,
                "mpi-sim: rank {rank} crashed at step {step} (injected fault); world state:\n{post_mortem}"
            ),
            SimError::Timeout {
                rank,
                waited_rounds,
                report,
            } => write!(
                f,
                "mpi-sim: rank {rank} timed out after {waited_rounds} blocked rounds; world state:\n{report}"
            ),
            SimError::Deadlock { report } => write!(f, "mpi-sim: deadlock detected:\n{report}"),
            SimError::CheckpointScope { expected, found } => write!(
                f,
                "mpi-sim: persisted checkpoint chain belongs to platform namespace \
                 {found:#018x}; this world restores only {expected:#018x} — refusing to warm-start"
            ),
            SimError::World { message } => write!(f, "mpi-sim error: {message}"),
        }
    }
}

impl std::error::Error for SimError {}

/// A [`SimError::Rank`] attributed to one rank.
pub fn err_on(rank: u32, message: impl ToString) -> SimError {
    SimError::Rank {
        rank,
        message: message.to_string(),
    }
}

/// Outcome of one rank.
#[derive(Debug)]
pub struct RankOutcome {
    pub result: Option<Val>,
    /// Final virtual clock (compute + communication).
    pub vclock: u64,
    /// Cycles spent computing.
    pub compute_cycles: u64,
    /// Virtual time spent in communication and GPU waits.
    pub comm_cycles: u64,
    pub output: Vec<String>,
    /// The rank's final memory space (for reading back results).
    pub machine: Machine,
    /// Device time if this rank had a GPU.
    pub gpu_time: u64,
}

/// Outcome of a whole-world run.
#[derive(Debug)]
pub struct WorldRun {
    pub ranks: Vec<RankOutcome>,
    /// Completion time of the slowest rank — the figure-of-merit plotted
    /// by the scalability experiments.
    pub vtime: u64,
    /// Total executed cycles across ranks.
    pub total_cycles: u64,
    /// Aggregated fault-injection / recovery counters across all ranks
    /// (all-zero when no fault plan is configured). Deterministic: the
    /// same `FaultConfig` seed yields a bit-identical value.
    pub resilience: ResilienceStats,
    /// Per-world translate-once counters when the code driving this world
    /// came through a shared (rank-0-owned) JIT cache — see
    /// [`shared::SharedCache`]. All-zero for unshared runs; the `wootinj`
    /// facade fills it in from the `jit4mpi` snapshot.
    pub shared_jit: SharedCacheStats,
    /// Checkpoint/restart accounting; all-zero for plain [`World::run`].
    pub restart: RestartStats,
}

/// When (and where) to checkpoint a world. Collective boundaries are the
/// only safe cut points: completing a collective synchronizes every
/// participant's clock and leaves no rank mid-protocol, so a snapshot
/// there is globally consistent by construction (only already-posted
/// point-to-point messages can be in flight, and those are captured too).
#[derive(Debug, Clone, Default)]
pub struct CheckpointPolicy {
    /// Take a checkpoint after every `every` completed collectives
    /// (values below 1 behave as 1).
    pub every: u32,
    /// When set, the latest checkpoint also persists to this file
    /// (written temp-then-rename), so a killed *process* can
    /// warm-restart. By convention `<fingerprint>.wckpt` next to the JIT
    /// disk store's artifacts.
    pub persist: Option<PathBuf>,
    /// When set, the cadence *tightens after every restart* — halved
    /// (floor 1) each time a rollback happens. A healthy world pays the
    /// coarse cadence's low overhead; a crashing one converges toward
    /// cadence 1, bounding the virtual time each further crash can
    /// discard. `repro restart-cost` motivates this: cadence 16 exhausts
    /// restart budgets that cadence 1 survives, but costs ~16× fewer
    /// snapshots when nothing goes wrong.
    pub adaptive: bool,
    /// Delta checkpointing: 0 (default) captures a full snapshot every
    /// time; N > 0 captures delta links against the previous snapshot
    /// and starts a fresh base every N deltas (the rebase interval).
    /// Deltas form a verified chain (`base + delta*`, each link carrying
    /// its parent's digest); a damaged link degrades rollback to the
    /// deepest valid ancestor, and persisted chains are
    /// `<name>.wckpt` + `<name>.d1.wckpt`, `<name>.d2.wckpt`, …
    pub rebase_every: u32,
    /// Fixed virtual-cycle latency charged to every live rank per
    /// checkpoint write (0 = checkpoints are free, the historic model).
    pub write_alpha: u64,
    /// Checkpoint write bandwidth in bytes per virtual cycle (0 =
    /// infinite). Together with `write_alpha` this makes
    /// `virtual_time_lost` reflect snapshot size, so delta chains pay
    /// off in time as well as bytes.
    pub write_bytes_per_cycle: u64,
}

impl CheckpointPolicy {
    /// Checkpoint after every `every` completed collectives.
    pub fn every(every: u32) -> Self {
        CheckpointPolicy {
            every,
            ..CheckpointPolicy::default()
        }
    }

    /// Start at cadence `start`, halving (floor 1) after each restart —
    /// see [`CheckpointPolicy::adaptive`].
    pub fn adaptive(start: u32) -> Self {
        CheckpointPolicy {
            every: start,
            adaptive: true,
            ..CheckpointPolicy::default()
        }
    }

    /// Also persist the latest checkpoint to `path`.
    pub fn with_persist(mut self, path: impl Into<PathBuf>) -> Self {
        self.persist = Some(path.into());
        self
    }

    /// Capture deltas against the previous snapshot, rebasing (fresh
    /// full base) every `rebase_every` deltas.
    pub fn with_rebase_every(mut self, rebase_every: u32) -> Self {
        self.rebase_every = rebase_every;
        self
    }

    /// Model checkpoint writes in virtual time: `alpha` fixed cycles
    /// plus size / `bytes_per_cycle` cycles, charged to every live rank
    /// after each capture.
    pub fn with_write_cost(mut self, alpha: u64, bytes_per_cycle: u64) -> Self {
        self.write_alpha = alpha;
        self.write_bytes_per_cycle = bytes_per_cycle;
        self
    }
}

/// Checkpoint/restart accounting for one [`World::run_with_restart`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RestartStats {
    /// Checkpoints captured at collective boundaries.
    pub checkpoints_taken: u64,
    /// Rollback-and-resume cycles performed (0 = the first attempt ran
    /// to completion).
    pub restarts: u64,
    /// Ranks restored from a checkpoint (or re-initialized cold),
    /// summed over all restarts.
    pub ranks_rolled_back: u64,
    /// Virtual cycles discarded by rollbacks: failure-time clock minus
    /// the restored checkpoint's clock, summed over all restarts.
    pub virtual_time_lost: u64,
    /// Checkpoints captured as delta links (subset of
    /// `checkpoints_taken`; the rest were full bases).
    pub delta_checkpoints: u64,
    /// Fresh bases started because the rebase interval elapsed.
    pub rebases: u64,
    /// Total sealed checkpoint bytes produced (bases + deltas) — the
    /// number delta chains exist to shrink.
    pub ckpt_bytes_written: u64,
    /// Damaged/unusable chain links discarded while rolling back or
    /// warm-starting (each drop moves one snapshot deeper in history).
    pub chain_links_dropped: u64,
}

impl std::fmt::Display for RestartStats {
    /// Compact one-line summary for bench output and post-mortems.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ckpts {} ({} delta, {} rebases, {} B) · restarts {} · ranks \
             rolled back {} · vtime lost {} · links dropped {}",
            self.checkpoints_taken,
            self.delta_checkpoints,
            self.rebases,
            self.ckpt_bytes_written,
            self.restarts,
            self.ranks_rolled_back,
            self.virtual_time_lost,
            self.chain_links_dropped,
        )
    }
}

/// A sealed, checksummed snapshot of a whole world at a collective
/// boundary: every rank's interpreter + machine state (including the
/// fault-stream cursors and any device state) plus the in-flight message
/// queues. Produced by [`World::run_with_restart`] per its
/// [`CheckpointPolicy`]; the `bytes` are an `exec::ckpt` world payload.
#[derive(Debug, Clone)]
pub struct WorldCheckpoint {
    /// Sealed container bytes (restorable only by a same-shaped world
    /// over the same program).
    pub bytes: Vec<u8>,
    /// Max rank clock at capture (rollback bookkeeping).
    pub vtime: u64,
}

/// Path of delta link `seq` beside its chain's base file:
/// `world.wckpt` → `world.d3.wckpt`.
pub(crate) fn delta_path(base: &Path, seq: u64) -> PathBuf {
    let name = base
        .file_name()
        .and_then(|n| n.to_str())
        .unwrap_or("chain.wckpt");
    let stem = name.strip_suffix(".wckpt").unwrap_or(name);
    base.with_file_name(format!("{stem}.d{seq}.wckpt"))
}

/// Load a persisted chain: the base file, then `d1`, `d2`, … until the
/// first missing file (deltas are written densely, so a gap means the
/// rest of the chain is orphaned). Missing base = no chain.
pub(crate) fn load_chain_files(base: &Path) -> Vec<Vec<u8>> {
    let mut links = Vec::new();
    match std::fs::read(base) {
        Ok(bytes) => links.push(bytes),
        Err(_) => return links,
    }
    let mut seq = 1u64;
    while let Ok(bytes) = std::fs::read(delta_path(base, seq)) {
        links.push(bytes);
        seq += 1;
    }
    links
}

/// Remove the dense run of persisted delta files (rebase cleanup).
pub(crate) fn remove_persisted_deltas(base: &Path) {
    let mut seq = 1u64;
    while std::fs::remove_file(delta_path(base, seq)).is_ok() {
        seq += 1;
    }
}

/// Offline inspection of a persisted checkpoint chain: how many link
/// files exist, how many validate (version, checksum, sequence, parent
/// digest), and the typed error at the first bad hop. World-independent —
/// tests and tooling use it to observe exactly which ancestor a
/// warm start will land on.
#[derive(Debug)]
pub struct ChainProbe {
    /// Link files found on disk (base + dense delta run).
    pub links_found: usize,
    /// Leading links that validate and apply cleanly.
    pub links_valid: usize,
    /// Why validation stopped, when `links_valid < links_found`.
    pub error: Option<CkptError>,
}

/// Probe the persisted chain rooted at `base` (see [`ChainProbe`]).
pub fn probe_chain(base: &Path) -> ChainProbe {
    let links = load_chain_files(base);
    let out = chain::resolve_prefix(&links);
    ChainProbe {
        links_found: links.len(),
        links_valid: out.valid_links,
        error: out.error,
    }
}

/// Persist checkpoint bytes via temp-then-rename so a reader (including a
/// warm-restarting process) never observes a torn file. Best-effort: IO
/// failures only cost the warm-restart capability, never the run.
pub(crate) fn persist_checkpoint(path: &Path, bytes: &[u8]) {
    static TMP_UNIQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let file_name = match path.file_name() {
        Some(n) => n.to_os_string(),
        None => return,
    };
    let uniq = TMP_UNIQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let mut tmp_name = std::ffi::OsString::from(format!(".tmp-{}-{uniq}-", std::process::id()));
    tmp_name.push(&file_name);
    let tmp = path.with_file_name(tmp_name);
    if std::fs::write(&tmp, bytes).is_ok() && std::fs::rename(&tmp, path).is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
}

/// Derive the device-side fault config for one rank: same rates as the
/// host config, seed decorrelated from the host streams (which already
/// decorrelate per rank via [`FaultPlan::for_rank`]) so a device crash
/// and a host crash never fire in lockstep.
pub(crate) fn device_fault_config(cfg: FaultConfig, rank: u32) -> FaultConfig {
    FaultConfig {
        seed: cfg
            .seed
            .rotate_left(29)
            .wrapping_add(0xD1B5_4A32_D192_ED03u64.wrapping_mul(rank as u64 + 1)),
        ..cfg
    }
}

/// A simulated MPI world over a translated program.
pub struct World<'p> {
    pub program: &'p Program,
    pub size: u32,
    pub cost: CostModel,
    /// One GPU per rank when set (the paper's GPU experiments).
    pub gpu: Option<GpuConfig>,
    /// Fuel per scheduling slice.
    pub slice: u64,
    /// Registered foreign functions (the paper's FFI); `CallHost`
    /// instructions are resolved against this by key.
    pub host: Option<&'p HostRegistry>,
    /// Deterministic fault injection; each rank derives its own stream
    /// from this seed. `None` injects nothing.
    pub fault: Option<FaultConfig>,
    /// Per-collective fuel bound: a rank blocked in one recv/collective
    /// for more than this many scheduler rounds (and, as a backstop, a
    /// world exceeding it globally while any rank is blocked) fails with
    /// [`SimError::Timeout`] instead of hanging. `None` disables it.
    pub timeout_rounds: Option<u64>,
    /// Service order for runnable ranks each round (see [`Schedule`]).
    pub schedule: Schedule,
    /// Platform namespace stamp for checkpoints (see
    /// [`World::with_ckpt_salt`]). 0 is the historical `mpi-sim`
    /// namespace.
    pub ckpt_salt: u64,
    /// Who executes ready slices each round (see [`exec::pool`]):
    /// the in-process serial loop by default, real OS threads when
    /// configured. Replay-mode threads are bit-identical to the serial
    /// loop, so this never perturbs results or checkpoint identity.
    pub executor: ExecutorCfg,
}

/// Default [`World::timeout_rounds`] once fault injection is enabled:
/// generous enough for every in-repo workload, small enough that an
/// injected would-be hang fails in bounded time.
pub const DEFAULT_FAULT_TIMEOUT_ROUNDS: u64 = 100_000;

impl<'p> World<'p> {
    pub fn new(program: &'p Program, size: u32) -> Self {
        World {
            program,
            size,
            cost: CostModel::default(),
            gpu: None,
            slice: 4_000_000,
            host: None,
            fault: None,
            timeout_rounds: None,
            schedule: Schedule::RankOrder,
            ckpt_salt: 0,
            executor: ExecutorCfg::Sim,
        }
    }

    /// Choose who burns the cycles of each scheduling slice: the
    /// in-process serial loop ([`ExecutorCfg::Sim`], the default) or
    /// real OS-thread workers ([`ExecutorCfg::Threads`]).
    pub fn with_executor(mut self, executor: ExecutorCfg) -> Self {
        self.executor = executor;
        self
    }

    /// Pick the per-round service order for runnable ranks.
    pub fn with_schedule(mut self, schedule: Schedule) -> Self {
        self.schedule = schedule;
        self
    }

    pub fn with_host(mut self, host: &'p HostRegistry) -> Self {
        self.host = Some(host);
        self
    }

    /// Enable deterministic fault injection. Also arms the timeout
    /// backstop (at [`DEFAULT_FAULT_TIMEOUT_ROUNDS`]) unless one was set
    /// explicitly — injected message loss must fail, not hang.
    pub fn with_faults(mut self, fault: FaultConfig) -> Self {
        self.fault = Some(fault);
        self.timeout_rounds
            .get_or_insert(DEFAULT_FAULT_TIMEOUT_ROUNDS);
        self
    }

    /// Bound the rounds a rank may stay blocked in one recv/collective.
    pub fn with_timeout(mut self, rounds: u64) -> Self {
        self.timeout_rounds = Some(rounds);
        self
    }

    pub fn with_cost(mut self, cost: CostModel) -> Self {
        self.cost = cost;
        self
    }

    pub fn with_gpu(mut self, gpu: GpuConfig) -> Self {
        self.gpu = Some(gpu);
        self
    }

    /// Stamp checkpoints from this world with a platform namespace salt
    /// (see [`RunCfg::ckpt_salt`]). Platform backends pass their
    /// fingerprint salt so a persisted chain can never warm-start a
    /// world on a different platform.
    pub fn with_ckpt_salt(mut self, salt: u64) -> Self {
        self.ckpt_salt = salt;
        self
    }

    /// This world's scheduler-facing configuration slice.
    pub(crate) fn run_cfg(&self) -> RunCfg {
        RunCfg {
            size: self.size,
            cost: self.cost,
            slice: self.slice,
            timeout_rounds: self.timeout_rounds,
            schedule: self.schedule,
            ckpt_salt: self.ckpt_salt,
        }
    }

    /// Run `entry` on every rank. `make_args` builds each rank's entry
    /// arguments *into that rank's own memory space* (deep copies).
    pub fn run(
        &self,
        entry: FuncId,
        mut make_args: impl FnMut(u32, &mut Machine) -> Result<Vec<Val>, String>,
    ) -> Result<WorldRun, SimError> {
        let mut pool = LocalPool::new(
            self.program,
            self.size,
            entry,
            &mut make_args,
            self.gpu,
            self.fault,
            self.host,
        )
        .with_executor(self.executor);
        let mut transport = InMemTransport::new();
        runtime::run_world(&self.run_cfg(), &mut pool, &mut transport)
    }

    /// Like [`World::run`], but checkpoint every
    /// [`CheckpointPolicy::every`] completed collectives and, on
    /// [`SimError::Crash`] / [`SimError::Timeout`], roll every rank back
    /// to the last checkpoint (cold-restart when none exists yet), reseed
    /// every fault stream past its consumed cursor, and resume — up to
    /// `max_restarts` times. Other errors, and restart-budget exhaustion,
    /// propagate the typed error (with its last post-mortem) unchanged.
    pub fn run_with_restart(
        &self,
        entry: FuncId,
        mut make_args: impl FnMut(u32, &mut Machine) -> Result<Vec<Val>, String>,
        policy: &CheckpointPolicy,
        max_restarts: u32,
    ) -> Result<WorldRun, SimError> {
        let mut pool = LocalPool::new(
            self.program,
            self.size,
            entry,
            &mut make_args,
            self.gpu,
            self.fault,
            self.host,
        )
        .with_executor(self.executor);
        let mut transport = InMemTransport::new();
        runtime::run_world_with_restart(
            &self.run_cfg(),
            &mut pool,
            &mut transport,
            policy,
            max_restarts,
        )
    }
}
#[cfg(test)]
mod tests {
    use super::*;
    use exec::ArrStore;
    use jlang::ast::BinOp;
    use jlang::types::PrimKind;
    use nir::{ElemTy, FuncBuilder, FuncKind, Instr, IntrinOp, Ty};

    /// A fresh local pool + empty scheduler state for checkpoint tests.
    fn test_pool<'p, 'a>(
        world: &World<'p>,
        entry: FuncId,
        make_args: ArgBuilder<'a>,
    ) -> (LocalPool<'p, 'a>, Vec<RankCtl>, InMemTransport) {
        let mut pool = LocalPool::new(
            world.program,
            world.size,
            entry,
            make_args,
            world.gpu,
            world.fault,
            world.host,
        );
        pool.reinit().unwrap();
        let ctls = vec![RankCtl::default(); world.size as usize];
        (pool, ctls, InMemTransport::new())
    }

    /// Program: each rank fills a buffer with its rank, sends it right
    /// (ring), receives from the left, returns received[0].
    fn ring_program() -> (Program, FuncId) {
        let mut fb = FuncBuilder::new("ring", vec![], Some(Ty::F32), FuncKind::Host);
        let rank = fb.reg(Ty::I32);
        let size = fb.reg(Ty::I32);
        let one = fb.reg(Ty::I32);
        let n = fb.reg(Ty::I32);
        let buf = fb.reg(Ty::Arr(ElemTy::F32));
        let rbuf = fb.reg(Ty::Arr(ElemTy::F32));
        let zero = fb.reg(Ty::I32);
        let dest = fb.reg(Ty::I32);
        let src = fb.reg(Ty::I32);
        let tag = fb.reg(Ty::I32);
        let i = fb.reg(Ty::I32);
        let cond = fb.reg(Ty::Bool);
        let fv = fb.reg(Ty::F32);
        let out = fb.reg(Ty::F32);
        fb.emit(Instr::Intrin {
            op: IntrinOp::MpiRank,
            args: vec![],
            dst: Some(rank),
        });
        fb.emit(Instr::Intrin {
            op: IntrinOp::MpiSize,
            args: vec![],
            dst: Some(size),
        });
        fb.emit(Instr::ConstI32(one, 1));
        fb.emit(Instr::ConstI32(zero, 0));
        fb.emit(Instr::ConstI32(n, 8));
        fb.emit(Instr::ConstI32(tag, 7));
        fb.emit(Instr::NewArr {
            elem: ElemTy::F32,
            len: n,
            dst: buf,
        });
        fb.emit(Instr::NewArr {
            elem: ElemTy::F32,
            len: n,
            dst: rbuf,
        });
        // fill buf with rank
        fb.emit(Instr::Cast {
            to: PrimKind::Float,
            from: PrimKind::Int,
            dst: fv,
            src: rank,
        });
        fb.emit(Instr::ConstI32(i, 0));
        let head = fb.label();
        let body = fb.label();
        let done = fb.label();
        fb.bind(head);
        fb.emit(Instr::Bin {
            op: BinOp::Lt,
            kind: PrimKind::Int,
            dst: cond,
            lhs: i,
            rhs: n,
        });
        fb.br(cond, body, done);
        fb.bind(body);
        fb.emit(Instr::StArr {
            arr: buf,
            idx: i,
            src: fv,
        });
        fb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: i,
            lhs: i,
            rhs: one,
        });
        fb.jmp(head);
        fb.bind(done);
        // dest = (rank+1) % size; src = (rank+size-1) % size
        fb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: dest,
            lhs: rank,
            rhs: one,
        });
        fb.emit(Instr::Bin {
            op: BinOp::Rem,
            kind: PrimKind::Int,
            dst: dest,
            lhs: dest,
            rhs: size,
        });
        fb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: src,
            lhs: rank,
            rhs: size,
        });
        fb.emit(Instr::Bin {
            op: BinOp::Sub,
            kind: PrimKind::Int,
            dst: src,
            lhs: src,
            rhs: one,
        });
        fb.emit(Instr::Bin {
            op: BinOp::Rem,
            kind: PrimKind::Int,
            dst: src,
            lhs: src,
            rhs: size,
        });
        // sendrecv
        fb.emit(Instr::Intrin {
            op: IntrinOp::MpiSendRecvF32,
            args: vec![buf, zero, n, dest, rbuf, zero, src, tag],
            dst: None,
        });
        fb.emit(Instr::LdArr {
            arr: rbuf,
            idx: zero,
            dst: out,
        });
        fb.emit(Instr::Ret(Some(out)));
        let mut p = Program::default();
        let id = p.add_func(fb.finish().unwrap());
        p.entry = Some(id);
        p.validate().unwrap();
        (p, id)
    }

    #[test]
    fn ring_exchange_across_four_ranks() {
        let (p, entry) = ring_program();
        let world = World::new(&p, 4);
        let run = world.run(entry, |_, _| Ok(vec![])).unwrap();
        // Each rank receives from its left neighbor.
        for (r, out) in run.ranks.iter().enumerate() {
            let left = (r + 4 - 1) % 4;
            assert_eq!(out.result, Some(Val::F32(left as f32)), "rank {r}");
        }
        assert!(run.vtime > 0);
    }

    #[test]
    fn single_rank_world_is_self_consistent() {
        let (p, entry) = ring_program();
        let world = World::new(&p, 1);
        let run = world.run(entry, |_, _| Ok(vec![])).unwrap();
        // Self-send: rank 0 receives its own data.
        assert_eq!(run.ranks[0].result, Some(Val::F32(0.0)));
    }

    fn allreduce_program() -> (Program, FuncId) {
        let mut fb = FuncBuilder::new("ar", vec![], Some(Ty::F64), FuncKind::Host);
        let rank = fb.reg(Ty::I32);
        let x = fb.reg(Ty::F64);
        let s = fb.reg(Ty::F64);
        fb.emit(Instr::Intrin {
            op: IntrinOp::MpiRank,
            args: vec![],
            dst: Some(rank),
        });
        fb.emit(Instr::Cast {
            to: PrimKind::Double,
            from: PrimKind::Int,
            dst: x,
            src: rank,
        });
        fb.emit(Instr::Intrin {
            op: IntrinOp::MpiAllreduceSumF64,
            args: vec![x],
            dst: Some(s),
        });
        fb.emit(Instr::Ret(Some(s)));
        let mut p = Program::default();
        let id = p.add_func(fb.finish().unwrap());
        p.validate().unwrap();
        (p, id)
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        let (p, entry) = allreduce_program();
        let world = World::new(&p, 5);
        let run = world.run(entry, |_, _| Ok(vec![])).unwrap();
        for out in &run.ranks {
            assert_eq!(out.result, Some(Val::F64(10.0))); // 0+1+2+3+4
        }
        // Collectives synchronize the clocks.
        let clocks: Vec<u64> = run.ranks.iter().map(|r| r.vclock).collect();
        let spread = clocks.iter().max().unwrap() - clocks.iter().min().unwrap();
        assert!(
            spread < 1000,
            "clocks should be nearly synchronized: {clocks:?}"
        );
    }

    #[test]
    fn deadlock_detected() {
        // Rank 0 receives from rank 1, which never sends.
        let mut fb = FuncBuilder::new("dead", vec![], None, FuncKind::Host);
        let rank = fb.reg(Ty::I32);
        let zero = fb.reg(Ty::I32);
        let one = fb.reg(Ty::I32);
        let n = fb.reg(Ty::I32);
        let buf = fb.reg(Ty::Arr(ElemTy::F32));
        let cond = fb.reg(Ty::Bool);
        fb.emit(Instr::Intrin {
            op: IntrinOp::MpiRank,
            args: vec![],
            dst: Some(rank),
        });
        fb.emit(Instr::ConstI32(zero, 0));
        fb.emit(Instr::ConstI32(one, 1));
        fb.emit(Instr::ConstI32(n, 4));
        fb.emit(Instr::NewArr {
            elem: ElemTy::F32,
            len: n,
            dst: buf,
        });
        let recv = fb.label();
        let end = fb.label();
        fb.emit(Instr::Bin {
            op: BinOp::Eq,
            kind: PrimKind::Int,
            dst: cond,
            lhs: rank,
            rhs: zero,
        });
        fb.br(cond, recv, end);
        fb.bind(recv);
        fb.emit(Instr::Intrin {
            op: IntrinOp::MpiRecvF32,
            args: vec![buf, zero, n, one, zero],
            dst: None,
        });
        fb.jmp(end);
        fb.bind(end);
        fb.emit(Instr::Ret(None));
        let mut p = Program::default();
        let id = p.add_func(fb.finish().unwrap());
        p.validate().unwrap();
        let world = World::new(&p, 2);
        let e = world.run(id, |_, _| Ok(vec![])).unwrap_err();
        let SimError::Deadlock { report } = &e else {
            panic!("expected Deadlock, got {e}");
        };
        // The report names the waited-on source/tag and queue depths
        // (rank 0 waits on rank 1, tag 0, nothing queued).
        assert!(report.contains("rank 0: blocked on Recv"), "{report}");
        assert!(report.contains("from rank 1, tag 0"), "{report}");
        assert!(report.contains("0 matching queued"), "{report}");
        assert!(report.contains("rank 1: done"), "{report}");
    }

    #[test]
    fn virtual_time_grows_with_message_volume() {
        let (p, entry) = ring_program();
        let cheap = World::new(&p, 4).with_cost(CostModel {
            alpha: 10,
            beta: 0.01,
            collective_alpha: 10,
        });
        let costly = World::new(&p, 4).with_cost(CostModel {
            alpha: 100_000,
            beta: 10.0,
            collective_alpha: 10,
        });
        let t1 = cheap.run(entry, |_, _| Ok(vec![])).unwrap().vtime;
        let t2 = costly.run(entry, |_, _| Ok(vec![])).unwrap().vtime;
        assert!(
            t2 > t1,
            "expensive network must increase completion time: {t1} vs {t2}"
        );
    }

    #[test]
    fn determinism() {
        let (p, entry) = ring_program();
        let world = World::new(&p, 4);
        let a = world.run(entry, |_, _| Ok(vec![])).unwrap();
        let b = world.run(entry, |_, _| Ok(vec![])).unwrap();
        assert_eq!(a.vtime, b.vtime);
        assert_eq!(a.total_cycles, b.total_cycles);
    }

    #[test]
    fn separate_memory_spaces() {
        // Each rank allocates and writes; handles are rank-local.
        let mut fb = FuncBuilder::new(
            "m",
            vec![Ty::Arr(ElemTy::F32)],
            Some(Ty::F32),
            FuncKind::Host,
        );
        let zero = fb.reg(Ty::I32);
        let out = fb.reg(Ty::F32);
        fb.emit(Instr::ConstI32(zero, 0));
        fb.emit(Instr::LdArr {
            arr: 0,
            idx: zero,
            dst: out,
        });
        fb.emit(Instr::Ret(Some(out)));
        let mut p = Program::default();
        let id = p.add_func(fb.finish().unwrap());
        p.validate().unwrap();
        let world = World::new(&p, 3);
        let run = world
            .run(id, |r, machine| {
                let h = machine.mem.alloc(ArrStore::F32(vec![r as f32 * 10.0]));
                Ok(vec![Val::Arr(h)])
            })
            .unwrap();
        assert_eq!(run.ranks[0].result, Some(Val::F32(0.0)));
        assert_eq!(run.ranks[1].result, Some(Val::F32(10.0)));
        assert_eq!(run.ranks[2].result, Some(Val::F32(20.0)));
    }

    /// Each rank allreduce-sums a value `steps` times, folding the result
    /// back in each iteration: one collective boundary per step, so
    /// checkpoints have places to land mid-run.
    fn stepped_allreduce(steps: i32) -> (Program, FuncId) {
        let mut fb = FuncBuilder::new("sar", vec![], Some(Ty::F64), FuncKind::Host);
        let rank = fb.reg(Ty::I32);
        let one = fb.reg(Ty::I32);
        let limit = fb.reg(Ty::I32);
        let i = fb.reg(Ty::I32);
        let cond = fb.reg(Ty::Bool);
        let x = fb.reg(Ty::F64);
        let s = fb.reg(Ty::F64);
        let bump = fb.reg(Ty::F64);
        fb.emit(Instr::Intrin {
            op: IntrinOp::MpiRank,
            args: vec![],
            dst: Some(rank),
        });
        fb.emit(Instr::Cast {
            to: PrimKind::Double,
            from: PrimKind::Int,
            dst: x,
            src: rank,
        });
        fb.emit(Instr::ConstI32(one, 1));
        fb.emit(Instr::ConstI32(limit, steps));
        fb.emit(Instr::ConstI32(i, 0));
        fb.emit(Instr::ConstF64(bump, 1.0));
        let head = fb.label();
        let body = fb.label();
        let done = fb.label();
        fb.bind(head);
        fb.emit(Instr::Bin {
            op: BinOp::Lt,
            kind: PrimKind::Int,
            dst: cond,
            lhs: i,
            rhs: limit,
        });
        fb.br(cond, body, done);
        fb.bind(body);
        fb.emit(Instr::Intrin {
            op: IntrinOp::MpiAllreduceSumF64,
            args: vec![x],
            dst: Some(s),
        });
        fb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Double,
            dst: x,
            lhs: s,
            rhs: bump,
        });
        fb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: i,
            lhs: i,
            rhs: one,
        });
        fb.jmp(head);
        fb.bind(done);
        fb.emit(Instr::Ret(Some(x)));
        let mut p = Program::default();
        let id = p.add_func(fb.finish().unwrap());
        p.validate().unwrap();
        (p, id)
    }

    #[test]
    fn checkpoint_capture_restore_capture_is_bit_identical() {
        let (p, entry) = stepped_allreduce(3);
        let mut cfg = FaultConfig::seeded(42);
        cfg.crash = 0.001;
        let world = World::new(&p, 3).with_faults(cfg);
        let mut args = |_: u32, _: &mut Machine| Ok(vec![]);
        let (mut pool, ctls, mut transport) = test_pool(&world, entry, &mut args);
        let rc = world.run_cfg();
        let first = runtime::capture_world(&rc, &mut pool, &ctls, &transport).unwrap();
        let ctls2 = runtime::restore_world(&rc, &mut pool, &mut transport, &first.bytes).unwrap();
        let second = runtime::capture_world(&rc, &mut pool, &ctls2, &transport).unwrap();
        assert_eq!(first.bytes, second.bytes);
        assert_eq!(first.vtime, second.vtime);
    }

    #[test]
    fn restore_rejects_wrong_world_size_and_garbage() {
        let (p, entry) = stepped_allreduce(2);
        let world = World::new(&p, 3);
        let mut args = |_: u32, _: &mut Machine| Ok(vec![]);
        let (mut pool, ctls, mut transport) = test_pool(&world, entry, &mut args);
        let rc = world.run_cfg();
        let wc = runtime::capture_world(&rc, &mut pool, &ctls, &transport).unwrap();
        let smaller = World::new(&p, 2);
        let mut args2 = |_: u32, _: &mut Machine| Ok(vec![]);
        let (mut pool2, _, mut transport2) = test_pool(&smaller, entry, &mut args2);
        assert!(
            runtime::restore_world(&smaller.run_cfg(), &mut pool2, &mut transport2, &wc.bytes)
                .is_err()
        );
        // Truncations and bit flips must come back typed, never panic.
        for cut in 0..wc.bytes.len() {
            assert!(
                runtime::restore_world(&rc, &mut pool, &mut transport, &wc.bytes[..cut]).is_err()
            );
        }
        for i in 0..wc.bytes.len() {
            let mut bad = wc.bytes.clone();
            bad[i] ^= 0x10;
            let _ = runtime::restore_world(&rc, &mut pool, &mut transport, &bad);
        }
    }

    #[test]
    fn restore_rejects_a_foreign_platform_salt() {
        // A checkpoint captured under one platform namespace must never
        // restore into a world stamped with another — the typed
        // ScopeMismatch, not a decode attempt.
        let (p, entry) = stepped_allreduce(2);
        let dist_like = World::new(&p, 2).with_ckpt_salt(0xD157_0000_0000_0001);
        let mut args = |_: u32, _: &mut Machine| Ok(vec![]);
        let (mut pool, ctls, mut transport) = test_pool(&dist_like, entry, &mut args);
        let wc =
            runtime::capture_world(&dist_like.run_cfg(), &mut pool, &ctls, &transport).unwrap();
        let mpi_like = World::new(&p, 2);
        let err = runtime::restore_world(&mpi_like.run_cfg(), &mut pool, &mut transport, &wc.bytes)
            .unwrap_err();
        let CkptError::ScopeMismatch { expected, found } = err else {
            panic!("expected ScopeMismatch, got {err}");
        };
        assert_eq!(expected, 0);
        assert_eq!(found, 0xD157_0000_0000_0001);
    }

    #[test]
    fn warm_start_refuses_a_foreign_platform_chain() {
        // A *valid* persisted chain from another platform namespace must
        // fail fast (typed), not be restored and not be overwritten.
        let dir = std::env::temp_dir().join(format!("wj-scope-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("world.wckpt");
        let (p, entry) = stepped_allreduce(4);
        let policy = CheckpointPolicy::every(1).with_persist(&path);
        let salted = World::new(&p, 3).with_ckpt_salt(7);
        salted
            .run_with_restart(entry, |_, _| Ok(vec![]), &policy, 4)
            .unwrap();
        let before = std::fs::read(&path).unwrap();
        let foreign = World::new(&p, 3);
        let err = foreign
            .run_with_restart(entry, |_, _| Ok(vec![]), &policy, 4)
            .unwrap_err();
        let SimError::CheckpointScope { expected, found } = err else {
            panic!("expected CheckpointScope, got {err}");
        };
        assert_eq!(expected, 0);
        assert_eq!(found, 7);
        // The foreign chain file survives untouched.
        assert_eq!(std::fs::read(&path).unwrap(), before);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn restart_recovers_a_crashing_world_bit_identically() {
        let (p, entry) = stepped_allreduce(10);
        let clean: Vec<Option<Val>> = World::new(&p, 4)
            .run(entry, |_, _| Ok(vec![]))
            .unwrap()
            .ranks
            .into_iter()
            .map(|r| r.result)
            .collect();
        // Find a seed whose crash-only plan kills the plain run, then show
        // the checkpointed run completes with the fault-free answer.
        let mut recovered = 0u32;
        for seed in 0..64u64 {
            let mut cfg = FaultConfig::seeded(0xC0DE + seed);
            cfg.crash = 0.004;
            let world = World::new(&p, 4).with_faults(cfg).with_timeout(5_000);
            let Err(SimError::Crash { .. }) = world.run(entry, |_, _| Ok(vec![])) else {
                continue;
            };
            let run = world
                .run_with_restart(entry, |_, _| Ok(vec![]), &CheckpointPolicy::every(1), 64)
                .expect("checkpointed world must recover from injected crashes");
            let got: Vec<Option<Val>> = run.ranks.into_iter().map(|r| r.result).collect();
            assert_eq!(got, clean, "seed {seed}: recovered result must match");
            assert!(run.restart.restarts >= 1, "seed {seed}");
            assert_eq!(run.restart.restarts, run.resilience.restarts);
            assert!(run.restart.checkpoints_taken >= 1, "seed {seed}");
            assert_eq!(
                run.restart.checkpoints_taken,
                run.resilience.checkpoints_taken
            );
            assert!(run.restart.ranks_rolled_back >= 1, "seed {seed}");
            assert!(run.resilience.crashes >= 1, "seed {seed}");
            recovered += 1;
            if recovered >= 3 {
                break;
            }
        }
        assert!(recovered >= 1, "no seed produced a plain-run crash");
    }

    #[test]
    fn restart_budget_exhaustion_returns_the_typed_error() {
        let (p, entry) = stepped_allreduce(6);
        let mut cfg = FaultConfig::seeded(5);
        cfg.crash = 1.0; // every attempt dies at its first draw
        let world = World::new(&p, 3).with_faults(cfg);
        let err = world
            .run_with_restart(entry, |_, _| Ok(vec![]), &CheckpointPolicy::every(1), 2)
            .unwrap_err();
        let SimError::Crash {
            rank, post_mortem, ..
        } = err
        else {
            panic!("expected Crash after budget exhaustion, got {err}");
        };
        assert!(rank < 3);
        assert!(
            post_mortem.contains("crashed at step"),
            "the last post-mortem must survive: {post_mortem}"
        );
    }

    #[test]
    fn restart_is_a_no_op_for_healthy_worlds() {
        let (p, entry) = stepped_allreduce(5);
        let plain = World::new(&p, 4).run(entry, |_, _| Ok(vec![])).unwrap();
        let ck = World::new(&p, 4)
            .run_with_restart(entry, |_, _| Ok(vec![]), &CheckpointPolicy::every(2), 8)
            .unwrap();
        assert_eq!(ck.restart.restarts, 0);
        assert_eq!(ck.restart.virtual_time_lost, 0);
        assert!(ck.restart.checkpoints_taken >= 1);
        let a: Vec<Option<Val>> = plain.ranks.into_iter().map(|r| r.result).collect();
        let b: Vec<Option<Val>> = ck.ranks.into_iter().map(|r| r.result).collect();
        assert_eq!(a, b);
        assert_eq!(plain.vtime, ck.vtime);
    }

    #[test]
    fn persisted_checkpoint_warm_restarts_and_corruption_degrades_cold() {
        let dir = std::env::temp_dir().join(format!("wj-wckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("world.wckpt");
        let (p, entry) = stepped_allreduce(6);
        let policy = CheckpointPolicy::every(1).with_persist(&path);
        let world = World::new(&p, 3);
        let expect = world
            .run_with_restart(entry, |_, _| Ok(vec![]), &policy, 4)
            .unwrap();
        assert!(path.exists(), "persist path must be written");
        // A fresh "process" (same world shape) warm-starts from the file
        // (the snapshot taken after the last collective) and must still
        // land on the same answers.
        let warm = world
            .run_with_restart(entry, |_, _| Ok(vec![]), &policy, 4)
            .unwrap();
        let a: Vec<Option<Val>> = expect.ranks.into_iter().map(|r| r.result).collect();
        let b: Vec<Option<Val>> = warm.ranks.into_iter().map(|r| r.result).collect();
        assert_eq!(a, b);
        // Corrupt the file: must degrade to a cold start, never panic.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let cold = world
            .run_with_restart(entry, |_, _| Ok(vec![]), &policy, 4)
            .unwrap();
        let c: Vec<Option<Val>> = cold.ranks.into_iter().map(|r| r.result).collect();
        assert_eq!(b, c);
        std::fs::remove_dir_all(&dir).ok();
    }
}
