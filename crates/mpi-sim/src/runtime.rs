//! # runtime — the transport-agnostic rank runtime
//!
//! The cooperative scheduler extracted from the historical
//! `World::run`: the step loop, collective boundaries, fault hooks, and
//! checkpoint capture, parameterized over *where the ranks live*
//! ([`RankPool`]) and *how messages travel* ([`Transport`]).
//!
//! `mpi-sim` itself drives a [`LocalPool`] (every rank an in-process
//! [`exec::Thread`]) over an [`InMemTransport`](crate::InMemTransport) —
//! bit-identical to the pre-refactor monolith. The `dist` backend drives
//! the *same* scheduler over a pool of one OS process per rank, reached
//! across loopback TCP; because every scheduling, cost-model, and
//! fault-stream decision is made here, on one side of the seam, the two
//! backends produce bit-identical rank outcomes by construction.
//!
//! The split of one historical `Rank` is:
//! - [`RankCtl`] — the scheduler-owned half (clocks, blocked state,
//!   completion), always on the driver side of the seam;
//! - the pool-owned half (thread, machine, device, fault stream), which
//!   may live in another process and is reached only through the
//!   [`RankPool`] methods.

use std::path::PathBuf;

use exec::ckpt::{self, chain, CkptError};
use exec::pool::{SliceDone, SliceJob};
use exec::{
    run, ArrStore, ExecError, Executor, ExecutorCfg, FaultConfig, FaultPlan, HostRegistry, Machine,
    MsgFault, ResilienceStats, Thread, TransportFault, Val, Yield,
};
use gpu_sim::{Gpu, GpuConfig, GpuErrorKind};
use nir::codec::{Reader, Writer};
use nir::{FuncId, IntrinOp, Program};

use crate::shared::SharedCacheStats;
use crate::transport::Transport;
#[cfg(test)]
use crate::WorldCheckpoint;
use crate::{
    device_fault_config, err_on, CheckpointPolicy, CostModel, RankOutcome, RestartStats, Schedule,
    SimError, WorldRun,
};

/// Per-rank entry-argument builder: rank id + its machine -> entry args.
pub type ArgBuilder<'a> = &'a mut dyn FnMut(u32, &mut Machine) -> Result<Vec<Val>, String>;

/// Connection attempts per rank before an injected refusal storm becomes
/// a typed error instead of another backoff.
pub const MAX_CONNECT_RETRIES: u32 = 16;

/// The scheduler-facing slice of a world configuration — everything
/// [`drive`] needs that is not the program or the ranks themselves.
#[derive(Debug, Clone, Copy)]
pub struct RunCfg {
    pub size: u32,
    pub cost: CostModel,
    /// Fuel per scheduling slice.
    pub slice: u64,
    /// Per-collective fuel bound (see `World::timeout_rounds`).
    pub timeout_rounds: Option<u64>,
    pub schedule: Schedule,
    /// Platform namespace stamp written into every checkpoint header: a
    /// chain captured under one salt refuses to restore under another
    /// ([`CkptError::ScopeMismatch`] in-run,
    /// [`SimError::CheckpointScope`] at warm start).
    pub ckpt_salt: u64,
}

/// What a rank is blocked on, scheduler-side.
#[derive(Debug, Clone, Copy)]
pub enum Blocked {
    Recv {
        buf: u32,
        off: usize,
        count: usize,
        src: u32,
        tag: i32,
    },
    Barrier,
    Allreduce,
    Bcast {
        buf: u32,
        off: usize,
        count: usize,
        root: u32,
    },
}

/// The scheduler-owned half of one rank: virtual clocks, blocked state,
/// and completion. The execution state behind it (thread, machine,
/// device, fault stream) lives in the [`RankPool`].
#[derive(Debug, Clone, Default)]
pub struct RankCtl {
    pub vclock: u64,
    pub compute_cycles: u64,
    pub comm_cycles: u64,
    pub blocked: Option<Blocked>,
    pub done: Option<Option<Val>>,
    /// Step count at which an injected fault killed this rank.
    pub crashed: Option<u64>,
    /// Consecutive scheduler rounds spent in the current blocked state
    /// (the per-collective timeout clock).
    pub blocked_rounds: u64,
}

/// What one scheduling slice ended with, as seen across the pool seam.
/// Device and host-call yields keep their operands pool-side (they never
/// need to cross the seam); MPI yields surface their operands because
/// the scheduler itself services them.
#[derive(Debug)]
pub enum RankYield {
    Done(Option<Val>),
    OutOfFuel,
    Crashed {
        step: u64,
    },
    /// `__syncthreads` / `__shared__` outside a kernel launch.
    Misplaced,
    /// A device yield (kernel launch or GPU memory op) is pending;
    /// service it with [`RankPool::service_device`].
    Device,
    /// A host-FFI call is pending; service it with
    /// [`RankPool::service_host`].
    HostCall,
    Mpi {
        op: IntrinOp,
        args: Vec<Val>,
    },
}

/// Result of servicing a pending device yield.
#[derive(Debug, Clone, Copy)]
pub enum DeviceOutcome {
    /// Device time consumed; charge it to the rank's clock as
    /// communication (the host blocks on the device).
    Advance(u64),
    /// An injected device fault killed the rank at this step.
    Crashed(u64),
}

/// One rank's checkpoint sections: call stack, one section per heap
/// array, the rest of the machine, and any device state — the same
/// layout the pre-refactor `world_sections` produced per rank.
#[derive(Debug)]
pub struct RankSnapshot {
    /// The rank's interpreter cycle watermark (slice accounting).
    pub last_cycles: u64,
    pub has_gpu: bool,
    /// `thread, array*, machine_rest[, device]` in order.
    pub sections: Vec<Vec<u8>>,
}

/// Where ranks live. [`LocalPool`] keeps them in-process (the `mpi-sim`
/// backend); the `dist` backend reaches one OS process per rank over
/// loopback TCP. Every method is one scheduler-initiated operation on
/// one rank; implementations must be deterministic given the same call
/// sequence — cross-backend bit-identity depends on it.
///
/// Fault-stream draws are pool methods because the seeded PRNG cursors
/// live inside each rank's machine state (so checkpoints capture them);
/// the scheduler guards every draw with [`RankPool::has_fault_plan`] so
/// fault-free worlds pay no seam crossings.
pub trait RankPool {
    /// (Re-)create every rank from scratch: fresh machines, fresh entry
    /// args, fresh fault streams — the cold-start path.
    fn reinit(&mut self) -> Result<(), SimError>;
    /// Called once per restart attempt before any restore: a chance to
    /// respawn dead workers. No-op for in-process pools.
    fn prepare_resume(&mut self) -> Result<(), SimError> {
        Ok(())
    }
    /// Run rank `r` for one fuel slice; returns its yield and the cycles
    /// retired (already watermarked pool-side).
    fn run_slice(&mut self, r: u32, slice: u64) -> Result<(RankYield, u64), SimError>;
    /// Run one scheduler round's ready ranks, returning `(rank, yield,
    /// delta)` in *service order* — the order the scheduler must apply
    /// the yields in. The default is the historical serial loop (run
    /// each rank in the given order), which is exactly what every
    /// remote pool wants; executor-backed pools override this to fan
    /// slice execution out over OS threads. Sound because a slice only
    /// touches its own rank's state — all cross-rank effects happen
    /// when the *scheduler* services the returned yields.
    fn run_slices(
        &mut self,
        ranks: &[u32],
        slice: u64,
    ) -> Result<Vec<(u32, RankYield, u64)>, SimError> {
        let mut out = Vec::with_capacity(ranks.len());
        for &r in ranks {
            let (y, delta) = self.run_slice(r, slice)?;
            out.push((r, y, delta));
        }
        Ok(out)
    }
    /// Resume a blocked/yielded rank with a value.
    fn resume(&mut self, r: u32, v: Val) -> Result<(), SimError>;
    /// Service the pending device yield stashed by
    /// [`RankYield::Device`].
    fn service_device(&mut self, r: u32) -> Result<DeviceOutcome, SimError>;
    /// Service the pending host-FFI yield stashed by
    /// [`RankYield::HostCall`]; returns the injected-retry backoff
    /// cycles to charge to the rank's clock.
    fn service_host(&mut self, r: u32) -> Result<u64, SimError>;
    /// Read `count` floats out of rank `r`'s array `buf` at `off`.
    /// Errors come back located at the rank's current yield site.
    fn read_floats(
        &mut self,
        r: u32,
        buf: u32,
        off: usize,
        count: usize,
    ) -> Result<Vec<f32>, SimError>;
    /// Write a float payload into rank `r`'s array `buf` at `off`.
    fn write_floats(
        &mut self,
        r: u32,
        buf: u32,
        off: usize,
        payload: &[f32],
    ) -> Result<(), SimError>;
    /// The (func, pc) rank `r`'s thread is yielded at — error context.
    fn location(&mut self, r: u32) -> Option<(String, u32)>;
    /// Does rank `r` carry a fault stream? Guards every draw below.
    fn has_fault_plan(&self, r: u32) -> bool;
    /// Draw the fate of one outgoing point-to-point message.
    fn message_fault(&mut self, r: u32) -> Result<MsgFault, SimError>;
    /// Draw the fate of one collective contribution / payload.
    fn collective_fault(&mut self, r: u32) -> Result<MsgFault, SimError>;
    /// Draw the fate of one framed transport message (after its payload
    /// fault).
    fn transport_fault(&mut self, r: u32) -> Result<TransportFault, SimError>;
    /// Connect-phase fault: total backoff cycles spent re-dialing
    /// injected connection refusals (0 when none fire). A refusal storm
    /// past [`MAX_CONNECT_RETRIES`] is a typed error.
    fn connect_delay(&mut self, r: u32) -> Result<u64, SimError>;
    /// Does this checkpoint write fail with an injected I/O fault?
    fn ckpt_write_fails(&mut self, r: u32) -> Result<bool, SimError>;
    /// Capture rank `r`'s execution state as checkpoint sections.
    fn capture_rank(&mut self, r: u32) -> Result<RankSnapshot, SimError>;
    /// Replace rank `r`'s execution state from checkpoint sections
    /// (`thread, array*, machine_rest[, device]`).
    fn restore_rank(
        &mut self,
        r: u32,
        last_cycles: u64,
        has_gpu: bool,
        n_arrays: usize,
        sections: &[Vec<u8>],
    ) -> Result<(), CkptError>;
    /// Zero rank `r`'s fault counters and move its streams past their
    /// consumed cursors (restart attempt `attempt`).
    fn reseed(&mut self, r: u32, attempt: u64) -> Result<(), SimError>;
    /// Rank `r`'s fault/recovery counters (host plan + device merged).
    fn stats(&mut self, r: u32) -> Result<ResilienceStats, SimError>;
    /// Drain the pool into final per-rank outcomes. The pool is empty
    /// afterwards; [`RankPool::reinit`] brings it back.
    fn finish(&mut self, ctls: &[RankCtl]) -> Result<Vec<RankOutcome>, SimError>;
}

/// xorshift64* step for the seeded scheduler permutation.
fn sched_next(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x >> 12;
    x ^= x << 25;
    x ^= x >> 27;
    *state = x;
    x.wrapping_mul(0x2545_F491_4F6C_DD1D)
}

/// The (function, pc) of the instruction a yielded thread is stopped at —
/// the yield bumped the pc first, so the faulting instruction is `pc - 1`.
/// Used to give intrinsic-path errors the same location context the
/// interpreter loop attaches to its own.
pub fn yield_location(program: &Program, thread: &Thread) -> Option<(String, u32)> {
    thread
        .frame_location()
        .map(|(f, pc)| (program.func(f).name.clone(), pc.saturating_sub(1)))
}

/// Attach a yield location to a context-free [`ExecError`].
pub fn locate(e: impl Into<ExecError>, loc: &Option<(String, u32)>) -> ExecError {
    let e = e.into();
    match loc {
        Some((func, pc)) => e.at(func, *pc),
        None => e,
    }
}

/// A rank error located at the rank's current yield site (fetched from
/// the pool only on this error path).
fn located(pool: &mut dyn RankPool, r: u32, e: impl Into<ExecError>) -> SimError {
    let loc = pool.location(r);
    err_on(r, locate(e, &loc))
}

/// Flip a mantissa bit of a float contribution (deterministic payload
/// corruption for collectives).
fn corrupt_val(v: Val) -> Val {
    match v {
        Val::F32(x) => Val::F32(f32::from_bits(x.to_bits() ^ (1 << 21))),
        Val::F64(x) => Val::F64(f64::from_bits(x.to_bits() ^ (1 << 40))),
        other => other,
    }
}

#[derive(Debug, Clone, Copy)]
enum AllOp {
    SumF64,
    SumF32,
    MaxF64,
}

/// Fold allreduce contributions **in rank order**, not arrival order.
/// Ranks reach the collective in schedule-dependent order; sorting by
/// rank id first makes the float reduction's association (and so its
/// exact bits) a function of the world alone — the property the
/// backend-matrix sweep asserts across schedules and platforms.
fn combine(op: AllOp, contributions: &[(u32, AllOp, Val)]) -> Result<Val, ExecError> {
    let mut contributions: Vec<(u32, AllOp, Val)> = contributions.to_vec();
    contributions.sort_by_key(|(r, _, _)| *r);
    let contributions = &contributions;
    match op {
        AllOp::SumF64 => {
            let mut s = 0.0f64;
            for (_, _, v) in contributions {
                s += v.as_f64()?;
            }
            Ok(Val::F64(s))
        }
        AllOp::SumF32 => {
            let mut s = 0.0f32;
            for (_, _, v) in contributions {
                s += v.as_f32()?;
            }
            Ok(Val::F32(s))
        }
        AllOp::MaxF64 => {
            let mut m = f64::NEG_INFINITY;
            for (_, _, v) in contributions {
                m = m.max(v.as_f64()?);
            }
            Ok(Val::F64(m))
        }
    }
}

/// Point-to-point / broadcast payload cost: `alpha + beta·bytes`.
fn msg_cost(cost: &CostModel, bytes: u64) -> u64 {
    cost.alpha + (bytes as f64 * cost.beta) as u64
}

/// Raw machine-side float read (context-free error; pools attach the
/// yield location). Shared with the `dist` worker so out-of-bounds MPI
/// buffers fail with byte-identical messages on every backend.
pub fn read_floats(
    machine: &Machine,
    buf: u32,
    off: usize,
    count: usize,
) -> Result<Vec<f32>, ExecError> {
    match machine.mem.arr(buf)? {
        ArrStore::F32(v) => v.get(off..off + count).map(|s| s.to_vec()).ok_or_else(|| {
            ExecError::msg(format!(
                "send range {off}..{} out of bounds (len {})",
                off + count,
                v.len()
            ))
        }),
        other => Err(ExecError::msg(format!(
            "MPI float op on non-float array {other:?}"
        ))),
    }
}

/// Raw machine-side float write (see [`read_floats`]).
pub fn write_floats(
    machine: &mut Machine,
    buf: u32,
    off: usize,
    payload: &[f32],
) -> Result<(), ExecError> {
    match machine.mem.arr_mut(buf)? {
        ArrStore::F32(v) => {
            let vlen = v.len();
            let tgt = v.get_mut(off..off + payload.len()).ok_or_else(|| {
                ExecError::msg(format!(
                    "recv range {off}..{} out of bounds (len {vlen})",
                    off + payload.len()
                ))
            })?;
            tgt.copy_from_slice(payload);
            Ok(())
        }
        other => Err(ExecError::msg(format!(
            "MPI float op on non-float array {other:?}"
        ))),
    }
}

/// Service a device yield (kernel launch or GPU memory op) against one
/// rank's thread/machine/device triple. Shared by [`LocalPool`] and the
/// `dist` worker so device errors carry byte-identical text everywhere.
///
/// A successful launch does **not** resume the thread (the interpreter
/// continues past the launch on its own); GPU memory ops resume with
/// their result.
pub fn service_device_yield(
    program: &Program,
    thread: &mut Thread,
    machine: &mut Machine,
    gpu: &mut Option<Gpu>,
    r: u32,
    y: Yield,
) -> Result<DeviceOutcome, SimError> {
    match y {
        Yield::Launch {
            kernel,
            grid,
            block,
            args,
        } => {
            let gpu = gpu
                .as_mut()
                .ok_or_else(|| err_on(r, "kernel launch but no GPU configured for this run"))?;
            match gpu.launch(program, kernel, grid, block, args) {
                Ok(stats) => Ok(DeviceOutcome::Advance(stats.kernel_time)),
                // An injected device fault kills the rank (typed),
                // exactly like a host-side crash — the restart path can
                // recover it.
                Err(e) if e.is_injected() => {
                    let GpuErrorKind::InjectedCrash { step, .. } = e.kind else {
                        unreachable!()
                    };
                    Ok(DeviceOutcome::Crashed(step))
                }
                Err(e) => Err(err_on(r, e.to_string())),
            }
        }
        Yield::GpuMem { op, args } => {
            let loc = yield_location(program, thread);
            let gpu = gpu.as_mut().ok_or_else(|| {
                err_on(
                    r,
                    format!("GPU operation {op:?} but no GPU configured for this run"),
                )
            })?;
            let before = gpu.vtime;
            match op {
                IntrinOp::CopyToGpu => {
                    let host = args[0].as_arr().map_err(|m| err_on(r, locate(m, &loc)))?;
                    let store = machine
                        .mem
                        .arr(host)
                        .map_err(|m| err_on(r, locate(m, &loc)))?
                        .clone();
                    let dev = gpu.copy_in(&store).map_err(|e| err_on(r, e.to_string()))?;
                    thread.resume_with(Val::Arr(dev));
                }
                IntrinOp::CopyFromGpu => {
                    let host = args[0].as_arr().map_err(|m| err_on(r, locate(m, &loc)))?;
                    let dev = args[1].as_arr().map_err(|m| err_on(r, locate(m, &loc)))?;
                    let mut tmp = machine
                        .mem
                        .arr(host)
                        .map_err(|m| err_on(r, locate(m, &loc)))?
                        .clone();
                    gpu.copy_out(dev, &mut tmp)
                        .map_err(|e| err_on(r, e.to_string()))?;
                    *machine
                        .mem
                        .arr_mut(host)
                        .map_err(|m| err_on(r, locate(m, &loc)))? = tmp;
                    thread.resume_with(Val::Unit);
                }
                IntrinOp::CopyToGpuRange => {
                    // (dev, devOff, host, hostOff, len)
                    let dev = args[0].as_arr().map_err(|m| err_on(r, locate(m, &loc)))?;
                    let doff = args[1].as_i32().map_err(|m| err_on(r, locate(m, &loc)))? as usize;
                    let host = args[2].as_arr().map_err(|m| err_on(r, locate(m, &loc)))?;
                    let hoff = args[3].as_i32().map_err(|m| err_on(r, locate(m, &loc)))? as usize;
                    let len = args[4].as_i32().map_err(|m| err_on(r, locate(m, &loc)))? as usize;
                    let payload = read_floats(machine, host, hoff, len)
                        .map_err(|m| err_on(r, locate(m, &loc)))?;
                    gpu.write_range(dev, doff, &payload)
                        .map_err(|e| err_on(r, e.to_string()))?;
                    thread.resume_with(Val::Unit);
                }
                IntrinOp::CopyFromGpuRange => {
                    // (host, hostOff, dev, devOff, len)
                    let host = args[0].as_arr().map_err(|m| err_on(r, locate(m, &loc)))?;
                    let hoff = args[1].as_i32().map_err(|m| err_on(r, locate(m, &loc)))? as usize;
                    let dev = args[2].as_arr().map_err(|m| err_on(r, locate(m, &loc)))?;
                    let doff = args[3].as_i32().map_err(|m| err_on(r, locate(m, &loc)))? as usize;
                    let len = args[4].as_i32().map_err(|m| err_on(r, locate(m, &loc)))? as usize;
                    let payload = gpu
                        .read_range(dev, doff, len)
                        .map_err(|e| err_on(r, e.to_string()))?;
                    write_floats(machine, host, hoff, &payload)
                        .map_err(|m| err_on(r, locate(m, &loc)))?;
                    thread.resume_with(Val::Unit);
                }
                IntrinOp::GpuAllocF32 => {
                    let n = args[0].as_i32().map_err(|m| err_on(r, locate(m, &loc)))?;
                    if n < 0 {
                        return Err(err_on(r, "negative device allocation"));
                    }
                    let dev = gpu.alloc_f32(n as usize);
                    thread.resume_with(Val::Arr(dev));
                }
                IntrinOp::GpuFree => {
                    let dev = args[0].as_arr().map_err(|m| err_on(r, locate(m, &loc)))?;
                    gpu.free(dev).map_err(|e| err_on(r, e.to_string()))?;
                    thread.resume_with(Val::Unit);
                }
                other => {
                    return Err(err_on(
                        r,
                        format!("CUDA thread register {other:?} read outside a kernel"),
                    ))
                }
            }
            Ok(DeviceOutcome::Advance(gpu.vtime - before))
        }
        _ => Err(err_on(r, "device service on a non-device yield")),
    }
}

/// Service a host-FFI yield: resolve the foreign function, survive the
/// injected-transient retry loop (exponential virtual-time backoff up to
/// the configured budget), call it, resume the thread with the result.
/// Returns the total backoff cycles to charge to the rank's clock.
/// Shared by [`LocalPool`] and the `dist` worker.
pub fn service_host_yield(
    program: &Program,
    registry: Option<&HostRegistry>,
    thread: &mut Thread,
    machine: &mut Machine,
    r: u32,
    host: u32,
    args: Vec<Val>,
) -> Result<u64, SimError> {
    let loc = yield_location(program, thread);
    let sig = program
        .host_fns
        .get(host as usize)
        .ok_or_else(|| err_on(r, locate("unknown host function", &loc)))?;
    let registry = registry.ok_or_else(|| {
        err_on(
            r,
            locate(
                format!(
                    "foreign function `{}` called but no host registry configured",
                    sig.name
                ),
                &loc,
            ),
        )
    })?;
    let id = registry.id_of(&sig.name).ok_or_else(|| {
        err_on(
            r,
            locate(
                format!("foreign function `{}` is not registered", sig.name),
                &loc,
            ),
        )
    })?;
    // Transient host-FFI failures (injected) are retried with
    // exponential virtual-time backoff up to the configured budget; the
    // call itself only runs once the attempt survives the draw.
    let mut attempt: u32 = 0;
    let mut backoff_total: u64 = 0;
    loop {
        let transient = machine
            .fault
            .as_mut()
            .is_some_and(|p| p.host_attempt_fails());
        if !transient {
            break;
        }
        let plan = machine.fault.as_mut().unwrap();
        if attempt >= plan.config.max_host_retries {
            return Err(err_on(
                r,
                locate(
                    format!(
                        "foreign function `{}` failed {} times \
                         (injected transient errors, retry budget exhausted)",
                        sig.name,
                        attempt + 1
                    ),
                    &loc,
                ),
            ));
        }
        attempt += 1;
        plan.stats.host_retries += 1;
        backoff_total += plan.backoff_cycles(attempt);
    }
    let v = registry
        .call(id, &args, &mut machine.mem)
        .map_err(|m| err_on(r, format!("in `{}`: {}", sig.name, locate(m, &loc))))?;
    thread.resume_with(v);
    Ok(backoff_total)
}

/// Enqueue an outgoing point-to-point message, applying the sending
/// rank's injected faults: first the payload fate (dropped messages are
/// lost in flight — the sender still pays the cost, it cannot tell;
/// corrupt ones arrive with a flipped payload bit; delayed ones become
/// available later in virtual time), then the framed-transport fate (a
/// truncated frame is rejected by the receiver's checksum and lost; a
/// delayed ack lands the delivery later). A dropped payload never
/// reaches the wire, so its transport fate is not drawn.
fn post_message(
    pool: &mut dyn RankPool,
    sender: &mut RankCtl,
    from: u32,
    dest: u32,
    tag: i32,
    mut payload: Vec<f32>,
    transport: &mut dyn Transport,
) -> Result<(), SimError> {
    let mut avail_at = sender.vclock;
    if pool.has_fault_plan(from) {
        match pool.message_fault(from)? {
            MsgFault::Drop => return Ok(()),
            MsgFault::Corrupt => exec::fault::corrupt_f32(&mut payload),
            MsgFault::Delay(d) => avail_at += d,
            MsgFault::None => {}
        }
        match pool.transport_fault(from)? {
            TransportFault::Truncate => return Ok(()),
            TransportFault::DelayAck(d) => avail_at += d,
            TransportFault::None => {}
        }
    }
    transport.post(from, dest, tag, payload, avail_at);
    Ok(())
}

/// An allreduce contribution, possibly corrupted or delayed by the
/// contributing rank's fault stream (delay pushes the rank's clock,
/// which delays the collective's completion time).
fn contribute(pool: &mut dyn RankPool, ctl: &mut RankCtl, r: u32, v: Val) -> Result<Val, SimError> {
    if !pool.has_fault_plan(r) {
        return Ok(v);
    }
    Ok(match pool.collective_fault(r)? {
        MsgFault::Corrupt => corrupt_val(v),
        MsgFault::Delay(d) => {
            ctl.vclock += d;
            ctl.comm_cycles += d;
            v
        }
        MsgFault::None | MsgFault::Drop => v,
    })
}

/// Collective completion time: max participant clock + base cost +
/// a log2(size) latency term.
fn complete_collective(cfg: &RunCfg, ctls: &mut [RankCtl], participants: &[u32]) -> u64 {
    let max = participants
        .iter()
        .map(|&r| ctls[r as usize].vclock)
        .max()
        .unwrap_or(0);
    let log2 = 32 - (cfg.size.max(1)).leading_zeros() as u64;
    let t = max + cfg.cost.collective_alpha + cfg.cost.alpha * log2;
    for &r in participants {
        let ctl = &mut ctls[r as usize];
        ctl.comm_cycles += t - ctl.vclock;
    }
    t
}

/// One line per rank describing its state — the post-mortem attached to
/// deadlock, timeout, and crash errors. `Recv` lines include the
/// waited-on source/tag and the pending queue depths, so a mismatched
/// send/recv pair is diagnosable from the error text alone.
fn world_report(ctls: &[RankCtl], transport: &dyn Transport) -> String {
    ctls.iter()
        .enumerate()
        .map(|(i, rk)| {
            let state = if let Some(step) = rk.crashed {
                format!("crashed at step {step} (injected fault)")
            } else if rk.done.is_some() {
                "done".to_string()
            } else if let Some(b) = &rk.blocked {
                match b {
                    Blocked::Recv {
                        src, tag, count, ..
                    } => {
                        let matching = transport.queued(*src, i as u32, *tag);
                        let inbound = transport.inbound_total(i as u32);
                        format!(
                            "blocked on Recv {{ {count} floats from rank {src}, tag {tag} }} \
                             ({matching} matching queued, {inbound} inbound total)"
                        )
                    }
                    Blocked::Barrier => "blocked on Barrier".to_string(),
                    Blocked::Allreduce => "blocked on Allreduce".to_string(),
                    Blocked::Bcast { root, count, .. } => {
                        format!("blocked on Bcast {{ {count} floats, root {root} }}")
                    }
                }
            } else {
                format!("runnable (vclock {})", rk.vclock)
            };
            format!("rank {i}: {state}")
        })
        .collect::<Vec<_>>()
        .join("\n")
}

/// `v` as an in-range rank id, or a located typed error.
fn check_rank(pool: &mut dyn RankPool, size: u32, r: u32, v: i32) -> Result<u32, SimError> {
    if v < 0 || v as u32 >= size {
        Err(located(
            pool,
            r,
            format!("rank {v} out of range (world size {size})"),
        ))
    } else {
        Ok(v as u32)
    }
}

/// Service one MPI yield against the scheduler's collective rendezvous
/// state — the pre-refactor `service_mpi`, reading and writing rank
/// memory through the pool seam.
#[allow(clippy::too_many_arguments)]
fn service_mpi(
    cfg: &RunCfg,
    pool: &mut dyn RankPool,
    ctls: &mut [RankCtl],
    r: u32,
    op: IntrinOp,
    args: Vec<Val>,
    transport: &mut dyn Transport,
    barrier_waiters: &mut Vec<u32>,
    allreduce: &mut Vec<(u32, AllOp, Val)>,
    bcast_waiters: &mut Vec<u32>,
) -> Result<(), SimError> {
    let ri = r as usize;
    match op {
        IntrinOp::MpiRank => {
            pool.resume(r, Val::I32(r as i32))?;
        }
        IntrinOp::MpiSize => {
            pool.resume(r, Val::I32(cfg.size as i32))?;
        }
        IntrinOp::MpiBarrier => {
            ctls[ri].blocked = Some(Blocked::Barrier);
            barrier_waiters.push(r);
        }
        IntrinOp::MpiSendF32 => {
            // sendF(buf, off, count, dest, tag)
            let buf = args[0].as_arr().map_err(|m| located(pool, r, m))?;
            let off = args[1].as_i32().map_err(|m| located(pool, r, m))? as usize;
            let count = args[2].as_i32().map_err(|m| located(pool, r, m))? as usize;
            let dest_raw = args[3].as_i32().map_err(|m| located(pool, r, m))?;
            let dest = check_rank(pool, cfg.size, r, dest_raw)?;
            let tag = args[4].as_i32().map_err(|m| located(pool, r, m))?;
            let payload = pool.read_floats(r, buf, off, count)?;
            let cost = msg_cost(&cfg.cost, (count * 4) as u64);
            ctls[ri].vclock += cost;
            ctls[ri].comm_cycles += cost;
            post_message(pool, &mut ctls[ri], r, dest, tag, payload, transport)?;
            pool.resume(r, Val::Unit)?;
        }
        IntrinOp::MpiRecvF32 => {
            // recvF(buf, off, count, src, tag)
            let buf = args[0].as_arr().map_err(|m| located(pool, r, m))?;
            let off = args[1].as_i32().map_err(|m| located(pool, r, m))? as usize;
            let count = args[2].as_i32().map_err(|m| located(pool, r, m))? as usize;
            let src_raw = args[3].as_i32().map_err(|m| located(pool, r, m))?;
            let src = check_rank(pool, cfg.size, r, src_raw)?;
            let tag = args[4].as_i32().map_err(|m| located(pool, r, m))?;
            ctls[ri].blocked = Some(Blocked::Recv {
                buf,
                off,
                count,
                src,
                tag,
            });
        }
        IntrinOp::MpiSendRecvF32 => {
            // sendrecvF(sbuf, soff, count, dest, rbuf, roff, src, tag)
            let sbuf = args[0].as_arr().map_err(|m| located(pool, r, m))?;
            let soff = args[1].as_i32().map_err(|m| located(pool, r, m))? as usize;
            let count = args[2].as_i32().map_err(|m| located(pool, r, m))? as usize;
            let dest_raw = args[3].as_i32().map_err(|m| located(pool, r, m))?;
            let dest = check_rank(pool, cfg.size, r, dest_raw)?;
            let rbuf = args[4].as_arr().map_err(|m| located(pool, r, m))?;
            let roff = args[5].as_i32().map_err(|m| located(pool, r, m))? as usize;
            let src_raw = args[6].as_i32().map_err(|m| located(pool, r, m))?;
            let src = check_rank(pool, cfg.size, r, src_raw)?;
            let tag = args[7].as_i32().map_err(|m| located(pool, r, m))?;
            let payload = pool.read_floats(r, sbuf, soff, count)?;
            let cost = msg_cost(&cfg.cost, (count * 4) as u64);
            ctls[ri].vclock += cost;
            ctls[ri].comm_cycles += cost;
            post_message(pool, &mut ctls[ri], r, dest, tag, payload, transport)?;
            ctls[ri].blocked = Some(Blocked::Recv {
                buf: rbuf,
                off: roff,
                count,
                src,
                tag,
            });
        }
        IntrinOp::MpiBcastF32 => {
            // bcastF(buf, off, count, root)
            let buf = args[0].as_arr().map_err(|m| located(pool, r, m))?;
            let off = args[1].as_i32().map_err(|m| located(pool, r, m))? as usize;
            let count = args[2].as_i32().map_err(|m| located(pool, r, m))? as usize;
            let root_raw = args[3].as_i32().map_err(|m| located(pool, r, m))?;
            let root = check_rank(pool, cfg.size, r, root_raw)?;
            ctls[ri].blocked = Some(Blocked::Bcast {
                buf,
                off,
                count,
                root,
            });
            bcast_waiters.push(r);
        }
        IntrinOp::MpiAllreduceSumF64 => {
            ctls[ri].blocked = Some(Blocked::Allreduce);
            let v = contribute(pool, &mut ctls[ri], r, args[0])?;
            allreduce.push((r, AllOp::SumF64, v));
        }
        IntrinOp::MpiAllreduceSumF32 => {
            ctls[ri].blocked = Some(Blocked::Allreduce);
            let v = contribute(pool, &mut ctls[ri], r, args[0])?;
            allreduce.push((r, AllOp::SumF32, v));
        }
        IntrinOp::MpiAllreduceMaxF64 => {
            ctls[ri].blocked = Some(Blocked::Allreduce);
            let v = contribute(pool, &mut ctls[ri], r, args[0])?;
            allreduce.push((r, AllOp::MaxF64, v));
        }
        other => return Err(err_on(r, format!("unexpected MPI op {other:?}"))),
    }
    Ok(())
}

/// Decompose the world into the ordered byte sections a checkpoint chain
/// diffs over: one header section (scope salt, sizes, clocks,
/// completion), then each rank's [`RankSnapshot`] sections, and finally
/// the transport's in-flight snapshot. Only ever called at a collective
/// boundary, where all live ranks' clocks are synchronized and no
/// collective is partially complete.
fn world_sections(
    cfg: &RunCfg,
    pool: &mut dyn RankPool,
    ctls: &[RankCtl],
    transport: &dyn Transport,
) -> Result<Vec<Vec<u8>>, SimError> {
    let mut header = Writer::new();
    // The platform scope stamp leads the header so a foreign chain is
    // rejected before any state is decoded.
    header.u64(cfg.ckpt_salt);
    header.u32(cfg.size);
    header.len(ctls.len());
    let mut body: Vec<Vec<u8>> = Vec::new();
    for (r, ctl) in ctls.iter().enumerate() {
        let snap = pool.capture_rank(r as u32)?;
        match &ctl.done {
            None => header.u8(0),
            Some(None) => header.u8(1),
            Some(Some(v)) => {
                header.u8(2);
                ckpt::write_val(&mut header, *v);
            }
        }
        header.u64(ctl.vclock);
        header.u64(ctl.compute_cycles);
        header.u64(ctl.comm_cycles);
        header.u64(snap.last_cycles);
        header.bool(snap.has_gpu);
        // Count of sections elsewhere — not a same-buffer length, so
        // it must not go through the reader's `len()` sanity bound.
        let n_arrays = snap.sections.len() - 2 - snap.has_gpu as usize;
        header.u32(n_arrays as u32);
        body.extend(snap.sections);
    }
    let mut sections = Vec::with_capacity(body.len() + 2);
    sections.push(header.into_bytes());
    sections.append(&mut body);
    sections.push(transport.snapshot());
    Ok(sections)
}

/// Decode resolved chain sections back into scheduler state, restoring
/// each rank's execution state through the pool. Every failure mode —
/// truncation, corruption, version/topology skew, a foreign platform
/// salt — is a typed [`CkptError`], never a panic.
fn world_from_sections(
    cfg: &RunCfg,
    pool: &mut dyn RankPool,
    transport: &mut dyn Transport,
    sections: &[Vec<u8>],
) -> Result<Vec<RankCtl>, CkptError> {
    fn bad(message: impl Into<String>) -> CkptError {
        CkptError::Corrupt {
            offset: 0,
            message: message.into(),
        }
    }
    let mut h = Reader::new(sections.first().ok_or_else(|| bad("empty snapshot"))?);
    let salt = h.u64()?;
    if salt != cfg.ckpt_salt {
        return Err(CkptError::ScopeMismatch {
            expected: cfg.ckpt_salt,
            found: salt,
        });
    }
    let size = h.u32()?;
    if size != cfg.size {
        return Err(bad(format!(
            "checkpoint is for a {size}-rank world, this world has {} ranks",
            cfg.size
        )));
    }
    let n = h.len()?;
    if n != cfg.size as usize {
        return Err(bad("rank count does not match world size"));
    }
    let mut ctls = Vec::with_capacity(n);
    let mut pos = 1usize;
    for rank_id in 0..n {
        let done = match h.u8()? {
            0 => None,
            1 => Some(None),
            2 => Some(Some(ckpt::read_val(&mut h)?)),
            t => return Err(bad(format!("bad rank-done tag {t:#x}"))),
        };
        let vclock = h.u64()?;
        let compute_cycles = h.u64()?;
        let comm_cycles = h.u64()?;
        let last_cycles = h.u64()?;
        let has_gpu = h.bool()?;
        let n_arrays = h.u32()? as usize;
        if n_arrays > sections.len() {
            return Err(bad(format!(
                "rank {rank_id} claims {n_arrays} arrays in a {}-section snapshot",
                sections.len()
            )));
        }
        let want = 2 + n_arrays + has_gpu as usize;
        if pos + want > sections.len() {
            return Err(bad(format!("missing sections of rank {rank_id}")));
        }
        pool.restore_rank(
            rank_id as u32,
            last_cycles,
            has_gpu,
            n_arrays,
            &sections[pos..pos + want],
        )?;
        pos += want;
        ctls.push(RankCtl {
            vclock,
            compute_cycles,
            comm_cycles,
            blocked: None,
            done,
            crashed: None,
            blocked_rounds: 0,
        });
    }
    let msgs = sections
        .get(pos)
        .ok_or_else(|| bad("missing message section"))?;
    transport.restore(msgs)?;
    if pos + 1 != sections.len() {
        return Err(bad("trailing sections after world snapshot"));
    }
    Ok(ctls)
}

/// The platform scope salt of a resolved persisted chain, or `None` when
/// the chain is empty/unresolvable (those degrade to a cold start
/// instead of failing the scope check).
fn chain_salt(links: &[Vec<u8>]) -> Option<u64> {
    if links.is_empty() {
        return None;
    }
    let out = chain::resolve_prefix(links);
    if out.valid_links == 0 {
        return None;
    }
    let header = out.sections.first()?;
    Reader::new(header).u64().ok()
}

/// Live checkpointing state threaded through the scheduler by
/// [`run_world_with_restart`]: the current chain epoch (sealed links,
/// base first) plus the incremental encoder positioned at its head.
struct CkptState {
    every: u64,
    rebase_every: u64,
    write_alpha: u64,
    write_bytes_per_cycle: u64,
    persist: Option<PathBuf>,
    since_last: u64,
    chain: chain::ChainState,
    links: Vec<Vec<u8>>,
    deltas_since_base: u64,
    latest_vtime: Option<u64>,
    taken: u64,
    deltas: u64,
    rebases: u64,
    bytes_written: u64,
    links_dropped: u64,
}

impl CkptState {
    fn new(policy: &CheckpointPolicy) -> Self {
        CkptState {
            every: policy.every.max(1) as u64,
            rebase_every: policy.rebase_every as u64,
            write_alpha: policy.write_alpha,
            write_bytes_per_cycle: policy.write_bytes_per_cycle,
            persist: policy.persist.clone(),
            since_last: 0,
            chain: chain::ChainState::new(),
            links: Vec::new(),
            deltas_since_base: 0,
            latest_vtime: None,
            taken: 0,
            deltas: 0,
            rebases: 0,
            bytes_written: 0,
            links_dropped: 0,
        }
    }

    /// Called by the scheduler immediately after a collective completes —
    /// the only globally consistent cut points (see [`CheckpointPolicy`]).
    fn collective_completed(
        &mut self,
        cfg: &RunCfg,
        pool: &mut dyn RankPool,
        ctls: &mut [RankCtl],
        transport: &dyn Transport,
    ) -> Result<(), SimError> {
        self.since_last += 1;
        if self.since_last < self.every {
            return Ok(());
        }
        self.since_last = 0;
        // Injected checkpoint-write I/O fault — a world-level decision
        // drawn from the first live fault stream (rank 0). The write is
        // skipped; the world keeps running on its previous snapshot.
        // Drawn before capture so full and delta modes see identical
        // streams.
        if let Some(r) = (0..cfg.size).find(|&r| pool.has_fault_plan(r)) {
            if pool.ckpt_write_fails(r)? {
                return Ok(());
            }
        }
        let sections = world_sections(cfg, pool, ctls, transport)?;
        let force_base = self.rebase_every == 0
            || self.links.is_empty()
            || self.deltas_since_base >= self.rebase_every;
        let link = self.chain.push(sections, force_base);
        self.bytes_written += link.bytes.len() as u64;
        if link.is_base {
            if !self.links.is_empty() && self.rebase_every > 0 {
                self.rebases += 1;
            }
            if let Some(path) = &self.persist {
                // Old-epoch deltas go first so a crash mid-rebase leaves
                // either the old base alone (a valid, older ancestor) or
                // the new base alone — never a base with foreign deltas
                // (parent digests would reject those anyway).
                crate::remove_persisted_deltas(path);
                crate::persist_checkpoint(path, &link.bytes);
            }
            self.links.clear();
            self.deltas_since_base = 0;
        } else {
            self.deltas += 1;
            self.deltas_since_base += 1;
            if let Some(path) = &self.persist {
                crate::persist_checkpoint(&crate::delta_path(path, link.seq), &link.bytes);
            }
        }
        let link_len = link.bytes.len() as u64;
        self.links.push(link.bytes);
        self.latest_vtime = Some(ctls.iter().map(|c| c.vclock).max().unwrap_or(0));
        self.taken += 1;
        // Charge the write cost after capture: the snapshot itself is
        // pre-cost, so a rollback also re-pays the time spent writing —
        // exactly the term delta chains shrink.
        // bytes_per_cycle == 0 means "size is free" (the default).
        let cost = self.write_alpha
            + link_len
                .checked_div(self.write_bytes_per_cycle)
                .unwrap_or(0);
        if cost > 0 {
            for ctl in ctls.iter_mut().filter(|c| c.done.is_none()) {
                ctl.vclock += cost;
                ctl.comm_cycles += cost;
            }
        }
        Ok(())
    }

    /// Resolve the current chain into runnable world state, degrading to
    /// the deepest valid ancestor: any damaged or undecodable tail link
    /// is dropped (counted) and the next-older snapshot is tried. `None`
    /// means the base itself is gone — a cold restart.
    fn restore_latest(
        &mut self,
        cfg: &RunCfg,
        pool: &mut dyn RankPool,
        transport: &mut dyn Transport,
    ) -> Option<Vec<RankCtl>> {
        loop {
            if self.links.is_empty() {
                self.latest_vtime = None;
                self.deltas_since_base = 0;
                return None;
            }
            let out = chain::resolve_prefix(&self.links);
            if out.valid_links == self.links.len() {
                match world_from_sections(cfg, pool, transport, &out.sections) {
                    Ok(ctls) => {
                        let head = self.links.last().expect("non-empty chain");
                        self.chain =
                            chain::ChainState::resume(out.sections, head, self.links.len() as u64);
                        self.deltas_since_base = (self.links.len() - 1) as u64;
                        self.latest_vtime = Some(ctls.iter().map(|c| c.vclock).max().unwrap_or(0));
                        return Some(ctls);
                    }
                    Err(_) => {
                        // Chain-valid but not decodable by this world
                        // (program/topology skew, or a pool that lost a
                        // worker mid-restore): try one link deeper.
                        self.links.pop();
                        self.links_dropped += 1;
                    }
                }
            } else {
                self.links_dropped += (self.links.len() - out.valid_links) as u64;
                self.links.truncate(out.valid_links);
            }
        }
    }
}

/// The cooperative scheduler: drives the pool's ranks to completion (or
/// a typed failure), optionally checkpointing at collective boundaries.
/// The pre-refactor `World::drive`, with every rank access behind the
/// [`RankPool`] seam and every message behind [`Transport`].
fn drive(
    cfg: &RunCfg,
    pool: &mut dyn RankPool,
    ctls: &mut [RankCtl],
    transport: &mut dyn Transport,
    mut ckpt: Option<&mut CkptState>,
) -> Result<WorldRun, SimError> {
    // Connect-phase fault draws: each live rank (re-)joins the fabric at
    // the start of an attempt, paying any injected refusal backoff.
    // Zero-rate configs draw nothing, keeping legacy streams
    // bit-identical.
    for r in 0..cfg.size {
        if ctls[r as usize].done.is_none() && pool.has_fault_plan(r) {
            let d = pool.connect_delay(r)?;
            if d > 0 {
                let ctl = &mut ctls[r as usize];
                ctl.vclock += d;
                ctl.comm_cycles += d;
            }
        }
    }

    // Collective rendezvous state.
    let mut barrier_waiters: Vec<u32> = Vec::new();
    let mut allreduce: Vec<(u32, AllOp, Val)> = Vec::new();
    let mut bcast_waiters: Vec<u32> = Vec::new();
    // Scheduler rounds so far (the global half of the timeout bound).
    let mut rounds: u64 = 0;
    // PRNG for `Schedule::Seeded` (fresh per drive, so every restart
    // attempt replays the same interleaving for the same seed).
    let mut sched_rng = match cfg.schedule {
        Schedule::RankOrder => 0,
        Schedule::Seeded(seed) => seed | 1,
    };
    let mut order: Vec<usize> = (0..cfg.size as usize).collect();

    loop {
        let mut progress = false;

        // 1. Try to unblock receivers / collectives.
        #[allow(clippy::needless_range_loop)] // ctls + transport are both indexed by r
        for r in 0..cfg.size as usize {
            let Some(Blocked::Recv {
                buf,
                off,
                count,
                src,
                tag,
            }) = ctls[r].blocked
            else {
                continue;
            };
            let Some((payload, avail_at)) = transport.try_recv(r as u32, src, tag) else {
                continue;
            };
            if payload.len() != count {
                return Err(located(
                    pool,
                    r as u32,
                    format!(
                        "recv of {count} floats matched a message of {}",
                        payload.len()
                    ),
                ));
            }
            pool.write_floats(r as u32, buf, off, &payload)?;
            let ctl = &mut ctls[r];
            let arrival = ctl.vclock.max(avail_at);
            ctl.comm_cycles += arrival - ctl.vclock;
            ctl.vclock = arrival;
            ctl.blocked = None;
            pool.resume(r as u32, Val::Unit)?;
            progress = true;
        }

        // 2. Complete collectives when everyone arrived.
        let live = ctls.iter().filter(|c| c.done.is_none()).count() as u32;
        if !barrier_waiters.is_empty() && barrier_waiters.len() as u32 == live {
            let t = complete_collective(cfg, ctls, &barrier_waiters);
            for &r in &barrier_waiters {
                let ctl = &mut ctls[r as usize];
                ctl.vclock = t;
                ctl.blocked = None;
                pool.resume(r, Val::Unit)?;
            }
            barrier_waiters.clear();
            progress = true;
            if let Some(ck) = ckpt.as_deref_mut() {
                ck.collective_completed(cfg, pool, ctls, transport)?;
            }
        }
        if !allreduce.is_empty() && allreduce.len() as u32 == live {
            let participants: Vec<u32> = allreduce.iter().map(|(r, _, _)| *r).collect();
            let t = complete_collective(cfg, ctls, &participants);
            let op = allreduce[0].1;
            let combined = combine(op, &allreduce).map_err(|m| SimError::World {
                message: m.to_string(),
            })?;
            for &(r, _, _) in allreduce.iter() {
                let ctl = &mut ctls[r as usize];
                ctl.vclock = t;
                ctl.blocked = None;
                pool.resume(r, combined)?;
            }
            allreduce.clear();
            progress = true;
            if let Some(ck) = ckpt.as_deref_mut() {
                ck.collective_completed(cfg, pool, ctls, transport)?;
            }
        }
        if !bcast_waiters.is_empty() && bcast_waiters.len() as u32 == live {
            // Copy the root's payload into everyone else's buffer.
            let (root, count) = {
                let Some(Blocked::Bcast { root, count, .. }) =
                    &ctls[bcast_waiters[0] as usize].blocked
                else {
                    return Err(SimError::World {
                        message: "inconsistent bcast state".into(),
                    });
                };
                (*root, *count)
            };
            let mut payload = {
                let Some(Blocked::Bcast { buf, off, .. }) = &ctls[root as usize].blocked else {
                    return Err(err_on(root, "bcast root is not at the bcast"));
                };
                let (buf, off) = (*buf, *off);
                pool.read_floats(root, buf, off, count)?
            };
            // Fault injection on the broadcast payload, drawn from
            // the root's stream (collectives corrupt or delay — a
            // dropped collective is a crash, not a message fault).
            let mut extra_delay = 0;
            if pool.has_fault_plan(root) {
                match pool.collective_fault(root)? {
                    MsgFault::Corrupt => exec::fault::corrupt_f32(&mut payload),
                    MsgFault::Delay(d) => extra_delay = d,
                    MsgFault::None | MsgFault::Drop => {}
                }
            }
            let t = complete_collective(cfg, ctls, &bcast_waiters)
                + msg_cost(&cfg.cost, (count * 4) as u64)
                + extra_delay;
            for &r in &bcast_waiters {
                if r != root {
                    let Some(Blocked::Bcast { buf, off, .. }) = &ctls[r as usize].blocked else {
                        unreachable!()
                    };
                    let (buf, off) = (*buf, *off);
                    pool.write_floats(r, buf, off, &payload)?;
                }
                let ctl = &mut ctls[r as usize];
                ctl.vclock = t;
                ctl.blocked = None;
                pool.resume(r, Val::Unit)?;
            }
            bcast_waiters.clear();
            progress = true;
            if let Some(ck) = ckpt.as_deref_mut() {
                ck.collective_completed(cfg, pool, ctls, transport)?;
            }
        }

        // 3. Run runnable ranks for a slice. Under `Seeded`, the
        // service order is a fresh Fisher–Yates permutation each
        // round — the deterministic analogue of an OS thread
        // scheduler picking workers in arbitrary order.
        if let Schedule::Seeded(_) = cfg.schedule {
            for i in (1..order.len()).rev() {
                let j = (sched_next(&mut sched_rng) % (i as u64 + 1)) as usize;
                order.swap(i, j);
            }
        }
        // Ready ranks in service order. Slice *execution* crosses the
        // executor seam as one batch (a slice only touches its own
        // rank's state); the yields come back in service order and are
        // applied here exactly as the historical run-one-service-one
        // loop did — bit-identical by construction.
        let ready: Vec<u32> = order
            .iter()
            .filter(|&&r| {
                ctls[r].done.is_none() && ctls[r].blocked.is_none() && ctls[r].crashed.is_none()
            })
            .map(|&r| r as u32)
            .collect();
        if !ready.is_empty() {
            progress = true;
        }
        for (r, y, delta) in pool.run_slices(&ready, cfg.slice)? {
            let r = r as usize;
            {
                let ctl = &mut ctls[r];
                ctl.vclock += delta;
                ctl.compute_cycles += delta;
            }
            match y {
                RankYield::Done(v) => ctls[r].done = Some(v),
                RankYield::OutOfFuel => {}
                RankYield::Crashed { step } => {
                    // The rank is dead. Let the survivors run on —
                    // the world fails with a post-mortem once no one
                    // can make progress (see below).
                    ctls[r].crashed = Some(step);
                }
                RankYield::Misplaced => {
                    return Err(err_on(
                        r as u32,
                        "__syncthreads / __shared__ outside a kernel launch",
                    ));
                }
                RankYield::Device => match pool.service_device(r as u32)? {
                    DeviceOutcome::Advance(d) => {
                        let ctl = &mut ctls[r];
                        ctl.vclock += d;
                        ctl.comm_cycles += d;
                    }
                    DeviceOutcome::Crashed(step) => ctls[r].crashed = Some(step),
                },
                RankYield::HostCall => {
                    let backoff = pool.service_host(r as u32)?;
                    let ctl = &mut ctls[r];
                    ctl.vclock += backoff;
                    ctl.comm_cycles += backoff;
                }
                RankYield::Mpi { op, args } => {
                    service_mpi(
                        cfg,
                        pool,
                        ctls,
                        r as u32,
                        op,
                        args,
                        transport,
                        &mut barrier_waiters,
                        &mut allreduce,
                        &mut bcast_waiters,
                    )?;
                }
            }
        }

        if ctls.iter().all(|c| c.done.is_some()) {
            break;
        }
        if !progress {
            // A crashed rank explains the stall: fail with its
            // post-mortem instead of reporting a plain deadlock.
            if let Some((cr, step)) = ctls
                .iter()
                .enumerate()
                .find_map(|(i, rk)| rk.crashed.map(|s| (i as u32, s)))
            {
                return Err(SimError::Crash {
                    rank: cr,
                    step,
                    post_mortem: world_report(ctls, transport),
                });
            }
            return Err(SimError::Deadlock {
                report: world_report(ctls, transport),
            });
        }

        // Per-collective timeout clock: rounds spent in the current
        // blocked state. A would-be hang (e.g. a dropped message's
        // receiver while its sender spins) becomes a typed Timeout.
        rounds += 1;
        for ctl in ctls.iter_mut() {
            if ctl.blocked.is_some() {
                ctl.blocked_rounds += 1;
            } else {
                ctl.blocked_rounds = 0;
            }
        }
        if let Some(bound) = cfg.timeout_rounds {
            let over = ctls
                .iter()
                .enumerate()
                .filter(|(_, rk)| rk.blocked.is_some())
                .map(|(i, rk)| (i as u32, rk.blocked_rounds))
                .max_by_key(|&(_, w)| w)
                .filter(|&(_, w)| w > bound || rounds > bound);
            if let Some((tr, waited)) = over {
                return Err(SimError::Timeout {
                    rank: tr,
                    waited_rounds: waited.max(rounds),
                    report: world_report(ctls, transport),
                });
            }
        }
    }

    let vtime = ctls.iter().map(|c| c.vclock).max().unwrap_or(0);
    let total_cycles = ctls.iter().map(|c| c.compute_cycles).sum();
    let mut resilience = ResilienceStats::default();
    for r in 0..cfg.size {
        resilience.merge(&pool.stats(r)?);
    }
    Ok(WorldRun {
        shared_jit: SharedCacheStats::default(),
        ranks: pool.finish(ctls)?,
        vtime,
        total_cycles,
        resilience,
        restart: RestartStats::default(),
    })
}

/// Run a world cold: fresh ranks, empty transport, one attempt.
/// Equivalent to the pre-refactor `World::run` for a [`LocalPool`] over
/// an in-memory transport.
pub fn run_world(
    cfg: &RunCfg,
    pool: &mut dyn RankPool,
    transport: &mut dyn Transport,
) -> Result<WorldRun, SimError> {
    pool.reinit()?;
    transport.clear();
    let mut ctls = vec![RankCtl::default(); cfg.size as usize];
    drive(cfg, pool, &mut ctls, transport, None)
}

/// Like [`run_world`], but checkpoint every
/// [`CheckpointPolicy::every`] completed collectives and, on
/// [`SimError::Crash`] / [`SimError::Timeout`], roll every rank back
/// to the last checkpoint (cold-restart when none exists yet), reseed
/// every fault stream past its consumed cursor, and resume — up to
/// `max_restarts` times. Other errors, and restart-budget exhaustion,
/// propagate the typed error (with its last post-mortem) unchanged.
///
/// A persisted chain found at the policy's path is warm-started from —
/// unless its platform scope salt differs from `cfg.ckpt_salt`, which
/// fails fast with [`SimError::CheckpointScope`] (a foreign platform's
/// chain must be neither restored nor silently overwritten).
pub fn run_world_with_restart(
    cfg: &RunCfg,
    pool: &mut dyn RankPool,
    transport: &mut dyn Transport,
    policy: &CheckpointPolicy,
    max_restarts: u32,
) -> Result<WorldRun, SimError> {
    let mut ck = CkptState::new(policy);
    // Warm start: a killed process may have left a persisted chain
    // behind. Unreadable, corrupt, or mismatched links simply shorten
    // the chain (deepest valid ancestor); a bad base means a cold
    // start — never an error, never a panic. A *valid* chain from a
    // different platform namespace is the one hard stop.
    if let Some(path) = ck.persist.clone() {
        ck.links = crate::load_chain_files(&path);
        if let Some(found) = chain_salt(&ck.links) {
            if found != cfg.ckpt_salt {
                return Err(SimError::CheckpointScope {
                    expected: cfg.ckpt_salt,
                    found,
                });
            }
        }
    }
    let mut stats = RestartStats::default();
    let mut carried = ResilienceStats::default();
    loop {
        let attempt = stats.restarts;
        pool.prepare_resume()?;
        // Roll back to the deepest valid snapshot in the chain,
        // degrading link by link and to a cold restart at the end.
        let mut ctls = match ck.restore_latest(cfg, pool, transport) {
            Some(ctls) => ctls,
            None => {
                pool.reinit()?;
                transport.clear();
                vec![RankCtl::default(); cfg.size as usize]
            }
        };
        if attempt > 0 {
            stats.ranks_rolled_back += ctls.iter().filter(|c| c.done.is_none()).count() as u64;
            // Everything the failed attempt observed is already in
            // `carried`; zero the counters and move every stream past
            // its consumed cursor so the fault that killed the last
            // attempt is not re-drawn identically forever.
            for r in 0..cfg.size {
                pool.reseed(r, attempt)?;
            }
        }
        match drive(cfg, pool, &mut ctls, transport, Some(&mut ck)) {
            Ok(mut run) => {
                stats.checkpoints_taken = ck.taken;
                stats.delta_checkpoints = ck.deltas;
                stats.rebases = ck.rebases;
                stats.ckpt_bytes_written = ck.bytes_written;
                stats.chain_links_dropped = ck.links_dropped;
                run.resilience.merge(&carried);
                run.resilience.checkpoints_taken += ck.taken;
                run.resilience.restarts += stats.restarts;
                run.restart = stats;
                return Ok(run);
            }
            Err(err) => {
                let recoverable = matches!(err, SimError::Crash { .. } | SimError::Timeout { .. });
                if !recoverable || stats.restarts >= max_restarts as u64 {
                    return Err(err);
                }
                for r in 0..cfg.size {
                    if let Ok(s) = pool.stats(r) {
                        carried.merge(&s);
                    }
                }
                let fail_vtime = ctls.iter().map(|c| c.vclock).max().unwrap_or(0);
                let base = ck.latest_vtime.unwrap_or(0);
                stats.virtual_time_lost += fail_vtime.saturating_sub(base);
                stats.restarts += 1;
                // Adaptive cadence: each restart halves the interval
                // (floor 1), so a world that keeps crashing pays for
                // snapshots exactly when they earn their keep.
                if policy.adaptive {
                    ck.every = (ck.every / 2).max(1);
                    ck.since_last = 0;
                }
            }
        }
    }
}

/// Serialize the current world as a standalone full snapshot — a
/// single-link chain (one sealed base). Test-only: production paths go
/// through [`run_world_with_restart`]'s chain.
#[cfg(test)]
pub fn capture_world(
    cfg: &RunCfg,
    pool: &mut dyn RankPool,
    ctls: &[RankCtl],
    transport: &dyn Transport,
) -> Result<WorldCheckpoint, SimError> {
    let sections = world_sections(cfg, pool, ctls, transport)?;
    let vtime = ctls.iter().map(|c| c.vclock).max().unwrap_or(0);
    Ok(WorldCheckpoint {
        bytes: chain::base_link(&sections),
        vtime,
    })
}

/// Decode a standalone full snapshot ([`capture_world`]) back into the
/// pool + transport. Test-only.
#[cfg(test)]
pub fn restore_world(
    cfg: &RunCfg,
    pool: &mut dyn RankPool,
    transport: &mut dyn Transport,
    bytes: &[u8],
) -> Result<Vec<RankCtl>, CkptError> {
    let links = [bytes.to_vec()];
    let out = chain::resolve_prefix(&links);
    if let Some(e) = out.error {
        return Err(e);
    }
    world_from_sections(cfg, pool, transport, &out.sections)
}

/// One in-process rank: the execution half the scheduler reaches
/// through [`RankPool`].
struct LocalRank {
    thread: Thread,
    machine: Machine,
    gpu: Option<Gpu>,
    last_cycles: u64,
}

/// The in-process rank pool — every rank a resumable [`exec::Thread`]
/// with its own memory space in this process. [`World::run`] and the
/// conformance suites drive this pool; the `dist` backend substitutes
/// one OS process per rank behind the same trait.
///
/// [`World::run`]: crate::World::run
pub struct LocalPool<'p, 'a> {
    program: &'p Program,
    size: u32,
    entry: FuncId,
    make_args: ArgBuilder<'a>,
    gpu: Option<GpuConfig>,
    fault: Option<FaultConfig>,
    host: Option<&'p HostRegistry>,
    ranks: Vec<Option<LocalRank>>,
    /// Device / host-call yields parked between `run_slice` and their
    /// `service_*` call.
    pending: Vec<Option<Yield>>,
    /// OS-thread executor for batched slice execution; `None` keeps the
    /// historical in-process serial loop (the `run_slices` default).
    executor: Option<Box<dyn Executor>>,
}

impl<'p, 'a> LocalPool<'p, 'a> {
    pub fn new(
        program: &'p Program,
        size: u32,
        entry: FuncId,
        make_args: ArgBuilder<'a>,
        gpu: Option<GpuConfig>,
        fault: Option<FaultConfig>,
        host: Option<&'p HostRegistry>,
    ) -> Self {
        LocalPool {
            program,
            size,
            entry,
            make_args,
            gpu,
            fault,
            host,
            ranks: Vec::new(),
            pending: Vec::new(),
            executor: None,
        }
    }

    /// Attach an executor. [`ExecutorCfg::Sim`] keeps the serial loop
    /// (no boxed indirection on the hot path); thread configurations
    /// batch slice execution over OS workers.
    pub fn with_executor(mut self, cfg: ExecutorCfg) -> Self {
        self.executor = match cfg {
            ExecutorCfg::Sim => None,
            threads => Some(threads.build()),
        };
        self
    }

    fn rank_mut(&mut self, r: u32) -> Result<&mut LocalRank, SimError> {
        self.ranks
            .get_mut(r as usize)
            .and_then(|o| o.as_mut())
            .ok_or_else(|| SimError::World {
                message: format!("rank {r} is not live in the local pool"),
            })
    }

    /// Drain one rank into its final outcome — the per-rank half of
    /// [`RankPool::finish`]. Remote pools that own a single live rank
    /// each (the `dist` workers) call this for their own rank only.
    pub fn finish_rank(&mut self, r: u32, ctl: &RankCtl) -> Result<RankOutcome, SimError> {
        let rank = self
            .ranks
            .get_mut(r as usize)
            .and_then(|o| o.take())
            .ok_or_else(|| SimError::World {
                message: format!("rank {r} is not live in the local pool"),
            })?;
        Ok(RankOutcome {
            result: ctl.done.flatten(),
            vclock: ctl.vclock,
            compute_cycles: ctl.compute_cycles,
            comm_cycles: ctl.comm_cycles,
            output: rank.machine.output.clone(),
            gpu_time: rank.gpu.as_ref().map(|g| g.vtime).unwrap_or(0),
            machine: rank.machine,
        })
    }
}

impl RankPool for LocalPool<'_, '_> {
    fn reinit(&mut self) -> Result<(), SimError> {
        self.ranks.clear();
        self.pending = (0..self.size).map(|_| None).collect();
        for r in 0..self.size {
            let mut machine = Machine::with_globals(self.program);
            if let Some(cfg) = self.fault {
                machine.fault = Some(FaultPlan::for_rank(cfg, r));
            }
            let args = (self.make_args)(r, &mut machine)
                .map_err(|m| err_on(r, format!("building entry args: {m}")))?;
            let thread = Thread::new(self.program, self.entry, args)
                .map_err(|e| err_on(r, e.to_string()))?;
            let mut gpu = self.gpu.map(Gpu::new);
            if let (Some(g), Some(cfg)) = (gpu.as_mut(), self.fault) {
                g.set_fault(device_fault_config(cfg, r));
            }
            self.ranks.push(Some(LocalRank {
                thread,
                machine,
                gpu,
                last_cycles: 0,
            }));
        }
        Ok(())
    }

    fn run_slice(&mut self, r: u32, slice: u64) -> Result<(RankYield, u64), SimError> {
        let program = self.program;
        let (y, delta) = {
            let rank = self.rank_mut(r)?;
            let y = run(&mut rank.thread, program, &mut rank.machine, slice)
                .map_err(|e| err_on(r, e.to_string()))?;
            let delta = rank.machine.counters.cycles - rank.last_cycles;
            rank.last_cycles = rank.machine.counters.cycles;
            (y, delta)
        };
        let ry = match y {
            Yield::Done(v) => RankYield::Done(v),
            Yield::OutOfFuel => RankYield::OutOfFuel,
            Yield::Crashed { step } => RankYield::Crashed { step },
            Yield::Sync | Yield::SharedAlloc { .. } => RankYield::Misplaced,
            Yield::Mpi { op, args } => RankYield::Mpi { op, args },
            y @ (Yield::Launch { .. } | Yield::GpuMem { .. }) => {
                self.pending[r as usize] = Some(y);
                RankYield::Device
            }
            y @ Yield::Host { .. } => {
                self.pending[r as usize] = Some(y);
                RankYield::HostCall
            }
        };
        Ok((ry, delta))
    }

    fn run_slices(
        &mut self,
        ranks: &[u32],
        slice: u64,
    ) -> Result<Vec<(u32, RankYield, u64)>, SimError> {
        let Some(executor) = self.executor.as_ref() else {
            // No executor attached: the historical serial loop.
            let mut out = Vec::with_capacity(ranks.len());
            for &r in ranks {
                let (y, delta) = self.run_slice(r, slice)?;
                out.push((r, y, delta));
            }
            return Ok(out);
        };
        // Move each ready rank's execution state into a job. The device
        // and the cycle watermark stay pool-side — slices never touch
        // them (device yields are serviced after the batch).
        let mut parked: Vec<(u32, Option<Gpu>, u64)> = Vec::with_capacity(ranks.len());
        let mut jobs = Vec::with_capacity(ranks.len());
        for &r in ranks {
            let lr = self
                .ranks
                .get_mut(r as usize)
                .and_then(|o| o.take())
                .ok_or_else(|| SimError::World {
                    message: format!("rank {r} is not live in the local pool"),
                })?;
            parked.push((r, lr.gpu, lr.last_cycles));
            jobs.push(SliceJob {
                rank: r,
                thread: lr.thread,
                machine: lr.machine,
                slice,
            });
        }
        let results = executor.run_batch(self.program, jobs);
        // Reinstall every rank before surfacing any error so no state
        // is stranded, then classify yields in the executor's returned
        // (service) order.
        let mut classified = Vec::with_capacity(results.len());
        for done in results {
            let SliceDone {
                rank: r,
                thread,
                machine,
                outcome,
            } = done;
            let slot = parked
                .iter()
                .position(|(pr, _, _)| *pr == r)
                .expect("executor returned a rank it was never given");
            let (_, gpu, last_cycles) = parked.swap_remove(slot);
            let cycles = machine.counters.cycles;
            self.ranks[r as usize] = Some(LocalRank {
                thread,
                machine,
                gpu,
                last_cycles: cycles,
            });
            classified.push((r, outcome, cycles - last_cycles));
        }
        let mut out = Vec::with_capacity(classified.len());
        for (r, outcome, delta) in classified {
            let y = outcome.map_err(|e| err_on(r, e.to_string()))?;
            let ry = match y {
                Yield::Done(v) => RankYield::Done(v),
                Yield::OutOfFuel => RankYield::OutOfFuel,
                Yield::Crashed { step } => RankYield::Crashed { step },
                Yield::Sync | Yield::SharedAlloc { .. } => RankYield::Misplaced,
                Yield::Mpi { op, args } => RankYield::Mpi { op, args },
                y @ (Yield::Launch { .. } | Yield::GpuMem { .. }) => {
                    self.pending[r as usize] = Some(y);
                    RankYield::Device
                }
                y @ Yield::Host { .. } => {
                    self.pending[r as usize] = Some(y);
                    RankYield::HostCall
                }
            };
            out.push((r, ry, delta));
        }
        Ok(out)
    }

    fn resume(&mut self, r: u32, v: Val) -> Result<(), SimError> {
        self.rank_mut(r)?.thread.resume_with(v);
        Ok(())
    }

    fn service_device(&mut self, r: u32) -> Result<DeviceOutcome, SimError> {
        let y = self.pending[r as usize]
            .take()
            .ok_or_else(|| err_on(r, "no pending device yield"))?;
        let program = self.program;
        let rank = self.rank_mut(r)?;
        service_device_yield(
            program,
            &mut rank.thread,
            &mut rank.machine,
            &mut rank.gpu,
            r,
            y,
        )
    }

    fn service_host(&mut self, r: u32) -> Result<u64, SimError> {
        let y = self.pending[r as usize]
            .take()
            .ok_or_else(|| err_on(r, "no pending host yield"))?;
        let Yield::Host { host, args } = y else {
            return Err(err_on(r, "host service on a non-host yield"));
        };
        let program = self.program;
        let registry = self.host;
        let rank = self.rank_mut(r)?;
        service_host_yield(
            program,
            registry,
            &mut rank.thread,
            &mut rank.machine,
            r,
            host,
            args,
        )
    }

    fn read_floats(
        &mut self,
        r: u32,
        buf: u32,
        off: usize,
        count: usize,
    ) -> Result<Vec<f32>, SimError> {
        let program = self.program;
        let rank = self.rank_mut(r)?;
        let loc = yield_location(program, &rank.thread);
        read_floats(&rank.machine, buf, off, count).map_err(|m| err_on(r, locate(m, &loc)))
    }

    fn write_floats(
        &mut self,
        r: u32,
        buf: u32,
        off: usize,
        payload: &[f32],
    ) -> Result<(), SimError> {
        let program = self.program;
        let rank = self.rank_mut(r)?;
        let loc = yield_location(program, &rank.thread);
        write_floats(&mut rank.machine, buf, off, payload).map_err(|m| err_on(r, locate(m, &loc)))
    }

    fn location(&mut self, r: u32) -> Option<(String, u32)> {
        self.ranks
            .get(r as usize)
            .and_then(|o| o.as_ref())
            .and_then(|rk| yield_location(self.program, &rk.thread))
    }

    fn has_fault_plan(&self, r: u32) -> bool {
        self.ranks
            .get(r as usize)
            .and_then(|o| o.as_ref())
            .is_some_and(|rk| rk.machine.fault.is_some())
    }

    fn message_fault(&mut self, r: u32) -> Result<MsgFault, SimError> {
        Ok(self
            .rank_mut(r)?
            .machine
            .fault
            .as_mut()
            .map(|p| p.message_fault())
            .unwrap_or(MsgFault::None))
    }

    fn collective_fault(&mut self, r: u32) -> Result<MsgFault, SimError> {
        Ok(self
            .rank_mut(r)?
            .machine
            .fault
            .as_mut()
            .map(|p| p.collective_fault())
            .unwrap_or(MsgFault::None))
    }

    fn transport_fault(&mut self, r: u32) -> Result<TransportFault, SimError> {
        Ok(self
            .rank_mut(r)?
            .machine
            .fault
            .as_mut()
            .map(|p| p.transport_fault())
            .unwrap_or(TransportFault::None))
    }

    fn connect_delay(&mut self, r: u32) -> Result<u64, SimError> {
        let rank = self.rank_mut(r)?;
        let Some(plan) = rank.machine.fault.as_mut() else {
            return Ok(0);
        };
        let mut attempt: u32 = 0;
        let mut total: u64 = 0;
        while plan.connect_refused() {
            attempt += 1;
            if attempt >= MAX_CONNECT_RETRIES {
                return Err(err_on(
                    r,
                    format!(
                        "transport connect refused {attempt} times \
                         (injected refusals, retry budget exhausted)"
                    ),
                ));
            }
            total += plan.backoff_cycles(attempt);
        }
        Ok(total)
    }

    fn ckpt_write_fails(&mut self, r: u32) -> Result<bool, SimError> {
        Ok(self
            .rank_mut(r)?
            .machine
            .fault
            .as_mut()
            .is_some_and(|p| p.ckpt_write_fails()))
    }

    fn capture_rank(&mut self, r: u32) -> Result<RankSnapshot, SimError> {
        let rank = self.rank_mut(r)?;
        let mut sections = Vec::new();
        let mut t = Writer::new();
        ckpt::write_thread(&mut t, &rank.thread);
        sections.push(t.into_bytes());
        sections.extend(ckpt::machine_array_sections(&rank.machine));
        let mut m = Writer::new();
        ckpt::write_machine_rest(&mut m, &rank.machine);
        sections.push(m.into_bytes());
        if let Some(gpu) = &rank.gpu {
            let mut g = Writer::new();
            ckpt::write_machine(&mut g, &gpu.machine);
            g.u64(gpu.vtime);
            g.u64(gpu.allocated_bytes);
            sections.push(g.into_bytes());
        }
        Ok(RankSnapshot {
            last_cycles: rank.last_cycles,
            has_gpu: rank.gpu.is_some(),
            sections,
        })
    }

    fn restore_rank(
        &mut self,
        r: u32,
        last_cycles: u64,
        has_gpu: bool,
        n_arrays: usize,
        sections: &[Vec<u8>],
    ) -> Result<(), CkptError> {
        fn bad(message: impl Into<String>) -> CkptError {
            CkptError::Corrupt {
                offset: 0,
                message: message.into(),
            }
        }
        let mut it = sections.iter();
        let mut section = |what: &str| {
            it.next()
                .ok_or_else(|| bad(format!("missing {what} section of rank {r}")))
        };
        let mut t = Reader::new(section("thread")?);
        let thread = ckpt::read_thread(&mut t, self.program)?;
        let mut arrays = Vec::with_capacity(n_arrays);
        for i in 0..n_arrays {
            let mut a = Reader::new(section(&format!("array {i}"))?);
            arrays.push(ckpt::read_arr(&mut a)?);
        }
        let mut m = Reader::new(section("machine")?);
        let machine = ckpt::read_machine_rest(&mut m, arrays)?;
        // Fault plans are restored with their exact PRNG cursors;
        // device-side plans are re-armed from the world's fault config
        // (their cursors advance via `Gpu::reseed_faults` on restart
        // instead).
        let gpu = if has_gpu {
            let Some(cfg) = self.gpu else {
                return Err(bad("checkpoint has device state but this world has no GPU"));
            };
            let mut gr = Reader::new(section("device")?);
            let mut g = Gpu::new(cfg);
            g.machine = ckpt::read_machine(&mut gr)?;
            g.vtime = gr.u64()?;
            g.allocated_bytes = gr.u64()?;
            if let Some(fault) = self.fault {
                g.set_fault(device_fault_config(fault, r));
            }
            Some(g)
        } else {
            None
        };
        if (r as usize) >= self.ranks.len() {
            self.ranks.resize_with(self.size as usize, || None);
        }
        if (r as usize) >= self.pending.len() {
            self.pending.resize_with(self.size as usize, || None);
        }
        self.pending[r as usize] = None;
        self.ranks[r as usize] = Some(LocalRank {
            thread,
            machine,
            gpu,
            last_cycles,
        });
        Ok(())
    }

    fn reseed(&mut self, r: u32, attempt: u64) -> Result<(), SimError> {
        let rank = self.rank_mut(r)?;
        if let Some(plan) = rank.machine.fault.as_mut() {
            plan.stats = ResilienceStats::default();
            plan.reseed(attempt);
        }
        if let Some(gpu) = rank.gpu.as_mut() {
            gpu.reseed_faults(attempt);
        }
        Ok(())
    }

    fn stats(&mut self, r: u32) -> Result<ResilienceStats, SimError> {
        let mut s = ResilienceStats::default();
        if let Some(rank) = self.ranks.get(r as usize).and_then(|o| o.as_ref()) {
            if let Some(plan) = &rank.machine.fault {
                s.merge(&plan.stats);
            }
            if let Some(gpu) = &rank.gpu {
                s.merge(&gpu.fault_stats());
            }
        }
        Ok(s)
    }

    fn finish(&mut self, ctls: &[RankCtl]) -> Result<Vec<RankOutcome>, SimError> {
        let mut out = Vec::with_capacity(ctls.len());
        for (r, ctl) in ctls.iter().enumerate() {
            out.push(self.finish_rank(r as u32, ctl)?);
        }
        Ok(out)
    }
}
