//! Rank-0-owned shared JIT artifact cache — the cross-rank half of the
//! two-tier artifact store.
//!
//! A production MPI job compiles a kernel once (on rank 0, or on one rank
//! per node) and broadcasts the compiled object; every other rank loads
//! the bytes instead of invoking the compiler. This module models that
//! pattern for WootinJ worlds whose ranks compose their object graphs
//! independently: identical specialization keys must translate **once
//! per world**, not once per rank.
//!
//! The cache itself is deliberately simulator-shaped: a map from the
//! cross-process key fingerprint (`CacheKey::fingerprint()` — stable
//! across processes, so also across simulated ranks) to the sealed
//! artifact bytes a real job would put on the wire. The `wootinj` facade
//! drives it from `jit4mpi`: rank 0 translates a missing key and
//! [`publish`](SharedCache::publish)es the encoded artifact; every other
//! rank [`lookup`](SharedCache::lookup)s the bytes and decodes — no
//! translator or NIR-optimizer work anywhere but rank 0.
//!
//! With [`SharedCache::persistent`], published artifacts also land on
//! disk as `<fingerprint>.wjar` files (the same sealed encoding the JIT
//! disk store writes), and a *fresh* cache in a *fresh* process reloads
//! them on lookup. Pointed at the JIT disk-cache directory, this puts the
//! broadcast artifacts beside the `.wckpt` world checkpoints, so a killed
//! job warm-restarts fully warm: no rank translates, and the world
//! resumes from its last persisted checkpoint.

use std::collections::HashMap;
use std::path::PathBuf;

/// Per-world translate-once counters, surfaced on
/// [`WorldRun`](crate::WorldRun) so scalability experiments can assert
/// the broadcast pattern held.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Cold translations performed against this cache (exactly one per
    /// distinct key, regardless of world size).
    pub translations: u64,
    /// Artifact decodes served from broadcast bytes instead of
    /// translating (≥ `world size − 1` per key in a fanned-out world).
    pub broadcast_decodes: u64,
    /// Total artifact bytes "on the wire" (encoded size × receiving
    /// ranks) — what a real job's broadcast would move.
    pub broadcast_bytes: u64,
    /// Entries reloaded from a persistent directory by a fresh cache —
    /// each one is a translation a process warm-restart did *not* redo.
    pub disk_loads: u64,
}

impl SharedCacheStats {
    pub fn merge(&mut self, other: &SharedCacheStats) {
        self.translations += other.translations;
        self.broadcast_decodes += other.broadcast_decodes;
        self.broadcast_bytes += other.broadcast_bytes;
        self.disk_loads += other.disk_loads;
    }
}

/// A rank-0-owned map from key fingerprint to sealed artifact bytes.
/// Outlives any single world (pass `&mut` to every `jit4mpi` call that
/// should share), mirroring a job-lifetime broadcast cache.
#[derive(Debug, Default)]
pub struct SharedCache {
    entries: HashMap<String, Vec<u8>>,
    stats: SharedCacheStats,
    /// When set, published artifacts persist here as `<fp>.wjar` and
    /// lookups fall back to the directory on a memory miss.
    persist_dir: Option<PathBuf>,
}

impl SharedCache {
    pub fn new() -> Self {
        SharedCache::default()
    }

    /// A cache that persists published artifacts under `dir` and reloads
    /// them across processes. Point it at the JIT disk-cache directory to
    /// keep broadcast artifacts beside the `.wckpt` world checkpoints.
    pub fn persistent(dir: impl Into<PathBuf>) -> std::io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(SharedCache {
            persist_dir: Some(dir),
            ..SharedCache::default()
        })
    }

    /// The persistence directory, when this cache has one.
    pub fn persist_dir(&self) -> Option<&std::path::Path> {
        self.persist_dir.as_deref()
    }

    /// The sealed artifact for `fingerprint`, if some world already
    /// translated it — in this process, or (for a persistent cache) in a
    /// previous one. Disk reloads are byte-level; the caller's decode
    /// gate rejects corruption exactly as it does for broadcast bytes.
    pub fn lookup(&mut self, fingerprint: &str) -> Option<&[u8]> {
        if !self.entries.contains_key(fingerprint) {
            if let Some(dir) = &self.persist_dir {
                if let Ok(bytes) = std::fs::read(dir.join(format!("{fingerprint}.wjar"))) {
                    self.stats.disk_loads += 1;
                    self.entries.insert(fingerprint.to_string(), bytes);
                }
            }
        }
        self.entries.get(fingerprint).map(Vec::as_slice)
    }

    /// Store the encoded artifact rank 0 just translated. Counts one
    /// translation; later worlds (any size) hit [`Self::lookup`] instead.
    /// Persistent caches also write the artifact to disk (temp-then-
    /// rename, best-effort: IO failure only costs cross-process reuse).
    pub fn publish(&mut self, fingerprint: impl Into<String>, artifact: Vec<u8>) {
        let fingerprint = fingerprint.into();
        self.stats.translations += 1;
        if let Some(dir) = &self.persist_dir {
            let path = dir.join(format!("{fingerprint}.wjar"));
            if !path.exists() {
                // PID separates processes sharing the cache dir; the
                // process-wide counter separates threads within one.
                static TMP_UNIQ: std::sync::atomic::AtomicU64 =
                    std::sync::atomic::AtomicU64::new(0);
                let uniq = TMP_UNIQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let tmp = dir.join(format!(
                    ".tmp-shared-{}-{uniq}-{fingerprint}",
                    std::process::id()
                ));
                if std::fs::write(&tmp, &artifact).is_ok() && std::fs::rename(&tmp, &path).is_err()
                {
                    let _ = std::fs::remove_file(&tmp);
                }
            }
        }
        self.entries.insert(fingerprint, artifact);
    }

    /// Record that `ranks` ranks decoded `bytes_each` broadcast bytes
    /// instead of translating.
    pub fn record_broadcast(&mut self, ranks: u64, bytes_each: u64) {
        self.stats.broadcast_decodes += ranks;
        self.stats.broadcast_bytes += ranks * bytes_each;
    }

    pub fn stats(&self) -> SharedCacheStats {
        self.stats
    }

    /// Distinct keys resident in memory.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_then_lookup_counts_one_translation() {
        let mut c = SharedCache::new();
        assert!(c.lookup("wj01-abc").is_none());
        c.publish("wj01-abc", vec![1, 2, 3]);
        assert_eq!(c.lookup("wj01-abc"), Some(&[1u8, 2, 3][..]));
        c.record_broadcast(7, 3);
        let s = c.stats();
        assert_eq!(s.translations, 1);
        assert_eq!(s.broadcast_decodes, 7);
        assert_eq!(s.broadcast_bytes, 21);
        assert_eq!(s.disk_loads, 0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = SharedCacheStats {
            translations: 1,
            broadcast_decodes: 3,
            broadcast_bytes: 300,
            disk_loads: 2,
        };
        a.merge(&SharedCacheStats {
            translations: 2,
            broadcast_decodes: 5,
            broadcast_bytes: 11,
            disk_loads: 1,
        });
        assert_eq!(a.translations, 3);
        assert_eq!(a.broadcast_decodes, 8);
        assert_eq!(a.broadcast_bytes, 311);
        assert_eq!(a.disk_loads, 3);
    }

    #[test]
    fn persistent_cache_reloads_across_instances() {
        let dir = std::env::temp_dir().join(format!("wj-shared-persist-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();

        let mut a = SharedCache::persistent(&dir).unwrap();
        a.publish("wj01-feed", vec![9, 8, 7]);

        // A fresh cache (fresh "process") sees the artifact on lookup.
        let mut b = SharedCache::persistent(&dir).unwrap();
        assert!(b.is_empty());
        assert_eq!(b.lookup("wj01-feed"), Some(&[9u8, 8, 7][..]));
        assert_eq!(b.stats().disk_loads, 1);
        assert_eq!(b.stats().translations, 0, "reload is not a translation");
        // Unknown keys still miss.
        assert!(b.lookup("wj01-none").is_none());

        std::fs::remove_dir_all(&dir).ok();
    }
}
