//! Rank-0-owned shared JIT artifact cache — the cross-rank half of the
//! two-tier artifact store.
//!
//! A production MPI job compiles a kernel once (on rank 0, or on one rank
//! per node) and broadcasts the compiled object; every other rank loads
//! the bytes instead of invoking the compiler. This module models that
//! pattern for WootinJ worlds whose ranks compose their object graphs
//! independently: identical specialization keys must translate **once
//! per world**, not once per rank.
//!
//! The cache itself is deliberately simulator-shaped: a map from the
//! cross-process key fingerprint (`CacheKey::fingerprint()` — stable
//! across processes, so also across simulated ranks) to the sealed
//! artifact bytes a real job would put on the wire. The `wootinj` facade
//! drives it from `jit4mpi`: rank 0 translates a missing key and
//! [`publish`](SharedCache::publish)es the encoded artifact; every other
//! rank [`lookup`](SharedCache::lookup)s the bytes and decodes — no
//! translator or NIR-optimizer work anywhere but rank 0.

use std::collections::HashMap;

/// Per-world translate-once counters, surfaced on
/// [`WorldRun`](crate::WorldRun) so scalability experiments can assert
/// the broadcast pattern held.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SharedCacheStats {
    /// Cold translations performed against this cache (exactly one per
    /// distinct key, regardless of world size).
    pub translations: u64,
    /// Artifact decodes served from broadcast bytes instead of
    /// translating (≥ `world size − 1` per key in a fanned-out world).
    pub broadcast_decodes: u64,
    /// Total artifact bytes "on the wire" (encoded size × receiving
    /// ranks) — what a real job's broadcast would move.
    pub broadcast_bytes: u64,
}

impl SharedCacheStats {
    pub fn merge(&mut self, other: &SharedCacheStats) {
        self.translations += other.translations;
        self.broadcast_decodes += other.broadcast_decodes;
        self.broadcast_bytes += other.broadcast_bytes;
    }
}

/// A rank-0-owned map from key fingerprint to sealed artifact bytes.
/// Outlives any single world (pass `&mut` to every `jit4mpi` call that
/// should share), mirroring a job-lifetime broadcast cache.
#[derive(Debug, Default)]
pub struct SharedCache {
    entries: HashMap<String, Vec<u8>>,
    stats: SharedCacheStats,
}

impl SharedCache {
    pub fn new() -> Self {
        SharedCache::default()
    }

    /// The sealed artifact for `fingerprint`, if some world already
    /// translated it.
    pub fn lookup(&self, fingerprint: &str) -> Option<&[u8]> {
        self.entries.get(fingerprint).map(Vec::as_slice)
    }

    /// Store the encoded artifact rank 0 just translated. Counts one
    /// translation; later worlds (any size) hit [`Self::lookup`] instead.
    pub fn publish(&mut self, fingerprint: impl Into<String>, artifact: Vec<u8>) {
        self.stats.translations += 1;
        self.entries.insert(fingerprint.into(), artifact);
    }

    /// Record that `ranks` ranks decoded `bytes_each` broadcast bytes
    /// instead of translating.
    pub fn record_broadcast(&mut self, ranks: u64, bytes_each: u64) {
        self.stats.broadcast_decodes += ranks;
        self.stats.broadcast_bytes += ranks * bytes_each;
    }

    pub fn stats(&self) -> SharedCacheStats {
        self.stats
    }

    /// Distinct keys translated so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_then_lookup_counts_one_translation() {
        let mut c = SharedCache::new();
        assert!(c.lookup("wj01-abc").is_none());
        c.publish("wj01-abc", vec![1, 2, 3]);
        assert_eq!(c.lookup("wj01-abc"), Some(&[1u8, 2, 3][..]));
        c.record_broadcast(7, 3);
        let s = c.stats();
        assert_eq!(s.translations, 1);
        assert_eq!(s.broadcast_decodes, 7);
        assert_eq!(s.broadcast_bytes, 21);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = SharedCacheStats {
            translations: 1,
            broadcast_decodes: 3,
            broadcast_bytes: 300,
        };
        a.merge(&SharedCacheStats {
            translations: 2,
            broadcast_decodes: 5,
            broadcast_bytes: 11,
        });
        assert_eq!(a.translations, 3);
        assert_eq!(a.broadcast_decodes, 8);
        assert_eq!(a.broadcast_bytes, 311);
    }
}
