//! # transport — the message-delivery seam under the rank runtime
//!
//! The scheduler in [`crate::runtime`] never touches a queue or a socket
//! directly: every point-to-point message goes through the [`Transport`]
//! trait. [`InMemTransport`] re-expresses the historical deterministic
//! in-memory queues behind that seam (bit-identical to the pre-refactor
//! `mpi-sim`, including the sorted-key checkpoint byte layout), and the
//! `dist` backend layers the same hub over per-rank loopback TCP links.
//!
//! The bottom half of this module is the wire framing shared by every
//! socket-backed component: length-prefixed frames carrying a magic, a
//! wire version, and a trailing checksum, in the same
//! versioned-checksummed idiom as `nir::codec`. Every failure mode —
//! short read, bad magic, version skew, checksum mismatch, timeout,
//! peer death — is a typed [`TransportError`], never a panic and never
//! an unbounded wait (socket reads are expected to carry OS timeouts).

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};

use exec::ckpt::chain::digest64;
use exec::ckpt::CkptError;
use nir::codec::{Reader, Writer};

/// Leading magic of every transport frame.
pub const FRAME_MAGIC: [u8; 4] = *b"WFR1";
/// Wire protocol version; bump on any frame-layout change. A peer
/// speaking another version is rejected typed ([`TransportError::
/// VersionSkew`]), never mis-decoded.
pub const WIRE_VERSION: u8 = 1;
/// Upper bound on a single frame payload. A corrupt length prefix must
/// produce a typed error, not an attempted multi-gigabyte allocation.
pub const MAX_FRAME_LEN: u64 = 256 << 20;
/// Frame header size: magic + version + u64 payload length.
const FRAME_HEADER_LEN: usize = 4 + 1 + 8;

/// Typed transport failure. Carried inside `SimError`/`CkptError` by the
/// rank runtime so a dead or misbehaving peer is always a classifiable
/// outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransportError {
    /// Underlying socket/stream I/O failed.
    Io { op: &'static str, message: String },
    /// The stream ended mid-frame (peer died or the frame was cut).
    Truncated { wanted: usize, got: usize },
    /// The frame did not start with [`FRAME_MAGIC`].
    BadMagic { found: [u8; 4] },
    /// The peer speaks a different wire version.
    VersionSkew { found: u8, expected: u8 },
    /// Checksum mismatch or malformed payload.
    Corrupt { message: String },
    /// A read or connect exceeded its bounded timeout.
    Timeout { op: &'static str },
    /// The peer closed the connection cleanly where a frame was expected.
    Disconnected,
    /// The peer refused the connection or the handshake.
    Refused { message: String },
}

impl std::fmt::Display for TransportError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TransportError::Io { op, message } => write!(f, "transport I/O during {op}: {message}"),
            TransportError::Truncated { wanted, got } => {
                write!(
                    f,
                    "transport frame truncated: wanted {wanted} bytes, got {got}"
                )
            }
            TransportError::BadMagic { found } => {
                write!(f, "transport frame has bad magic {found:02x?}")
            }
            TransportError::VersionSkew { found, expected } => write!(
                f,
                "transport wire version skew: peer speaks v{found}, this side v{expected}"
            ),
            TransportError::Corrupt { message } => write!(f, "transport frame corrupt: {message}"),
            TransportError::Timeout { op } => write!(f, "transport timeout during {op}"),
            TransportError::Disconnected => write!(f, "transport peer disconnected"),
            TransportError::Refused { message } => write!(f, "transport refused: {message}"),
        }
    }
}

impl std::error::Error for TransportError {}

fn io_error(op: &'static str, e: std::io::Error) -> TransportError {
    use std::io::ErrorKind;
    match e.kind() {
        ErrorKind::WouldBlock | ErrorKind::TimedOut => TransportError::Timeout { op },
        ErrorKind::UnexpectedEof
        | ErrorKind::ConnectionReset
        | ErrorKind::ConnectionAborted
        | ErrorKind::BrokenPipe => TransportError::Disconnected,
        ErrorKind::ConnectionRefused => TransportError::Refused {
            message: e.to_string(),
        },
        _ => TransportError::Io {
            op,
            message: e.to_string(),
        },
    }
}

/// Write one framed payload: magic, version, little-endian length,
/// payload bytes, trailing [`digest64`] checksum.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), TransportError> {
    let mut head = [0u8; FRAME_HEADER_LEN];
    head[..4].copy_from_slice(&FRAME_MAGIC);
    head[4] = WIRE_VERSION;
    head[5..].copy_from_slice(&(payload.len() as u64).to_le_bytes());
    w.write_all(&head)
        .map_err(|e| io_error("frame header write", e))?;
    w.write_all(payload)
        .map_err(|e| io_error("frame payload write", e))?;
    w.write_all(&digest64(payload).to_le_bytes())
        .map_err(|e| io_error("frame checksum write", e))?;
    w.flush().map_err(|e| io_error("frame flush", e))?;
    Ok(())
}

/// Best-effort `read_exact` that reports how much arrived, so a peer
/// dying mid-frame is a typed [`TransportError::Truncated`] /
/// [`TransportError::Disconnected`], never a hang (the stream's own
/// read timeout bounds each step).
fn read_exact_counted(
    r: &mut impl Read,
    buf: &mut [u8],
    op: &'static str,
) -> Result<(), TransportError> {
    let mut got = 0usize;
    while got < buf.len() {
        match r.read(&mut buf[got..]) {
            Ok(0) => {
                if got == 0 {
                    return Err(TransportError::Disconnected);
                }
                return Err(TransportError::Truncated {
                    wanted: buf.len(),
                    got,
                });
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(io_error(op, e)),
        }
    }
    Ok(())
}

/// Read one framed payload written by [`write_frame`], validating magic,
/// version, length bound, and checksum. Every malformed input is a typed
/// error.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, TransportError> {
    let mut head = [0u8; FRAME_HEADER_LEN];
    read_exact_counted(r, &mut head, "frame header read")?;
    if head[..4] != FRAME_MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(&head[..4]);
        return Err(TransportError::BadMagic { found });
    }
    if head[4] != WIRE_VERSION {
        return Err(TransportError::VersionSkew {
            found: head[4],
            expected: WIRE_VERSION,
        });
    }
    let len = u64::from_le_bytes(head[5..].try_into().expect("8 header bytes"));
    if len > MAX_FRAME_LEN {
        return Err(TransportError::Corrupt {
            message: format!("frame length {len} exceeds the {MAX_FRAME_LEN}-byte bound"),
        });
    }
    let mut payload = vec![0u8; len as usize];
    read_exact_counted(r, &mut payload, "frame payload read")?;
    let mut sum = [0u8; 8];
    read_exact_counted(r, &mut sum, "frame checksum read")?;
    let found = u64::from_le_bytes(sum);
    let expect = digest64(&payload);
    if found != expect {
        return Err(TransportError::Corrupt {
            message: format!(
                "frame checksum mismatch: stored {found:#018x}, computed {expect:#018x}"
            ),
        });
    }
    Ok(payload)
}

/// (from, to, tag) -> FIFO of (payload, available_at) — the historical
/// in-memory queue shape, now owned by [`InMemTransport`].
pub type MsgQueues = HashMap<(u32, u32, i32), VecDeque<(Vec<f32>, u64)>>;

/// The message-delivery fabric under the rank runtime. Implementations
/// must be deterministic: the same sequence of posts and receives yields
/// the same deliveries and the same [`Transport::snapshot`] bytes —
/// checkpoint bit-identity across backends depends on it.
pub trait Transport {
    /// Enqueue a point-to-point message available to the receiver from
    /// virtual time `avail_at`.
    fn post(&mut self, from: u32, to: u32, tag: i32, payload: Vec<f32>, avail_at: u64);
    /// Pop the next matching message, if any.
    fn try_recv(&mut self, to: u32, from: u32, tag: i32) -> Option<(Vec<f32>, u64)>;
    /// Messages currently queued on one (from, to, tag) edge.
    fn queued(&self, from: u32, to: u32, tag: i32) -> usize;
    /// Messages queued toward `to` across all edges (post-mortems).
    fn inbound_total(&self, to: u32) -> usize;
    /// Serialize all in-flight messages as one checkpoint section, in a
    /// deterministic (sorted-key) order.
    fn snapshot(&self) -> Vec<u8>;
    /// Replace in-flight state from a [`Transport::snapshot`] section.
    fn restore(&mut self, bytes: &[u8]) -> Result<(), CkptError>;
    /// Drop every in-flight message (cold starts discard the fabric).
    fn clear(&mut self);
}

/// The deterministic in-memory delivery fabric — the pre-refactor
/// `mpi-sim` queues re-expressed behind [`Transport`]. Also the hub the
/// `dist` backend's coordinator runs; worker payloads cross the sockets
/// on the rank protocol and meet here for matching.
#[derive(Debug, Default)]
pub struct InMemTransport {
    queues: MsgQueues,
}

impl InMemTransport {
    pub fn new() -> Self {
        InMemTransport::default()
    }
}

impl Transport for InMemTransport {
    fn post(&mut self, from: u32, to: u32, tag: i32, payload: Vec<f32>, avail_at: u64) {
        self.queues
            .entry((from, to, tag))
            .or_default()
            .push_back((payload, avail_at));
    }

    fn try_recv(&mut self, to: u32, from: u32, tag: i32) -> Option<(Vec<f32>, u64)> {
        self.queues
            .get_mut(&(from, to, tag))
            .and_then(|q| q.pop_front())
    }

    fn queued(&self, from: u32, to: u32, tag: i32) -> usize {
        self.queues.get(&(from, to, tag)).map_or(0, |q| q.len())
    }

    fn inbound_total(&self, to: u32) -> usize {
        self.queues
            .iter()
            .filter(|(&(_, t, _), _)| t == to)
            .map(|(_, q)| q.len())
            .sum()
    }

    fn snapshot(&self) -> Vec<u8> {
        // HashMap iteration order is nondeterministic — sort the keys so
        // identical worlds produce bit-identical checkpoints.
        let mut msgs = Writer::new();
        let mut keys: Vec<&(u32, u32, i32)> = self.queues.keys().collect();
        keys.sort();
        msgs.len(keys.len());
        for key in keys {
            let q = &self.queues[key];
            msgs.u32(key.0);
            msgs.u32(key.1);
            msgs.i32(key.2);
            msgs.len(q.len());
            for (payload, avail_at) in q {
                msgs.len(payload.len());
                for &f in payload {
                    msgs.f32(f);
                }
                msgs.u64(*avail_at);
            }
        }
        msgs.into_bytes()
    }

    fn restore(&mut self, bytes: &[u8]) -> Result<(), CkptError> {
        let mut r = Reader::new(bytes);
        let mut queues: MsgQueues = HashMap::new();
        let n_queues = r.len()?;
        for _ in 0..n_queues {
            let from = r.u32()?;
            let to = r.u32()?;
            let tag = r.i32()?;
            let n_msgs = r.len()?;
            let mut q = VecDeque::with_capacity(n_msgs);
            for _ in 0..n_msgs {
                let n_floats = r.len()?;
                let mut payload = Vec::with_capacity(n_floats);
                for _ in 0..n_floats {
                    payload.push(r.f32()?);
                }
                let avail_at = r.u64()?;
                q.push_back((payload, avail_at));
            }
            queues.insert((from, to, tag), q);
        }
        if !r.is_at_end() {
            return Err(CkptError::Corrupt {
                offset: r.offset(),
                message: "trailing bytes after message queues".into(),
            });
        }
        self.queues = queues;
        Ok(())
    }

    fn clear(&mut self) {
        self.queues.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_round_trip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello ranks").unwrap();
        write_frame(&mut wire, &[]).unwrap();
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"hello ranks");
        assert_eq!(read_frame(&mut r).unwrap(), Vec::<u8>::new());
        // Clean end-of-stream where a frame would start is a typed
        // disconnect, not a hang or a panic.
        assert_eq!(
            read_frame(&mut r).unwrap_err(),
            TransportError::Disconnected
        );
    }

    #[test]
    fn version_skew_is_typed() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        wire[4] = WIRE_VERSION + 7;
        let err = read_frame(&mut &wire[..]).unwrap_err();
        assert_eq!(
            err,
            TransportError::VersionSkew {
                found: WIRE_VERSION + 7,
                expected: WIRE_VERSION
            }
        );
    }

    #[test]
    fn bad_magic_is_typed() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"payload").unwrap();
        wire[0] ^= 0xFF;
        assert!(matches!(
            read_frame(&mut &wire[..]).unwrap_err(),
            TransportError::BadMagic { .. }
        ));
    }

    #[test]
    fn corrupt_payload_and_oversized_length_are_typed() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"sensitive floats").unwrap();
        let mut flipped = wire.clone();
        flipped[FRAME_HEADER_LEN + 3] ^= 0x40; // payload bit
        assert!(matches!(
            read_frame(&mut &flipped[..]).unwrap_err(),
            TransportError::Corrupt { .. }
        ));
        let mut huge = wire.clone();
        huge[5..13].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &huge[..]).unwrap_err(),
            TransportError::Corrupt { .. }
        ));
    }

    #[test]
    fn truncation_at_every_cut_is_typed_never_a_panic() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"0123456789abcdef").unwrap();
        for cut in 0..wire.len() {
            let err = read_frame(&mut &wire[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    TransportError::Truncated { .. } | TransportError::Disconnected
                ),
                "cut {cut}: {err}"
            );
        }
    }

    #[test]
    fn inmem_transport_matches_queue_semantics() {
        let mut t = InMemTransport::new();
        t.post(0, 1, 7, vec![1.0, 2.0], 10);
        t.post(0, 1, 7, vec![3.0], 20);
        t.post(2, 1, 7, vec![9.0], 5);
        assert_eq!(t.queued(0, 1, 7), 2);
        assert_eq!(t.inbound_total(1), 3);
        assert_eq!(t.try_recv(1, 0, 7), Some((vec![1.0, 2.0], 10)));
        assert_eq!(t.try_recv(1, 0, 7), Some((vec![3.0], 20)));
        assert_eq!(t.try_recv(1, 0, 7), None);
        assert_eq!(t.try_recv(1, 2, 7), Some((vec![9.0], 5)));
    }

    #[test]
    fn inmem_snapshot_restore_is_bit_identical_and_rejects_garbage() {
        let mut t = InMemTransport::new();
        t.post(3, 0, -1, vec![0.5; 9], 123);
        t.post(0, 3, 2, vec![], 0);
        t.post(1, 2, 0, vec![f32::NAN], 7);
        let snap = t.snapshot();
        let mut u = InMemTransport::new();
        u.restore(&snap).unwrap();
        assert_eq!(u.snapshot(), snap);
        let mut v = InMemTransport::new();
        for cut in 0..snap.len() {
            assert!(v.restore(&snap[..cut]).is_err(), "cut {cut} must be typed");
        }
    }
}
