//! Additional front-end coverage: precedence, associativity, scoping,
//! generics corner cases, and diagnostic quality.

use jlang::{compile_str, SourceSet};

fn ok(src: &str) {
    if let Err(ds) = compile_str(src) {
        panic!("expected success:\n{}", jlang::render_diags(&ds));
    }
}

fn err_containing(src: &str, needle: &str) {
    match compile_str(src) {
        Ok(_) => panic!("expected error containing {needle:?}"),
        Err(ds) => {
            let all = jlang::render_diags(&ds);
            assert!(all.contains(needle), "missing {needle:?} in:\n{all}");
        }
    }
}

#[test]
fn arithmetic_precedence_is_java() {
    // 2 + 3 * 4 - 10 / 5 == 12; (2+3)*4 == 20; shifts bind looser than +.
    ok("class A { static boolean m() { return 2 + 3 * 4 - 10 / 5 == 12; } }");
    ok("class A { static boolean m() { return (2 + 3) * 4 == 20; } }");
    ok("class A { static boolean m() { return (1 << 2 + 1) == 8; } }");
}

#[test]
fn logical_precedence() {
    // && binds tighter than ||.
    ok("class A { static boolean m(boolean a, boolean b, boolean c) { return a || b && c; } }");
    // comparison binds tighter than &&.
    ok("class A { static boolean m(int x) { return x > 0 && x < 10; } }");
}

#[test]
fn unary_minus_and_not_nest() {
    ok("class A { static int m(int x) { return - - x; } static boolean n(boolean b) { return ! !b; } }");
}

#[test]
fn deeply_nested_expressions_parse_up_to_the_guard() {
    let mut e = "1".to_string();
    for _ in 0..32 {
        e = format!("({e} + 1)");
    }
    ok(&format!("class A {{ static int m() {{ return {e}; }} }}"));
}

#[test]
fn pathological_nesting_errors_instead_of_crashing() {
    let mut e = "1".to_string();
    for _ in 0..500 {
        e = format!("({e} + 1)");
    }
    err_containing(
        &format!("class A {{ static int m() {{ return {e}; }} }}"),
        "nested deeper",
    );
}

#[test]
fn nested_blocks_and_shadowing_rules() {
    // Inner blocks may declare new locals; same-scope duplicates are errors.
    ok("class A { static int m() { int x = 1; { int y = 2; x += y; } { int y = 3; x += y; } return x; } }");
    err_containing(
        "class A { static int m() { int x = 1; int x = 2; return x; } }",
        "duplicate local",
    );
}

#[test]
fn for_loop_scoping() {
    // The induction variable is scoped to the loop; reuse afterwards is fine.
    ok("class A { static int m() { int s = 0; for (int i = 0; i < 3; i++) { s += i; } for (int i = 0; i < 3; i++) { s += i; } return s; } }");
}

#[test]
fn else_if_chains() {
    ok("class A { static int m(int x) { if (x > 2) { return 3; } else if (x > 1) { return 2; } else if (x > 0) { return 1; } else { return 0; } } }");
}

#[test]
fn comments_everywhere() {
    ok("class /* c */ A { // trailing\n static int /* mid */ m() { return /* deep */ 1; } }");
}

#[test]
fn interface_extending_interfaces() {
    ok(
        "interface A { int a(); } interface B { int b(); } interface C extends A, B { } \
        class Impl implements C { int a() { return 1; } int b() { return 2; } }",
    );
}

#[test]
fn abstract_classes_partially_implement() {
    ok("interface I { int a(); int b(); } \
        abstract class Half implements I { int a() { return 1; } } \
        class Full extends Half { int b() { return 2; } }");
}

#[test]
fn generic_class_with_two_parameters() {
    ok("interface K { } interface V { } \
        final class MyK implements K { } final class MyV implements V { } \
        class Pair<A extends K, B extends V> { A k; B v; Pair(A a, B b) { k = a; v = b; } \
          A key() { return k; } B val() { return v; } } \
        class Use { static MyK m(Pair<MyK, MyV> p) { return p.key(); } }");
}

#[test]
fn generic_arity_mismatch_reported() {
    err_containing(
        "class Box<T> { T t; Box(T t0) { t = t0; } } class A { Box b; }",
        "expects 1 type argument",
    );
}

#[test]
fn unknown_type_reported_with_name() {
    err_containing("class A { Banana b; }", "unknown type `Banana`");
}

#[test]
fn boolean_arithmetic_rejected() {
    err_containing(
        "class A { static int m(boolean b) { return b + 1; } }",
        "arithmetic",
    );
}

#[test]
fn condition_must_be_boolean() {
    err_containing(
        "class A { static void m(int x) { if (x) { } } }",
        "expected boolean",
    );
    err_containing(
        "class A { static void m(int x) { while (x) { } } }",
        "expected boolean",
    );
}

#[test]
fn string_equality_not_supported() {
    // Strings only exist as native-call arguments; comparing them is a
    // reference comparison at best and should still type as RefEq... but
    // Str is not a reference type in jlang, so it errors.
    err_containing(
        "class A { static boolean m() { return \"a\" == \"b\"; } }",
        "arithmetic on non-numeric",
    );
}

#[test]
fn long_literals_and_suffixes() {
    ok("class A { static long m() { long big = 4000000000L; return big + 1L; } }");
    err_containing(
        "class A { static long m() { return 4000000000; } }",
        "out of 32-bit range",
    );
}

#[test]
fn multiple_files_resolve_cross_references_in_any_order() {
    let set = SourceSet::new()
        .with("b.jl", "class B extends A { int g() { return f() + 1; } }")
        .with("a.jl", "class A { int f() { return 1; } }");
    assert!(jlang::compile(&set).is_ok());
}

#[test]
fn error_lines_point_into_the_right_file() {
    let set = SourceSet::new()
        .with("good.jl", "class Good { }")
        .with("bad.jl", "class Bad {\n  int m() { return nope; }\n}");
    let err = jlang::compile(&set).unwrap_err();
    assert!(
        err.iter().any(|d| d.span.file == 1 && d.span.line == 2),
        "{err:?}"
    );
}

#[test]
fn compound_operators_all_work() {
    ok("class A { static int m() { int x = 100; x += 5; x -= 3; x *= 2; x /= 4; x %= 9; return x; } }");
}

#[test]
fn while_true_with_break_types() {
    ok("class A { static int m() { int i = 0; while (true) { i++; if (i > 3) { break; } } return i; } }");
}

#[test]
fn ctor_cannot_be_called_as_method() {
    err_containing(
        "class A { A() { } static void m(A a) { a.A(); } }",
        "no method",
    );
}

#[test]
fn super_field_access_through_inheritance_chain() {
    ok("class A { int x; A(int v) { x = v; } } \
        class B extends A { B(int v) { super(v); } } \
        class C extends B { C() { super(5); } int get() { return x; } }");
}
