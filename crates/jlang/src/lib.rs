//! # jlang — the Java-subset front end of the WootinJ reproduction
//!
//! This crate implements the language substrate the paper's framework is
//! built on: a lexer, parser, class table, and type checker for the Java
//! subset in which WootinJ class libraries are written. Everything the
//! WootinJ coding rules talk about — including the constructs they forbid
//! (ternary operator, `null`, `instanceof`, reference equality, recursion)
//! — is representable, so the rules checker in the `jrules` crate can
//! reject violating programs with precise diagnostics.
//!
//! The output of [`compile`] is a [`table::ClassTable`] whose method bodies
//! are fully typed ([`tast`]): names resolved to slots, fields to absolute
//! layout offsets, and implicit numeric widenings made explicit. The
//! interpreter (`jvm`), the rules checker (`jrules`), and the translator
//! (`translator`) all consume this representation.

#![forbid(unsafe_code)]

pub mod ast;
pub mod parser;
pub mod span;
pub mod table;
pub mod tast;
pub mod token;
pub mod typeck;
pub mod types;

pub use span::{render_diags, DiagResult, Diagnostic, Severity, Span};
pub use table::{ClassInfo, ClassTable, CtorInfo, FieldInfo, MethodInfo, ParamInfo};
pub use types::{ClassId, PrimKind, Type, OBJECT};

/// A set of named source files compiled together.
#[derive(Debug, Clone, Default)]
pub struct SourceSet {
    files: Vec<(String, String)>,
}

impl SourceSet {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a named source file; returns `self` for chaining.
    pub fn with(mut self, name: impl Into<String>, src: impl Into<String>) -> Self {
        self.files.push((name.into(), src.into()));
        self
    }

    pub fn add(&mut self, name: impl Into<String>, src: impl Into<String>) {
        self.files.push((name.into(), src.into()));
    }

    pub fn file_name(&self, index: u32) -> Option<&str> {
        self.files.get(index as usize).map(|(n, _)| n.as_str())
    }

    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

/// Compile a source set into a fully typed class table.
///
/// This runs the whole front end: lex, parse, class-table construction
/// (signature resolution, layout, override checks), and body type checking.
pub fn compile(sources: &SourceSet) -> DiagResult<ClassTable> {
    let mut units = Vec::new();
    let mut diags = Vec::new();
    for (i, (_, src)) in sources.files.iter().enumerate() {
        match parser::parse_unit(i as u32, src) {
            Ok(u) => units.push(u),
            Err(mut ds) => diags.append(&mut ds),
        }
    }
    if !diags.is_empty() {
        return Err(diags);
    }
    let mut table = table::build(units)?;
    typeck::check(&mut table)?;
    Ok(table)
}

/// Convenience: compile a single anonymous source string.
///
/// ```
/// let table = jlang::compile_str(
///     "class Greeter { int count; Greeter(int c) { count = c; } }",
/// ).unwrap();
/// let id = table.by_name("Greeter").unwrap();
/// assert_eq!(table.class(id).fields.len(), 1);
/// ```
pub fn compile_str(src: &str) -> DiagResult<ClassTable> {
    compile(&SourceSet::new().with("<input>", src))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_compile() {
        let table = compile_str(
            "interface Solver { float solve(float self, int index); } \
             class PhysSolver implements Solver { \
               float a; \
               PhysSolver(float a0) { a = a0; } \
               float solve(float self, int index) { return a * self + index; } }",
        )
        .expect("compile");
        let ps = table.by_name("PhysSolver").unwrap();
        assert!(table.class(ps).methods[0].body.is_some());
    }

    #[test]
    fn multiple_files_share_a_namespace() {
        let set = SourceSet::new()
            .with("a.jl", "class A { B b; A(B b0) { b = b0; } }")
            .with("b.jl", "class B { }");
        assert!(compile(&set).is_ok());
    }

    #[test]
    fn errors_from_all_files_are_collected() {
        let set = SourceSet::new()
            .with("a.jl", "class A { int m() { return \"x\"; } }")
            .with("b.jl", "class B { int m() { } }");
        assert!(compile(&set).is_err());
    }
}
