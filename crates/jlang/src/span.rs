//! Source positions and diagnostics shared across the front end.

use std::fmt;

/// A half-open byte range into a single source file, plus the file's index
/// in the [`crate::SourceSet`] it was parsed from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Span {
    pub file: u32,
    pub start: u32,
    pub end: u32,
    pub line: u32,
}

impl Span {
    pub fn new(file: u32, start: u32, end: u32, line: u32) -> Self {
        Span {
            file,
            start,
            end,
            line,
        }
    }

    /// Span covering both `self` and `other` (assumed same file).
    pub fn to(self, other: Span) -> Span {
        Span {
            file: self.file,
            start: self.start.min(other.start),
            end: self.end.max(other.end),
            line: self.line.min(other.line),
        }
    }
}

/// Severity of a front-end diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Error,
    Warning,
}

/// A compiler diagnostic with a source location.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub severity: Severity,
    pub message: String,
    pub span: Span,
    /// Name of the phase that produced this (lexer, parser, resolver, typeck, rules).
    pub phase: &'static str,
}

impl Diagnostic {
    pub fn error(phase: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            message: message.into(),
            span,
            phase,
        }
    }

    pub fn warning(phase: &'static str, span: Span, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Warning,
            message: message.into(),
            span,
            phase,
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sev = match self.severity {
            Severity::Error => "error",
            Severity::Warning => "warning",
        };
        write!(
            f,
            "{sev}[{}] line {}: {}",
            self.phase, self.span.line, self.message
        )
    }
}

/// Convenience alias used by every front-end phase.
pub type DiagResult<T> = Result<T, Vec<Diagnostic>>;

/// Render a diagnostic list as a single multi-line string (for error types
/// and test assertions).
pub fn render_diags(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_join_takes_extremes() {
        let a = Span::new(0, 10, 20, 3);
        let b = Span::new(0, 15, 40, 4);
        let j = a.to(b);
        assert_eq!((j.start, j.end, j.line), (10, 40, 3));
    }

    #[test]
    fn diagnostic_display_contains_phase_and_line() {
        let d = Diagnostic::error("parser", Span::new(0, 0, 1, 7), "unexpected token");
        let s = d.to_string();
        assert!(s.contains("parser"));
        assert!(s.contains("line 7"));
        assert!(s.contains("unexpected token"));
    }
}
