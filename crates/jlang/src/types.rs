//! Resolved (semantic) types and primitive-kind helpers.

use std::fmt;

/// Index of a class or interface in the [`crate::table::ClassTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

/// `ClassId` of the implicit root class `Object`.
pub const OBJECT: ClassId = ClassId(0);

/// A fully resolved jlang type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    Void,
    Int,
    Long,
    Float,
    Double,
    Boolean,
    /// Class or interface type with (possibly empty) type arguments.
    Object(ClassId, Vec<Type>),
    Array(Box<Type>),
    /// Type variable of the enclosing class, by index into its type params.
    Var(u32),
    /// The type of the `null` literal (assignable to any reference type).
    Null,
    /// `String` — only usable as a literal argument to `@Native` methods.
    Str,
}

/// The primitive value kinds an engine actually computes with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrimKind {
    Int,
    Long,
    Float,
    Double,
    Boolean,
}

impl PrimKind {
    pub fn is_numeric(self) -> bool {
        !matches!(self, PrimKind::Boolean)
    }

    /// Java binary numeric promotion: the wider of two numeric kinds.
    pub fn promote(a: PrimKind, b: PrimKind) -> Option<PrimKind> {
        use PrimKind::*;
        if !a.is_numeric() || !b.is_numeric() {
            return None;
        }
        Some(match (a, b) {
            (Double, _) | (_, Double) => Double,
            (Float, _) | (_, Float) => Float,
            (Long, _) | (_, Long) => Long,
            _ => Int,
        })
    }
}

impl Type {
    pub fn object(id: ClassId) -> Type {
        Type::Object(id, Vec::new())
    }

    pub fn array(elem: Type) -> Type {
        Type::Array(Box::new(elem))
    }

    pub fn is_primitive(&self) -> bool {
        matches!(
            self,
            Type::Int | Type::Long | Type::Float | Type::Double | Type::Boolean
        )
    }

    pub fn is_reference(&self) -> bool {
        matches!(
            self,
            Type::Object(..) | Type::Array(_) | Type::Null | Type::Var(_)
        )
    }

    pub fn prim_kind(&self) -> Option<PrimKind> {
        Some(match self {
            Type::Int => PrimKind::Int,
            Type::Long => PrimKind::Long,
            Type::Float => PrimKind::Float,
            Type::Double => PrimKind::Double,
            Type::Boolean => PrimKind::Boolean,
            _ => return None,
        })
    }

    /// Is an implicit widening conversion `from` -> `self` allowed
    /// (identity included) between primitive types?
    pub fn widens_from(&self, from: &Type) -> bool {
        use Type::*;
        if self == from {
            return true;
        }
        matches!(
            (from, self),
            (Int, Long)
                | (Int, Float)
                | (Int, Double)
                | (Long, Float)
                | (Long, Double)
                | (Float, Double)
        )
    }

    /// Substitute type variables using `args` (the type arguments of the
    /// enclosing class instantiation).
    pub fn subst(&self, args: &[Type]) -> Type {
        match self {
            Type::Var(i) => args
                .get(*i as usize)
                .cloned()
                .unwrap_or(Type::Object(OBJECT, Vec::new())),
            Type::Object(id, targs) => {
                Type::Object(*id, targs.iter().map(|t| t.subst(args)).collect())
            }
            Type::Array(elem) => Type::Array(Box::new(elem.subst(args))),
            other => other.clone(),
        }
    }

    /// Does this type mention any type variable?
    pub fn mentions_var(&self) -> bool {
        match self {
            Type::Var(_) => true,
            Type::Object(_, args) => args.iter().any(Type::mentions_var),
            Type::Array(e) => e.mentions_var(),
            _ => false,
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => write!(f, "void"),
            Type::Int => write!(f, "int"),
            Type::Long => write!(f, "long"),
            Type::Float => write!(f, "float"),
            Type::Double => write!(f, "double"),
            Type::Boolean => write!(f, "boolean"),
            Type::Object(id, args) => {
                write!(f, "#{}", id.0)?;
                if !args.is_empty() {
                    write!(f, "<")?;
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{a}")?;
                    }
                    write!(f, ">")?;
                }
                Ok(())
            }
            Type::Array(e) => write!(f, "{e}[]"),
            Type::Var(i) => write!(f, "T{i}"),
            Type::Null => write!(f, "null"),
            Type::Str => write!(f, "String"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widening_rules_match_java() {
        assert!(Type::Long.widens_from(&Type::Int));
        assert!(Type::Double.widens_from(&Type::Float));
        assert!(Type::Float.widens_from(&Type::Long));
        assert!(!Type::Int.widens_from(&Type::Long));
        assert!(!Type::Float.widens_from(&Type::Double));
        assert!(Type::Int.widens_from(&Type::Int));
    }

    #[test]
    fn promotion_prefers_wider_kind() {
        assert_eq!(
            PrimKind::promote(PrimKind::Int, PrimKind::Float),
            Some(PrimKind::Float)
        );
        assert_eq!(
            PrimKind::promote(PrimKind::Long, PrimKind::Int),
            Some(PrimKind::Long)
        );
        assert_eq!(
            PrimKind::promote(PrimKind::Double, PrimKind::Float),
            Some(PrimKind::Double)
        );
        assert_eq!(PrimKind::promote(PrimKind::Boolean, PrimKind::Int), None);
    }

    #[test]
    fn substitution_replaces_vars_recursively() {
        let t = Type::Array(Box::new(Type::Object(ClassId(3), vec![Type::Var(0)])));
        let s = t.subst(&[Type::Float]);
        assert_eq!(
            s,
            Type::Array(Box::new(Type::Object(ClassId(3), vec![Type::Float])))
        );
        assert!(t.mentions_var());
        assert!(!s.mentions_var());
    }
}
