//! Token definitions and the hand-written lexer for jlang, the Java subset
//! accepted by the WootinJ reproduction.

use crate::span::{Diagnostic, Span};

/// All token kinds produced by [`lex`].
#[derive(Debug, Clone, PartialEq)]
pub enum Tok {
    // Literals
    IntLit(i64),
    LongLit(i64),
    FloatLit(f32),
    DoubleLit(f64),
    StrLit(String),
    Ident(String),

    // Keywords
    KwClass,
    KwInterface,
    KwExtends,
    KwImplements,
    KwFinal,
    KwStatic,
    KwAbstract,
    KwPublic,
    KwPrivate,
    KwProtected,
    KwVoid,
    KwInt,
    KwLong,
    KwFloat,
    KwDouble,
    KwBoolean,
    KwNew,
    KwReturn,
    KwIf,
    KwElse,
    KwFor,
    KwWhile,
    KwThis,
    KwSuper,
    KwTrue,
    KwFalse,
    KwNull,
    KwInstanceof,
    KwBreak,
    KwContinue,

    // Punctuation / operators
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Semi,
    Comma,
    Dot,
    At,
    Question,
    Colon,
    Lt,
    Gt,
    Le,
    Ge,
    EqEq,
    NotEq,
    Assign,
    PlusAssign,
    MinusAssign,
    StarAssign,
    SlashAssign,
    PercentAssign,
    Plus,
    Minus,
    Star,
    Slash,
    Percent,
    PlusPlus,
    MinusMinus,
    AndAnd,
    OrOr,
    Not,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,

    Eof,
}

impl Tok {
    /// Short human-readable name for error messages.
    pub fn describe(&self) -> String {
        match self {
            Tok::IntLit(v) => format!("int literal {v}"),
            Tok::LongLit(v) => format!("long literal {v}"),
            Tok::FloatLit(v) => format!("float literal {v}"),
            Tok::DoubleLit(v) => format!("double literal {v}"),
            Tok::StrLit(s) => format!("string literal {s:?}"),
            Tok::Ident(s) => format!("identifier `{s}`"),
            Tok::Eof => "end of input".to_string(),
            other => format!("`{}`", other.text()),
        }
    }

    fn text(&self) -> &'static str {
        match self {
            Tok::KwClass => "class",
            Tok::KwInterface => "interface",
            Tok::KwExtends => "extends",
            Tok::KwImplements => "implements",
            Tok::KwFinal => "final",
            Tok::KwStatic => "static",
            Tok::KwAbstract => "abstract",
            Tok::KwPublic => "public",
            Tok::KwPrivate => "private",
            Tok::KwProtected => "protected",
            Tok::KwVoid => "void",
            Tok::KwInt => "int",
            Tok::KwLong => "long",
            Tok::KwFloat => "float",
            Tok::KwDouble => "double",
            Tok::KwBoolean => "boolean",
            Tok::KwNew => "new",
            Tok::KwReturn => "return",
            Tok::KwIf => "if",
            Tok::KwElse => "else",
            Tok::KwFor => "for",
            Tok::KwWhile => "while",
            Tok::KwThis => "this",
            Tok::KwSuper => "super",
            Tok::KwTrue => "true",
            Tok::KwFalse => "false",
            Tok::KwNull => "null",
            Tok::KwInstanceof => "instanceof",
            Tok::KwBreak => "break",
            Tok::KwContinue => "continue",
            Tok::LParen => "(",
            Tok::RParen => ")",
            Tok::LBrace => "{",
            Tok::RBrace => "}",
            Tok::LBracket => "[",
            Tok::RBracket => "]",
            Tok::Semi => ";",
            Tok::Comma => ",",
            Tok::Dot => ".",
            Tok::At => "@",
            Tok::Question => "?",
            Tok::Colon => ":",
            Tok::Lt => "<",
            Tok::Gt => ">",
            Tok::Le => "<=",
            Tok::Ge => ">=",
            Tok::EqEq => "==",
            Tok::NotEq => "!=",
            Tok::Assign => "=",
            Tok::PlusAssign => "+=",
            Tok::MinusAssign => "-=",
            Tok::StarAssign => "*=",
            Tok::SlashAssign => "/=",
            Tok::PercentAssign => "%=",
            Tok::Plus => "+",
            Tok::Minus => "-",
            Tok::Star => "*",
            Tok::Slash => "/",
            Tok::Percent => "%",
            Tok::PlusPlus => "++",
            Tok::MinusMinus => "--",
            Tok::AndAnd => "&&",
            Tok::OrOr => "||",
            Tok::Not => "!",
            Tok::BitAnd => "&",
            Tok::BitOr => "|",
            Tok::BitXor => "^",
            Tok::Shl => "<<",
            Tok::Shr => ">>",
            _ => "?",
        }
    }
}

/// A token with its source span.
#[derive(Debug, Clone)]
pub struct Token {
    pub tok: Tok,
    pub span: Span,
}

fn keyword(word: &str) -> Option<Tok> {
    Some(match word {
        "class" => Tok::KwClass,
        "interface" => Tok::KwInterface,
        "extends" => Tok::KwExtends,
        "implements" => Tok::KwImplements,
        "final" => Tok::KwFinal,
        "static" => Tok::KwStatic,
        "abstract" => Tok::KwAbstract,
        "public" => Tok::KwPublic,
        "private" => Tok::KwPrivate,
        "protected" => Tok::KwProtected,
        "void" => Tok::KwVoid,
        "int" => Tok::KwInt,
        "long" => Tok::KwLong,
        "float" => Tok::KwFloat,
        "double" => Tok::KwDouble,
        "boolean" => Tok::KwBoolean,
        "new" => Tok::KwNew,
        "return" => Tok::KwReturn,
        "if" => Tok::KwIf,
        "else" => Tok::KwElse,
        "for" => Tok::KwFor,
        "while" => Tok::KwWhile,
        "this" => Tok::KwThis,
        "super" => Tok::KwSuper,
        "true" => Tok::KwTrue,
        "false" => Tok::KwFalse,
        "null" => Tok::KwNull,
        "instanceof" => Tok::KwInstanceof,
        "break" => Tok::KwBreak,
        "continue" => Tok::KwContinue,
        _ => return None,
    })
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    file: u32,
}

impl<'a> Lexer<'a> {
    fn peek(&self) -> u8 {
        *self.src.get(self.pos).unwrap_or(&0)
    }

    fn peek2(&self) -> u8 {
        *self.src.get(self.pos + 1).unwrap_or(&0)
    }

    fn bump(&mut self) -> u8 {
        let c = self.peek();
        self.pos += 1;
        if c == b'\n' {
            self.line += 1;
        }
        c
    }

    fn span_from(&self, start: usize, line: u32) -> Span {
        Span::new(self.file, start as u32, self.pos as u32, line)
    }

    fn skip_trivia(&mut self) -> Result<(), Diagnostic> {
        loop {
            match self.peek() {
                b' ' | b'\t' | b'\r' | b'\n' => {
                    self.bump();
                }
                b'/' if self.peek2() == b'/' => {
                    while self.peek() != b'\n' && self.peek() != 0 {
                        self.bump();
                    }
                }
                b'/' if self.peek2() == b'*' => {
                    let start = self.pos;
                    let line = self.line;
                    self.bump();
                    self.bump();
                    loop {
                        if self.peek() == 0 {
                            return Err(Diagnostic::error(
                                "lexer",
                                self.span_from(start, line),
                                "unterminated block comment",
                            ));
                        }
                        if self.peek() == b'*' && self.peek2() == b'/' {
                            self.bump();
                            self.bump();
                            break;
                        }
                        self.bump();
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn lex_number(&mut self) -> Result<Tok, Diagnostic> {
        let start = self.pos;
        let line = self.line;
        while self.peek().is_ascii_digit() {
            self.bump();
        }
        let mut is_float = false;
        if self.peek() == b'.' && self.peek2().is_ascii_digit() {
            is_float = true;
            self.bump();
            while self.peek().is_ascii_digit() {
                self.bump();
            }
        }
        if self.peek() == b'e' || self.peek() == b'E' {
            let save = self.pos;
            self.bump();
            if self.peek() == b'+' || self.peek() == b'-' {
                self.bump();
            }
            if self.peek().is_ascii_digit() {
                is_float = true;
                while self.peek().is_ascii_digit() {
                    self.bump();
                }
            } else {
                self.pos = save;
            }
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).unwrap();
        let suffix = self.peek();
        if is_float {
            match suffix {
                b'f' | b'F' => {
                    self.bump();
                    Ok(Tok::FloatLit(text.parse::<f32>().unwrap()))
                }
                b'd' | b'D' => {
                    self.bump();
                    Ok(Tok::DoubleLit(text.parse::<f64>().unwrap()))
                }
                _ => Ok(Tok::DoubleLit(text.parse::<f64>().unwrap())),
            }
        } else {
            match suffix {
                b'f' | b'F' => {
                    self.bump();
                    Ok(Tok::FloatLit(text.parse::<f32>().unwrap()))
                }
                b'd' | b'D' => {
                    self.bump();
                    Ok(Tok::DoubleLit(text.parse::<f64>().unwrap()))
                }
                b'l' | b'L' => {
                    self.bump();
                    text.parse::<i64>().map(Tok::LongLit).map_err(|_| {
                        Diagnostic::error(
                            "lexer",
                            self.span_from(start, line),
                            format!("long literal out of range: {text}"),
                        )
                    })
                }
                _ => text.parse::<i64>().map(Tok::IntLit).map_err(|_| {
                    Diagnostic::error(
                        "lexer",
                        self.span_from(start, line),
                        format!("int literal out of range: {text}"),
                    )
                }),
            }
        }
    }

    fn lex_string(&mut self) -> Result<Tok, Diagnostic> {
        let start = self.pos;
        let line = self.line;
        self.bump(); // opening quote
        let mut out = String::new();
        loop {
            match self.bump() {
                0 => {
                    return Err(Diagnostic::error(
                        "lexer",
                        self.span_from(start, line),
                        "unterminated string literal",
                    ))
                }
                b'"' => return Ok(Tok::StrLit(out)),
                b'\\' => {
                    let esc = self.bump();
                    out.push(match esc {
                        b'n' => '\n',
                        b't' => '\t',
                        b'\\' => '\\',
                        b'"' => '"',
                        other => {
                            return Err(Diagnostic::error(
                                "lexer",
                                self.span_from(start, line),
                                format!("unknown escape `\\{}`", other as char),
                            ))
                        }
                    });
                }
                c => out.push(c as char),
            }
        }
    }
}

/// Lex a source file into a token stream (terminated by [`Tok::Eof`]).
pub fn lex(file: u32, src: &str) -> Result<Vec<Token>, Vec<Diagnostic>> {
    let mut lx = Lexer {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        file,
    };
    let mut out = Vec::new();
    let mut diags = Vec::new();
    loop {
        if let Err(d) = lx.skip_trivia() {
            diags.push(d);
            break;
        }
        let start = lx.pos;
        let line = lx.line;
        let c = lx.peek();
        if c == 0 {
            out.push(Token {
                tok: Tok::Eof,
                span: lx.span_from(start, line),
            });
            break;
        }
        let tok = if c.is_ascii_digit() {
            match lx.lex_number() {
                Ok(t) => t,
                Err(d) => {
                    diags.push(d);
                    break;
                }
            }
        } else if c == b'"' {
            match lx.lex_string() {
                Ok(t) => t,
                Err(d) => {
                    diags.push(d);
                    break;
                }
            }
        } else if c.is_ascii_alphabetic() || c == b'_' {
            while lx.peek().is_ascii_alphanumeric() || lx.peek() == b'_' {
                lx.bump();
            }
            let word = std::str::from_utf8(&lx.src[start..lx.pos]).unwrap();
            keyword(word).unwrap_or_else(|| Tok::Ident(word.to_string()))
        } else {
            lx.bump();
            match c {
                b'(' => Tok::LParen,
                b')' => Tok::RParen,
                b'{' => Tok::LBrace,
                b'}' => Tok::RBrace,
                b'[' => Tok::LBracket,
                b']' => Tok::RBracket,
                b';' => Tok::Semi,
                b',' => Tok::Comma,
                b'.' => Tok::Dot,
                b'@' => Tok::At,
                b'?' => Tok::Question,
                b':' => Tok::Colon,
                b'^' => Tok::BitXor,
                b'<' => match lx.peek() {
                    b'=' => {
                        lx.bump();
                        Tok::Le
                    }
                    b'<' => {
                        lx.bump();
                        Tok::Shl
                    }
                    _ => Tok::Lt,
                },
                b'>' => match lx.peek() {
                    b'=' => {
                        lx.bump();
                        Tok::Ge
                    }
                    // Note: `>>` is lexed greedily; the parser never needs to
                    // split it because nested generics close with `> >` in our
                    // grammar or via the parser's explicit Shr handling.
                    b'>' => {
                        lx.bump();
                        Tok::Shr
                    }
                    _ => Tok::Gt,
                },
                b'=' => {
                    if lx.peek() == b'=' {
                        lx.bump();
                        Tok::EqEq
                    } else {
                        Tok::Assign
                    }
                }
                b'!' => {
                    if lx.peek() == b'=' {
                        lx.bump();
                        Tok::NotEq
                    } else {
                        Tok::Not
                    }
                }
                b'+' => match lx.peek() {
                    b'+' => {
                        lx.bump();
                        Tok::PlusPlus
                    }
                    b'=' => {
                        lx.bump();
                        Tok::PlusAssign
                    }
                    _ => Tok::Plus,
                },
                b'-' => match lx.peek() {
                    b'-' => {
                        lx.bump();
                        Tok::MinusMinus
                    }
                    b'=' => {
                        lx.bump();
                        Tok::MinusAssign
                    }
                    _ => Tok::Minus,
                },
                b'*' => {
                    if lx.peek() == b'=' {
                        lx.bump();
                        Tok::StarAssign
                    } else {
                        Tok::Star
                    }
                }
                b'/' => {
                    if lx.peek() == b'=' {
                        lx.bump();
                        Tok::SlashAssign
                    } else {
                        Tok::Slash
                    }
                }
                b'%' => {
                    if lx.peek() == b'=' {
                        lx.bump();
                        Tok::PercentAssign
                    } else {
                        Tok::Percent
                    }
                }
                b'&' => {
                    if lx.peek() == b'&' {
                        lx.bump();
                        Tok::AndAnd
                    } else {
                        Tok::BitAnd
                    }
                }
                b'|' => {
                    if lx.peek() == b'|' {
                        lx.bump();
                        Tok::OrOr
                    } else {
                        Tok::BitOr
                    }
                }
                other => {
                    diags.push(Diagnostic::error(
                        "lexer",
                        lx.span_from(start, line),
                        format!("unexpected character `{}`", other as char),
                    ));
                    continue;
                }
            }
        };
        out.push(Token {
            tok,
            span: lx.span_from(start, line),
        });
    }
    if diags.is_empty() {
        Ok(out)
    } else {
        Err(diags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(0, src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn lexes_keywords_and_idents() {
        let t = toks("class Foo extends Bar");
        assert_eq!(
            t,
            vec![
                Tok::KwClass,
                Tok::Ident("Foo".into()),
                Tok::KwExtends,
                Tok::Ident("Bar".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lexes_numeric_literals() {
        assert_eq!(toks("42")[0], Tok::IntLit(42));
        assert_eq!(toks("42L")[0], Tok::LongLit(42));
        assert_eq!(toks("1.5f")[0], Tok::FloatLit(1.5));
        assert_eq!(toks("1.5")[0], Tok::DoubleLit(1.5));
        assert_eq!(toks("2e3")[0], Tok::DoubleLit(2000.0));
        assert_eq!(toks("3f")[0], Tok::FloatLit(3.0));
    }

    #[test]
    fn lexes_operators_greedily() {
        assert_eq!(
            toks("a += b ++ <= >= == != && || << >>"),
            vec![
                Tok::Ident("a".into()),
                Tok::PlusAssign,
                Tok::Ident("b".into()),
                Tok::PlusPlus,
                Tok::Le,
                Tok::Ge,
                Tok::EqEq,
                Tok::NotEq,
                Tok::AndAnd,
                Tok::OrOr,
                Tok::Shl,
                Tok::Shr,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn skips_line_and_block_comments() {
        let t = toks("a // comment\n /* block \n comment */ b");
        assert_eq!(
            t,
            vec![Tok::Ident("a".into()), Tok::Ident("b".into()), Tok::Eof]
        );
    }

    #[test]
    fn tracks_line_numbers() {
        let tokens = lex(0, "a\nb\n\nc").unwrap();
        let lines: Vec<u32> = tokens.iter().map(|t| t.span.line).collect();
        assert_eq!(lines, vec![1, 2, 4, 4]);
    }

    #[test]
    fn string_literals_with_escapes() {
        assert_eq!(toks("\"he\\\"llo\\n\"")[0], Tok::StrLit("he\"llo\n".into()));
    }

    #[test]
    fn rejects_unterminated_comment() {
        assert!(lex(0, "/* never closed").is_err());
    }

    #[test]
    fn rejects_unknown_character() {
        assert!(lex(0, "a # b").is_err());
    }

    #[test]
    fn int_literal_overflow_is_an_error() {
        assert!(lex(0, "99999999999999999999").is_err());
    }
}
