//! The typed AST produced by the type checker.
//!
//! All names are resolved: locals/params to frame slots, fields to absolute
//! instance slots (single inheritance gives every field a fixed offset),
//! methods to `(declaring class, index)` pairs. Implicit widening
//! conversions are explicit [`TExprKind::Convert`] nodes so that engines and
//! the translator never re-derive promotion rules.

use crate::ast::{BinOp, UnOp};
use crate::span::Span;
use crate::types::{ClassId, PrimKind, Type};

/// A resolved instance-field selector. `slot` is the field's absolute
/// offset in the object layout (inherited fields first).
#[derive(Debug, Clone, PartialEq)]
pub struct FieldSel {
    /// Class that *declares* the field.
    pub owner: ClassId,
    /// Absolute slot in the instance layout.
    pub slot: u32,
    /// Declared type after substitution at the use site.
    pub ty: Type,
}

/// A resolved method selector: the statically found declaration. Virtual
/// dispatch may pick an override in a subclass at run/translation time.
#[derive(Debug, Clone, PartialEq)]
pub struct MethodSel {
    /// Class or interface whose declaration was found statically.
    pub decl_class: ClassId,
    /// Index into `decl_class`'s own `methods` vector.
    pub index: u32,
}

/// Typed statement.
#[derive(Debug, Clone)]
pub enum TStmt {
    /// Declare local in `slot`, optionally initialized.
    Local {
        slot: u32,
        ty: Type,
        init: Option<TExpr>,
        span: Span,
    },
    AssignLocal {
        slot: u32,
        value: TExpr,
        span: Span,
    },
    AssignField {
        obj: TExpr,
        field: FieldSel,
        value: TExpr,
        span: Span,
    },
    AssignStatic {
        class: ClassId,
        index: u32,
        value: TExpr,
        span: Span,
    },
    AssignIndex {
        arr: TExpr,
        idx: TExpr,
        value: TExpr,
        span: Span,
    },
    Expr(TExpr),
    If {
        cond: TExpr,
        then_branch: TBlock,
        else_branch: Option<TBlock>,
        span: Span,
    },
    While {
        cond: TExpr,
        body: TBlock,
        span: Span,
    },
    For {
        init: Option<Box<TStmt>>,
        cond: Option<TExpr>,
        update: Option<Box<TStmt>>,
        body: TBlock,
        span: Span,
    },
    Return {
        value: Option<TExpr>,
        span: Span,
    },
    Break(Span),
    Continue(Span),
    Block(TBlock),
}

/// Typed block.
#[derive(Debug, Clone, Default)]
pub struct TBlock {
    pub stmts: Vec<TStmt>,
}

/// Typed expression with its resolved type.
#[derive(Debug, Clone)]
pub struct TExpr {
    pub kind: TExprKind,
    pub ty: Type,
    pub span: Span,
}

/// Typed expression kinds.
#[derive(Debug, Clone)]
pub enum TExprKind {
    Int(i32),
    Long(i64),
    Float(f32),
    Double(f64),
    Bool(bool),
    Null,
    Str(String),
    /// Local or parameter read (params occupy the lowest slots).
    Local(u32),
    This,
    GetField {
        obj: Box<TExpr>,
        field: FieldSel,
    },
    GetStatic {
        class: ClassId,
        index: u32,
    },
    /// Virtual (dynamically dispatched) call.
    Call {
        recv: Box<TExpr>,
        method: MethodSel,
        args: Vec<TExpr>,
    },
    /// Non-virtual call to a statically known implementation (`super.m()`).
    DirectCall {
        recv: Box<TExpr>,
        method: MethodSel,
        args: Vec<TExpr>,
    },
    /// Call to a static method.
    StaticCall {
        class: ClassId,
        index: u32,
        args: Vec<TExpr>,
    },
    /// Object allocation + constructor run.
    New {
        class: ClassId,
        targs: Vec<Type>,
        args: Vec<TExpr>,
    },
    NewArray {
        elem: Type,
        len: Box<TExpr>,
    },
    Index {
        arr: Box<TExpr>,
        idx: Box<TExpr>,
    },
    ArrayLen(Box<TExpr>),
    Unary {
        op: UnOp,
        expr: Box<TExpr>,
    },
    /// Both operands already converted to `operand_kind`.
    Binary {
        op: BinOp,
        operand_kind: PrimKind,
        lhs: Box<TExpr>,
        rhs: Box<TExpr>,
    },
    /// Reference equality (`==`/`!=` on references) — kept distinct so the
    /// rules checker and engines can treat it specially.
    RefEq {
        negated: bool,
        lhs: Box<TExpr>,
        rhs: Box<TExpr>,
    },
    /// Explicit numeric cast (may narrow).
    NumCast {
        to: PrimKind,
        expr: Box<TExpr>,
    },
    /// Reference cast, checked at runtime by the interpreter.
    RefCast {
        to: Type,
        expr: Box<TExpr>,
    },
    /// Implicit widening conversion inserted by the checker.
    Convert {
        to: PrimKind,
        expr: Box<TExpr>,
    },
    InstanceOf {
        expr: Box<TExpr>,
        ty: Type,
    },
    Ternary {
        cond: Box<TExpr>,
        then_val: Box<TExpr>,
        else_val: Box<TExpr>,
    },
}

impl TExpr {
    /// Walk this expression tree, calling `f` on every node (pre-order).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a TExpr)) {
        f(self);
        match &self.kind {
            TExprKind::GetField { obj, .. } => obj.walk(f),
            TExprKind::Call { recv, args, .. } | TExprKind::DirectCall { recv, args, .. } => {
                recv.walk(f);
                for a in args {
                    a.walk(f);
                }
            }
            TExprKind::StaticCall { args, .. } | TExprKind::New { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            TExprKind::NewArray { len, .. } => len.walk(f),
            TExprKind::Index { arr, idx } => {
                arr.walk(f);
                idx.walk(f);
            }
            TExprKind::ArrayLen(e)
            | TExprKind::Unary { expr: e, .. }
            | TExprKind::NumCast { expr: e, .. }
            | TExprKind::RefCast { expr: e, .. }
            | TExprKind::Convert { expr: e, .. }
            | TExprKind::InstanceOf { expr: e, .. } => e.walk(f),
            TExprKind::Binary { lhs, rhs, .. } | TExprKind::RefEq { lhs, rhs, .. } => {
                lhs.walk(f);
                rhs.walk(f);
            }
            TExprKind::Ternary {
                cond,
                then_val,
                else_val,
            } => {
                cond.walk(f);
                then_val.walk(f);
                else_val.walk(f);
            }
            _ => {}
        }
    }
}

impl TBlock {
    /// Walk all statements (pre-order), including nested blocks.
    pub fn walk_stmts<'a>(&'a self, f: &mut impl FnMut(&'a TStmt)) {
        for s in &self.stmts {
            s.walk(f);
        }
    }

    /// Walk all expressions contained anywhere in this block.
    pub fn walk_exprs<'a>(&'a self, f: &mut impl FnMut(&'a TExpr)) {
        self.walk_stmts(&mut |s| s.for_each_expr(f));
    }
}

impl TStmt {
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a TStmt)) {
        f(self);
        match self {
            TStmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                then_branch.walk_stmts(f);
                if let Some(e) = else_branch {
                    e.walk_stmts(f);
                }
            }
            TStmt::While { body, .. } => body.walk_stmts(f),
            TStmt::For {
                init, update, body, ..
            } => {
                if let Some(i) = init {
                    i.walk(f);
                }
                if let Some(u) = update {
                    u.walk(f);
                }
                body.walk_stmts(f);
            }
            TStmt::Block(b) => b.walk_stmts(f),
            _ => {}
        }
    }

    /// Call `f` on each expression directly owned by this statement (not
    /// descending into nested statements — combine with [`TStmt::walk`]).
    pub fn for_each_expr<'a>(&'a self, f: &mut impl FnMut(&'a TExpr)) {
        match self {
            TStmt::Local { init: Some(e), .. } => e.walk(f),
            TStmt::Local { init: None, .. } => {}
            TStmt::AssignLocal { value, .. } => value.walk(f),
            TStmt::AssignField { obj, value, .. } => {
                obj.walk(f);
                value.walk(f);
            }
            TStmt::AssignStatic { value, .. } => value.walk(f),
            TStmt::AssignIndex {
                arr, idx, value, ..
            } => {
                arr.walk(f);
                idx.walk(f);
                value.walk(f);
            }
            TStmt::Expr(e) => e.walk(f),
            TStmt::If { cond, .. } => cond.walk(f),
            TStmt::While { cond, .. } => cond.walk(f),
            TStmt::For { cond, .. } => {
                if let Some(c) = cond {
                    c.walk(f);
                }
            }
            TStmt::Return { value: Some(e), .. } => e.walk(f),
            TStmt::Return { value: None, .. } => {}
            TStmt::Break(_) | TStmt::Continue(_) | TStmt::Block(_) => {}
        }
    }

    pub fn span(&self) -> Span {
        match self {
            TStmt::Local { span, .. }
            | TStmt::AssignLocal { span, .. }
            | TStmt::AssignField { span, .. }
            | TStmt::AssignStatic { span, .. }
            | TStmt::AssignIndex { span, .. }
            | TStmt::If { span, .. }
            | TStmt::While { span, .. }
            | TStmt::For { span, .. }
            | TStmt::Return { span, .. }
            | TStmt::Break(span)
            | TStmt::Continue(span) => *span,
            TStmt::Expr(e) => e.span,
            TStmt::Block(b) => b.stmts.first().map(|s| s.span()).unwrap_or_default(),
        }
    }
}
