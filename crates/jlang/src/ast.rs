//! The untyped abstract syntax tree produced by the parser.
//!
//! Names are unresolved strings at this stage; the resolver/type checker in
//! [`crate::typeck`] turns this into the typed representation in
//! [`crate::tast`].

use crate::span::Span;

/// A parsed annotation such as `@WootinJ`, `@Global` or `@Native("mpi_rank")`.
#[derive(Debug, Clone, PartialEq)]
pub struct Annotation {
    pub name: String,
    /// Optional single string argument, e.g. `@Native("sqrtf")`.
    pub arg: Option<String>,
    pub span: Span,
}

/// Declaration modifiers. Visibility is parsed but carries no semantics in
/// jlang (the paper's listings use it freely, so we accept it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Modifiers {
    pub is_static: bool,
    pub is_final: bool,
    pub is_abstract: bool,
}

/// A syntactic type reference, e.g. `float`, `FloatGridDblB`, `T`,
/// `OneDSolver<ScalarFloat, EmptyContext>`, `float[]`.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeRef {
    Void,
    Int,
    Long,
    Float,
    Double,
    Boolean,
    /// Class, interface, or type-parameter name with optional type arguments.
    Named {
        name: String,
        args: Vec<TypeRef>,
        span: Span,
    },
    Array(Box<TypeRef>),
}

impl TypeRef {
    pub fn named(name: &str, span: Span) -> TypeRef {
        TypeRef::Named {
            name: name.to_string(),
            args: Vec::new(),
            span,
        }
    }
}

/// A class-level type parameter: `T extends Solver`.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeParam {
    pub name: String,
    /// Upper bound; defaults to `Object` when omitted.
    pub bound: Option<TypeRef>,
    pub span: Span,
}

/// Top-level class or interface declaration.
#[derive(Debug, Clone)]
pub struct ClassDecl {
    pub name: String,
    pub is_interface: bool,
    pub annotations: Vec<Annotation>,
    pub modifiers: Modifiers,
    pub type_params: Vec<TypeParam>,
    pub superclass: Option<TypeRef>,
    pub interfaces: Vec<TypeRef>,
    pub fields: Vec<FieldDecl>,
    pub methods: Vec<MethodDecl>,
    pub ctor: Option<CtorDecl>,
    pub span: Span,
}

/// Instance or static field.
#[derive(Debug, Clone)]
pub struct FieldDecl {
    pub name: String,
    pub ty: TypeRef,
    pub annotations: Vec<Annotation>,
    pub modifiers: Modifiers,
    pub init: Option<Expr>,
    pub span: Span,
}

/// A formal method or constructor parameter.
#[derive(Debug, Clone)]
pub struct Param {
    pub name: String,
    pub ty: TypeRef,
    pub is_final: bool,
    pub span: Span,
}

/// Method declaration; `body` is `None` for abstract/interface methods and
/// for `@Native` methods.
#[derive(Debug, Clone)]
pub struct MethodDecl {
    pub name: String,
    pub annotations: Vec<Annotation>,
    pub modifiers: Modifiers,
    pub params: Vec<Param>,
    pub ret: TypeRef,
    pub body: Option<Block>,
    pub span: Span,
}

/// Constructor declaration. jlang allows at most one constructor per class.
#[derive(Debug, Clone)]
pub struct CtorDecl {
    pub params: Vec<Param>,
    /// Explicit `super(...)` call arguments, if written as the first statement.
    pub super_args: Option<Vec<Expr>>,
    pub body: Block,
    pub span: Span,
}

/// A `{ ... }` statement block.
#[derive(Debug, Clone, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// Assignment targets.
#[derive(Debug, Clone)]
pub enum LValue {
    /// A bare name: a local, a parameter, or an implicit `this.field`.
    Name(String, Span),
    /// `expr.field`
    Field { obj: Expr, name: String, span: Span },
    /// `Class.field`  (resolved later; parser can't distinguish from `obj.field`)
    /// `arr[idx]`
    Index { arr: Expr, idx: Expr, span: Span },
}

/// Statements.
#[derive(Debug, Clone)]
pub enum Stmt {
    /// `T x = init;`
    Local {
        name: String,
        ty: TypeRef,
        init: Option<Expr>,
        is_final: bool,
        span: Span,
    },
    /// `lhs op= rhs;` — `op` is `None` for plain `=`.
    Assign {
        target: LValue,
        op: Option<BinOp>,
        value: Expr,
        span: Span,
    },
    /// `x++;` / `x--;` statements (sugar for `x = x + 1`).
    IncDec {
        target: LValue,
        inc: bool,
        span: Span,
    },
    Expr(Expr),
    If {
        cond: Expr,
        then_branch: Block,
        else_branch: Option<Block>,
        span: Span,
    },
    While {
        cond: Expr,
        body: Block,
        span: Span,
    },
    /// `for (init; cond; update) body` — each part optional.
    For {
        init: Option<Box<Stmt>>,
        cond: Option<Expr>,
        update: Option<Box<Stmt>>,
        body: Block,
        span: Span,
    },
    Return {
        value: Option<Expr>,
        span: Span,
    },
    Break(Span),
    Continue(Span),
    Block(Block),
}

impl Stmt {
    pub fn span(&self) -> Span {
        match self {
            Stmt::Local { span, .. }
            | Stmt::Assign { span, .. }
            | Stmt::IncDec { span, .. }
            | Stmt::If { span, .. }
            | Stmt::While { span, .. }
            | Stmt::For { span, .. }
            | Stmt::Return { span, .. }
            | Stmt::Break(span)
            | Stmt::Continue(span) => *span,
            Stmt::Expr(e) => e.span(),
            Stmt::Block(b) => b.stmts.first().map(|s| s.span()).unwrap_or_default(),
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    Lt,
    Le,
    Gt,
    Ge,
    Eq,
    Ne,
    And,
    Or,
    BitAnd,
    BitOr,
    BitXor,
    Shl,
    Shr,
}

impl BinOp {
    /// True for `<`, `<=`, `>`, `>=`, `==`, `!=`.
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge | BinOp::Eq | BinOp::Ne
        )
    }

    /// True for `&&` / `||`.
    pub fn is_logical(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    Neg,
    Not,
}

/// Expressions.
#[derive(Debug, Clone)]
pub enum Expr {
    IntLit(i64, Span),
    LongLit(i64, Span),
    FloatLit(f32, Span),
    DoubleLit(f64, Span),
    BoolLit(bool, Span),
    NullLit(Span),
    StrLit(String, Span),
    /// Bare name: local, parameter, implicit `this.field`, or class name
    /// (as receiver of a static call / static field).
    Name(String, Span),
    This(Span),
    /// `expr.name`
    Field {
        obj: Box<Expr>,
        name: String,
        span: Span,
    },
    /// `expr.name(args)` — virtual or static call; resolution decides.
    Call {
        recv: Box<Expr>,
        name: String,
        args: Vec<Expr>,
        span: Span,
    },
    /// `super.name(args)`
    SuperCall {
        name: String,
        args: Vec<Expr>,
        span: Span,
    },
    /// `new T(args)` / `new T<A,B>(args)`
    New {
        ty: TypeRef,
        args: Vec<Expr>,
        span: Span,
    },
    /// `new T[len]`
    NewArray {
        elem: TypeRef,
        len: Box<Expr>,
        span: Span,
    },
    /// `arr[idx]`
    Index {
        arr: Box<Expr>,
        idx: Box<Expr>,
        span: Span,
    },
    Unary {
        op: UnOp,
        expr: Box<Expr>,
        span: Span,
    },
    Binary {
        op: BinOp,
        lhs: Box<Expr>,
        rhs: Box<Expr>,
        span: Span,
    },
    /// `(T) expr`
    Cast {
        ty: TypeRef,
        expr: Box<Expr>,
        span: Span,
    },
    /// `expr instanceof T` — parsed so the rules checker can reject it.
    InstanceOf {
        expr: Box<Expr>,
        ty: TypeRef,
        span: Span,
    },
    /// `c ? t : f` — parsed so the rules checker can reject it.
    Ternary {
        cond: Box<Expr>,
        then_val: Box<Expr>,
        else_val: Box<Expr>,
        span: Span,
    },
}

impl Expr {
    pub fn span(&self) -> Span {
        match self {
            Expr::IntLit(_, s)
            | Expr::LongLit(_, s)
            | Expr::FloatLit(_, s)
            | Expr::DoubleLit(_, s)
            | Expr::BoolLit(_, s)
            | Expr::NullLit(s)
            | Expr::StrLit(_, s)
            | Expr::Name(_, s)
            | Expr::This(s)
            | Expr::Field { span: s, .. }
            | Expr::Call { span: s, .. }
            | Expr::SuperCall { span: s, .. }
            | Expr::New { span: s, .. }
            | Expr::NewArray { span: s, .. }
            | Expr::Index { span: s, .. }
            | Expr::Unary { span: s, .. }
            | Expr::Binary { span: s, .. }
            | Expr::Cast { span: s, .. }
            | Expr::InstanceOf { span: s, .. }
            | Expr::Ternary { span: s, .. } => *s,
        }
    }
}

/// One parsed compilation unit (a source file's worth of declarations).
#[derive(Debug, Clone, Default)]
pub struct Unit {
    pub classes: Vec<ClassDecl>,
}
