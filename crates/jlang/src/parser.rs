//! Recursive-descent parser for jlang.
//!
//! The grammar is the Java subset used by the paper's listings: class and
//! interface declarations (single inheritance + interfaces), generics with
//! upper bounds, one constructor per class, fields with initializers,
//! statements (`if`/`while`/`for`/`return`/blocks), and the usual
//! expression forms. Constructs that the WootinJ coding rules *forbid*
//! (ternary, `null`, `instanceof`, reference equality) are still parsed so
//! that the rules checker can reject them with a good message.

use crate::ast::*;
use crate::span::{Diagnostic, Span};
use crate::token::{lex, Tok, Token};

pub struct Parser {
    toks: Vec<Token>,
    pos: usize,
    /// Set when a `>>` token has had its first `>` consumed while closing a
    /// generic argument list; the remaining half acts as a single `>`.
    pending_gt: bool,
    /// Expression nesting depth (each level costs ~a dozen recursive
    /// descent frames; guard well before the host stack gives out).
    depth: u32,
    diags: Vec<Diagnostic>,
}

/// Maximum expression nesting depth.
const MAX_EXPR_DEPTH: u32 = 40;

/// Parse one source file into a [`Unit`].
pub fn parse_unit(file: u32, src: &str) -> Result<Unit, Vec<Diagnostic>> {
    let toks = lex(file, src)?;
    let mut p = Parser {
        toks,
        pos: 0,
        pending_gt: false,
        depth: 0,
        diags: Vec::new(),
    };
    let unit = p.unit();
    if p.diags.is_empty() {
        Ok(unit)
    } else {
        Err(p.diags)
    }
}

type PResult<T> = Result<T, Diagnostic>;

impl Parser {
    fn peek(&self) -> &Tok {
        if self.pending_gt {
            &Tok::Gt
        } else {
            &self.toks[self.pos].tok
        }
    }

    fn peek_at(&self, n: usize) -> &Tok {
        let idx = (self.pos + n).min(self.toks.len() - 1);
        &self.toks[idx].tok
    }

    fn span(&self) -> Span {
        self.toks[self.pos].span
    }

    fn prev_span(&self) -> Span {
        self.toks[self.pos.saturating_sub(1)].span
    }

    fn bump(&mut self) -> Tok {
        if self.pending_gt {
            self.pending_gt = false;
            // Consume the remaining `>` half of a `>>` token.
            self.pos += 1;
            return Tok::Gt;
        }
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    /// Consume a `>`; splits a `>>` token into two halves when needed.
    fn expect_gt(&mut self) -> PResult<()> {
        if self.pending_gt {
            self.bump();
            return Ok(());
        }
        match &self.toks[self.pos].tok {
            Tok::Gt => {
                self.bump();
                Ok(())
            }
            Tok::Shr => {
                // First half consumed now; the second half stays pending.
                self.pending_gt = true;
                Ok(())
            }
            other => Err(self.err(format!("expected `>`, found {}", other.describe()))),
        }
    }

    fn err(&self, msg: String) -> Diagnostic {
        Diagnostic::error("parser", self.span(), msg)
    }

    fn expect(&mut self, tok: Tok) -> PResult<Span> {
        if *self.peek() == tok {
            let s = self.span();
            self.bump();
            Ok(s)
        } else {
            Err(self.err(format!(
                "expected {}, found {}",
                tok.describe(),
                self.peek().describe()
            )))
        }
    }

    fn eat(&mut self, tok: Tok) -> bool {
        if *self.peek() == tok {
            self.bump();
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> PResult<(String, Span)> {
        let s = self.span();
        match self.peek().clone() {
            Tok::Ident(name) => {
                self.bump();
                Ok((name, s))
            }
            other => Err(self.err(format!("expected identifier, found {}", other.describe()))),
        }
    }

    // ------------------------------------------------------------------
    // Declarations
    // ------------------------------------------------------------------

    fn unit(&mut self) -> Unit {
        let mut unit = Unit::default();
        while *self.peek() != Tok::Eof {
            match self.class_decl() {
                Ok(c) => unit.classes.push(c),
                Err(d) => {
                    self.diags.push(d);
                    self.recover_to_class();
                }
            }
        }
        unit
    }

    /// After an error, skip forward to the next plausible class declaration.
    fn recover_to_class(&mut self) {
        let mut depth = 0usize;
        loop {
            match self.peek() {
                Tok::Eof => return,
                Tok::LBrace => {
                    depth += 1;
                    self.bump();
                }
                Tok::RBrace => {
                    depth = depth.saturating_sub(1);
                    self.bump();
                    if depth == 0 {
                        return;
                    }
                }
                Tok::KwClass | Tok::KwInterface | Tok::At if depth == 0 => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn annotations(&mut self) -> PResult<Vec<Annotation>> {
        let mut anns = Vec::new();
        while *self.peek() == Tok::At {
            let start = self.span();
            self.bump();
            let (name, _) = self.ident()?;
            let mut arg = None;
            if self.eat(Tok::LParen) {
                if let Tok::StrLit(s) = self.peek().clone() {
                    self.bump();
                    arg = Some(s);
                }
                self.expect(Tok::RParen)?;
            }
            anns.push(Annotation {
                name,
                arg,
                span: start.to(self.prev_span()),
            });
        }
        Ok(anns)
    }

    fn modifiers(&mut self) -> Modifiers {
        let mut m = Modifiers::default();
        loop {
            match self.peek() {
                Tok::KwPublic | Tok::KwPrivate | Tok::KwProtected => {
                    self.bump();
                }
                Tok::KwStatic => {
                    self.bump();
                    m.is_static = true;
                }
                Tok::KwFinal => {
                    self.bump();
                    m.is_final = true;
                }
                Tok::KwAbstract => {
                    self.bump();
                    m.is_abstract = true;
                }
                _ => return m,
            }
        }
    }

    fn class_decl(&mut self) -> PResult<ClassDecl> {
        let start = self.span();
        let annotations = self.annotations()?;
        let modifiers = self.modifiers();
        let is_interface = match self.peek() {
            Tok::KwClass => {
                self.bump();
                false
            }
            Tok::KwInterface => {
                self.bump();
                true
            }
            other => {
                return Err(self.err(format!(
                    "expected `class` or `interface`, found {}",
                    other.describe()
                )))
            }
        };
        let (name, _) = self.ident()?;
        let type_params = if *self.peek() == Tok::Lt {
            self.type_params()?
        } else {
            Vec::new()
        };
        let mut superclass = None;
        let mut interfaces = Vec::new();
        if self.eat(Tok::KwExtends) {
            if is_interface {
                // Interfaces may extend several interfaces.
                interfaces.push(self.type_ref()?);
                while self.eat(Tok::Comma) {
                    interfaces.push(self.type_ref()?);
                }
            } else {
                superclass = Some(self.type_ref()?);
            }
        }
        if self.eat(Tok::KwImplements) {
            interfaces.push(self.type_ref()?);
            while self.eat(Tok::Comma) {
                interfaces.push(self.type_ref()?);
            }
        }
        self.expect(Tok::LBrace)?;
        let mut fields = Vec::new();
        let mut methods = Vec::new();
        let mut ctor: Option<CtorDecl> = None;
        while !self.eat(Tok::RBrace) {
            if *self.peek() == Tok::Eof {
                return Err(self.err(format!("unterminated body of `{name}`")));
            }
            self.member(&name, is_interface, &mut fields, &mut methods, &mut ctor)?;
        }
        Ok(ClassDecl {
            name,
            is_interface,
            annotations,
            modifiers,
            type_params,
            superclass,
            interfaces,
            fields,
            methods,
            ctor,
            span: start.to(self.prev_span()),
        })
    }

    fn type_params(&mut self) -> PResult<Vec<TypeParam>> {
        self.expect(Tok::Lt)?;
        let mut out = Vec::new();
        loop {
            let (name, span) = self.ident()?;
            let bound = if self.eat(Tok::KwExtends) {
                Some(self.type_ref()?)
            } else {
                None
            };
            out.push(TypeParam { name, bound, span });
            if !self.eat(Tok::Comma) {
                break;
            }
        }
        self.expect_gt()?;
        Ok(out)
    }

    fn member(
        &mut self,
        class_name: &str,
        is_interface: bool,
        fields: &mut Vec<FieldDecl>,
        methods: &mut Vec<MethodDecl>,
        ctor: &mut Option<CtorDecl>,
    ) -> PResult<()> {
        let start = self.span();
        let annotations = self.annotations()?;
        let modifiers = self.modifiers();

        // Constructor: `Name (` where Name == enclosing class.
        if let Tok::Ident(id) = self.peek() {
            if id == class_name && *self.peek_at(1) == Tok::LParen {
                let c = self.ctor_decl()?;
                if ctor.is_some() {
                    return Err(Diagnostic::error(
                        "parser",
                        c.span,
                        format!(
                            "class `{class_name}` has more than one constructor (jlang allows one)"
                        ),
                    ));
                }
                *ctor = Some(c);
                return Ok(());
            }
        }

        let ty = self.type_ref()?;
        let (name, _) = self.ident()?;
        if *self.peek() == Tok::LParen {
            // Method.
            let params = self.params()?;
            let body = if self.eat(Tok::Semi) {
                None
            } else {
                Some(self.block()?)
            };
            if body.is_none() && !is_interface && !modifiers.is_abstract {
                let is_native = annotations.iter().any(|a| a.name == "Native");
                if !is_native {
                    return Err(Diagnostic::error(
                        "parser",
                        start,
                        format!("method `{name}` has no body but is not abstract, @Native, or an interface method"),
                    ));
                }
            }
            methods.push(MethodDecl {
                name,
                annotations,
                modifiers,
                params,
                ret: ty,
                body,
                span: start.to(self.prev_span()),
            });
        } else {
            // Field(s): `T a = e, b;` — comma-separated declarators share type.
            let mut declared = vec![(name, self.field_init()?)];
            while self.eat(Tok::Comma) {
                let (n, _) = self.ident()?;
                declared.push((n, self.field_init()?));
            }
            self.expect(Tok::Semi)?;
            for (n, init) in declared {
                fields.push(FieldDecl {
                    name: n,
                    ty: ty.clone(),
                    annotations: annotations.clone(),
                    modifiers,
                    init,
                    span: start.to(self.prev_span()),
                });
            }
        }
        Ok(())
    }

    fn field_init(&mut self) -> PResult<Option<Expr>> {
        if self.eat(Tok::Assign) {
            Ok(Some(self.expr()?))
        } else {
            Ok(None)
        }
    }

    fn ctor_decl(&mut self) -> PResult<CtorDecl> {
        let start = self.span();
        self.ident()?; // class name, validated by caller
        let params = self.params()?;
        self.expect(Tok::LBrace)?;
        // Optional `super(...)` as the first statement.
        let mut super_args = None;
        if *self.peek() == Tok::KwSuper && *self.peek_at(1) == Tok::LParen {
            self.bump();
            self.bump();
            let mut args = Vec::new();
            if *self.peek() != Tok::RParen {
                args.push(self.expr()?);
                while self.eat(Tok::Comma) {
                    args.push(self.expr()?);
                }
            }
            self.expect(Tok::RParen)?;
            self.expect(Tok::Semi)?;
            super_args = Some(args);
        }
        let mut stmts = Vec::new();
        while !self.eat(Tok::RBrace) {
            stmts.push(self.stmt()?);
        }
        Ok(CtorDecl {
            params,
            super_args,
            body: Block { stmts },
            span: start.to(self.prev_span()),
        })
    }

    fn params(&mut self) -> PResult<Vec<Param>> {
        self.expect(Tok::LParen)?;
        let mut out = Vec::new();
        if *self.peek() != Tok::RParen {
            loop {
                let start = self.span();
                let is_final = self.eat(Tok::KwFinal);
                let ty = self.type_ref()?;
                let (name, _) = self.ident()?;
                out.push(Param {
                    name,
                    ty,
                    is_final,
                    span: start.to(self.prev_span()),
                });
                if !self.eat(Tok::Comma) {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        Ok(out)
    }

    // ------------------------------------------------------------------
    // Types
    // ------------------------------------------------------------------

    fn type_ref(&mut self) -> PResult<TypeRef> {
        let base = match self.peek().clone() {
            Tok::KwVoid => {
                self.bump();
                TypeRef::Void
            }
            Tok::KwInt => {
                self.bump();
                TypeRef::Int
            }
            Tok::KwLong => {
                self.bump();
                TypeRef::Long
            }
            Tok::KwFloat => {
                self.bump();
                TypeRef::Float
            }
            Tok::KwDouble => {
                self.bump();
                TypeRef::Double
            }
            Tok::KwBoolean => {
                self.bump();
                TypeRef::Boolean
            }
            Tok::Ident(name) => {
                let span = self.span();
                self.bump();
                let mut args = Vec::new();
                if *self.peek() == Tok::Lt && self.looks_like_type_args() {
                    self.bump();
                    loop {
                        args.push(self.type_ref()?);
                        if !self.eat(Tok::Comma) {
                            break;
                        }
                    }
                    self.expect_gt()?;
                }
                TypeRef::Named {
                    name,
                    args,
                    span: span.to(self.prev_span()),
                }
            }
            other => return Err(self.err(format!("expected a type, found {}", other.describe()))),
        };
        let mut ty = base;
        while *self.peek() == Tok::LBracket && *self.peek_at(1) == Tok::RBracket {
            self.bump();
            self.bump();
            ty = TypeRef::Array(Box::new(ty));
        }
        Ok(ty)
    }

    /// Heuristic lookahead after `Ident <`: are we at generic type
    /// arguments (`Foo<Bar, Baz>`) or a comparison (`a < b`)? Scans forward
    /// over type-ish tokens for a closing `>`.
    fn looks_like_type_args(&self) -> bool {
        let mut i = 1; // index of token after `<`
        let mut depth = 1i32;
        loop {
            match self.peek_at(i) {
                Tok::Ident(_)
                | Tok::Comma
                | Tok::Dot
                | Tok::LBracket
                | Tok::RBracket
                | Tok::KwInt
                | Tok::KwLong
                | Tok::KwFloat
                | Tok::KwDouble
                | Tok::KwBoolean => {}
                Tok::Lt => depth += 1,
                Tok::Gt => {
                    depth -= 1;
                    if depth == 0 {
                        return true;
                    }
                }
                Tok::Shr => {
                    depth -= 2;
                    if depth <= 0 {
                        return true;
                    }
                }
                _ => return false,
            }
            i += 1;
            if i > 64 {
                return false;
            }
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn block(&mut self) -> PResult<Block> {
        self.expect(Tok::LBrace)?;
        let mut stmts = Vec::new();
        while !self.eat(Tok::RBrace) {
            if *self.peek() == Tok::Eof {
                return Err(self.err("unterminated block".to_string()));
            }
            stmts.push(self.stmt()?);
        }
        Ok(Block { stmts })
    }

    /// A block, or a single statement wrapped in a block (for `if (c) s;`).
    fn block_or_stmt(&mut self) -> PResult<Block> {
        if *self.peek() == Tok::LBrace {
            self.block()
        } else {
            Ok(Block {
                stmts: vec![self.stmt()?],
            })
        }
    }

    fn stmt(&mut self) -> PResult<Stmt> {
        let start = self.span();
        match self.peek().clone() {
            Tok::LBrace => Ok(Stmt::Block(self.block()?)),
            Tok::KwReturn => {
                self.bump();
                let value = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                Ok(Stmt::Return {
                    value,
                    span: start.to(self.prev_span()),
                })
            }
            Tok::KwBreak => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Break(start))
            }
            Tok::KwContinue => {
                self.bump();
                self.expect(Tok::Semi)?;
                Ok(Stmt::Continue(start))
            }
            Tok::KwIf => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let then_branch = self.block_or_stmt()?;
                let else_branch = if self.eat(Tok::KwElse) {
                    Some(if *self.peek() == Tok::KwIf {
                        Block {
                            stmts: vec![self.stmt()?],
                        }
                    } else {
                        self.block_or_stmt()?
                    })
                } else {
                    None
                };
                Ok(Stmt::If {
                    cond,
                    then_branch,
                    else_branch,
                    span: start.to(self.prev_span()),
                })
            }
            Tok::KwWhile => {
                self.bump();
                self.expect(Tok::LParen)?;
                let cond = self.expr()?;
                self.expect(Tok::RParen)?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::While {
                    cond,
                    body,
                    span: start.to(self.prev_span()),
                })
            }
            Tok::KwFor => {
                self.bump();
                self.expect(Tok::LParen)?;
                let init = if self.eat(Tok::Semi) {
                    None
                } else {
                    Some(Box::new(self.simple_stmt(true)?))
                };
                let cond = if *self.peek() == Tok::Semi {
                    None
                } else {
                    Some(self.expr()?)
                };
                self.expect(Tok::Semi)?;
                let update = if *self.peek() == Tok::RParen {
                    None
                } else {
                    Some(Box::new(self.simple_stmt_no_semi()?))
                };
                self.expect(Tok::RParen)?;
                let body = self.block_or_stmt()?;
                Ok(Stmt::For {
                    init,
                    cond,
                    update,
                    body,
                    span: start.to(self.prev_span()),
                })
            }
            _ => self.simple_stmt(true),
        }
    }

    /// A local-declaration / assignment / inc-dec / expression statement.
    /// When `want_semi` is set, a trailing `;` is required and consumed.
    fn simple_stmt(&mut self, want_semi: bool) -> PResult<Stmt> {
        let stmt = self.simple_stmt_no_semi()?;
        if want_semi {
            self.expect(Tok::Semi)?;
        }
        Ok(stmt)
    }

    fn simple_stmt_no_semi(&mut self) -> PResult<Stmt> {
        let start = self.span();
        // Local declaration? Try `[final] Type Ident` with backtracking.
        let save = self.pos;
        let is_final = self.eat(Tok::KwFinal);
        if self.starts_type() {
            if let Ok(ty) = self.type_ref() {
                if let Tok::Ident(_) = self.peek() {
                    let (name, _) = self.ident()?;
                    let init = if self.eat(Tok::Assign) {
                        Some(self.expr()?)
                    } else {
                        None
                    };
                    return Ok(Stmt::Local {
                        name,
                        ty,
                        init,
                        is_final,
                        span: start.to(self.prev_span()),
                    });
                }
            }
            self.pos = save;
            self.pending_gt = false;
        } else if is_final {
            return Err(self.err("`final` must begin a local declaration".to_string()));
        }

        // Assignment / inc-dec / expression statement.
        let e = self.expr()?;
        match self.peek().clone() {
            Tok::Assign
            | Tok::PlusAssign
            | Tok::MinusAssign
            | Tok::StarAssign
            | Tok::SlashAssign
            | Tok::PercentAssign => {
                let op = match self.bump() {
                    Tok::Assign => None,
                    Tok::PlusAssign => Some(BinOp::Add),
                    Tok::MinusAssign => Some(BinOp::Sub),
                    Tok::StarAssign => Some(BinOp::Mul),
                    Tok::SlashAssign => Some(BinOp::Div),
                    Tok::PercentAssign => Some(BinOp::Rem),
                    _ => unreachable!(),
                };
                let target = self.expr_to_lvalue(e)?;
                let value = self.expr()?;
                Ok(Stmt::Assign {
                    target,
                    op,
                    value,
                    span: start.to(self.prev_span()),
                })
            }
            Tok::PlusPlus | Tok::MinusMinus => {
                let inc = self.bump() == Tok::PlusPlus;
                let target = self.expr_to_lvalue(e)?;
                Ok(Stmt::IncDec {
                    target,
                    inc,
                    span: start.to(self.prev_span()),
                })
            }
            _ => Ok(Stmt::Expr(e)),
        }
    }

    fn starts_type(&self) -> bool {
        matches!(
            self.peek(),
            Tok::KwInt
                | Tok::KwLong
                | Tok::KwFloat
                | Tok::KwDouble
                | Tok::KwBoolean
                | Tok::KwVoid
                | Tok::Ident(_)
        )
    }

    fn expr_to_lvalue(&self, e: Expr) -> PResult<LValue> {
        match e {
            Expr::Name(n, s) => Ok(LValue::Name(n, s)),
            Expr::Field { obj, name, span } => Ok(LValue::Field {
                obj: *obj,
                name,
                span,
            }),
            Expr::Index { arr, idx, span } => Ok(LValue::Index {
                arr: *arr,
                idx: *idx,
                span,
            }),
            other => Err(Diagnostic::error(
                "parser",
                other.span(),
                "expression is not assignable".to_string(),
            )),
        }
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    pub fn expr(&mut self) -> PResult<Expr> {
        self.depth += 1;
        if self.depth > MAX_EXPR_DEPTH {
            self.depth -= 1;
            return Err(self.err(format!(
                "expression nested deeper than {MAX_EXPR_DEPTH} levels"
            )));
        }
        let r = self.ternary();
        self.depth -= 1;
        r
    }

    fn ternary(&mut self) -> PResult<Expr> {
        let cond = self.logic_or()?;
        if self.eat(Tok::Question) {
            let start = cond.span();
            let then_val = self.expr()?;
            self.expect(Tok::Colon)?;
            let else_val = self.expr()?;
            Ok(Expr::Ternary {
                cond: Box::new(cond),
                then_val: Box::new(then_val),
                else_val: Box::new(else_val),
                span: start.to(self.prev_span()),
            })
        } else {
            Ok(cond)
        }
    }

    fn binary_level(
        &mut self,
        next: fn(&mut Self) -> PResult<Expr>,
        ops: &[(Tok, BinOp)],
    ) -> PResult<Expr> {
        let mut lhs = next(self)?;
        'outer: loop {
            for (tok, op) in ops {
                if self.peek() == tok {
                    self.bump();
                    let rhs = next(self)?;
                    let span = lhs.span().to(rhs.span());
                    lhs = Expr::Binary {
                        op: *op,
                        lhs: Box::new(lhs),
                        rhs: Box::new(rhs),
                        span,
                    };
                    continue 'outer;
                }
            }
            return Ok(lhs);
        }
    }

    fn logic_or(&mut self) -> PResult<Expr> {
        self.binary_level(Self::logic_and, &[(Tok::OrOr, BinOp::Or)])
    }

    fn logic_and(&mut self) -> PResult<Expr> {
        self.binary_level(Self::bit_or, &[(Tok::AndAnd, BinOp::And)])
    }

    fn bit_or(&mut self) -> PResult<Expr> {
        self.binary_level(Self::bit_xor, &[(Tok::BitOr, BinOp::BitOr)])
    }

    fn bit_xor(&mut self) -> PResult<Expr> {
        self.binary_level(Self::bit_and, &[(Tok::BitXor, BinOp::BitXor)])
    }

    fn bit_and(&mut self) -> PResult<Expr> {
        self.binary_level(Self::equality, &[(Tok::BitAnd, BinOp::BitAnd)])
    }

    fn equality(&mut self) -> PResult<Expr> {
        self.binary_level(
            Self::relational,
            &[(Tok::EqEq, BinOp::Eq), (Tok::NotEq, BinOp::Ne)],
        )
    }

    fn relational(&mut self) -> PResult<Expr> {
        let mut lhs = self.shift()?;
        loop {
            // `instanceof`
            if *self.peek() == Tok::KwInstanceof {
                self.bump();
                let ty = self.type_ref()?;
                let span = lhs.span().to(self.prev_span());
                lhs = Expr::InstanceOf {
                    expr: Box::new(lhs),
                    ty,
                    span,
                };
                continue;
            }
            let op = match self.peek() {
                Tok::Lt => BinOp::Lt,
                Tok::Le => BinOp::Le,
                Tok::Gt => BinOp::Gt,
                Tok::Ge => BinOp::Ge,
                _ => return Ok(lhs),
            };
            self.bump();
            let rhs = self.shift()?;
            let span = lhs.span().to(rhs.span());
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn shift(&mut self) -> PResult<Expr> {
        self.binary_level(
            Self::additive,
            &[(Tok::Shl, BinOp::Shl), (Tok::Shr, BinOp::Shr)],
        )
    }

    fn additive(&mut self) -> PResult<Expr> {
        self.binary_level(
            Self::multiplicative,
            &[(Tok::Plus, BinOp::Add), (Tok::Minus, BinOp::Sub)],
        )
    }

    fn multiplicative(&mut self) -> PResult<Expr> {
        self.binary_level(
            Self::unary,
            &[
                (Tok::Star, BinOp::Mul),
                (Tok::Slash, BinOp::Div),
                (Tok::Percent, BinOp::Rem),
            ],
        )
    }

    fn unary(&mut self) -> PResult<Expr> {
        let start = self.span();
        match self.peek().clone() {
            Tok::Minus => {
                self.bump();
                let e = self.unary()?;
                let span = start.to(e.span());
                Ok(Expr::Unary {
                    op: UnOp::Neg,
                    expr: Box::new(e),
                    span,
                })
            }
            Tok::Not => {
                self.bump();
                let e = self.unary()?;
                let span = start.to(e.span());
                Ok(Expr::Unary {
                    op: UnOp::Not,
                    expr: Box::new(e),
                    span,
                })
            }
            Tok::LParen if self.is_cast() => {
                self.bump();
                let ty = self.type_ref()?;
                self.expect(Tok::RParen)?;
                let e = self.unary()?;
                let span = start.to(e.span());
                Ok(Expr::Cast {
                    ty,
                    expr: Box::new(e),
                    span,
                })
            }
            _ => self.postfix(),
        }
    }

    /// Disambiguate `(T) expr` casts from parenthesized expressions.
    fn is_cast(&self) -> bool {
        debug_assert_eq!(*self.peek(), Tok::LParen);
        match self.peek_at(1) {
            // `(int)`, `(float)`, ... are always casts.
            Tok::KwInt | Tok::KwLong | Tok::KwFloat | Tok::KwDouble | Tok::KwBoolean => true,
            Tok::Ident(_) => {
                // `(Name)` followed by something that can begin an operand.
                let mut i = 2;
                // Skip over `[]` pairs: `(Foo[])`.
                while *self.peek_at(i) == Tok::LBracket && *self.peek_at(i + 1) == Tok::RBracket {
                    i += 2;
                }
                if *self.peek_at(i) != Tok::RParen {
                    return false;
                }
                matches!(
                    self.peek_at(i + 1),
                    Tok::Ident(_)
                        | Tok::IntLit(_)
                        | Tok::LongLit(_)
                        | Tok::FloatLit(_)
                        | Tok::DoubleLit(_)
                        | Tok::KwTrue
                        | Tok::KwFalse
                        | Tok::KwThis
                        | Tok::KwNew
                        | Tok::KwNull
                        | Tok::LParen
                        | Tok::Not
                )
            }
            _ => false,
        }
    }

    fn postfix(&mut self) -> PResult<Expr> {
        let mut e = self.primary()?;
        loop {
            match self.peek().clone() {
                Tok::Dot => {
                    self.bump();
                    let (name, _) = self.ident()?;
                    if *self.peek() == Tok::LParen {
                        let args = self.call_args()?;
                        let span = e.span().to(self.prev_span());
                        e = Expr::Call {
                            recv: Box::new(e),
                            name,
                            args,
                            span,
                        };
                    } else {
                        let span = e.span().to(self.prev_span());
                        e = Expr::Field {
                            obj: Box::new(e),
                            name,
                            span,
                        };
                    }
                }
                Tok::LBracket => {
                    self.bump();
                    let idx = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    let span = e.span().to(self.prev_span());
                    e = Expr::Index {
                        arr: Box::new(e),
                        idx: Box::new(idx),
                        span,
                    };
                }
                _ => return Ok(e),
            }
        }
    }

    fn call_args(&mut self) -> PResult<Vec<Expr>> {
        self.expect(Tok::LParen)?;
        let mut args = Vec::new();
        if *self.peek() != Tok::RParen {
            args.push(self.expr()?);
            while self.eat(Tok::Comma) {
                args.push(self.expr()?);
            }
        }
        self.expect(Tok::RParen)?;
        Ok(args)
    }

    fn primary(&mut self) -> PResult<Expr> {
        let start = self.span();
        match self.peek().clone() {
            Tok::IntLit(v) => {
                self.bump();
                Ok(Expr::IntLit(v, start))
            }
            Tok::LongLit(v) => {
                self.bump();
                Ok(Expr::LongLit(v, start))
            }
            Tok::FloatLit(v) => {
                self.bump();
                Ok(Expr::FloatLit(v, start))
            }
            Tok::DoubleLit(v) => {
                self.bump();
                Ok(Expr::DoubleLit(v, start))
            }
            Tok::StrLit(s) => {
                self.bump();
                Ok(Expr::StrLit(s, start))
            }
            Tok::KwTrue => {
                self.bump();
                Ok(Expr::BoolLit(true, start))
            }
            Tok::KwFalse => {
                self.bump();
                Ok(Expr::BoolLit(false, start))
            }
            Tok::KwNull => {
                self.bump();
                Ok(Expr::NullLit(start))
            }
            Tok::KwThis => {
                self.bump();
                Ok(Expr::This(start))
            }
            Tok::KwSuper => {
                self.bump();
                self.expect(Tok::Dot)?;
                let (name, _) = self.ident()?;
                let args = self.call_args()?;
                Ok(Expr::SuperCall {
                    name,
                    args,
                    span: start.to(self.prev_span()),
                })
            }
            Tok::KwNew => {
                self.bump();
                let ty = self.type_ref()?;
                // `new T[len]` — type_ref won't have consumed `[` because it
                // only consumes `[]` pairs.
                if self.eat(Tok::LBracket) {
                    let len = self.expr()?;
                    self.expect(Tok::RBracket)?;
                    return Ok(Expr::NewArray {
                        elem: ty,
                        len: Box::new(len),
                        span: start.to(self.prev_span()),
                    });
                }
                let args = self.call_args()?;
                Ok(Expr::New {
                    ty,
                    args,
                    span: start.to(self.prev_span()),
                })
            }
            Tok::Ident(name) => {
                self.bump();
                if *self.peek() == Tok::LParen {
                    // Unqualified call: `foo(...)` on implicit `this`.
                    let args = self.call_args()?;
                    let span = start.to(self.prev_span());
                    Ok(Expr::Call {
                        recv: Box::new(Expr::This(start)),
                        name,
                        args,
                        span,
                    })
                } else {
                    Ok(Expr::Name(name, start))
                }
            }
            Tok::LParen => {
                self.bump();
                let e = self.expr()?;
                self.expect(Tok::RParen)?;
                Ok(e)
            }
            other => Err(self.err(format!(
                "expected an expression, found {}",
                other.describe()
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_ok(src: &str) -> Unit {
        match parse_unit(0, src) {
            Ok(u) => u,
            Err(ds) => panic!("parse failed:\n{}", crate::span::render_diags(&ds)),
        }
    }

    #[test]
    fn parses_minimal_class() {
        let u = parse_ok("class A { }");
        assert_eq!(u.classes.len(), 1);
        assert_eq!(u.classes[0].name, "A");
        assert!(!u.classes[0].is_interface);
    }

    #[test]
    fn parses_interface_with_method() {
        let u = parse_ok("interface Solver { float solve(float self, int index); }");
        let c = &u.classes[0];
        assert!(c.is_interface);
        assert_eq!(c.methods.len(), 1);
        assert!(c.methods[0].body.is_none());
        assert_eq!(c.methods[0].params.len(), 2);
    }

    #[test]
    fn parses_annotations() {
        let u = parse_ok(
            "@WootinJ class A { @Global void k(int x) { } @Native(\"sqrtf\") float s(float x); }",
        );
        let c = &u.classes[0];
        assert_eq!(c.annotations[0].name, "WootinJ");
        assert_eq!(c.methods[0].annotations[0].name, "Global");
        assert_eq!(c.methods[1].annotations[0].arg.as_deref(), Some("sqrtf"));
    }

    #[test]
    fn parses_generics_with_shr_split() {
        let u =
            parse_ok("class Dif1DSolver extends OneDSolver<ScalarFloat, Grid<ScalarFloat>> { }");
        let c = &u.classes[0];
        match c.superclass.as_ref().unwrap() {
            TypeRef::Named { name, args, .. } => {
                assert_eq!(name, "OneDSolver");
                assert_eq!(args.len(), 2);
                match &args[1] {
                    TypeRef::Named { name, args, .. } => {
                        assert_eq!(name, "Grid");
                        assert_eq!(args.len(), 1);
                    }
                    other => panic!("unexpected: {other:?}"),
                }
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn parses_type_params_with_bounds() {
        let u = parse_ok("class Box<T extends Solver, U> { T item; }");
        let c = &u.classes[0];
        assert_eq!(c.type_params.len(), 2);
        assert!(c.type_params[0].bound.is_some());
        assert!(c.type_params[1].bound.is_none());
    }

    #[test]
    fn parses_fields_and_ctor() {
        let u = parse_ok(
            "class Stencil { Solver solver; CUDA cuda = new CUDA(); int n = 3, m; \
             Stencil(Solver s) { super(); solver = s; } }",
        );
        let c = &u.classes[0];
        assert_eq!(c.fields.len(), 4);
        assert!(c.ctor.is_some());
        assert!(c.ctor.as_ref().unwrap().super_args.is_some());
    }

    #[test]
    fn rejects_two_ctors() {
        let r = parse_unit(0, "class A { A() { } A() { } }");
        assert!(r.is_err());
    }

    #[test]
    fn parses_statements() {
        let u = parse_ok(
            "class A { void m(int n) { \
               int x = 0; \
               for (int i = 0; i < n; i++) { x += i; } \
               while (x > 0) x--; \
               if (x == 0) { return; } else { x = 1; } \
             } }",
        );
        let body = u.classes[0].methods[0].body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 4);
    }

    #[test]
    fn parses_array_ops() {
        let u = parse_ok(
            "class A { float[] m(int n) { float[] a = new float[n]; a[0] = 1.0f; \
             int l = a.length; return a; } }",
        );
        let body = u.classes[0].methods[0].body.as_ref().unwrap();
        assert_eq!(body.stmts.len(), 4);
    }

    #[test]
    fn parses_forbidden_constructs_for_rules_checker() {
        // The parser must accept these so jrules can reject them.
        parse_ok("class A { int m(int x, Object o) { int y = x > 0 ? 1 : 2; boolean b = o == null; boolean c = o instanceof A; return y; } }");
    }

    #[test]
    fn parses_casts_vs_parens() {
        let u = parse_ok("class A { int m(double d, int a, int b) { int x = (int) d; int y = (a) - b; return x + y; } }");
        let body = u.classes[0].methods[0].body.as_ref().unwrap();
        // First local's init is a cast, second's is a binary op.
        match &body.stmts[0] {
            Stmt::Local {
                init: Some(Expr::Cast { .. }),
                ..
            } => {}
            other => panic!("expected cast, got {other:?}"),
        }
        match &body.stmts[1] {
            Stmt::Local {
                init: Some(Expr::Binary { op: BinOp::Sub, .. }),
                ..
            } => {}
            other => panic!("expected subtraction, got {other:?}"),
        }
    }

    #[test]
    fn parses_paper_listing_one() {
        // Adapted from Listing 1 of the paper.
        parse_ok(
            "class Dif1DSolver extends OneDSolver<ScalarFloat, FloatGridDblB, EmptyContext> { \
               @Override ScalarFloat solve(ScalarFloat left, ScalarFloat right, ScalarFloat self, \
                                           FloatGridDblB q, EmptyContext context) { \
                 float value = 0.1f * (left.val() + right.val()) + 0.8f * self.val(); \
                 return new ScalarFloat(value); \
               } }",
        );
    }

    #[test]
    fn parses_paper_listing_four_shape() {
        // Adapted from Listing 4: fields, @Global kernel, MPI/CUDA calls.
        let u = parse_ok(
            "@WootinJ class StencilOnGpuAndMPI extends Stencil { \
               Solver solver; \
               Generator generator; \
               StencilOnGpuAndMPI(Solver s, Generator g) { solver = s; generator = g; } \
               void run(int length, int updateCnt) { \
                 int rank = MPI.rank(); \
                 float[] array = generator.make(length, rank); \
                 float[] arrayOnGPU = CUDA.copyToGPU(array, length); \
                 CudaConfig conf = new CudaConfig(new dim3(length), new dim3(1)); \
                 for (int i = 0; i < updateCnt; i++) runGPU(conf, arrayOnGPU); \
               } \
               @Global void runGPU(CudaConfig conf, float[] array) { \
                 int x = CUDA.threadIdxX(); \
                 array[x] = solver.solve(array[x], x); \
               } }",
        );
        let c = &u.classes[0];
        assert_eq!(c.methods.len(), 2);
        assert_eq!(c.methods[1].annotations[0].name, "Global");
    }

    #[test]
    fn unqualified_call_becomes_this_call() {
        let u = parse_ok("class A { void a() { b(); } void b() { } }");
        let body = u.classes[0].methods[0].body.as_ref().unwrap();
        match &body.stmts[0] {
            Stmt::Expr(Expr::Call { recv, .. }) => {
                assert!(matches!(**recv, Expr::This(_)));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn error_messages_carry_line_numbers() {
        let err = parse_unit(0, "class A {\n  void m() {\n    int x = ;\n  }\n}").unwrap_err();
        assert!(err[0].to_string().contains("line 3"), "{}", err[0]);
    }
}
