//! The class table: every declared class/interface with resolved
//! signatures, field layouts, and lookup helpers used by the type checker,
//! the rules checker, the interpreter, and the translator.

use std::collections::HashMap;

use crate::ast;
use crate::span::{DiagResult, Diagnostic, Span};
use crate::tast::{TBlock, TExpr};
use crate::types::{ClassId, Type, OBJECT};

/// Resolved formal parameter.
#[derive(Debug, Clone)]
pub struct ParamInfo {
    pub name: String,
    pub ty: Type,
    pub is_final: bool,
    pub span: Span,
}

/// Resolved field (instance or static).
#[derive(Debug, Clone)]
pub struct FieldInfo {
    pub name: String,
    /// Declared type in terms of the *declaring* class's type variables.
    pub ty: Type,
    pub is_final: bool,
    /// `@Shared` — CUDA shared memory.
    pub is_shared: bool,
    /// Untyped initializer, consumed by the type checker.
    pub ast_init: Option<ast::Expr>,
    /// Typed initializer, filled in by the type checker.
    pub init: Option<TExpr>,
    pub span: Span,
}

/// Resolved method.
#[derive(Debug, Clone)]
pub struct MethodInfo {
    pub name: String,
    pub params: Vec<ParamInfo>,
    /// Return type in terms of the declaring class's type variables.
    pub ret: Type,
    pub is_static: bool,
    pub is_abstract: bool,
    /// `@Native("key")` — dispatched to a registered host intrinsic.
    pub native: Option<String>,
    /// `@Global` — a CUDA kernel entry.
    pub is_global: bool,
    /// Untyped body, consumed by the type checker.
    pub ast_body: Option<ast::Block>,
    /// Typed body, filled in by the type checker.
    pub body: Option<TBlock>,
    /// Number of frame slots (params + locals); filled by the type checker.
    pub frame_size: u32,
    pub span: Span,
}

/// Resolved constructor.
#[derive(Debug, Clone)]
pub struct CtorInfo {
    pub params: Vec<ParamInfo>,
    pub ast_super_args: Option<Vec<ast::Expr>>,
    pub ast_body: Option<ast::Block>,
    /// Typed `super(...)` arguments (empty when the superclass is Object).
    pub super_args: Vec<TExpr>,
    /// Typed constructor body.
    pub body: Option<TBlock>,
    pub frame_size: u32,
    pub span: Span,
}

/// Resolved type parameter.
#[derive(Debug, Clone)]
pub struct TypeParamInfo {
    pub name: String,
    /// Resolved upper bound (`Object` if omitted).
    pub bound: Type,
    pub span: Span,
}

/// A class or interface with fully resolved signatures.
#[derive(Debug, Clone)]
pub struct ClassInfo {
    pub id: ClassId,
    pub name: String,
    pub is_interface: bool,
    pub is_final: bool,
    pub is_abstract: bool,
    /// Raw annotations (`@WootinJ`, ...).
    pub annotations: Vec<ast::Annotation>,
    pub type_params: Vec<TypeParamInfo>,
    /// Resolved superclass (None only for `Object` and interfaces).
    pub superclass: Option<(ClassId, Vec<Type>)>,
    pub interfaces: Vec<(ClassId, Vec<Type>)>,
    /// Instance fields declared by this class (inherited fields excluded).
    pub fields: Vec<FieldInfo>,
    /// Static fields declared by this class.
    pub statics: Vec<FieldInfo>,
    pub methods: Vec<MethodInfo>,
    pub ctor: Option<CtorInfo>,
    /// Number of inherited instance fields (this class's fields start here).
    pub field_base: u32,
    /// Direct subclasses / direct implementors (filled at build time).
    pub subclasses: Vec<ClassId>,
    pub span: Span,
}

impl ClassInfo {
    pub fn has_annotation(&self, name: &str) -> bool {
        self.annotations.iter().any(|a| a.name == name)
    }

    /// Total instance field count including inherited fields.
    pub fn instance_size(&self) -> u32 {
        self.field_base + self.fields.len() as u32
    }
}

/// The complete class table for a loaded program.
#[derive(Debug, Clone, Default)]
pub struct ClassTable {
    pub classes: Vec<ClassInfo>,
    by_name: HashMap<String, ClassId>,
}

/// Result of a field lookup: declaring class, absolute slot, substituted type.
#[derive(Debug, Clone)]
pub struct FieldLookup {
    pub owner: ClassId,
    pub slot: u32,
    /// Index into `owner`'s own `fields`.
    pub index: u32,
    /// Field type rewritten into the *query* class's type variables.
    pub ty: Type,
    pub is_final: bool,
    pub is_shared: bool,
}

/// Result of a method lookup.
#[derive(Debug, Clone)]
pub struct MethodLookup {
    pub decl_class: ClassId,
    pub index: u32,
    /// Substitution mapping `decl_class`'s type vars into the query class's
    /// type context; apply to params/return with [`Type::subst`].
    pub subst: Vec<Type>,
}

impl ClassTable {
    pub fn class(&self, id: ClassId) -> &ClassInfo {
        &self.classes[id.0 as usize]
    }

    pub fn class_mut(&mut self, id: ClassId) -> &mut ClassInfo {
        &mut self.classes[id.0 as usize]
    }

    pub fn by_name(&self, name: &str) -> Option<ClassId> {
        self.by_name.get(name).copied()
    }

    pub fn name(&self, id: ClassId) -> &str {
        &self.class(id).name
    }

    pub fn method(&self, class: ClassId, index: u32) -> &MethodInfo {
        &self.class(class).methods[index as usize]
    }

    /// Iterate `(class id, class)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = &ClassInfo> {
        self.classes.iter()
    }

    /// Superclass chain starting at `id` (inclusive), each with the type
    /// arguments expressed in terms of `id`'s *own* type variables given
    /// the identity substitution.
    pub fn super_chain(&self, id: ClassId) -> Vec<(ClassId, Vec<Type>)> {
        let mut out = Vec::new();
        let own_args: Vec<Type> = (0..self.class(id).type_params.len())
            .map(|i| Type::Var(i as u32))
            .collect();
        let mut cur = Some((id, own_args));
        while let Some((cid, args)) = cur {
            let info = self.class(cid);
            cur = info
                .superclass
                .as_ref()
                .map(|(sid, sargs)| (*sid, sargs.iter().map(|t| t.subst(&args)).collect()));
            out.push((cid, args));
        }
        out
    }

    /// All supertypes of `Object(id, args)` including itself: superclass
    /// chain plus all transitively implemented interfaces, with composed
    /// substitutions.
    pub fn all_supertypes(&self, id: ClassId, args: &[Type]) -> Vec<(ClassId, Vec<Type>)> {
        let mut out: Vec<(ClassId, Vec<Type>)> = Vec::new();
        let mut work = vec![(id, args.to_vec())];
        while let Some((cid, cargs)) = work.pop() {
            if out.iter().any(|(c, a)| *c == cid && *a == cargs) {
                continue;
            }
            let info = self.class(cid);
            if let Some((sid, sargs)) = &info.superclass {
                work.push((*sid, sargs.iter().map(|t| t.subst(&cargs)).collect()));
            }
            for (iid, iargs) in &info.interfaces {
                work.push((*iid, iargs.iter().map(|t| t.subst(&cargs)).collect()));
            }
            out.push((cid, cargs));
        }
        out
    }

    /// Is `sub` a subclass/implementor of (or equal to) `sup`, ignoring
    /// type arguments?
    pub fn is_subclass_of(&self, sub: ClassId, sup: ClassId) -> bool {
        if sup == OBJECT {
            return true;
        }
        self.all_supertypes(sub, &[]).iter().any(|(c, _)| *c == sup)
    }

    /// Structural subtyping on resolved types (invariant generics and
    /// arrays, `null` below every reference type).
    pub fn is_subtype(&self, sub: &Type, sup: &Type) -> bool {
        match (sub, sup) {
            _ if sub == sup => true,
            (Type::Null, t) if t.is_reference() => true,
            (Type::Object(sid, sargs), Type::Object(pid, pargs)) => self
                .all_supertypes(*sid, sargs)
                .iter()
                .any(|(c, a)| c == pid && a == pargs),
            (Type::Array(_), Type::Object(pid, _)) => *pid == OBJECT,
            (Type::Var(_), Type::Object(pid, pargs)) if *pid == OBJECT && pargs.is_empty() => true,
            _ => false,
        }
    }

    /// Look up an instance field by name, walking up the superclass chain.
    pub fn lookup_field(&self, class: ClassId, name: &str) -> Option<FieldLookup> {
        for (cid, args) in self.super_chain(class) {
            let info = self.class(cid);
            if let Some((i, f)) = info.fields.iter().enumerate().find(|(_, f)| f.name == name) {
                return Some(FieldLookup {
                    owner: cid,
                    slot: info.field_base + i as u32,
                    index: i as u32,
                    ty: f.ty.subst(&args),
                    is_final: f.is_final,
                    is_shared: f.is_shared,
                });
            }
        }
        None
    }

    /// Look up a static field by name on exactly `class`.
    pub fn lookup_static(&self, class: ClassId, name: &str) -> Option<(u32, &FieldInfo)> {
        self.class(class)
            .statics
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (i as u32, f))
    }

    /// Look up a method by name: superclass chain first, then interfaces.
    pub fn lookup_method(&self, class: ClassId, name: &str) -> Option<MethodLookup> {
        for (cid, args) in self.all_supertypes(class, &identity_args(self, class)) {
            let info = self.class(cid);
            if let Some((i, _)) = info
                .methods
                .iter()
                .enumerate()
                .find(|(_, m)| m.name == name)
            {
                return Some(MethodLookup {
                    decl_class: cid,
                    index: i as u32,
                    subst: args,
                });
            }
        }
        None
    }

    /// Resolve the *implementation* of `name` for runtime class `class`:
    /// the most-derived non-abstract declaration found on the superclass
    /// chain. Used by virtual dispatch in the interpreter and devirtualizer.
    pub fn resolve_impl(&self, class: ClassId, name: &str) -> Option<(ClassId, u32)> {
        for (cid, _) in self.super_chain(class) {
            let info = self.class(cid);
            if let Some((i, m)) = info
                .methods
                .iter()
                .enumerate()
                .find(|(_, m)| m.name == name)
            {
                if m.ast_body.is_some() || m.body.is_some() || m.native.is_some() {
                    return Some((cid, i as u32));
                }
            }
        }
        None
    }

    /// Is this class a leaf (no declared subclasses)? Used by the
    /// strict-final analysis: "final class (i.e. no subclasses)".
    pub fn is_leaf(&self, id: ClassId) -> bool {
        self.class(id).subclasses.is_empty()
    }

    /// Resolve a syntactic type reference against this table.
    ///
    /// `type_params` are the enclosing class's parameters (for `Var`
    /// resolution). Checks type-argument arity.
    pub fn resolve_type(
        &self,
        type_params: &[TypeParamInfo],
        tr: &ast::TypeRef,
    ) -> Result<Type, Diagnostic> {
        match tr {
            ast::TypeRef::Void => Ok(Type::Void),
            ast::TypeRef::Int => Ok(Type::Int),
            ast::TypeRef::Long => Ok(Type::Long),
            ast::TypeRef::Float => Ok(Type::Float),
            ast::TypeRef::Double => Ok(Type::Double),
            ast::TypeRef::Boolean => Ok(Type::Boolean),
            ast::TypeRef::Array(elem) => {
                Ok(Type::Array(Box::new(self.resolve_type(type_params, elem)?)))
            }
            ast::TypeRef::Named { name, args, span } => {
                if name == "String" {
                    return Ok(Type::Str);
                }
                if let Some(i) = type_params.iter().position(|p| &p.name == name) {
                    if !args.is_empty() {
                        return Err(Diagnostic::error(
                            "resolver",
                            *span,
                            format!("type parameter `{name}` cannot take type arguments"),
                        ));
                    }
                    return Ok(Type::Var(i as u32));
                }
                let id = self.by_name(name).ok_or_else(|| {
                    Diagnostic::error("resolver", *span, format!("unknown type `{name}`"))
                })?;
                let want = self.class(id).type_params.len();
                if args.len() != want {
                    return Err(Diagnostic::error(
                        "resolver",
                        *span,
                        format!(
                            "`{name}` expects {want} type argument(s), found {}",
                            args.len()
                        ),
                    ));
                }
                let rargs = args
                    .iter()
                    .map(|a| self.resolve_type(type_params, a))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Type::Object(id, rargs))
            }
        }
    }

    /// Human-readable rendering of a type (class ids replaced by names).
    pub fn show_type(&self, t: &Type) -> String {
        match t {
            Type::Object(id, args) => {
                let mut s = self.name(*id).to_string();
                if !args.is_empty() {
                    s.push('<');
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            s.push_str(", ");
                        }
                        s.push_str(&self.show_type(a));
                    }
                    s.push('>');
                }
                s
            }
            Type::Array(e) => format!("{}[]", self.show_type(e)),
            other => other.to_string(),
        }
    }
}

fn identity_args(table: &ClassTable, id: ClassId) -> Vec<Type> {
    (0..table.class(id).type_params.len())
        .map(|i| Type::Var(i as u32))
        .collect()
}

/// Build a class table from parsed units (signatures only; bodies are typed
/// by [`crate::typeck`]).
pub fn build(units: Vec<ast::Unit>) -> DiagResult<ClassTable> {
    let mut diags = Vec::new();
    let mut table = ClassTable::default();

    // The implicit root class.
    table.classes.push(ClassInfo {
        id: OBJECT,
        name: "Object".to_string(),
        is_interface: false,
        is_final: false,
        is_abstract: false,
        annotations: Vec::new(),
        type_params: Vec::new(),
        superclass: None,
        interfaces: Vec::new(),
        fields: Vec::new(),
        statics: Vec::new(),
        methods: Vec::new(),
        ctor: None,
        field_base: 0,
        subclasses: Vec::new(),
        span: Span::default(),
    });
    table.by_name.insert("Object".to_string(), OBJECT);

    // Phase 1: collect names.
    let mut decls: Vec<ast::ClassDecl> = Vec::new();
    for unit in units {
        for c in unit.classes {
            if table.by_name.contains_key(&c.name) {
                diags.push(Diagnostic::error(
                    "resolver",
                    c.span,
                    format!("duplicate class `{}`", c.name),
                ));
                continue;
            }
            let id = ClassId(table.classes.len() as u32);
            table.by_name.insert(c.name.clone(), id);
            table.classes.push(ClassInfo {
                id,
                name: c.name.clone(),
                is_interface: c.is_interface,
                is_final: c.modifiers.is_final,
                is_abstract: c.modifiers.is_abstract,
                annotations: c.annotations.clone(),
                type_params: Vec::new(),
                superclass: None,
                interfaces: Vec::new(),
                fields: Vec::new(),
                statics: Vec::new(),
                methods: Vec::new(),
                ctor: None,
                field_base: 0,
                subclasses: Vec::new(),
                span: c.span,
            });
            decls.push(c);
        }
    }

    // Phase 2a: resolve type parameters (arity is known syntactically, so
    // bounds can reference any class, including generic ones).
    for decl in &decls {
        let id = table.by_name(&decl.name).unwrap();
        // First install params with Object bounds so that bounds referring
        // to sibling type params resolve.
        let placeholder: Vec<TypeParamInfo> = decl
            .type_params
            .iter()
            .map(|p| TypeParamInfo {
                name: p.name.clone(),
                bound: Type::object(OBJECT),
                span: p.span,
            })
            .collect();
        table.class_mut(id).type_params = placeholder;
        let mut resolved = table.class(id).type_params.clone();
        for (i, p) in decl.type_params.iter().enumerate() {
            if let Some(b) = &p.bound {
                match table.resolve_type(&table.class(id).type_params, b) {
                    Ok(Type::Object(bid, bargs)) => {
                        resolved[i].bound = Type::Object(bid, bargs);
                    }
                    Ok(other) => diags.push(Diagnostic::error(
                        "resolver",
                        p.span,
                        format!("type-parameter bound must be a class type, found `{other}`"),
                    )),
                    Err(d) => diags.push(d),
                }
            }
        }
        table.class_mut(id).type_params = resolved;
    }

    // Phase 2b: resolve supertypes.
    for decl in &decls {
        let id = table.by_name(&decl.name).unwrap();
        let tps = table.class(id).type_params.clone();
        if let Some(sc) = &decl.superclass {
            match table.resolve_type(&tps, sc) {
                Ok(Type::Object(sid, sargs)) => {
                    if table.class(sid).is_interface {
                        diags.push(Diagnostic::error(
                            "resolver",
                            decl.span,
                            format!(
                                "`{}` extends interface `{}`; use `implements`",
                                decl.name,
                                table.name(sid)
                            ),
                        ));
                    } else if table.class(sid).is_final {
                        diags.push(Diagnostic::error(
                            "resolver",
                            decl.span,
                            format!("cannot extend final class `{}`", table.name(sid)),
                        ));
                    } else {
                        table.class_mut(id).superclass = Some((sid, sargs));
                    }
                }
                Ok(other) => diags.push(Diagnostic::error(
                    "resolver",
                    decl.span,
                    format!("superclass must be a class type, found `{other}`"),
                )),
                Err(d) => diags.push(d),
            }
        } else if !decl.is_interface {
            table.class_mut(id).superclass = Some((OBJECT, Vec::new()));
        }
        let mut ifaces = Vec::new();
        for itf in &decl.interfaces {
            match table.resolve_type(&tps, itf) {
                Ok(Type::Object(iid, iargs)) => {
                    if !table.class(iid).is_interface {
                        diags.push(Diagnostic::error(
                            "resolver",
                            decl.span,
                            format!("`{}` is not an interface", table.name(iid)),
                        ));
                    } else {
                        ifaces.push((iid, iargs));
                    }
                }
                Ok(other) => diags.push(Diagnostic::error(
                    "resolver",
                    decl.span,
                    format!("implemented type must be an interface, found `{other}`"),
                )),
                Err(d) => diags.push(d),
            }
        }
        table.class_mut(id).interfaces = ifaces;
    }

    if !diags.is_empty() {
        return Err(diags);
    }

    // Detect inheritance cycles before computing layouts.
    for info in table.classes.iter() {
        let mut seen = vec![info.id];
        let mut cur = info.superclass.as_ref().map(|(s, _)| *s);
        while let Some(c) = cur {
            if seen.contains(&c) {
                return Err(vec![Diagnostic::error(
                    "resolver",
                    info.span,
                    format!("inheritance cycle involving `{}`", info.name),
                )]);
            }
            seen.push(c);
            cur = table.class(c).superclass.as_ref().map(|(s, _)| *s);
        }
    }

    // Phase 3: members.
    for decl in &decls {
        let id = table.by_name(&decl.name).unwrap();
        let tps = table.class(id).type_params.clone();
        let mut fields = Vec::new();
        let mut statics = Vec::new();
        for f in &decl.fields {
            let ty = match table.resolve_type(&tps, &f.ty) {
                Ok(t) => t,
                Err(d) => {
                    diags.push(d);
                    continue;
                }
            };
            if ty == Type::Void {
                diags.push(Diagnostic::error("resolver", f.span, "field of type void"));
                continue;
            }
            let info = FieldInfo {
                name: f.name.clone(),
                ty,
                is_final: f.modifiers.is_final,
                is_shared: f.annotations.iter().any(|a| a.name == "Shared"),
                ast_init: f.init.clone(),
                init: None,
                span: f.span,
            };
            if f.modifiers.is_static {
                if statics.iter().any(|x: &FieldInfo| x.name == f.name) {
                    diags.push(Diagnostic::error(
                        "resolver",
                        f.span,
                        format!("duplicate static field `{}`", f.name),
                    ));
                }
                statics.push(info);
            } else {
                if fields.iter().any(|x: &FieldInfo| x.name == f.name) {
                    diags.push(Diagnostic::error(
                        "resolver",
                        f.span,
                        format!("duplicate field `{}`", f.name),
                    ));
                }
                fields.push(info);
            }
        }
        let mut methods = Vec::new();
        for m in &decl.methods {
            if methods.iter().any(|x: &MethodInfo| x.name == m.name) {
                diags.push(Diagnostic::error(
                    "resolver",
                    m.span,
                    format!("duplicate method `{}` (jlang has no overloading)", m.name),
                ));
                continue;
            }
            let ret = match table.resolve_type(&tps, &m.ret) {
                Ok(t) => t,
                Err(d) => {
                    diags.push(d);
                    continue;
                }
            };
            let mut params = Vec::new();
            let mut ok = true;
            for p in &m.params {
                match table.resolve_type(&tps, &p.ty) {
                    Ok(Type::Void) => {
                        diags.push(Diagnostic::error(
                            "resolver",
                            p.span,
                            "parameter of type void",
                        ));
                        ok = false;
                    }
                    Ok(t) => params.push(ParamInfo {
                        name: p.name.clone(),
                        ty: t,
                        is_final: p.is_final,
                        span: p.span,
                    }),
                    Err(d) => {
                        diags.push(d);
                        ok = false;
                    }
                }
            }
            if !ok {
                continue;
            }
            let native = m
                .annotations
                .iter()
                .find(|a| a.name == "Native")
                .map(|a| a.arg.clone().unwrap_or_else(|| m.name.clone()));
            let is_abstract = m.body.is_none() && native.is_none();
            methods.push(MethodInfo {
                name: m.name.clone(),
                params,
                ret,
                is_static: m.modifiers.is_static,
                is_abstract,
                native,
                is_global: m.annotations.iter().any(|a| a.name == "Global"),
                ast_body: m.body.clone(),
                body: None,
                frame_size: 0,
                span: m.span,
            });
        }
        let ctor = match &decl.ctor {
            Some(c) => {
                let mut params = Vec::new();
                for p in &c.params {
                    match table.resolve_type(&tps, &p.ty) {
                        Ok(t) => params.push(ParamInfo {
                            name: p.name.clone(),
                            ty: t,
                            is_final: p.is_final,
                            span: p.span,
                        }),
                        Err(d) => diags.push(d),
                    }
                }
                Some(CtorInfo {
                    params,
                    ast_super_args: c.super_args.clone(),
                    ast_body: Some(c.body.clone()),
                    super_args: Vec::new(),
                    body: None,
                    frame_size: 0,
                    span: c.span,
                })
            }
            None if !decl.is_interface => Some(CtorInfo {
                params: Vec::new(),
                ast_super_args: None,
                ast_body: Some(ast::Block::default()),
                super_args: Vec::new(),
                body: None,
                frame_size: 0,
                span: decl.span,
            }),
            None => None,
        };
        let c = table.class_mut(id);
        c.fields = fields;
        c.statics = statics;
        c.methods = methods;
        c.ctor = ctor;
    }

    if !diags.is_empty() {
        return Err(diags);
    }

    // Phase 4: field layouts (field_base) + subclass lists, in topological
    // order over the (acyclic) superclass relation.
    let ids: Vec<ClassId> = table.classes.iter().map(|c| c.id).collect();
    let mut done = vec![false; ids.len()];
    fn layout(table: &mut ClassTable, id: ClassId, done: &mut Vec<bool>) {
        if done[id.0 as usize] {
            return;
        }
        let sup = table.class(id).superclass.as_ref().map(|(s, _)| *s);
        let base = match sup {
            Some(s) => {
                layout(table, s, done);
                table.class(s).instance_size()
            }
            None => 0,
        };
        table.class_mut(id).field_base = base;
        done[id.0 as usize] = true;
    }
    for id in &ids {
        layout(&mut table, *id, &mut done);
    }
    for id in &ids {
        let info = table.class(*id);
        let mut parents: Vec<ClassId> = Vec::new();
        if let Some((s, _)) = &info.superclass {
            if *s != OBJECT {
                parents.push(*s);
            }
        }
        parents.extend(info.interfaces.iter().map(|(i, _)| *i));
        for p in parents {
            table.class_mut(p).subclasses.push(*id);
        }
    }

    // Phase 5: field shadowing & override compatibility checks.
    for id in &ids {
        let info = table.class(*id);
        if let Some((sup, _)) = &info.superclass {
            for f in &info.fields {
                if table.lookup_field(*sup, &f.name).is_some() {
                    diags.push(Diagnostic::error(
                        "resolver",
                        f.span,
                        format!("field `{}` shadows an inherited field", f.name),
                    ));
                }
            }
        }
        for (mi, m) in info.methods.iter().enumerate() {
            // Find an inherited declaration of the same name.
            for (cid, args) in table.all_supertypes(*id, &identity_args(&table, *id)) {
                if cid == *id {
                    continue;
                }
                if let Some(sm) = table.class(cid).methods.iter().find(|x| x.name == m.name) {
                    let want_params: Vec<Type> =
                        sm.params.iter().map(|p| p.ty.subst(&args)).collect();
                    let got_params: Vec<Type> = m.params.iter().map(|p| p.ty.clone()).collect();
                    let want_ret = sm.ret.subst(&args);
                    if want_params != got_params || want_ret != m.ret {
                        diags.push(Diagnostic::error(
                            "resolver",
                            m.span,
                            format!(
                                "`{}::{}` overrides `{}::{}` with an incompatible signature",
                                info.name,
                                m.name,
                                table.name(cid),
                                m.name
                            ),
                        ));
                    }
                    if sm.is_static != m.is_static {
                        diags.push(Diagnostic::error(
                            "resolver",
                            m.span,
                            format!("`{}` changes staticness of inherited method", m.name),
                        ));
                    }
                    let _ = mi;
                    break;
                }
            }
        }
        // Concrete classes must implement every abstract method.
        if !info.is_interface && !info.is_abstract {
            for (cid, _) in table.all_supertypes(*id, &identity_args(&table, *id)) {
                for am in table.class(cid).methods.iter().filter(|m| m.is_abstract) {
                    if table.resolve_impl(*id, &am.name).is_none() {
                        diags.push(Diagnostic::error(
                            "resolver",
                            info.span,
                            format!(
                                "`{}` does not implement abstract method `{}::{}`",
                                info.name,
                                table.name(cid),
                                am.name
                            ),
                        ));
                    }
                }
            }
        }
    }

    if diags.is_empty() {
        Ok(table)
    } else {
        Err(diags)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unit;

    fn table_of(src: &str) -> ClassTable {
        let unit = parse_unit(0, src).expect("parse");
        match build(vec![unit]) {
            Ok(t) => t,
            Err(ds) => panic!("build failed:\n{}", crate::span::render_diags(&ds)),
        }
    }

    fn build_err(src: &str) -> String {
        let unit = parse_unit(0, src).expect("parse");
        match build(vec![unit]) {
            Ok(_) => panic!("expected build error"),
            Err(ds) => crate::span::render_diags(&ds),
        }
    }

    #[test]
    fn object_is_class_zero() {
        let t = table_of("class A { }");
        assert_eq!(t.by_name("Object"), Some(OBJECT));
        assert_eq!(t.by_name("A"), Some(ClassId(1)));
        assert_eq!(t.class(ClassId(1)).superclass, Some((OBJECT, vec![])));
    }

    #[test]
    fn field_layout_stacks_over_supers() {
        let t = table_of("class A { int x; int y; } class B extends A { int z; }");
        let b = t.by_name("B").unwrap();
        assert_eq!(t.class(b).field_base, 2);
        assert_eq!(t.class(b).instance_size(), 3);
        let fl = t.lookup_field(b, "x").unwrap();
        assert_eq!(fl.slot, 0);
        let fl = t.lookup_field(b, "z").unwrap();
        assert_eq!(fl.slot, 2);
    }

    #[test]
    fn method_lookup_walks_interfaces() {
        let t = table_of(
            "interface Solver { float solve(float x); } \
             class Impl implements Solver { float solve(float x) { return x; } } \
             abstract class UsesSolver implements Solver { }",
        );
        let uses = t.by_name("UsesSolver").unwrap();
        let ml = t.lookup_method(uses, "solve").unwrap();
        assert_eq!(ml.decl_class, t.by_name("Solver").unwrap());
    }

    #[test]
    fn resolve_impl_picks_most_derived() {
        let t = table_of(
            "class A { int m() { return 1; } } \
             class B extends A { int m() { return 2; } } \
             class C extends B { }",
        );
        let c = t.by_name("C").unwrap();
        let (cls, _) = t.resolve_impl(c, "m").unwrap();
        assert_eq!(cls, t.by_name("B").unwrap());
    }

    #[test]
    fn generic_field_substitution_through_chain() {
        let t = table_of(
            "class Grid<T> { T item; Grid(T i) { item = i; } } \
             class FloatCell { float v; FloatCell(float v0) { v = v0; } } \
             class FloatGrid extends Grid<FloatCell> { FloatGrid(FloatCell c) { super(c); } }",
        );
        let fg = t.by_name("FloatGrid").unwrap();
        let fl = t.lookup_field(fg, "item").unwrap();
        assert_eq!(fl.ty, Type::object(t.by_name("FloatCell").unwrap()));
    }

    #[test]
    fn subtype_with_invariant_generics() {
        let t = table_of(
            "class Grid<T> { } class IntCell { } class FloatCell { } \
             class G1 extends Grid<IntCell> { }",
        );
        let grid = t.by_name("Grid").unwrap();
        let g1 = t.by_name("G1").unwrap();
        let intc = Type::object(t.by_name("IntCell").unwrap());
        let floatc = Type::object(t.by_name("FloatCell").unwrap());
        assert!(t.is_subtype(&Type::object(g1), &Type::Object(grid, vec![intc])));
        assert!(!t.is_subtype(&Type::object(g1), &Type::Object(grid, vec![floatc])));
    }

    #[test]
    fn rejects_inheritance_cycle() {
        let msg = build_err("class A extends B { } class B extends A { }");
        assert!(msg.contains("cycle"), "{msg}");
    }

    #[test]
    fn rejects_missing_abstract_impl() {
        let msg = build_err("interface I { int m(); } class C implements I { }");
        assert!(msg.contains("does not implement"), "{msg}");
    }

    #[test]
    fn rejects_incompatible_override() {
        let msg = build_err(
            "class A { int m(int x) { return x; } } \
             class B extends A { float m(int x) { return 1f; } }",
        );
        assert!(msg.contains("incompatible"), "{msg}");
    }

    #[test]
    fn rejects_field_shadowing() {
        let msg = build_err("class A { int x; } class B extends A { int x; }");
        assert!(msg.contains("shadows"), "{msg}");
    }

    #[test]
    fn rejects_extending_final_class() {
        let msg = build_err("final class A { } class B extends A { }");
        assert!(msg.contains("final"), "{msg}");
    }

    #[test]
    fn subclass_lists_and_leaves() {
        let t = table_of("class A { } class B extends A { } class C extends A { }");
        let a = t.by_name("A").unwrap();
        assert_eq!(t.class(a).subclasses.len(), 2);
        assert!(!t.is_leaf(a));
        assert!(t.is_leaf(t.by_name("B").unwrap()));
    }

    #[test]
    fn default_ctor_is_synthesized() {
        let t = table_of("class A { }");
        let a = t.by_name("A").unwrap();
        assert!(t.class(a).ctor.is_some());
    }

    #[test]
    fn native_methods_are_not_abstract() {
        let t = table_of("class M { @Native(\"sqrt\") static double sqrt(double x); }");
        let m = t.by_name("M").unwrap();
        let mi = &t.class(m).methods[0];
        assert!(!mi.is_abstract);
        assert_eq!(mi.native.as_deref(), Some("sqrt"));
    }
}
