//! The body type checker: turns untyped method/constructor bodies and field
//! initializers into the typed AST, resolving every name and inserting
//! explicit widening conversions.

use crate::ast::{self, BinOp, UnOp};
use crate::span::{DiagResult, Diagnostic, Span};
use crate::table::{ClassTable, TypeParamInfo};
use crate::tast::*;
use crate::types::{ClassId, PrimKind, Type, OBJECT};

/// Type check all bodies in `table`, storing typed bodies back into it.
///
/// This is a driver over the per-body entry points below
/// ([`check_field_init`], [`check_method_body`], [`check_ctor`]), which
/// the incremental query layer calls one body at a time against a table
/// snapshot. The driver preserves batch semantics: every body is
/// checked and all diagnostics are collected before failing.
pub fn check(table: &mut ClassTable) -> DiagResult<()> {
    let mut diags = Vec::new();
    let mut method_results: Vec<(ClassId, usize, TBlock, u32)> = Vec::new();
    let mut ctor_results: Vec<(ClassId, Vec<TExpr>, TBlock, u32)> = Vec::new();
    let mut field_results: Vec<(ClassId, bool, usize, TExpr)> = Vec::new();

    let ids: Vec<ClassId> = table.iter().map(|c| c.id).collect();
    for id in ids {
        let info = table.class(id).clone();

        for (i, f) in info.fields.iter().enumerate() {
            if f.ast_init.is_some() {
                match check_field_init(table, id, false, i) {
                    Ok(e) => field_results.push((id, false, i, e)),
                    Err(mut d) => diags.append(&mut d),
                }
            }
        }
        for (i, f) in info.statics.iter().enumerate() {
            if f.ast_init.is_some() {
                match check_field_init(table, id, true, i) {
                    Ok(e) => field_results.push((id, true, i, e)),
                    Err(mut d) => diags.append(&mut d),
                }
            }
        }

        for (mi, m) in info.methods.iter().enumerate() {
            if m.ast_body.is_none() {
                continue;
            }
            match check_method_body(table, id, mi) {
                Ok((tb, frame)) => method_results.push((id, mi, tb, frame)),
                Err(mut d) => diags.append(&mut d),
            }
        }

        if let Some(ctor) = &info.ctor {
            if ctor.ast_body.is_some() {
                match check_ctor(table, id) {
                    Ok((sargs, tb, frame)) => ctor_results.push((id, sargs, tb, frame)),
                    Err(mut d) => diags.append(&mut d),
                }
            }
        }
    }

    if !diags.is_empty() {
        return Err(diags);
    }

    for (id, mi, body, frame) in method_results {
        let m = &mut table.class_mut(id).methods[mi];
        m.body = Some(body);
        m.frame_size = frame;
        m.ast_body = None;
    }
    for (id, sargs, body, frame) in ctor_results {
        let c = table.class_mut(id).ctor.as_mut().unwrap();
        c.super_args = sargs;
        c.body = Some(body);
        c.frame_size = frame;
        c.ast_body = None;
    }
    for (id, is_static, fi, e) in field_results {
        let c = table.class_mut(id);
        let f = if is_static {
            &mut c.statics[fi]
        } else {
            &mut c.fields[fi]
        };
        f.init = Some(e);
        f.ast_init = None;
    }
    Ok(())
}

/// Type check one field initializer of class `id` against a table
/// snapshot (the table is only read; the caller installs the result).
/// Requires the untyped initializer (`ast_init`) to still be present.
pub fn check_field_init(
    table: &ClassTable,
    id: ClassId,
    is_static: bool,
    fi: usize,
) -> DiagResult<TExpr> {
    let info = table.class(id);
    let f = if is_static {
        &info.statics[fi]
    } else {
        &info.fields[fi]
    };
    let init = f
        .ast_init
        .as_ref()
        .expect("check_field_init: untyped initializer already consumed");
    let ty = f.ty.clone();
    // Instance field initializers are checked in constructor context.
    let mut ck = Checker::new(table, id, is_static, ty.clone());
    let typed = match ck.expr(init) {
        Ok(e) => ck.coerce(e, &ty).ok(),
        Err(()) => None,
    };
    finish_body(
        ck.diags,
        typed,
        f.span,
        "field initializer failed to type check",
    )
}

/// Type check one method body of class `id` against a table snapshot.
/// Returns the typed body and its frame size (max local slot count).
pub fn check_method_body(table: &ClassTable, id: ClassId, mi: usize) -> DiagResult<(TBlock, u32)> {
    let info = table.class(id);
    let m = &info.methods[mi];
    let body = m
        .ast_body
        .as_ref()
        .expect("check_method_body: untyped body already consumed");
    let mut ck = Checker::new(table, id, m.is_static, m.ret.clone());
    for p in &m.params {
        ck.scope.declare(&p.name, p.ty.clone(), p.is_final);
    }
    let tb = ck.block(body);
    // Non-void methods must return on every path.
    if m.ret != Type::Void && !block_always_returns(&tb) {
        ck.diags.push(Diagnostic::error(
            "typeck",
            m.span,
            format!(
                "method `{}::{}` may finish without returning a value",
                info.name, m.name
            ),
        ));
    }
    let frame = ck.scope.max_slot;
    finish_body(
        ck.diags,
        Some((tb, frame)),
        m.span,
        "method body failed to type check",
    )
}

/// Type check the constructor of class `id` (super(...) arguments plus
/// the body) against a table snapshot. Returns the typed super-call
/// arguments, the typed body, and the frame size.
pub fn check_ctor(table: &ClassTable, id: ClassId) -> DiagResult<(Vec<TExpr>, TBlock, u32)> {
    let info = table.class(id);
    let ctor = info.ctor.as_ref().expect("check_ctor: class has no ctor");
    let body = ctor
        .ast_body
        .as_ref()
        .expect("check_ctor: untyped body already consumed");
    let mut ck = Checker::new(table, id, false, Type::Void);
    ck.in_ctor = true;
    for p in &ctor.params {
        ck.scope.declare(&p.name, p.ty.clone(), p.is_final);
    }
    // super(...) arguments against the superclass constructor.
    let mut targs_out = Vec::new();
    let sup = info.superclass.clone();
    match (&ctor.ast_super_args, sup) {
        (Some(args), Some((sid, sargs))) if sid != OBJECT => {
            targs_out = ck.super_ctor_args(sid, &sargs, args, ctor.span);
        }
        (Some(args), _) if !args.is_empty() => {
            ck.diags.push(Diagnostic::error(
                "typeck",
                ctor.span,
                "explicit super(...) arguments but superclass is Object",
            ));
        }
        (None, Some((sid, sargs))) if sid != OBJECT => {
            // Implicit super(): the super ctor must take no args.
            targs_out = ck.super_ctor_args(sid, &sargs, &[], ctor.span);
        }
        _ => {}
    }
    let tb = ck.block(body);
    let frame = ck.scope.max_slot;
    finish_body(
        ck.diags,
        Some((targs_out, tb, frame)),
        ctor.span,
        "constructor failed to type check",
    )
}

/// Per-body result policy: any diagnostic fails the body; a silent
/// failure still produces a diagnostic so drivers never lose an error.
fn finish_body<T>(
    diags: Vec<Diagnostic>,
    result: Option<T>,
    span: Span,
    fallback: &str,
) -> DiagResult<T> {
    if !diags.is_empty() {
        return Err(diags);
    }
    match result {
        Some(t) => Ok(t),
        None => Err(vec![Diagnostic::error("typeck", span, fallback)]),
    }
}

/// Conservative "always returns" analysis used for the missing-return check.
fn block_always_returns(b: &TBlock) -> bool {
    b.stmts.iter().any(stmt_always_returns)
}

fn stmt_always_returns(s: &TStmt) -> bool {
    match s {
        TStmt::Return { .. } => true,
        TStmt::If {
            then_branch,
            else_branch: Some(e),
            ..
        } => block_always_returns(then_branch) && block_always_returns(e),
        TStmt::Block(b) => block_always_returns(b),
        _ => false,
    }
}

struct Scope {
    frames: Vec<Vec<(String, u32, Type, bool)>>,
    next_slot: u32,
    max_slot: u32,
}

impl Scope {
    fn new() -> Self {
        Scope {
            frames: vec![Vec::new()],
            next_slot: 0,
            max_slot: 0,
        }
    }

    fn declare(&mut self, name: &str, ty: Type, is_final: bool) -> u32 {
        let slot = self.next_slot;
        self.next_slot += 1;
        self.max_slot = self.max_slot.max(self.next_slot);
        self.frames
            .last_mut()
            .unwrap()
            .push((name.to_string(), slot, ty, is_final));
        slot
    }

    fn lookup(&self, name: &str) -> Option<(u32, Type, bool)> {
        for frame in self.frames.iter().rev() {
            for (n, s, t, f) in frame.iter().rev() {
                if n == name {
                    return Some((*s, t.clone(), *f));
                }
            }
        }
        None
    }

    fn declared_in_scope(&self, name: &str) -> bool {
        self.frames
            .iter()
            .any(|f| f.iter().any(|(n, ..)| n == name))
    }

    fn push(&mut self) {
        self.frames.push(Vec::new());
    }

    fn pop(&mut self) {
        self.frames.pop();
    }
}

struct Checker<'t> {
    table: &'t ClassTable,
    class: ClassId,
    type_params: Vec<TypeParamInfo>,
    is_static: bool,
    in_ctor: bool,
    ret: Type,
    scope: Scope,
    loop_depth: u32,
    diags: Vec<Diagnostic>,
}

type CkResult<T> = Result<T, ()>;

impl<'t> Checker<'t> {
    fn new(table: &'t ClassTable, class: ClassId, is_static: bool, ret: Type) -> Self {
        Checker {
            table,
            type_params: table.class(class).type_params.clone(),
            class,
            is_static,
            in_ctor: false,
            ret,
            scope: Scope::new(),
            loop_depth: 0,
            diags: Vec::new(),
        }
    }

    fn err(&mut self, span: Span, msg: impl Into<String>) {
        self.diags.push(Diagnostic::error("typeck", span, msg));
    }

    fn show(&self, t: &Type) -> String {
        self.table.show_type(t)
    }

    fn super_ctor_args(
        &mut self,
        sid: ClassId,
        sargs: &[Type],
        args: &[ast::Expr],
        span: Span,
    ) -> Vec<TExpr> {
        let Some(sctor) = self.table.class(sid).ctor.clone() else {
            self.err(
                span,
                format!("superclass `{}` has no constructor", self.table.name(sid)),
            );
            return Vec::new();
        };
        if sctor.params.len() != args.len() {
            self.err(
                span,
                format!(
                    "super(...) expects {} argument(s), found {}",
                    sctor.params.len(),
                    args.len()
                ),
            );
            return Vec::new();
        }
        let mut out = Vec::new();
        for (a, p) in args.iter().zip(&sctor.params) {
            let want = p.ty.subst(sargs);
            if let Ok(e) = self.expr(a) {
                if let Ok(e) = self.coerce(e, &want) {
                    out.push(e);
                }
            }
        }
        out
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn block(&mut self, b: &ast::Block) -> TBlock {
        self.scope.push();
        let stmts = b.stmts.iter().filter_map(|s| self.stmt(s).ok()).collect();
        self.scope.pop();
        TBlock { stmts }
    }

    fn stmt(&mut self, s: &ast::Stmt) -> CkResult<TStmt> {
        match s {
            ast::Stmt::Local {
                name,
                ty,
                init,
                is_final,
                span,
            } => {
                let rty = self
                    .table
                    .resolve_type(&self.type_params, ty)
                    .map_err(|d| self.diags.push(d))?;
                if rty == Type::Void {
                    self.err(*span, "local variable of type void");
                    return Err(());
                }
                if self.scope.declared_in_scope(name) {
                    self.err(*span, format!("duplicate local `{name}`"));
                }
                let tinit = match init {
                    Some(e) => {
                        let te = self.expr(e)?;
                        Some(self.coerce(te, &rty)?)
                    }
                    None => None,
                };
                let slot = self.scope.declare(name, rty.clone(), *is_final);
                Ok(TStmt::Local {
                    slot,
                    ty: rty,
                    init: tinit,
                    span: *span,
                })
            }
            ast::Stmt::Assign {
                target,
                op,
                value,
                span,
            } => self.assign(target, *op, value, *span),
            ast::Stmt::IncDec { target, inc, span } => {
                let one = ast::Expr::IntLit(1, *span);
                let op = if *inc { BinOp::Add } else { BinOp::Sub };
                self.assign(target, Some(op), &one, *span)
            }
            ast::Stmt::Expr(e) => {
                let te = self.expr(e)?;
                match &te.kind {
                    TExprKind::Call { .. }
                    | TExprKind::DirectCall { .. }
                    | TExprKind::StaticCall { .. }
                    | TExprKind::New { .. } => {}
                    _ => self.err(te.span, "expression statement has no effect"),
                }
                Ok(TStmt::Expr(te))
            }
            ast::Stmt::If {
                cond,
                then_branch,
                else_branch,
                span,
            } => {
                let c = self.bool_expr(cond)?;
                let t = self.block(then_branch);
                let e = else_branch.as_ref().map(|b| self.block(b));
                Ok(TStmt::If {
                    cond: c,
                    then_branch: t,
                    else_branch: e,
                    span: *span,
                })
            }
            ast::Stmt::While { cond, body, span } => {
                let c = self.bool_expr(cond)?;
                self.loop_depth += 1;
                let b = self.block(body);
                self.loop_depth -= 1;
                Ok(TStmt::While {
                    cond: c,
                    body: b,
                    span: *span,
                })
            }
            ast::Stmt::For {
                init,
                cond,
                update,
                body,
                span,
            } => {
                self.scope.push();
                let ti = match init {
                    Some(s) => Some(Box::new(self.stmt(s)?)),
                    None => None,
                };
                let tc = match cond {
                    Some(c) => Some(self.bool_expr(c)?),
                    None => None,
                };
                let tu = match update {
                    Some(s) => Some(Box::new(self.stmt(s)?)),
                    None => None,
                };
                self.loop_depth += 1;
                let tb = self.block(body);
                self.loop_depth -= 1;
                self.scope.pop();
                Ok(TStmt::For {
                    init: ti,
                    cond: tc,
                    update: tu,
                    body: tb,
                    span: *span,
                })
            }
            ast::Stmt::Return { value, span } => {
                let tv = match (value, &self.ret) {
                    (None, Type::Void) => None,
                    (None, r) => {
                        let r = r.clone();
                        self.err(
                            *span,
                            format!("missing return value of type {}", self.show(&r)),
                        );
                        return Err(());
                    }
                    (Some(_), Type::Void) => {
                        self.err(*span, "void method returns a value");
                        return Err(());
                    }
                    (Some(e), _) => {
                        let te = self.expr(e)?;
                        let want = self.ret.clone();
                        Some(self.coerce(te, &want)?)
                    }
                };
                Ok(TStmt::Return {
                    value: tv,
                    span: *span,
                })
            }
            ast::Stmt::Break(span) => {
                if self.loop_depth == 0 {
                    self.err(*span, "break outside of a loop");
                }
                Ok(TStmt::Break(*span))
            }
            ast::Stmt::Continue(span) => {
                if self.loop_depth == 0 {
                    self.err(*span, "continue outside of a loop");
                }
                Ok(TStmt::Continue(*span))
            }
            ast::Stmt::Block(b) => Ok(TStmt::Block(self.block(b))),
        }
    }

    fn assign(
        &mut self,
        target: &ast::LValue,
        op: Option<BinOp>,
        value: &ast::Expr,
        span: Span,
    ) -> CkResult<TStmt> {
        // Read the target as an expression when compound.
        let read_target = |t: &ast::LValue| -> ast::Expr {
            match t {
                ast::LValue::Name(n, s) => ast::Expr::Name(n.clone(), *s),
                ast::LValue::Field { obj, name, span } => ast::Expr::Field {
                    obj: Box::new(obj.clone()),
                    name: name.clone(),
                    span: *span,
                },
                ast::LValue::Index { arr, idx, span } => ast::Expr::Index {
                    arr: Box::new(arr.clone()),
                    idx: Box::new(idx.clone()),
                    span: *span,
                },
            }
        };

        match target {
            ast::LValue::Name(name, nspan) => {
                if let Some((slot, ty, is_final)) = self.scope.lookup(name) {
                    if is_final {
                        self.err(*nspan, format!("assignment to final variable `{name}`"));
                    }
                    let v = self.assign_value(&read_target(target), op, value, &ty, span)?;
                    return Ok(TStmt::AssignLocal {
                        slot,
                        value: v,
                        span,
                    });
                }
                // Implicit this.field or static field of the current class.
                if let Some(fl) = self.table.lookup_field(self.class, name) {
                    if self.is_static {
                        self.err(*nspan, format!("instance field `{name}` in static context"));
                        return Err(());
                    }
                    self.check_final_field_write(fl.is_final, fl.owner, *nspan, name);
                    let obj = TExpr {
                        kind: TExprKind::This,
                        ty: Type::object(self.class),
                        span: *nspan,
                    };
                    let v = self.assign_value(&read_target(target), op, value, &fl.ty, span)?;
                    return Ok(TStmt::AssignField {
                        obj,
                        field: FieldSel {
                            owner: fl.owner,
                            slot: fl.slot,
                            ty: fl.ty,
                        },
                        value: v,
                        span,
                    });
                }
                if let Some((idx, f)) = self.table.lookup_static(self.class, name) {
                    if f.is_final {
                        self.err(*nspan, format!("assignment to final static `{name}`"));
                    }
                    let fty = f.ty.clone();
                    let v = self.assign_value(&read_target(target), op, value, &fty, span)?;
                    return Ok(TStmt::AssignStatic {
                        class: self.class,
                        index: idx,
                        value: v,
                        span,
                    });
                }
                self.err(*nspan, format!("unknown variable `{name}`"));
                Err(())
            }
            ast::LValue::Field {
                obj,
                name,
                span: fspan,
            } => {
                // Static field of another class: `C.f = ...`.
                if let ast::Expr::Name(cname, _) = obj {
                    if self.scope.lookup(cname).is_none()
                        && self.table.lookup_field(self.class, cname).is_none()
                    {
                        if let Some(cid) = self.table.by_name(cname) {
                            let Some((idx, f)) = self.table.lookup_static(cid, name) else {
                                self.err(*fspan, format!("no static field `{name}` on `{cname}`"));
                                return Err(());
                            };
                            if f.is_final {
                                self.err(*fspan, format!("assignment to final static `{name}`"));
                            }
                            let fty = f.ty.clone();
                            let v =
                                self.assign_value(&read_target(target), op, value, &fty, span)?;
                            return Ok(TStmt::AssignStatic {
                                class: cid,
                                index: idx,
                                value: v,
                                span,
                            });
                        }
                    }
                }
                let tobj = self.expr(obj)?;
                let Type::Object(cid, targs) = tobj.ty.clone() else {
                    let got = self.show(&tobj.ty);
                    self.err(*fspan, format!("field assignment on non-object type {got}"));
                    return Err(());
                };
                let Some(fl) = self.table.lookup_field(cid, name) else {
                    self.err(
                        *fspan,
                        format!("no field `{name}` on `{}`", self.table.name(cid)),
                    );
                    return Err(());
                };
                self.check_final_field_write(fl.is_final, fl.owner, *fspan, name);
                let fty = fl.ty.subst(&targs);
                let v = self.assign_value(&read_target(target), op, value, &fty, span)?;
                Ok(TStmt::AssignField {
                    obj: tobj,
                    field: FieldSel {
                        owner: fl.owner,
                        slot: fl.slot,
                        ty: fty,
                    },
                    value: v,
                    span,
                })
            }
            ast::LValue::Index {
                arr,
                idx,
                span: ispan,
            } => {
                let tarr = self.expr(arr)?;
                let Type::Array(elem) = tarr.ty.clone() else {
                    let got = self.show(&tarr.ty);
                    self.err(*ispan, format!("indexing non-array type {got}"));
                    return Err(());
                };
                let tidx = self.expr(idx)?;
                let tidx = self.coerce(tidx, &Type::Int)?;
                let v = self.assign_value(&read_target(target), op, value, &elem, span)?;
                Ok(TStmt::AssignIndex {
                    arr: tarr,
                    idx: tidx,
                    value: v,
                    span,
                })
            }
        }
    }

    /// Writes to final instance fields are only allowed inside constructors
    /// of the declaring class or a subclass (the paper's semi-immutable
    /// model explicitly allows subclass constructors to overwrite).
    fn check_final_field_write(&mut self, is_final: bool, owner: ClassId, span: Span, name: &str) {
        if is_final && !(self.in_ctor && self.table.is_subclass_of(self.class, owner)) {
            self.err(
                span,
                format!("assignment to final field `{name}` outside a constructor"),
            );
        }
    }

    /// Type the RHS of an assignment, folding compound operators.
    ///
    /// Known divergence from Java: for compound assignment to a field or
    /// array element (`o.f += e`, `a[i] += e`), the receiver/index
    /// subexpressions are typed (and later evaluated) twice — once for
    /// the read and once for the write. Java evaluates them once. This
    /// only matters when those subexpressions have side effects, which
    /// the WootinJ coding rules make rare and the bundled libraries never
    /// do; documented here rather than complicating every engine.
    fn assign_value(
        &mut self,
        target_read: &ast::Expr,
        op: Option<BinOp>,
        value: &ast::Expr,
        target_ty: &Type,
        span: Span,
    ) -> CkResult<TExpr> {
        match op {
            None => {
                let v = self.expr(value)?;
                self.coerce(v, target_ty)
            }
            Some(op) => {
                let lhs = self.expr(target_read)?;
                let rhs = self.expr(value)?;
                let bin = self.binary(op, lhs, rhs, span)?;
                // Java compound assignment implicitly casts back.
                if let Some(kind) = target_ty.prim_kind() {
                    if bin.ty.prim_kind() == Some(kind) {
                        Ok(bin)
                    } else {
                        Ok(TExpr {
                            ty: target_ty.clone(),
                            span,
                            kind: TExprKind::NumCast {
                                to: kind,
                                expr: Box::new(bin),
                            },
                        })
                    }
                } else {
                    self.err(span, "compound assignment on non-numeric target");
                    Err(())
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Expressions
    // ------------------------------------------------------------------

    fn bool_expr(&mut self, e: &ast::Expr) -> CkResult<TExpr> {
        let te = self.expr(e)?;
        if te.ty != Type::Boolean {
            let got = self.show(&te.ty);
            self.err(te.span, format!("expected boolean, found {got}"));
            return Err(());
        }
        Ok(te)
    }

    /// Insert a widening conversion or report an assignability error.
    fn coerce(&mut self, e: TExpr, want: &Type) -> CkResult<TExpr> {
        if &e.ty == want {
            return Ok(e);
        }
        if want.is_primitive() && e.ty.is_primitive() {
            if want.widens_from(&e.ty) {
                let kind = want.prim_kind().unwrap();
                return Ok(TExpr {
                    ty: want.clone(),
                    span: e.span,
                    kind: TExprKind::Convert {
                        to: kind,
                        expr: Box::new(e),
                    },
                });
            }
            let got = self.show(&e.ty);
            let w = self.show(want);
            self.err(
                e.span,
                format!("cannot implicitly convert {got} to {w} (add a cast)"),
            );
            return Err(());
        }
        if self.table.is_subtype(&e.ty, want) {
            return Ok(e);
        }
        // Type variables are assignable to their bound.
        if let Type::Var(i) = &e.ty {
            let bound = self.type_params[*i as usize].bound.clone();
            if self.table.is_subtype(&bound, want) || &bound == want {
                return Ok(e);
            }
        }
        let got = self.show(&e.ty);
        let w = self.show(want);
        self.err(e.span, format!("expected {w}, found {got}"));
        Err(())
    }

    fn expr(&mut self, e: &ast::Expr) -> CkResult<TExpr> {
        match e {
            ast::Expr::IntLit(v, s) => {
                if *v < i32::MIN as i64 || *v > i32::MAX as i64 {
                    self.err(*s, "int literal out of 32-bit range (use an L suffix)");
                    return Err(());
                }
                Ok(TExpr {
                    kind: TExprKind::Int(*v as i32),
                    ty: Type::Int,
                    span: *s,
                })
            }
            ast::Expr::LongLit(v, s) => Ok(TExpr {
                kind: TExprKind::Long(*v),
                ty: Type::Long,
                span: *s,
            }),
            ast::Expr::FloatLit(v, s) => Ok(TExpr {
                kind: TExprKind::Float(*v),
                ty: Type::Float,
                span: *s,
            }),
            ast::Expr::DoubleLit(v, s) => Ok(TExpr {
                kind: TExprKind::Double(*v),
                ty: Type::Double,
                span: *s,
            }),
            ast::Expr::BoolLit(v, s) => Ok(TExpr {
                kind: TExprKind::Bool(*v),
                ty: Type::Boolean,
                span: *s,
            }),
            ast::Expr::NullLit(s) => Ok(TExpr {
                kind: TExprKind::Null,
                ty: Type::Null,
                span: *s,
            }),
            ast::Expr::StrLit(v, s) => Ok(TExpr {
                kind: TExprKind::Str(v.clone()),
                ty: Type::Str,
                span: *s,
            }),
            ast::Expr::This(s) => {
                if self.is_static {
                    self.err(*s, "`this` in a static context");
                    return Err(());
                }
                let targs: Vec<Type> = (0..self.type_params.len())
                    .map(|i| Type::Var(i as u32))
                    .collect();
                Ok(TExpr {
                    kind: TExprKind::This,
                    ty: Type::Object(self.class, targs),
                    span: *s,
                })
            }
            ast::Expr::Name(name, s) => {
                if let Some((slot, ty, _)) = self.scope.lookup(name) {
                    return Ok(TExpr {
                        kind: TExprKind::Local(slot),
                        ty,
                        span: *s,
                    });
                }
                if let Some(fl) = self.table.lookup_field(self.class, name) {
                    if self.is_static {
                        self.err(*s, format!("instance field `{name}` in static context"));
                        return Err(());
                    }
                    let obj = TExpr {
                        kind: TExprKind::This,
                        ty: Type::object(self.class),
                        span: *s,
                    };
                    return Ok(TExpr {
                        ty: fl.ty.clone(),
                        span: *s,
                        kind: TExprKind::GetField {
                            obj: Box::new(obj),
                            field: FieldSel {
                                owner: fl.owner,
                                slot: fl.slot,
                                ty: fl.ty,
                            },
                        },
                    });
                }
                if let Some((idx, f)) = self.table.lookup_static(self.class, name) {
                    return Ok(TExpr {
                        ty: f.ty.clone(),
                        span: *s,
                        kind: TExprKind::GetStatic {
                            class: self.class,
                            index: idx,
                        },
                    });
                }
                if self.table.by_name(name).is_some() {
                    self.err(*s, format!("class `{name}` used as a value"));
                } else {
                    self.err(*s, format!("unknown name `{name}`"));
                }
                Err(())
            }
            ast::Expr::Field { obj, name, span } => self.field_access(obj, name, *span),
            ast::Expr::Call {
                recv,
                name,
                args,
                span,
            } => self.call(recv, name, args, *span),
            ast::Expr::SuperCall { name, args, span } => {
                if self.is_static {
                    self.err(*span, "`super` in a static context");
                    return Err(());
                }
                let Some((sid, sargs)) = self.table.class(self.class).superclass.clone() else {
                    self.err(*span, "`super` call but no superclass");
                    return Err(());
                };
                let Some(ml) = self.table.lookup_method(sid, name) else {
                    self.err(
                        *span,
                        format!(
                            "no method `{name}` on superclass `{}`",
                            self.table.name(sid)
                        ),
                    );
                    return Err(());
                };
                let subst: Vec<Type> = ml.subst.iter().map(|t| t.subst(&sargs)).collect();
                let recv = TExpr {
                    kind: TExprKind::This,
                    ty: Type::object(self.class),
                    span: *span,
                };
                let (targs, ret) = self.check_args(ml.decl_class, ml.index, &subst, args, *span)?;
                Ok(TExpr {
                    ty: ret,
                    span: *span,
                    kind: TExprKind::DirectCall {
                        recv: Box::new(recv),
                        method: MethodSel {
                            decl_class: ml.decl_class,
                            index: ml.index,
                        },
                        args: targs,
                    },
                })
            }
            ast::Expr::New { ty, args, span } => {
                let rty = self
                    .table
                    .resolve_type(&self.type_params, ty)
                    .map_err(|d| self.diags.push(d))?;
                let Type::Object(cid, targs) = rty.clone() else {
                    let got = self.show(&rty);
                    self.err(*span, format!("cannot instantiate non-class type {got}"));
                    return Err(());
                };
                let info = self.table.class(cid);
                if info.is_interface {
                    self.err(
                        *span,
                        format!("cannot instantiate interface `{}`", info.name),
                    );
                    return Err(());
                }
                if info.is_abstract {
                    self.err(
                        *span,
                        format!("cannot instantiate abstract class `{}`", info.name),
                    );
                    return Err(());
                }
                let Some(ctor) = info.ctor.clone() else {
                    self.err(*span, format!("`{}` has no constructor", info.name));
                    return Err(());
                };
                if ctor.params.len() != args.len() {
                    self.err(
                        *span,
                        format!(
                            "`{}` constructor expects {} argument(s), found {}",
                            info.name,
                            ctor.params.len(),
                            args.len()
                        ),
                    );
                    return Err(());
                }
                let mut targs_out = Vec::new();
                for (a, p) in args.iter().zip(&ctor.params) {
                    let want = p.ty.subst(&targs);
                    let te = self.expr(a)?;
                    targs_out.push(self.coerce(te, &want)?);
                }
                Ok(TExpr {
                    ty: rty,
                    span: *span,
                    kind: TExprKind::New {
                        class: cid,
                        targs,
                        args: targs_out,
                    },
                })
            }
            ast::Expr::NewArray { elem, len, span } => {
                let ety = self
                    .table
                    .resolve_type(&self.type_params, elem)
                    .map_err(|d| self.diags.push(d))?;
                if ety == Type::Void {
                    self.err(*span, "array of void");
                    return Err(());
                }
                let tlen = self.expr(len)?;
                let tlen = self.coerce(tlen, &Type::Int)?;
                Ok(TExpr {
                    ty: Type::array(ety.clone()),
                    span: *span,
                    kind: TExprKind::NewArray {
                        elem: ety,
                        len: Box::new(tlen),
                    },
                })
            }
            ast::Expr::Index { arr, idx, span } => {
                let tarr = self.expr(arr)?;
                let Type::Array(elem) = tarr.ty.clone() else {
                    let got = self.show(&tarr.ty);
                    self.err(*span, format!("indexing non-array type {got}"));
                    return Err(());
                };
                let tidx = self.expr(idx)?;
                let tidx = self.coerce(tidx, &Type::Int)?;
                Ok(TExpr {
                    ty: (*elem).clone(),
                    span: *span,
                    kind: TExprKind::Index {
                        arr: Box::new(tarr),
                        idx: Box::new(tidx),
                    },
                })
            }
            ast::Expr::Unary { op, expr, span } => {
                let te = self.expr(expr)?;
                match op {
                    UnOp::Neg => {
                        let Some(k) = te.ty.prim_kind().filter(|k| k.is_numeric()) else {
                            let got = self.show(&te.ty);
                            self.err(*span, format!("cannot negate {got}"));
                            return Err(());
                        };
                        let _ = k;
                        Ok(TExpr {
                            ty: te.ty.clone(),
                            span: *span,
                            kind: TExprKind::Unary {
                                op: UnOp::Neg,
                                expr: Box::new(te),
                            },
                        })
                    }
                    UnOp::Not => {
                        if te.ty != Type::Boolean {
                            let got = self.show(&te.ty);
                            self.err(*span, format!("`!` requires boolean, found {got}"));
                            return Err(());
                        }
                        Ok(TExpr {
                            ty: Type::Boolean,
                            span: *span,
                            kind: TExprKind::Unary {
                                op: UnOp::Not,
                                expr: Box::new(te),
                            },
                        })
                    }
                }
            }
            ast::Expr::Binary { op, lhs, rhs, span } => {
                let l = self.expr(lhs)?;
                let r = self.expr(rhs)?;
                self.binary(*op, l, r, *span)
            }
            ast::Expr::Cast { ty, expr, span } => {
                let to = self
                    .table
                    .resolve_type(&self.type_params, ty)
                    .map_err(|d| self.diags.push(d))?;
                let te = self.expr(expr)?;
                if let (Some(tk), Some(_)) = (to.prim_kind(), te.ty.prim_kind()) {
                    if tk == PrimKind::Boolean || te.ty == Type::Boolean {
                        if to != te.ty {
                            self.err(*span, "cannot cast between boolean and numeric types");
                            return Err(());
                        }
                        return Ok(te);
                    }
                    return Ok(TExpr {
                        ty: to,
                        span: *span,
                        kind: TExprKind::NumCast {
                            to: tk,
                            expr: Box::new(te),
                        },
                    });
                }
                if to.is_reference() && te.ty.is_reference() {
                    // Up- or down-cast along the hierarchy only.
                    let ok = self.table.is_subtype(&te.ty, &to)
                        || self.table.is_subtype(&to, &te.ty)
                        || matches!(te.ty, Type::Null);
                    if !ok {
                        let from = self.show(&te.ty);
                        let tos = self.show(&to);
                        self.err(
                            *span,
                            format!("cast between unrelated types {from} and {tos}"),
                        );
                        return Err(());
                    }
                    return Ok(TExpr {
                        ty: to.clone(),
                        span: *span,
                        kind: TExprKind::RefCast {
                            to,
                            expr: Box::new(te),
                        },
                    });
                }
                self.err(*span, "invalid cast");
                Err(())
            }
            ast::Expr::InstanceOf { expr, ty, span } => {
                let te = self.expr(expr)?;
                let to = self
                    .table
                    .resolve_type(&self.type_params, ty)
                    .map_err(|d| self.diags.push(d))?;
                if !te.ty.is_reference() || !to.is_reference() {
                    self.err(*span, "instanceof requires reference types");
                    return Err(());
                }
                Ok(TExpr {
                    ty: Type::Boolean,
                    span: *span,
                    kind: TExprKind::InstanceOf {
                        expr: Box::new(te),
                        ty: to,
                    },
                })
            }
            ast::Expr::Ternary {
                cond,
                then_val,
                else_val,
                span,
            } => {
                let c = self.bool_expr(cond)?;
                let t = self.expr(then_val)?;
                let f = self.expr(else_val)?;
                let ty = if t.ty == f.ty {
                    t.ty.clone()
                } else if let (Some(a), Some(b)) = (t.ty.prim_kind(), f.ty.prim_kind()) {
                    match PrimKind::promote(a, b) {
                        Some(k) => prim_type(k),
                        None => {
                            self.err(*span, "incompatible ternary branches");
                            return Err(());
                        }
                    }
                } else if self.table.is_subtype(&t.ty, &f.ty) {
                    f.ty.clone()
                } else if self.table.is_subtype(&f.ty, &t.ty) {
                    t.ty.clone()
                } else {
                    self.err(*span, "incompatible ternary branches");
                    return Err(());
                };
                let t = self.coerce(t, &ty)?;
                let f = self.coerce(f, &ty)?;
                Ok(TExpr {
                    ty,
                    span: *span,
                    kind: TExprKind::Ternary {
                        cond: Box::new(c),
                        then_val: Box::new(t),
                        else_val: Box::new(f),
                    },
                })
            }
        }
    }

    fn field_access(&mut self, obj: &ast::Expr, name: &str, span: Span) -> CkResult<TExpr> {
        // `C.f` static access when `C` names a class and isn't shadowed.
        if let ast::Expr::Name(cname, _) = obj {
            if self.scope.lookup(cname).is_none()
                && self.table.lookup_field(self.class, cname).is_none()
            {
                if let Some(cid) = self.table.by_name(cname) {
                    let Some((idx, f)) = self.table.lookup_static(cid, name) else {
                        self.err(span, format!("no static field `{name}` on `{cname}`"));
                        return Err(());
                    };
                    return Ok(TExpr {
                        ty: f.ty.clone(),
                        span,
                        kind: TExprKind::GetStatic {
                            class: cid,
                            index: idx,
                        },
                    });
                }
            }
        }
        let tobj = self.expr(obj)?;
        if name == "length" {
            if let Type::Array(_) = tobj.ty {
                return Ok(TExpr {
                    ty: Type::Int,
                    span,
                    kind: TExprKind::ArrayLen(Box::new(tobj)),
                });
            }
        }
        let (cid, targs) = self.receiver_class(&tobj, span)?;
        let Some(fl) = self.table.lookup_field(cid, name) else {
            self.err(
                span,
                format!("no field `{name}` on `{}`", self.table.name(cid)),
            );
            return Err(());
        };
        let fty = fl.ty.subst(&targs);
        Ok(TExpr {
            ty: fty.clone(),
            span,
            kind: TExprKind::GetField {
                obj: Box::new(tobj),
                field: FieldSel {
                    owner: fl.owner,
                    slot: fl.slot,
                    ty: fty,
                },
            },
        })
    }

    /// Class + type args through which members of `recv` are looked up
    /// (type variables go through their declared bound).
    fn receiver_class(&mut self, recv: &TExpr, span: Span) -> CkResult<(ClassId, Vec<Type>)> {
        match &recv.ty {
            Type::Object(cid, targs) => Ok((*cid, targs.clone())),
            Type::Var(i) => match &self.type_params[*i as usize].bound {
                Type::Object(cid, targs) => Ok((*cid, targs.clone())),
                other => {
                    let got = self.show(other);
                    self.err(span, format!("type parameter bound {got} has no members"));
                    Err(())
                }
            },
            other => {
                let got = self.show(other);
                self.err(span, format!("member access on non-object type {got}"));
                Err(())
            }
        }
    }

    fn call(
        &mut self,
        recv: &ast::Expr,
        name: &str,
        args: &[ast::Expr],
        span: Span,
    ) -> CkResult<TExpr> {
        // Static call `C.m(...)`.
        if let ast::Expr::Name(cname, _) = recv {
            if self.scope.lookup(cname).is_none()
                && self.table.lookup_field(self.class, cname).is_none()
            {
                if let Some(cid) = self.table.by_name(cname) {
                    let Some(ml) = self.table.lookup_method(cid, name) else {
                        self.err(span, format!("no method `{name}` on `{cname}`"));
                        return Err(());
                    };
                    let m = self.table.method(ml.decl_class, ml.index);
                    if !m.is_static {
                        self.err(span, format!("`{cname}.{name}` is not static"));
                        return Err(());
                    }
                    let (targs, ret) = self.check_args(ml.decl_class, ml.index, &[], args, span)?;
                    return Ok(TExpr {
                        ty: ret,
                        span,
                        kind: TExprKind::StaticCall {
                            class: ml.decl_class,
                            index: ml.index,
                            args: targs,
                        },
                    });
                }
            }
        }
        // Unqualified call in a static method: the parser lowers `m()` to
        // `this.m()`; if we are static, resolve against the current class
        // as a static call instead of erroring on `this`.
        if self.is_static {
            if let ast::Expr::This(_) = recv {
                let Some(ml) = self.table.lookup_method(self.class, name) else {
                    self.err(
                        span,
                        format!("no method `{name}` on `{}`", self.table.name(self.class)),
                    );
                    return Err(());
                };
                let m = self.table.method(ml.decl_class, ml.index);
                if !m.is_static {
                    self.err(
                        span,
                        format!("instance method `{name}` called from static context"),
                    );
                    return Err(());
                }
                let (targs, ret) = self.check_args(ml.decl_class, ml.index, &[], args, span)?;
                return Ok(TExpr {
                    ty: ret,
                    span,
                    kind: TExprKind::StaticCall {
                        class: ml.decl_class,
                        index: ml.index,
                        args: targs,
                    },
                });
            }
        }
        let trecv = self.expr(recv)?;
        let (cid, class_targs) = self.receiver_class(&trecv, span)?;
        let Some(ml) = self.table.lookup_method(cid, name) else {
            self.err(
                span,
                format!("no method `{name}` on `{}`", self.table.name(cid)),
            );
            return Err(());
        };
        let m = self.table.method(ml.decl_class, ml.index);
        if m.is_static {
            // Permit `this.staticMethod()`-style calls by lowering to a
            // static call, matching Java.
            let (targs, ret) = self.check_args(ml.decl_class, ml.index, &[], args, span)?;
            return Ok(TExpr {
                ty: ret,
                span,
                kind: TExprKind::StaticCall {
                    class: ml.decl_class,
                    index: ml.index,
                    args: targs,
                },
            });
        }
        let subst: Vec<Type> = ml.subst.iter().map(|t| t.subst(&class_targs)).collect();
        let (targs, ret) = self.check_args(ml.decl_class, ml.index, &subst, args, span)?;
        Ok(TExpr {
            ty: ret,
            span,
            kind: TExprKind::Call {
                recv: Box::new(trecv),
                method: MethodSel {
                    decl_class: ml.decl_class,
                    index: ml.index,
                },
                args: targs,
            },
        })
    }

    /// Check argument expressions against the (substituted) signature of
    /// `(decl_class, index)`; returns typed args and the return type.
    fn check_args(
        &mut self,
        decl_class: ClassId,
        index: u32,
        subst: &[Type],
        args: &[ast::Expr],
        span: Span,
    ) -> CkResult<(Vec<TExpr>, Type)> {
        let m = self.table.method(decl_class, index).clone();
        if m.params.len() != args.len() {
            self.err(
                span,
                format!(
                    "`{}` expects {} argument(s), found {}",
                    m.name,
                    m.params.len(),
                    args.len()
                ),
            );
            return Err(());
        }
        let mut out = Vec::new();
        for (a, p) in args.iter().zip(&m.params) {
            let want = p.ty.subst(subst);
            let te = self.expr(a)?;
            out.push(self.coerce(te, &want)?);
        }
        Ok((out, m.ret.subst(subst)))
    }

    fn binary(&mut self, op: BinOp, l: TExpr, r: TExpr, span: Span) -> CkResult<TExpr> {
        use BinOp::*;
        match op {
            And | Or => {
                if l.ty != Type::Boolean || r.ty != Type::Boolean {
                    self.err(span, "logical operator requires boolean operands");
                    return Err(());
                }
                Ok(TExpr {
                    ty: Type::Boolean,
                    span,
                    kind: TExprKind::Binary {
                        op,
                        operand_kind: PrimKind::Boolean,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                    },
                })
            }
            Eq | Ne if l.ty.is_reference() && r.ty.is_reference() => Ok(TExpr {
                ty: Type::Boolean,
                span,
                kind: TExprKind::RefEq {
                    negated: op == Ne,
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                },
            }),
            Eq | Ne if l.ty == Type::Boolean && r.ty == Type::Boolean => Ok(TExpr {
                ty: Type::Boolean,
                span,
                kind: TExprKind::Binary {
                    op,
                    operand_kind: PrimKind::Boolean,
                    lhs: Box::new(l),
                    rhs: Box::new(r),
                },
            }),
            Shl | Shr | BitAnd | BitOr | BitXor => {
                let (Some(lk), Some(rk)) = (l.ty.prim_kind(), r.ty.prim_kind()) else {
                    self.err(span, "bitwise operator requires integer operands");
                    return Err(());
                };
                if !matches!(lk, PrimKind::Int | PrimKind::Long)
                    || !matches!(rk, PrimKind::Int | PrimKind::Long)
                {
                    self.err(span, "bitwise operator requires int or long operands");
                    return Err(());
                }
                let kind = PrimKind::promote(lk, rk).unwrap();
                let l = self.convert_to(l, kind);
                let r = self.convert_to(r, kind);
                Ok(TExpr {
                    ty: prim_type(kind),
                    span,
                    kind: TExprKind::Binary {
                        op,
                        operand_kind: kind,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                    },
                })
            }
            _ => {
                let (Some(lk), Some(rk)) = (l.ty.prim_kind(), r.ty.prim_kind()) else {
                    let lt = self.show(&l.ty);
                    let rt = self.show(&r.ty);
                    self.err(
                        span,
                        format!("arithmetic on non-numeric types {lt} and {rt}"),
                    );
                    return Err(());
                };
                let Some(kind) = PrimKind::promote(lk, rk) else {
                    self.err(span, "arithmetic on boolean operands");
                    return Err(());
                };
                let l = self.convert_to(l, kind);
                let r = self.convert_to(r, kind);
                let ty = if op.is_comparison() {
                    Type::Boolean
                } else {
                    prim_type(kind)
                };
                Ok(TExpr {
                    ty,
                    span,
                    kind: TExprKind::Binary {
                        op,
                        operand_kind: kind,
                        lhs: Box::new(l),
                        rhs: Box::new(r),
                    },
                })
            }
        }
    }

    fn convert_to(&mut self, e: TExpr, kind: PrimKind) -> TExpr {
        if e.ty.prim_kind() == Some(kind) {
            e
        } else {
            TExpr {
                ty: prim_type(kind),
                span: e.span,
                kind: TExprKind::Convert {
                    to: kind,
                    expr: Box::new(e),
                },
            }
        }
    }
}

fn prim_type(kind: PrimKind) -> Type {
    match kind {
        PrimKind::Int => Type::Int,
        PrimKind::Long => Type::Long,
        PrimKind::Float => Type::Float,
        PrimKind::Double => Type::Double,
        PrimKind::Boolean => Type::Boolean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_unit;
    use crate::table::build;

    fn check_ok(src: &str) -> ClassTable {
        let unit = parse_unit(0, src).expect("parse");
        let mut table = match build(vec![unit]) {
            Ok(t) => t,
            Err(ds) => panic!("build failed:\n{}", crate::span::render_diags(&ds)),
        };
        match check(&mut table) {
            Ok(()) => table,
            Err(ds) => panic!("typeck failed:\n{}", crate::span::render_diags(&ds)),
        }
    }

    fn check_err(src: &str) -> String {
        let unit = parse_unit(0, src).expect("parse");
        let mut table = build(vec![unit]).expect("table build");
        match check(&mut table) {
            Ok(()) => panic!("expected type error"),
            Err(ds) => crate::span::render_diags(&ds),
        }
    }

    #[test]
    fn checks_arithmetic_with_promotion() {
        let t = check_ok("class A { double m(int i, float f, double d) { return i + f * d; } }");
        let a = t.by_name("A").unwrap();
        let m = &t.class(a).methods[0];
        assert!(m.body.is_some());
        // Return expression is a double-typed binary.
        match &m.body.as_ref().unwrap().stmts[0] {
            TStmt::Return { value: Some(v), .. } => assert_eq!(v.ty, Type::Double),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn inserts_convert_nodes() {
        let t = check_ok("class A { long m(int i) { return i; } }");
        let a = t.by_name("A").unwrap();
        match &t.class(a).methods[0].body.as_ref().unwrap().stmts[0] {
            TStmt::Return {
                value:
                    Some(TExpr {
                        kind: TExprKind::Convert { to, .. },
                        ..
                    }),
                ..
            } => {
                assert_eq!(*to, PrimKind::Long);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn rejects_narrowing_without_cast() {
        let msg = check_err("class A { int m(long v) { return v; } }");
        assert!(msg.contains("cast"), "{msg}");
    }

    #[test]
    fn allows_narrowing_with_cast() {
        check_ok("class A { int m(long v) { return (int) v; } }");
    }

    #[test]
    fn resolves_implicit_this_field() {
        let t = check_ok("class A { int x; int m() { return x; } }");
        let a = t.by_name("A").unwrap();
        match &t.class(a).methods[0].body.as_ref().unwrap().stmts[0] {
            TStmt::Return {
                value:
                    Some(TExpr {
                        kind: TExprKind::GetField { .. },
                        ..
                    }),
                ..
            } => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn virtual_call_through_interface() {
        let t = check_ok(
            "interface Solver { float solve(float x); } \
             class A { float run(Solver s) { return s.solve(1.0f); } }",
        );
        let a = t.by_name("A").unwrap();
        match &t.class(a).methods[0].body.as_ref().unwrap().stmts[0] {
            TStmt::Return {
                value:
                    Some(TExpr {
                        kind: TExprKind::Call { method, .. },
                        ..
                    }),
                ..
            } => {
                assert_eq!(method.decl_class, t.by_name("Solver").unwrap());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn static_call_resolution() {
        check_ok(
            "class MathX { @Native(\"sqrt\") static double sqrt(double x); } \
             class A { double m() { return MathX.sqrt(2.0); } }",
        );
    }

    #[test]
    fn generic_method_call_substitutes() {
        check_ok(
            "class Cell { float v; Cell(float v0) { v = v0; } float val() { return v; } } \
             class Box<T extends Cell> { T item; Box(T i) { item = i; } T get() { return item; } } \
             class A { float m() { Box<Cell> b = new Box<Cell>(new Cell(1f)); return b.get().val(); } }",
        );
    }

    #[test]
    fn missing_return_detected() {
        let msg = check_err("class A { int m(boolean b) { if (b) { return 1; } } }");
        assert!(msg.contains("without returning"), "{msg}");
    }

    #[test]
    fn both_branches_return_is_ok() {
        check_ok("class A { int m(boolean b) { if (b) { return 1; } else { return 2; } } }");
    }

    #[test]
    fn rejects_assignment_to_final_local() {
        let msg = check_err("class A { void m() { final int x = 1; x = 2; } }");
        assert!(msg.contains("final"), "{msg}");
    }

    #[test]
    fn final_field_assignable_in_subclass_ctor_only() {
        check_ok(
            "class A { final int x; A() { x = 1; } } \
             class B extends A { B() { super(); x = 2; } }",
        );
        let msg = check_err("class A { final int x; A() { x = 1; } void m() { x = 3; } }");
        assert!(msg.contains("constructor"), "{msg}");
    }

    #[test]
    fn array_ops_typed() {
        check_ok(
            "class A { float sum(float[] a) { float s = 0f; \
             for (int i = 0; i < a.length; i++) { s += a[i]; } return s; } }",
        );
    }

    #[test]
    fn compound_assignment_narrows_back() {
        // `f += d` must compile: implicit cast back to float.
        check_ok("class A { void m(double d) { float f = 0f; f += d; } }");
    }

    #[test]
    fn break_outside_loop_rejected() {
        let msg = check_err("class A { void m() { break; } }");
        assert!(msg.contains("loop"), "{msg}");
    }

    #[test]
    fn ternary_and_refeq_type_check() {
        // These are *typeable* (jrules rejects them later).
        check_ok(
            "class A { int m(boolean b, Object x, Object y) { \
               int v = b ? 1 : 2; \
               boolean same = x == y; \
               if (same) { return v; } return 0; } }",
        );
    }

    #[test]
    fn null_assignable_to_reference() {
        check_ok("class A { Object m() { Object o = null; return o; } }");
    }

    #[test]
    fn void_call_as_statement_ok_but_not_as_value() {
        check_ok("class A { void a() { } void m() { a(); } }");
        let msg = check_err("class A { void a() { } int m() { return a() + 1; } }");
        assert!(msg.contains("non-numeric") || msg.contains("void"), "{msg}");
    }

    #[test]
    fn super_call_is_direct() {
        let t = check_ok(
            "class A { int m() { return 1; } } \
             class B extends A { int m() { return super.m() + 1; } }",
        );
        let b = t.by_name("B").unwrap();
        let mut found = false;
        t.class(b).methods[0]
            .body
            .as_ref()
            .unwrap()
            .walk_exprs(&mut |e| {
                if matches!(e.kind, TExprKind::DirectCall { .. }) {
                    found = true;
                }
            });
        assert!(found);
    }

    #[test]
    fn super_ctor_args_are_typed() {
        let t = check_ok(
            "class A { int x; A(int x0) { x = x0; } } \
             class B extends A { B() { super(41); } }",
        );
        let b = t.by_name("B").unwrap();
        assert_eq!(t.class(b).ctor.as_ref().unwrap().super_args.len(), 1);
    }

    #[test]
    fn field_initializers_typed() {
        let t = check_ok("class C { } class A { C c = new C(); int n = 3; }");
        let a = t.by_name("A").unwrap();
        assert!(t.class(a).fields.iter().all(|f| f.init.is_some()));
    }

    #[test]
    fn rejects_unknown_method_and_field() {
        let msg = check_err("class A { void m(A a) { a.nope(); } }");
        assert!(msg.contains("no method"), "{msg}");
        let msg = check_err("class A { int m(A a) { return a.nope; } }");
        assert!(msg.contains("no field"), "{msg}");
    }

    #[test]
    fn rejects_arg_count_mismatch() {
        let msg = check_err("class A { int f(int x) { return x; } int m() { return f(1, 2); } }");
        assert!(msg.contains("argument"), "{msg}");
    }

    #[test]
    fn instance_field_in_static_context_rejected() {
        let msg = check_err("class A { int x; static int m() { return x; } }");
        assert!(msg.contains("static"), "{msg}");
    }
}
