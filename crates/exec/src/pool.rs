//! The executor seam: *who* runs a batch of ready slices.
//!
//! Every backend in this reproduction executes ranks cooperatively —
//! one OS thread interleaving resumable [`Thread`]s under a seeded
//! per-round service order. That made determinism trivial but left
//! "speed" a purely virtual number. This module splits the *policy*
//! (which ranks run this round, in what order their yields are
//! serviced — still owned by the scheduler) from the *mechanism*
//! (which OS thread burns the cycles of each slice):
//!
//! - [`SimExecutor`] runs the batch serially on the calling thread, in
//!   batch order. This is byte-for-byte the historical loop, just
//!   routed through the seam.
//! - [`ThreadExecutor`] fans the batch out over real `std::thread`
//!   workers with a work-stealing deque (zero external deps, zero
//!   `unsafe`). In [`ExecMode::Replay`] it hands results back in batch
//!   order — the seeded schedule the scheduler chose — so the world is
//!   bit-identical to [`SimExecutor`]. In [`ExecMode::Free`] results
//!   come back in completion order: raw throughput, still
//!   value-identical on exact-arithmetic workloads because world
//!   *results* are schedule-independent by construction (the invariant
//!   the conformance suite already enforces for arbitrary seeds).
//!
//! Why batching is sound: within one scheduler round, executing a
//! rank's slice touches only that rank's own [`Thread`] and
//! [`Machine`]. Cross-rank effects (message delivery, collective
//! completion, fault draws) happen when the scheduler *services* the
//! returned yield, never during slice execution itself. So "run all
//! ready slices, possibly in parallel, then service yields in the
//! chosen order" is observably identical to the historical
//! run-one-service-one loop.
//!
//! The same pool backs the translator's parallel per-function lowering
//! via [`parallel_map`], which preserves input-index order so FuncId
//! assignment stays deterministic.

use crate::{run, ExecError, Machine, Thread, Yield};
use nir::Program;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// How a [`ThreadExecutor`] hands results back to the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Results return in batch (seeded-schedule) order: bit-identical
    /// to [`SimExecutor`], so warm caches and `.wckpt` chains survive.
    Replay,
    /// Results return in completion order: opt-in raw throughput.
    /// Values stay identical on exact-arithmetic workloads; virtual
    /// timing may legitimately diverge.
    Free,
}

/// Executor selection, carried by world builders and [`RunRequest`]s
/// (a config, not a trait object, so it stays `Copy` and wire-free).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum ExecutorCfg {
    /// The historical single-threaded cooperative loop.
    #[default]
    Sim,
    /// Real OS-thread workers over a work-stealing deque.
    Threads { workers: u32, mode: ExecMode },
}

impl ExecutorCfg {
    /// Read the `WJ_EXECUTOR` override: `threads` / `threads:<N>`
    /// selects replay-mode OS threads (bit-identical, safe to apply to
    /// an entire test suite); anything else keeps `self`.
    pub fn from_env_or(self) -> Self {
        match std::env::var("WJ_EXECUTOR") {
            Ok(v) if v == "threads" => ExecutorCfg::Threads {
                workers: default_workers(),
                mode: ExecMode::Replay,
            },
            Ok(v) => match v.strip_prefix("threads:").and_then(|n| n.parse().ok()) {
                Some(workers) => ExecutorCfg::Threads {
                    workers,
                    mode: ExecMode::Replay,
                },
                None => self,
            },
            Err(_) => self,
        }
    }

    /// Build the executor this configuration names.
    pub fn build(self) -> Box<dyn Executor> {
        match self {
            ExecutorCfg::Sim => Box::new(SimExecutor),
            ExecutorCfg::Threads { workers, mode } => Box::new(ThreadExecutor { workers, mode }),
        }
    }
}

/// Worker count when the override doesn't name one: the machine's
/// available parallelism, floored at 2 so "threads" always means
/// threads even on a single-core box.
pub fn default_workers() -> u32 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u32)
        .unwrap_or(1)
        .max(2)
}

/// One ready slice: a rank's thread + machine, moved out of the pool
/// for the duration of the batch (slice execution owns them — that
/// exclusivity is what makes parallel batches sound).
pub struct SliceJob {
    pub rank: u32,
    pub thread: Thread,
    pub machine: Machine,
    pub slice: u64,
}

/// A finished slice: the rank's state handed back, plus how it
/// stopped. Fallible — executors never unwrap execution errors.
pub struct SliceDone {
    pub rank: u32,
    pub thread: Thread,
    pub machine: Machine,
    pub outcome: Result<Yield, ExecError>,
}

/// Runs one scheduler round's batch of ready slices.
///
/// The result order *is* the contract: [`SimExecutor`] and replay-mode
/// [`ThreadExecutor`] return results in batch order (the seeded
/// schedule); free-running mode returns completion order.
pub trait Executor: Send + Sync {
    fn run_batch(&self, program: &Program, jobs: Vec<SliceJob>) -> Vec<SliceDone>;

    /// Stable name for reports (`sim`, `threads-replay`, `threads-free`).
    fn name(&self) -> &'static str;
}

fn exec_one(program: &Program, job: SliceJob) -> SliceDone {
    let SliceJob {
        rank,
        mut thread,
        mut machine,
        slice,
    } = job;
    let outcome = run(&mut thread, program, &mut machine, slice);
    SliceDone {
        rank,
        thread,
        machine,
        outcome,
    }
}

/// The historical loop behind the seam: the calling thread runs each
/// slice in batch order.
#[derive(Debug, Clone, Copy, Default)]
pub struct SimExecutor;

impl Executor for SimExecutor {
    fn run_batch(&self, program: &Program, jobs: Vec<SliceJob>) -> Vec<SliceDone> {
        jobs.into_iter().map(|j| exec_one(program, j)).collect()
    }

    fn name(&self) -> &'static str {
        "sim"
    }
}

/// Real `std::thread` workers over a work-stealing deque.
///
/// Workers are scoped per batch (not persistent): slices are large
/// (millions of retired instructions at the default fuel), so spawn
/// cost amortizes, and scoping keeps every borrow safe — no `unsafe`,
/// no channels, no external crates. Each worker owns a deque, pops its
/// own front, and steals from other deques' backs when empty.
#[derive(Debug, Clone, Copy)]
pub struct ThreadExecutor {
    pub workers: u32,
    pub mode: ExecMode,
}

impl ThreadExecutor {
    pub fn new(workers: u32, mode: ExecMode) -> Self {
        ThreadExecutor { workers, mode }
    }
}

impl Executor for ThreadExecutor {
    fn run_batch(&self, program: &Program, jobs: Vec<SliceJob>) -> Vec<SliceDone> {
        let n = jobs.len();
        let workers = (self.workers.max(1) as usize).min(n);
        if workers <= 1 {
            // One worker (or one job) degenerates to the serial loop.
            return SimExecutor.run_batch(program, jobs);
        }
        // Seed the deques round-robin so every worker starts loaded.
        let queues: Vec<Mutex<VecDeque<(usize, SliceJob)>>> =
            (0..workers).map(|_| Mutex::new(VecDeque::new())).collect();
        for (i, job) in jobs.into_iter().enumerate() {
            queues[i % workers].lock().unwrap().push_back((i, job));
        }
        let done: Mutex<Vec<(usize, SliceDone)>> = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|s| {
            for w in 0..workers {
                let queues = &queues;
                let done = &done;
                s.spawn(move || loop {
                    // Own deque first (front), then steal (back) —
                    // the classic deque discipline, mutexed because
                    // batches are coarse enough that contention is
                    // irrelevant next to slice cost.
                    let mut job = queues[w].lock().unwrap().pop_front();
                    if job.is_none() {
                        for o in 1..workers {
                            let victim = (w + o) % workers;
                            job = queues[victim].lock().unwrap().pop_back();
                            if job.is_some() {
                                break;
                            }
                        }
                    }
                    match job {
                        Some((i, j)) => {
                            let r = exec_one(program, j);
                            done.lock().unwrap().push((i, r));
                        }
                        // All deques drained: no new work arrives
                        // mid-batch, so empty means finished.
                        None => break,
                    }
                });
            }
        });
        let mut results = done.into_inner().unwrap();
        if self.mode == ExecMode::Replay {
            // Hand-off follows the seeded schedule: batch order.
            results.sort_by_key(|(i, _)| *i);
        }
        results.into_iter().map(|(_, r)| r).collect()
    }

    fn name(&self) -> &'static str {
        match self.mode {
            ExecMode::Replay => "threads-replay",
            ExecMode::Free => "threads-free",
        }
    }
}

/// Map `f` over `items` on up to `workers` OS threads, returning
/// results in input-index order regardless of completion order.
///
/// This is the translator's half of the pool: independent per-function
/// lowerings fan out here, and index-order results are what keep
/// FuncId assignment and stats aggregation bit-identical to serial.
pub fn parallel_map<T, R, F>(workers: u32, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let n = items.len();
    let workers = (workers.max(1) as usize).min(n);
    if workers <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }
    let items: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = items[i].lock().unwrap().take().expect("claimed twice");
                *slots[i].lock().unwrap() = Some(f(i, item));
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap()
                .expect("worker died before filling slot")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_map_preserves_input_order() {
        for workers in [1, 2, 4, 8] {
            let items: Vec<u64> = (0..100).collect();
            let out = parallel_map(workers, items, |i, x| {
                assert_eq!(i as u64, x);
                x * x
            });
            assert_eq!(out, (0..100u64).map(|x| x * x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn executor_cfg_env_override_parses() {
        // Can't set the env var here (tests share a process), but the
        // identity path must hold.
        let cfg = ExecutorCfg::Threads {
            workers: 3,
            mode: ExecMode::Free,
        };
        assert_eq!(cfg.build().name(), "threads-free");
        assert_eq!(ExecutorCfg::Sim.build().name(), "sim");
        assert!(default_workers() >= 2);
    }
}
