//! Delta checkpoint chains: `base + delta*` with verified parentage.
//!
//! A snapshot is decomposed by the caller into ordered byte *sections*
//! (per-rank heap arrays, call-stack tails, fault-PRNG cursors, message
//! queues — the chain layer is agnostic). The first link of a chain is a
//! **base** carrying every section verbatim; each subsequent **delta**
//! link carries only the sections that changed, either as a full
//! replacement or as a byte-run patch against the parent's bytes,
//! whichever is smaller.
//!
//! Every link is a sealed, checksummed `nir::codec` container and carries
//! the xorshift-mixed digest of its *parent's sealed bytes* plus a
//! sequence number, so the chain is self-validating end to end: a
//! truncated, bit-flipped, or swapped-in link surfaces as a typed
//! [`CkptError`] at exactly the first bad hop, and [`resolve_prefix`]
//! hands back the deepest valid ancestor instead of giving up. Only a
//! damaged base forces a cold restart.

use super::{begin, finish, CkptError, CKPT_VERSION, TAG_CHAIN_BASE, TAG_CHAIN_DELTA};
use nir::codec::{unseal, Reader};

/// 64-bit content digest used to link a child to its parent's sealed
/// bytes (FNV-1a folded through a xorshift-style avalanche). Not
/// cryptographic — this guards against corruption and mix-ups, not
/// adversaries, matching the sealed container's own integrity model.
pub fn digest64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h ^= h >> 33;
    h = h.wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    h ^ (h >> 33)
}

/// Byte runs shorter than this gap apart are merged into one run —
/// per-run framing costs ~12 bytes, so tiny gaps are cheaper inlined.
const RUN_MERGE_GAP: usize = 16;

/// Approximate per-run framing overhead used when deciding whether a
/// patch actually beats a full section replacement.
const RUN_OVERHEAD: usize = 12;

/// One sealed chain link plus the metadata the encoder tracks for it.
#[derive(Debug, Clone)]
pub struct Link {
    /// Sealed container bytes — what gets persisted / shipped.
    pub bytes: Vec<u8>,
    /// Position in the chain: 0 for the base, then 1, 2, …
    pub seq: u64,
    /// Whether this link is a base (full snapshot) or a delta.
    pub is_base: bool,
}

/// Header of a decoded link, for inspection and validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkInfo {
    pub is_base: bool,
    pub seq: u64,
    /// Digest of the parent link's sealed bytes (0 for a base).
    pub parent_digest: u64,
}

/// Decode just the header of a sealed link.
pub fn inspect(bytes: &[u8]) -> Result<LinkInfo, CkptError> {
    let payload = unseal(bytes)?;
    let mut r = Reader::new(payload);
    let found = r.u8()?;
    if found != CKPT_VERSION {
        return Err(CkptError::VersionSkew {
            found,
            expected: CKPT_VERSION,
        });
    }
    let tag = r.u8()?;
    let is_base = match tag {
        TAG_CHAIN_BASE => true,
        TAG_CHAIN_DELTA => false,
        t => {
            return Err(r
                .corrupt(format!("payload kind {t:#04x} is not a chain link"))
                .into())
        }
    };
    let seq = r.u64()?;
    let parent_digest = r.u64()?;
    Ok(LinkInfo {
        is_base,
        seq,
        parent_digest,
    })
}

/// How one section changed relative to the parent snapshot.
enum Change {
    /// Replace the section's bytes wholesale (also used when lengths
    /// differ — heap reallocation moves everything anyway).
    Full(Vec<u8>),
    /// Same-length section: splice these `(offset, bytes)` runs in.
    Patch(Vec<(usize, Vec<u8>)>),
}

/// Diff one section against its parent version.
fn diff_section(old: &[u8], new: &[u8]) -> Option<Change> {
    if old == new {
        return None;
    }
    if old.len() != new.len() {
        return Some(Change::Full(new.to_vec()));
    }
    let mut runs: Vec<(usize, usize)> = Vec::new(); // (start, end)
    let mut i = 0;
    while i < new.len() {
        if old[i] == new[i] {
            i += 1;
            continue;
        }
        let start = i;
        while i < new.len() && old[i] != new[i] {
            i += 1;
        }
        match runs.last_mut() {
            Some((_, end)) if start - *end < RUN_MERGE_GAP => *end = i,
            _ => runs.push((start, i)),
        }
    }
    let patch_cost: usize = runs.iter().map(|(s, e)| e - s + RUN_OVERHEAD).sum();
    if patch_cost >= new.len() {
        return Some(Change::Full(new.to_vec()));
    }
    Some(Change::Patch(
        runs.into_iter()
            .map(|(s, e)| (s, new[s..e].to_vec()))
            .collect(),
    ))
}

fn encode_base(sections: &[Vec<u8>]) -> Vec<u8> {
    let mut w = begin(TAG_CHAIN_BASE);
    w.u64(0); // seq
    w.u64(0); // parent digest
    w.len(sections.len());
    for s in sections {
        w.len(s.len());
        w.bytes(s);
    }
    finish(w)
}

fn encode_delta(parent: &[Vec<u8>], sections: &[Vec<u8>], seq: u64, parent_digest: u64) -> Vec<u8> {
    let mut w = begin(TAG_CHAIN_DELTA);
    w.u64(seq);
    w.u64(parent_digest);
    w.len(sections.len());
    let mut changed: Vec<(usize, Change)> = Vec::new();
    for (idx, new) in sections.iter().enumerate() {
        let old: &[u8] = parent.get(idx).map(|v| v.as_slice()).unwrap_or(&[]);
        if let Some(c) = diff_section(old, new) {
            changed.push((idx, c));
        }
    }
    w.len(changed.len());
    for (idx, change) in &changed {
        // Indices and offsets are positions, not lengths — the reader's
        // `len()` sanity bound does not apply to them.
        w.u32(*idx as u32);
        match change {
            Change::Full(bytes) => {
                w.u8(0);
                w.len(bytes.len());
                w.bytes(bytes);
            }
            Change::Patch(runs) => {
                w.u8(1);
                w.len(runs.len());
                for (offset, bytes) in runs {
                    w.u64(*offset as u64);
                    w.len(bytes.len());
                    w.bytes(bytes);
                }
            }
        }
    }
    finish(w)
}

fn read_sections_of_base(r: &mut Reader) -> Result<Vec<Vec<u8>>, CkptError> {
    let n = r.len()?;
    let mut sections = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.len()?;
        sections.push(r.bytes(len)?.to_vec());
    }
    Ok(sections)
}

/// Apply one delta payload (reader positioned past the header) to the
/// parent's sections.
fn apply_delta(r: &mut Reader, parent: &[Vec<u8>]) -> Result<Vec<Vec<u8>>, CkptError> {
    let n_total = r.len()?;
    let mut sections: Vec<Vec<u8>> = parent.to_vec();
    sections.resize(n_total, Vec::new());
    let n_changed = r.len()?;
    for _ in 0..n_changed {
        let idx = r.u32()? as usize;
        if idx >= n_total {
            return Err(r
                .corrupt(format!("delta touches section {idx} of {n_total}"))
                .into());
        }
        match r.u8()? {
            0 => {
                let len = r.len()?;
                sections[idx] = r.bytes(len)?.to_vec();
            }
            1 => {
                let n_runs = r.len()?;
                for _ in 0..n_runs {
                    let offset = r.u64()? as usize;
                    let len = r.len()?;
                    let bytes = r.bytes(len)?;
                    let sec = &mut sections[idx];
                    if offset + len > sec.len() {
                        return Err(r
                            .corrupt(format!(
                                "patch run {offset}+{len} past section {idx} end {}",
                                sec.len()
                            ))
                            .into());
                    }
                    sec[offset..offset + len].copy_from_slice(bytes);
                }
            }
            k => return Err(r.corrupt(format!("bad change kind {k}")).into()),
        }
    }
    Ok(sections)
}

/// Result of walking a chain front to back: how many links validated and
/// applied cleanly, the resolved sections of that prefix, and the typed
/// error that stopped the walk (if any link was bad).
#[derive(Debug)]
pub struct ResolveOutcome {
    /// Number of leading links that validated and applied.
    pub valid_links: usize,
    /// Snapshot sections after applying the valid prefix (empty when
    /// even the base was bad).
    pub sections: Vec<Vec<u8>>,
    /// Why the walk stopped early, when `valid_links < links.len()`.
    pub error: Option<CkptError>,
}

/// Walk `links` (base first), verifying version, kind, sequence, and
/// parent digest at every hop and applying deltas as it goes. Never
/// fails outright: a damaged link simply ends the valid prefix, which is
/// the deepest valid ancestor rollback degrades to.
pub fn resolve_prefix(links: &[Vec<u8>]) -> ResolveOutcome {
    let mut sections: Vec<Vec<u8>> = Vec::new();
    let mut prev_digest = 0u64;
    for (i, bytes) in links.iter().enumerate() {
        let step = || -> Result<Vec<Vec<u8>>, CkptError> {
            let info = inspect(bytes)?;
            let payload = unseal(bytes)?;
            let mut r = Reader::new(payload);
            r.u8()?; // version (validated by inspect)
            r.u8()?; // tag
            r.u64()?; // seq
            r.u64()?; // parent digest
            if i == 0 {
                if !info.is_base {
                    return Err(CkptError::ChainBroken {
                        seq: info.seq,
                        message: "chain does not start with a base link".into(),
                    });
                }
                read_sections_of_base(&mut r)
            } else {
                if info.is_base {
                    return Err(CkptError::ChainBroken {
                        seq: info.seq,
                        message: format!("unexpected base link at position {i}"),
                    });
                }
                if info.seq != i as u64 {
                    return Err(CkptError::ChainBroken {
                        seq: info.seq,
                        message: format!("link claims seq {}, expected {i}", info.seq),
                    });
                }
                if info.parent_digest != prev_digest {
                    return Err(CkptError::ChainBroken {
                        seq: info.seq,
                        message: format!(
                            "parent digest {:#018x} does not match {:#018x}",
                            info.parent_digest, prev_digest
                        ),
                    });
                }
                apply_delta(&mut r, &sections)
            }
        };
        match step() {
            Ok(next) => {
                sections = next;
                prev_digest = digest64(bytes);
            }
            Err(e) => {
                return ResolveOutcome {
                    valid_links: i,
                    sections,
                    error: Some(e),
                }
            }
        }
    }
    ResolveOutcome {
        valid_links: links.len(),
        sections,
        error: None,
    }
}

/// Incremental chain encoder: holds the sections of the chain head so
/// the next [`ChainState::push`] can diff against them.
#[derive(Debug, Default, Clone)]
pub struct ChainState {
    sections: Vec<Vec<u8>>,
    head_digest: u64,
    next_seq: u64,
}

impl ChainState {
    /// An empty encoder — the first push always produces a base.
    pub fn new() -> Self {
        ChainState::default()
    }

    /// Rebuild the encoder at the head of an already-resolved chain
    /// (warm start, or rollback to a shorter valid prefix). `head_bytes`
    /// is the sealed last link of the prefix.
    pub fn resume(sections: Vec<Vec<u8>>, head_bytes: &[u8], links_in_chain: u64) -> Self {
        ChainState {
            sections,
            head_digest: digest64(head_bytes),
            next_seq: links_in_chain,
        }
    }

    /// Encode the next link. `force_base` starts a fresh epoch (rebase);
    /// the first push of a chain is always a base regardless.
    pub fn push(&mut self, sections: Vec<Vec<u8>>, force_base: bool) -> Link {
        let is_base = force_base || self.next_seq == 0;
        let (bytes, seq) = if is_base {
            (encode_base(&sections), 0)
        } else {
            let seq = self.next_seq;
            (
                encode_delta(&self.sections, &sections, seq, self.head_digest),
                seq,
            )
        };
        self.head_digest = digest64(&bytes);
        self.next_seq = seq + 1;
        self.sections = sections;
        Link {
            bytes,
            seq,
            is_base,
        }
    }

    /// Sections at the current chain head (what the next delta diffs
    /// against).
    pub fn head_sections(&self) -> &[Vec<u8>] {
        &self.sections
    }
}

/// A standalone full snapshot is just a single-link chain.
pub fn base_link(sections: &[Vec<u8>]) -> Vec<u8> {
    encode_base(sections)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(parts: &[&[u8]]) -> Vec<Vec<u8>> {
        parts.iter().map(|p| p.to_vec()).collect()
    }

    #[test]
    fn chain_resolves_to_the_latest_snapshot() {
        let mut enc = ChainState::new();
        let s0 = snap(&[b"header", b"aaaaaaaaaaaaaaaa", b"queue"]);
        let s1 = snap(&[b"header", b"aaaaaaaaXaaaaaaa", b"queue"]);
        let s2 = snap(&[b"header2", b"aaaaaaaaXaaaaaaa", b"qq"]);
        let l0 = enc.push(s0, false);
        let l1 = enc.push(s1, false);
        let l2 = enc.push(s2.clone(), false);
        assert!(l0.is_base && !l1.is_base && !l2.is_base);
        assert_eq!((l0.seq, l1.seq, l2.seq), (0, 1, 2));
        let out = resolve_prefix(&[l0.bytes, l1.bytes, l2.bytes]);
        assert_eq!(out.valid_links, 3);
        assert!(out.error.is_none());
        assert_eq!(out.sections, s2);
    }

    #[test]
    fn deltas_are_much_smaller_than_bases_for_sparse_change() {
        let big: Vec<u8> = (0..16_384u32).map(|i| i as u8).collect();
        let mut touched = big.clone();
        touched[5000] ^= 0xFF;
        let mut enc = ChainState::new();
        let base = enc.push(snap(&[&big, b"small"]), false);
        let delta = enc.push(snap(&[&touched, b"small"]), false);
        assert!(
            delta.bytes.len() * 20 < base.bytes.len(),
            "one-byte change: delta {} vs base {}",
            delta.bytes.len(),
            base.bytes.len()
        );
    }

    #[test]
    fn unchanged_snapshot_encodes_a_near_empty_delta() {
        let s = snap(&[&[7u8; 4096], b"tail"]);
        let mut enc = ChainState::new();
        enc.push(s.clone(), false);
        let delta = enc.push(s.clone(), false);
        assert!(
            delta.bytes.len() < 64,
            "empty delta is {}",
            delta.bytes.len()
        );
        // And it still resolves to the same snapshot.
        let mut enc2 = ChainState::new();
        let l0 = enc2.push(s.clone(), false);
        let l1 = enc2.push(s.clone(), false);
        let out = resolve_prefix(&[l0.bytes, l1.bytes]);
        assert_eq!(out.sections, s);
    }

    #[test]
    fn length_changes_and_section_count_changes_resolve() {
        let mut enc = ChainState::new();
        let s0 = snap(&[b"one", b"two"]);
        let s1 = snap(&[b"one-grew-longer", b"two", b"three-is-new"]);
        let s2 = snap(&[b"one-grew-longer"]);
        let links: Vec<Vec<u8>> = [s0, s1, s2.clone()]
            .into_iter()
            .map(|s| enc.push(s, false).bytes)
            .collect();
        let out = resolve_prefix(&links);
        assert_eq!(out.valid_links, 3);
        assert_eq!(out.sections, s2);
    }

    #[test]
    fn rebase_starts_a_fresh_epoch() {
        let mut enc = ChainState::new();
        let s = snap(&[b"state"]);
        enc.push(s.clone(), false);
        enc.push(s.clone(), false);
        let rebased = enc.push(s.clone(), true);
        assert!(rebased.is_base);
        assert_eq!(rebased.seq, 0);
        let next = enc.push(s.clone(), false);
        assert_eq!(next.seq, 1, "seq restarts after a rebase");
        let out = resolve_prefix(&[rebased.bytes, next.bytes]);
        assert_eq!(out.valid_links, 2);
        assert_eq!(out.sections, s);
    }

    #[test]
    fn every_single_bit_flip_stops_at_the_damaged_link() {
        let mut enc = ChainState::new();
        let links: Vec<Vec<u8>> = [
            snap(&[b"base-state-0123456789"]),
            snap(&[b"base-state-0123456789".as_slice(), b"grown"]),
            snap(&[b"base-stateX0123456789".as_slice(), b"grown"]),
        ]
        .into_iter()
        .map(|s| enc.push(s, false).bytes)
        .collect();
        for damaged_idx in 0..links.len() {
            let victim = &links[damaged_idx];
            for byte in 0..victim.len() {
                let mut bad = links.clone();
                bad[damaged_idx][byte] ^= 0x10;
                let out = resolve_prefix(&bad);
                assert_eq!(
                    out.valid_links, damaged_idx,
                    "flip at link {damaged_idx} byte {byte}"
                );
                assert!(out.error.is_some());
            }
        }
    }

    #[test]
    fn truncation_is_typed() {
        let mut enc = ChainState::new();
        let l0 = enc.push(snap(&[b"0123456789abcdef"]), false);
        let l1 = enc.push(snap(&[b"0123456789ABcdef"]), false);
        let mut cut = l1.bytes.clone();
        cut.truncate(cut.len() / 2);
        let out = resolve_prefix(&[l0.bytes.clone(), cut]);
        assert_eq!(out.valid_links, 1);
        assert!(matches!(
            out.error,
            Some(CkptError::Truncated { .. } | CkptError::Corrupt { .. })
        ));
    }

    #[test]
    fn swapped_in_foreign_link_is_chain_broken() {
        let mut a = ChainState::new();
        let a0 = a.push(snap(&[b"world-a"]), false);
        let a1 = a.push(snap(&[b"world-A"]), false);
        let mut b = ChainState::new();
        b.push(snap(&[b"world-b"]), false);
        let b1 = b.push(snap(&[b"world-B"]), false);
        // b's delta is well-formed but does not descend from a's base.
        let out = resolve_prefix(&[a0.bytes.clone(), b1.bytes]);
        assert_eq!(out.valid_links, 1);
        assert!(matches!(out.error, Some(CkptError::ChainBroken { .. })));
        // Order violations are chain-broken too.
        let out = resolve_prefix(&[a1.bytes, a0.bytes]);
        assert_eq!(out.valid_links, 0);
        assert!(matches!(out.error, Some(CkptError::ChainBroken { .. })));
    }

    #[test]
    fn resume_continues_an_existing_chain() {
        let mut enc = ChainState::new();
        let s0 = snap(&[b"alpha", b"beta"]);
        let s1 = snap(&[b"alpha", b"BETA"]);
        let l0 = enc.push(s0, false);
        let l1 = enc.push(s1.clone(), false);
        // A fresh process resolves the persisted chain, then resumes it.
        let out = resolve_prefix(&[l0.bytes.clone(), l1.bytes.clone()]);
        let mut resumed = ChainState::resume(out.sections, &l1.bytes, 2);
        let s2 = snap(&[b"ALPHA", b"BETA"]);
        let l2 = resumed.push(s2.clone(), false);
        assert_eq!(l2.seq, 2);
        let out = resolve_prefix(&[l0.bytes, l1.bytes, l2.bytes]);
        assert_eq!(out.valid_links, 3);
        assert_eq!(out.sections, s2);
    }

    #[test]
    fn base_link_round_trips_standalone() {
        let s = snap(&[b"only"]);
        let bytes = base_link(&s);
        let info = inspect(&bytes).unwrap();
        assert!(info.is_base);
        assert_eq!(info.seq, 0);
        let out = resolve_prefix(&[bytes]);
        assert_eq!(out.valid_links, 1);
        assert_eq!(out.sections, s);
    }
}
