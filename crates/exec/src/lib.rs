//! # exec — the NIR execution engine
//!
//! Executes translated programs. One engine powers every series of the
//! paper's evaluation except *Java*:
//!
//! * the fully optimized WootinJ output (flat code, direct calls),
//! * the hand-written "C" programs (built directly as flat NIR),
//! * the *C++* / *Template* baselines (heap objects, vtable dispatch),
//! * CUDA kernels under `gpu-sim` and MPI ranks under `mpi-sim`.
//!
//! The engine is **resumable**: `run()` executes until completion, fuel
//! exhaustion, or a *yield point* — `__syncthreads`, an MPI operation, a
//! kernel launch, or a GPU memory operation. The surrounding runtime
//! (gpu-sim, mpi-sim, or the wootinj facade) services the yield and
//! resumes the thread. This is what makes barrier-correct GPU execution
//! and deterministic cooperative MPI scheduling possible without host
//! threads.
//!
//! Every retired instruction is charged a weight; the accumulated
//! `Counters::cycles` is the deterministic virtual-time metric behind the
//! scalability figures.

#![forbid(unsafe_code)]

pub mod ckpt;
pub mod fault;
pub mod pool;

pub use ckpt::CkptError;
pub use fault::{FaultConfig, FaultPlan, FaultRng, MsgFault, ResilienceStats, TransportFault};
pub use pool::{ExecMode, Executor, ExecutorCfg, SimExecutor, ThreadExecutor};

use jlang::ast::BinOp;
use jlang::types::PrimKind;
use nir::{ElemTy, FuncId, Instr, IntrinOp, Program, Reg};

/// A runtime value: primitives plus array/object handles into a
/// [`MemSpace`] / [`ObjHeap`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Val {
    I32(i32),
    I64(i64),
    F32(f32),
    F64(f64),
    Bool(bool),
    Arr(u32),
    Obj(u32),
    /// Uninitialized register / void result.
    Unit,
}

impl Val {
    pub fn as_i32(self) -> Result<i32, ExecError> {
        match self {
            Val::I32(v) => Ok(v),
            other => Err(ExecError::msg(format!("expected i32, found {other:?}"))),
        }
    }

    pub fn as_i64(self) -> Result<i64, ExecError> {
        match self {
            Val::I64(v) => Ok(v),
            other => Err(ExecError::msg(format!("expected i64, found {other:?}"))),
        }
    }

    pub fn as_f32(self) -> Result<f32, ExecError> {
        match self {
            Val::F32(v) => Ok(v),
            other => Err(ExecError::msg(format!("expected f32, found {other:?}"))),
        }
    }

    pub fn as_f64(self) -> Result<f64, ExecError> {
        match self {
            Val::F64(v) => Ok(v),
            other => Err(ExecError::msg(format!("expected f64, found {other:?}"))),
        }
    }

    pub fn as_bool(self) -> Result<bool, ExecError> {
        match self {
            Val::Bool(v) => Ok(v),
            other => Err(ExecError::msg(format!("expected bool, found {other:?}"))),
        }
    }

    pub fn as_arr(self) -> Result<u32, ExecError> {
        match self {
            Val::Arr(v) => Ok(v),
            other => Err(ExecError::msg(format!(
                "expected array handle, found {other:?}"
            ))),
        }
    }

    pub fn as_obj(self) -> Result<u32, ExecError> {
        match self {
            Val::Obj(v) => Ok(v),
            other => Err(ExecError::msg(format!(
                "expected object handle, found {other:?}"
            ))),
        }
    }
}

/// Typed array storage within a memory space.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrStore {
    I32(Vec<i32>),
    I64(Vec<i64>),
    F32(Vec<f32>),
    F64(Vec<f64>),
    Bool(Vec<bool>),
    /// Explicitly freed (use-after-free is detected and reported).
    Freed,
}

impl ArrStore {
    pub fn new(elem: ElemTy, len: usize) -> ArrStore {
        match elem {
            ElemTy::I32 => ArrStore::I32(vec![0; len]),
            ElemTy::I64 => ArrStore::I64(vec![0; len]),
            ElemTy::F32 => ArrStore::F32(vec![0.0; len]),
            ElemTy::F64 => ArrStore::F64(vec![0.0; len]),
            ElemTy::Bool => ArrStore::Bool(vec![false; len]),
        }
    }

    pub fn len(&self) -> Result<usize, ExecError> {
        Ok(match self {
            ArrStore::I32(v) => v.len(),
            ArrStore::I64(v) => v.len(),
            ArrStore::F32(v) => v.len(),
            ArrStore::F64(v) => v.len(),
            ArrStore::Bool(v) => v.len(),
            ArrStore::Freed => return Err("use of freed array".into()),
        })
    }

    pub fn is_empty(&self) -> bool {
        matches!(self.len(), Ok(0))
    }

    pub fn get(&self, i: usize) -> Result<Val, ExecError> {
        let n = self.len()?;
        if i >= n {
            return Err(ExecError::msg(format!(
                "array index {i} out of bounds (len {n})"
            )));
        }
        Ok(match self {
            ArrStore::I32(v) => Val::I32(v[i]),
            ArrStore::I64(v) => Val::I64(v[i]),
            ArrStore::F32(v) => Val::F32(v[i]),
            ArrStore::F64(v) => Val::F64(v[i]),
            ArrStore::Bool(v) => Val::Bool(v[i]),
            ArrStore::Freed => unreachable!(),
        })
    }

    pub fn set(&mut self, i: usize, val: Val) -> Result<(), ExecError> {
        let n = self.len()?;
        if i >= n {
            return Err(ExecError::msg(format!(
                "array index {i} out of bounds (len {n})"
            )));
        }
        match (self, val) {
            (ArrStore::I32(v), Val::I32(x)) => v[i] = x,
            (ArrStore::I64(v), Val::I64(x)) => v[i] = x,
            (ArrStore::F32(v), Val::F32(x)) => v[i] = x,
            (ArrStore::F64(v), Val::F64(x)) => v[i] = x,
            (ArrStore::Bool(v), Val::Bool(x)) => v[i] = x,
            (s, x) => {
                return Err(ExecError::msg(format!(
                    "type mismatch storing {x:?} into {s:?}"
                )))
            }
        }
        Ok(())
    }
}

/// A flat memory space (host, one per MPI rank, or a GPU device space).
#[derive(Debug, Default)]
pub struct MemSpace {
    pub arrays: Vec<ArrStore>,
}

impl MemSpace {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn alloc(&mut self, store: ArrStore) -> u32 {
        self.arrays.push(store);
        self.arrays.len() as u32 - 1
    }

    pub fn arr(&self, h: u32) -> Result<&ArrStore, ExecError> {
        self.arrays
            .get(h as usize)
            .ok_or_else(|| ExecError::msg(format!("bad array handle {h}")))
    }

    pub fn arr_mut(&mut self, h: u32) -> Result<&mut ArrStore, ExecError> {
        self.arrays
            .get_mut(h as usize)
            .ok_or_else(|| ExecError::msg(format!("bad array handle {h}")))
    }

    pub fn free(&mut self, h: u32) -> Result<(), ExecError> {
        let a = self.arr_mut(h)?;
        if matches!(a, ArrStore::Freed) {
            return Err("double free".into());
        }
        *a = ArrStore::Freed;
        Ok(())
    }
}

/// Heap objects for the unoptimized (C++/Template baseline) configurations.
#[derive(Debug, Default)]
pub struct ObjHeap {
    pub objects: Vec<(u32, Vec<Val>)>,
}

impl ObjHeap {
    pub fn alloc(&mut self, class: u32, fields: usize) -> u32 {
        self.objects.push((class, vec![Val::Unit; fields]));
        self.objects.len() as u32 - 1
    }

    pub fn class_of(&self, h: u32) -> Result<u32, ExecError> {
        self.objects
            .get(h as usize)
            .map(|(c, _)| *c)
            .ok_or_else(|| ExecError::msg(format!("bad object {h}")))
    }

    pub fn get(&self, h: u32, slot: u32) -> Result<Val, ExecError> {
        self.objects
            .get(h as usize)
            .and_then(|(_, f)| f.get(slot as usize).copied())
            .ok_or_else(|| ExecError::msg(format!("bad field {slot} of object {h}")))
    }

    pub fn set(&mut self, h: u32, slot: u32, v: Val) -> Result<(), ExecError> {
        let rec = self
            .objects
            .get_mut(h as usize)
            .ok_or_else(|| ExecError::msg(format!("bad object {h}")))?;
        let f = rec
            .1
            .get_mut(slot as usize)
            .ok_or_else(|| ExecError::msg(format!("bad field {slot}")))?;
        *f = v;
        Ok(())
    }
}

/// Deterministic work accounting.
#[derive(Debug, Default, Clone, Copy)]
pub struct Counters {
    /// Retired instructions.
    pub instrs: u64,
    /// Weighted cost ("virtual cycles").
    pub cycles: u64,
}

/// Per-opcode weights (virtual cycles). Heap indirection and dynamic
/// dispatch are deliberately more expensive, mirroring their real costs.
pub fn weight(ins: &Instr) -> u64 {
    match ins {
        Instr::ConstI32(..)
        | Instr::ConstI64(..)
        | Instr::ConstF32(..)
        | Instr::ConstF64(..)
        | Instr::ConstBool(..)
        | Instr::Mov(..) => 1,
        Instr::Bin { .. } | Instr::Neg { .. } | Instr::Not { .. } | Instr::Cast { .. } => 1,
        Instr::Jmp(_) | Instr::Br { .. } => 1,
        Instr::Ret(_) => 2,
        Instr::Call { .. } => 6,
        // FFI transitions cost more than an internal call (the paper's
        // motivation for making MPI an intrinsic, not a JNI wrapper).
        Instr::CallHost { .. } => 12,
        Instr::NewObj { .. } => 30,
        Instr::GetField { .. } | Instr::PutField { .. } => 4,
        Instr::CallVirt { .. } => 14,
        Instr::NewArr { .. } => 30,
        Instr::LdArr { .. } | Instr::StArr { .. } => 2,
        Instr::ArrLen { .. } => 2,
        Instr::FreeArr { .. } => 10,
        Instr::Intrin { op, .. } => match op {
            IntrinOp::PrintI32
            | IntrinOp::PrintI64
            | IntrinOp::PrintF32
            | IntrinOp::PrintF64
            | IntrinOp::PrintBool => 20,
            IntrinOp::ArrayCopyF32 => 10,
            _ => 8,
        },
        Instr::Launch { .. } => 20,
        Instr::SharedAlloc { .. } => 10,
        Instr::Sync => 4,
    }
}

/// The machine state shared by all threads of one execution context (one
/// process / one rank / one device).
#[derive(Debug, Default)]
pub struct Machine {
    pub mem: MemSpace,
    pub objs: ObjHeap,
    pub globals: Vec<Val>,
    pub output: Vec<String>,
    pub counters: Counters,
    /// Optional deterministic fault-injection stream; when set, [`run`]
    /// consults it at slice starts (fuel exhaustion) and yield points
    /// (rank crashes). `None` (the default) injects nothing.
    pub fault: Option<FaultPlan>,
}

impl Machine {
    pub fn new() -> Self {
        Self::default()
    }

    /// Initialize globals from the program's constant pool.
    pub fn with_globals(program: &Program) -> Self {
        let globals = program
            .globals
            .iter()
            .map(|g| match &g.value {
                nir::ConstVal::I32(v) => Val::I32(*v),
                nir::ConstVal::I64(v) => Val::I64(*v),
                nir::ConstVal::F32(v) => Val::F32(*v),
                nir::ConstVal::F64(v) => Val::F64(*v),
                nir::ConstVal::Bool(v) => Val::Bool(*v),
            })
            .collect();
        Machine {
            globals,
            ..Default::default()
        }
    }
}

/// Why `run` stopped.
#[derive(Debug)]
pub enum Yield {
    /// The entry frame returned.
    Done(Option<Val>),
    /// Fuel ran out; call `run` again to continue.
    OutOfFuel,
    /// Kernel thread reached `__syncthreads`.
    Sync,
    /// Kernel thread executed `SharedAlloc` at `pc` of the kernel; the GPU
    /// runtime must provide the (per-block) handle via `resume_with`.
    SharedAlloc { elem: ElemTy, len: usize, pc: u32 },
    /// Blocked on an MPI operation; the MPI runtime services it.
    Mpi { op: IntrinOp, args: Vec<Val> },
    /// Host requested a kernel launch.
    Launch {
        kernel: FuncId,
        grid: [u32; 3],
        block: [u32; 3],
        args: Vec<Val>,
    },
    /// Host requested a GPU memory operation (copy/alloc/free) or a CUDA
    /// thread-register read that gpu-sim must service.
    GpuMem { op: IntrinOp, args: Vec<Val> },
    /// A registered foreign (host) function call; the runtime services it
    /// through its [`HostRegistry`].
    Host { host: u32, args: Vec<Val> },
    /// An injected fault killed this execution context at the given
    /// retired-instruction count. The thread must not be resumed; the
    /// surrounding runtime decides how the world degrades.
    Crashed { step: u64 },
}

/// A registered foreign function: the reproduction's stand-in for a C
/// function linked into the generated program.
pub type HostFn = Box<dyn Fn(&[Val], &mut MemSpace) -> Result<Val, ExecError>>;

/// Foreign functions by registration order (indices must match the
/// program's `host_fns` table; the translator guarantees this when both
/// are built from the same registry keys).
#[derive(Default)]
pub struct HostRegistry {
    entries: Vec<(String, HostFn)>,
}

impl HostRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `f` under `key` (the `@Native("key")` string); returns its id.
    pub fn register(
        &mut self,
        key: impl Into<String>,
        f: impl Fn(&[Val], &mut MemSpace) -> Result<Val, ExecError> + 'static,
    ) -> u32 {
        self.entries.push((key.into(), Box::new(f)));
        self.entries.len() as u32 - 1
    }

    pub fn id_of(&self, key: &str) -> Option<u32> {
        self.entries
            .iter()
            .position(|(k, _)| k == key)
            .map(|i| i as u32)
    }

    pub fn call(&self, id: u32, args: &[Val], mem: &mut MemSpace) -> Result<Val, ExecError> {
        let (_, f) = self
            .entries
            .get(id as usize)
            .ok_or_else(|| ExecError::msg(format!("unregistered host function {id}")))?;
        f(args, mem)
    }

    pub fn keys(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(k, _)| k.as_str())
    }
}

/// Execution error with function/pc context. Errors raised outside the
/// interpreter loop (value coercions, memory accesses, host functions)
/// start context-free; [`run`] attaches the function and pc of the
/// faulting instruction before surfacing them.
#[derive(Debug, Clone)]
pub struct ExecError {
    pub message: String,
    pub func: String,
    pub pc: u32,
}

impl ExecError {
    /// A context-free error (no function/pc yet).
    pub fn msg(message: impl Into<String>) -> Self {
        ExecError {
            message: message.into(),
            func: String::new(),
            pc: 0,
        }
    }

    /// Attach function/pc context unless the error already carries some.
    pub fn at(mut self, func: &str, pc: u32) -> Self {
        if self.func.is_empty() {
            self.func = func.to_string();
            self.pc = pc;
        }
        self
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.func.is_empty() {
            write!(f, "exec error: {}", self.message)
        } else {
            write!(
                f,
                "exec error in `{}` at pc {}: {}",
                self.func, self.pc, self.message
            )
        }
    }
}

impl std::error::Error for ExecError {}

impl From<String> for ExecError {
    fn from(message: String) -> Self {
        ExecError::msg(message)
    }
}

impl From<&str> for ExecError {
    fn from(message: &str) -> Self {
        ExecError::msg(message)
    }
}

#[derive(Debug, Clone)]
struct Frame {
    func: FuncId,
    pc: u32,
    regs: Vec<Val>,
    /// Register in the *caller* frame to receive our return value.
    ret_to: Option<Reg>,
}

/// A resumable execution context (call stack). CUDA threads, MPI ranks,
/// and plain host executions are all `Thread`s.
#[derive(Debug)]
pub struct Thread {
    frames: Vec<Frame>,
    /// Where to deliver a value provided by `resume_with`.
    pending_dst: Option<Reg>,
    done: bool,
}

impl Thread {
    /// Create a thread poised to execute `func(args)`.
    pub fn new(program: &Program, func: FuncId, args: Vec<Val>) -> Result<Thread, ExecError> {
        let f = program.func(func);
        if f.params.len() != args.len() {
            return Err(ExecError {
                message: format!(
                    "`{}` expects {} args, got {}",
                    f.name,
                    f.params.len(),
                    args.len()
                ),
                func: f.name.clone(),
                pc: 0,
            });
        }
        let mut regs = vec![Val::Unit; f.regs.len()];
        regs[..args.len()].copy_from_slice(&args);
        Ok(Thread {
            frames: vec![Frame {
                func,
                pc: 0,
                regs,
                ret_to: None,
            }],
            pending_dst: None,
            done: false,
        })
    }

    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Deliver the result of a serviced yield (pass `Val::Unit` for void).
    pub fn resume_with(&mut self, v: Val) {
        if let Some(dst) = self.pending_dst.take() {
            if let Some(top) = self.frames.last_mut() {
                top.regs[dst as usize] = v;
            }
        }
    }

    /// Current call depth (for diagnostics).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// Function and pc of the innermost frame. While a yield is being
    /// serviced the pc has already advanced past the yielding
    /// instruction, so the *faulting* instruction is `pc - 1`; runtimes
    /// use this to attach location context to errors raised outside the
    /// interpreter loop (see [`ExecError::at`]).
    pub fn frame_location(&self) -> Option<(FuncId, u32)> {
        self.frames.last().map(|f| (f.func, f.pc))
    }
}

/// Maximum call depth (the coding rules forbid recursion, so this only
/// guards against translator bugs).
const MAX_DEPTH: usize = 256;

/// Run `thread` until completion, a yield point, or `fuel` retired
/// instructions.
pub fn run(
    thread: &mut Thread,
    program: &Program,
    machine: &mut Machine,
    mut fuel: u64,
) -> Result<Yield, ExecError> {
    if thread.done {
        return Ok(Yield::Done(None));
    }
    // Fault injection: a slice may deterministically get its fuel cut
    // short (the caller sees OutOfFuel earlier than expected).
    if let Some(plan) = machine.fault.as_mut() {
        fuel = plan.slice_fuel(fuel);
    }
    loop {
        if fuel == 0 {
            return Ok(Yield::OutOfFuel);
        }
        let (func_id, pc) = {
            let top = thread.frames.last().unwrap();
            (top.func, top.pc)
        };
        let f = program.func(func_id);
        let err = |e: ExecError| e.at(&f.name, pc);
        if pc as usize >= f.code.len() {
            return Err(err("fell off the end of function".into()));
        }
        let ins = &f.code[pc as usize];
        machine.counters.instrs += 1;
        machine.counters.cycles += weight(ins);
        fuel -= 1;

        // Helpers on the current frame.
        macro_rules! reg {
            ($r:expr) => {
                thread.frames.last().unwrap().regs[$r as usize]
            };
        }
        macro_rules! set {
            ($r:expr, $v:expr) => {
                thread.frames.last_mut().unwrap().regs[$r as usize] = $v
            };
        }
        macro_rules! bump {
            () => {
                thread.frames.last_mut().unwrap().pc = pc + 1
            };
        }
        // Fault injection: yield points are the places an execution
        // context can crash. The draw happens *before* the yield is
        // surfaced, so the runtime never services an op the crashed rank
        // would not have issued.
        macro_rules! crash_check {
            () => {
                if let Some(plan) = machine.fault.as_mut() {
                    if plan.crash_at_yield() {
                        thread.done = true;
                        return Ok(Yield::Crashed {
                            step: machine.counters.instrs,
                        });
                    }
                }
            };
        }

        match ins {
            Instr::ConstI32(d, v) => {
                set!(*d, Val::I32(*v));
                bump!();
            }
            Instr::ConstI64(d, v) => {
                set!(*d, Val::I64(*v));
                bump!();
            }
            Instr::ConstF32(d, v) => {
                set!(*d, Val::F32(*v));
                bump!();
            }
            Instr::ConstF64(d, v) => {
                set!(*d, Val::F64(*v));
                bump!();
            }
            Instr::ConstBool(d, v) => {
                set!(*d, Val::Bool(*v));
                bump!();
            }
            Instr::Mov(d, s) => {
                let v = reg!(*s);
                set!(*d, v);
                bump!();
            }
            Instr::Bin {
                op,
                kind,
                dst,
                lhs,
                rhs,
            } => {
                let v = binop(*op, *kind, reg!(*lhs), reg!(*rhs)).map_err(err)?;
                set!(*dst, v);
                bump!();
            }
            Instr::Neg { kind, dst, src } => {
                let v = match (kind, reg!(*src)) {
                    (PrimKind::Int, Val::I32(x)) => Val::I32(x.wrapping_neg()),
                    (PrimKind::Long, Val::I64(x)) => Val::I64(x.wrapping_neg()),
                    (PrimKind::Float, Val::F32(x)) => Val::F32(-x),
                    (PrimKind::Double, Val::F64(x)) => Val::F64(-x),
                    (k, v) => return Err(err(format!("bad neg {k:?} on {v:?}").into())),
                };
                set!(*dst, v);
                bump!();
            }
            Instr::Not { dst, src } => {
                let v = reg!(*src).as_bool().map_err(err)?;
                set!(*dst, Val::Bool(!v));
                bump!();
            }
            Instr::Cast { to, dst, src, .. } => {
                let v = numcast(*to, reg!(*src)).map_err(err)?;
                set!(*dst, v);
                bump!();
            }
            Instr::Jmp(t) => {
                thread.frames.last_mut().unwrap().pc = *t;
            }
            Instr::Br { cond, t, f: fl } => {
                let c = reg!(*cond).as_bool().map_err(err)?;
                thread.frames.last_mut().unwrap().pc = if c { *t } else { *fl };
            }
            Instr::Ret(r) => {
                let v = r.map(|r| reg!(r));
                let finished = thread.frames.pop().unwrap();
                if let Some(caller) = thread.frames.last_mut() {
                    if let Some(dst) = finished.ret_to {
                        caller.regs[dst as usize] = v.unwrap_or(Val::Unit);
                    }
                } else {
                    thread.done = true;
                    return Ok(Yield::Done(v));
                }
            }
            Instr::CallHost { host, args, dst } => {
                crash_check!();
                let argv: Vec<Val> = args.iter().map(|a| reg!(*a)).collect();
                thread.pending_dst = *dst;
                bump!();
                return Ok(Yield::Host {
                    host: *host,
                    args: argv,
                });
            }
            Instr::Call { func, args, dst } => {
                if thread.frames.len() >= MAX_DEPTH {
                    return Err(err("call depth limit exceeded".into()));
                }
                let callee = program.func(*func);
                let mut regs = vec![Val::Unit; callee.regs.len()];
                for (i, a) in args.iter().enumerate() {
                    regs[i] = reg!(*a);
                }
                bump!();
                thread.frames.push(Frame {
                    func: *func,
                    pc: 0,
                    regs,
                    ret_to: *dst,
                });
            }
            Instr::NewObj { class, dst } => {
                let meta = &program.classes[*class as usize];
                let h = machine.objs.alloc(*class, meta.field_count as usize);
                set!(*dst, Val::Obj(h));
                bump!();
            }
            Instr::GetField { obj, slot, dst } => {
                let h = reg!(*obj).as_obj().map_err(err)?;
                let v = machine.objs.get(h, *slot).map_err(err)?;
                set!(*dst, v);
                bump!();
            }
            Instr::PutField { obj, slot, src } => {
                let h = reg!(*obj).as_obj().map_err(err)?;
                let v = reg!(*src);
                machine.objs.set(h, *slot, v).map_err(err)?;
                bump!();
            }
            Instr::CallVirt {
                selector,
                recv,
                args,
                dst,
            } => {
                if thread.frames.len() >= MAX_DEPTH {
                    return Err(err("call depth limit exceeded".into()));
                }
                let h = reg!(*recv).as_obj().map_err(err)?;
                let class = machine.objs.class_of(h).map_err(err)?;
                let meta = &program.classes[class as usize];
                let target = meta
                    .vtable
                    .iter()
                    .find(|(s, _)| s == selector)
                    .map(|(_, f)| *f)
                    .ok_or_else(|| {
                        err(ExecError::msg(format!(
                            "class `{}` has no vtable entry for `{}`",
                            meta.name, program.selectors[*selector as usize]
                        )))
                    })?;
                let callee = program.func(target);
                let mut regs = vec![Val::Unit; callee.regs.len()];
                regs[0] = Val::Obj(h);
                for (i, a) in args.iter().enumerate() {
                    regs[i + 1] = reg!(*a);
                }
                bump!();
                thread.frames.push(Frame {
                    func: target,
                    pc: 0,
                    regs,
                    ret_to: *dst,
                });
            }
            Instr::NewArr { elem, len, dst } => {
                let n = reg!(*len).as_i32().map_err(err)?;
                if n < 0 {
                    return Err(err(format!("negative array size {n}").into()));
                }
                // Charge zero-fill cost proportional to the allocation.
                machine.counters.cycles += (n as u64) / 16;
                let h = machine.mem.alloc(ArrStore::new(*elem, n as usize));
                set!(*dst, Val::Arr(h));
                bump!();
            }
            Instr::LdArr { arr, idx, dst } => {
                let h = reg!(*arr).as_arr().map_err(err)?;
                let i = reg!(*idx).as_i32().map_err(err)?;
                if i < 0 {
                    return Err(err(format!("negative index {i}").into()));
                }
                let v = machine
                    .mem
                    .arr(h)
                    .map_err(err)?
                    .get(i as usize)
                    .map_err(err)?;
                set!(*dst, v);
                bump!();
            }
            Instr::StArr { arr, idx, src } => {
                let h = reg!(*arr).as_arr().map_err(err)?;
                let i = reg!(*idx).as_i32().map_err(err)?;
                if i < 0 {
                    return Err(err(format!("negative index {i}").into()));
                }
                let v = reg!(*src);
                machine
                    .mem
                    .arr_mut(h)
                    .map_err(err)?
                    .set(i as usize, v)
                    .map_err(err)?;
                bump!();
            }
            Instr::ArrLen { arr, dst } => {
                let h = reg!(*arr).as_arr().map_err(err)?;
                let n = machine.mem.arr(h).map_err(err)?.len().map_err(err)?;
                set!(*dst, Val::I32(n as i32));
                bump!();
            }
            Instr::FreeArr { arr } => {
                let h = reg!(*arr).as_arr().map_err(err)?;
                machine.mem.free(h).map_err(err)?;
                bump!();
            }
            Instr::Intrin { op, args, dst } => {
                let argv: Vec<Val> = args.iter().map(|a| reg!(*a)).collect();
                match op {
                    IntrinOp::SqrtF64 => {
                        let x = argv[0].as_f64().map_err(err)?;
                        set!(dst.unwrap(), Val::F64(x.sqrt()));
                        bump!();
                    }
                    IntrinOp::SqrtF32 => {
                        let x = argv[0].as_f32().map_err(err)?;
                        set!(dst.unwrap(), Val::F32(x.sqrt()));
                        bump!();
                    }
                    IntrinOp::PowF64 => {
                        let x = argv[0].as_f64().map_err(err)?;
                        let y = argv[1].as_f64().map_err(err)?;
                        set!(dst.unwrap(), Val::F64(x.powf(y)));
                        bump!();
                    }
                    IntrinOp::ExpF64 => {
                        let x = argv[0].as_f64().map_err(err)?;
                        set!(dst.unwrap(), Val::F64(x.exp()));
                        bump!();
                    }
                    IntrinOp::AbsF32 => {
                        let x = argv[0].as_f32().map_err(err)?;
                        set!(dst.unwrap(), Val::F32(x.abs()));
                        bump!();
                    }
                    IntrinOp::AbsF64 => {
                        let x = argv[0].as_f64().map_err(err)?;
                        set!(dst.unwrap(), Val::F64(x.abs()));
                        bump!();
                    }
                    IntrinOp::AbsI32 => {
                        let x = argv[0].as_i32().map_err(err)?;
                        set!(dst.unwrap(), Val::I32(x.wrapping_abs()));
                        bump!();
                    }
                    IntrinOp::MinI32 | IntrinOp::MaxI32 => {
                        let x = argv[0].as_i32().map_err(err)?;
                        let y = argv[1].as_i32().map_err(err)?;
                        let v = if matches!(op, IntrinOp::MinI32) {
                            x.min(y)
                        } else {
                            x.max(y)
                        };
                        set!(dst.unwrap(), Val::I32(v));
                        bump!();
                    }
                    IntrinOp::MinF32 | IntrinOp::MaxF32 => {
                        let x = argv[0].as_f32().map_err(err)?;
                        let y = argv[1].as_f32().map_err(err)?;
                        let v = if matches!(op, IntrinOp::MinF32) {
                            x.min(y)
                        } else {
                            x.max(y)
                        };
                        set!(dst.unwrap(), Val::F32(v));
                        bump!();
                    }
                    IntrinOp::PrintI32
                    | IntrinOp::PrintI64
                    | IntrinOp::PrintF32
                    | IntrinOp::PrintF64
                    | IntrinOp::PrintBool => {
                        let line = match argv[0] {
                            Val::I32(v) => v.to_string(),
                            Val::I64(v) => v.to_string(),
                            Val::F32(v) => format!("{v}"),
                            Val::F64(v) => format!("{v}"),
                            Val::Bool(v) => v.to_string(),
                            other => return Err(err(format!("bad print arg {other:?}").into())),
                        };
                        machine.output.push(line);
                        bump!();
                    }
                    IntrinOp::ArrayCopyF32 => {
                        let src = argv[0].as_arr().map_err(err)?;
                        let spos = argv[1].as_i32().map_err(err)? as usize;
                        let dsth = argv[2].as_arr().map_err(err)?;
                        let dpos = argv[3].as_i32().map_err(err)? as usize;
                        let n = argv[4].as_i32().map_err(err)? as usize;
                        machine.counters.cycles += (n as u64) / 8;
                        let data: Vec<f32> = match machine.mem.arr(src).map_err(err)? {
                            ArrStore::F32(v) => v
                                .get(spos..spos + n)
                                .ok_or_else(|| err("arraycopy src out of range".into()))?
                                .to_vec(),
                            _ => return Err(err("arraycopy on non-f32 array".into())),
                        };
                        match machine.mem.arr_mut(dsth).map_err(err)? {
                            ArrStore::F32(v) => {
                                let tgt = v
                                    .get_mut(dpos..dpos + n)
                                    .ok_or_else(|| err("arraycopy dst out of range".into()))?;
                                tgt.copy_from_slice(&data);
                            }
                            _ => return Err(err("arraycopy on non-f32 array".into())),
                        }
                        bump!();
                    }
                    // CUDA thread-register reads are serviced by gpu-sim:
                    // yield with the op so the runtime substitutes the
                    // coordinate of the executing CUDA thread.
                    IntrinOp::ThreadIdx(_)
                    | IntrinOp::BlockIdx(_)
                    | IntrinOp::BlockDim(_)
                    | IntrinOp::GridDim(_) => {
                        crash_check!();
                        thread.pending_dst = *dst;
                        bump!();
                        return Ok(Yield::GpuMem {
                            op: *op,
                            args: argv,
                        });
                    }
                    IntrinOp::CopyToGpu
                    | IntrinOp::CopyFromGpu
                    | IntrinOp::CopyToGpuRange
                    | IntrinOp::CopyFromGpuRange
                    | IntrinOp::GpuAllocF32
                    | IntrinOp::GpuFree => {
                        crash_check!();
                        thread.pending_dst = *dst;
                        bump!();
                        return Ok(Yield::GpuMem {
                            op: *op,
                            args: argv,
                        });
                    }
                    IntrinOp::MpiRank
                    | IntrinOp::MpiSize
                    | IntrinOp::MpiBarrier
                    | IntrinOp::MpiSendF32
                    | IntrinOp::MpiRecvF32
                    | IntrinOp::MpiSendRecvF32
                    | IntrinOp::MpiBcastF32
                    | IntrinOp::MpiAllreduceSumF64
                    | IntrinOp::MpiAllreduceSumF32
                    | IntrinOp::MpiAllreduceMaxF64 => {
                        crash_check!();
                        thread.pending_dst = *dst;
                        bump!();
                        return Ok(Yield::Mpi {
                            op: *op,
                            args: argv,
                        });
                    }
                }
            }
            Instr::Launch {
                kernel,
                grid,
                block,
                args,
            } => {
                let rd = |r: Reg| -> Result<u32, ExecError> {
                    let v = reg!(r).as_i32().map_err(err)?;
                    if v <= 0 {
                        Err(err(format!("non-positive launch dimension {v}").into()))
                    } else {
                        Ok(v as u32)
                    }
                };
                crash_check!();
                let g = [rd(grid[0])?, rd(grid[1])?, rd(grid[2])?];
                let b = [rd(block[0])?, rd(block[1])?, rd(block[2])?];
                let argv: Vec<Val> = args.iter().map(|a| reg!(*a)).collect();
                thread.pending_dst = None;
                bump!();
                return Ok(Yield::Launch {
                    kernel: *kernel,
                    grid: g,
                    block: b,
                    args: argv,
                });
            }
            Instr::SharedAlloc { elem, len, dst } => {
                crash_check!();
                let n = reg!(*len).as_i32().map_err(err)?;
                if n < 0 {
                    return Err(err(format!("negative shared allocation {n}").into()));
                }
                thread.pending_dst = Some(*dst);
                bump!();
                return Ok(Yield::SharedAlloc {
                    elem: *elem,
                    len: n as usize,
                    pc,
                });
            }
            Instr::Sync => {
                crash_check!();
                bump!();
                return Ok(Yield::Sync);
            }
        }
    }
}

/// Convenience: run a function to completion in a machine, servicing no
/// yields (errors if the program needs MPI/GPU runtimes).
pub fn run_to_completion(
    program: &Program,
    func: FuncId,
    args: Vec<Val>,
    machine: &mut Machine,
) -> Result<Option<Val>, ExecError> {
    let mut t = Thread::new(program, func, args)?;
    loop {
        match run(&mut t, program, machine, u64::MAX)? {
            Yield::Done(v) => return Ok(v),
            Yield::OutOfFuel => {}
            Yield::Crashed { step } => {
                return Err(ExecError::msg(format!(
                    "injected crash at step {step} (fault plan)"
                )))
            }
            other => {
                return Err(ExecError {
                    message: format!(
                        "program requires a runtime service ({other:?}); use the wootinj facade"
                    ),
                    func: String::new(),
                    pc: 0,
                })
            }
        }
    }
}

fn binop(op: BinOp, kind: PrimKind, l: Val, r: Val) -> Result<Val, ExecError> {
    use BinOp::*;
    Ok(match kind {
        PrimKind::Int => {
            let (a, b) = (l.as_i32()?, r.as_i32()?);
            match op {
                Add => Val::I32(a.wrapping_add(b)),
                Sub => Val::I32(a.wrapping_sub(b)),
                Mul => Val::I32(a.wrapping_mul(b)),
                Div => {
                    if b == 0 {
                        return Err("division by zero".into());
                    }
                    Val::I32(a.wrapping_div(b))
                }
                Rem => {
                    if b == 0 {
                        return Err("remainder by zero".into());
                    }
                    Val::I32(a.wrapping_rem(b))
                }
                Lt => Val::Bool(a < b),
                Le => Val::Bool(a <= b),
                Gt => Val::Bool(a > b),
                Ge => Val::Bool(a >= b),
                Eq => Val::Bool(a == b),
                Ne => Val::Bool(a != b),
                Shl => Val::I32(a.wrapping_shl(b as u32 & 31)),
                Shr => Val::I32(a.wrapping_shr(b as u32 & 31)),
                BitAnd => Val::I32(a & b),
                BitOr => Val::I32(a | b),
                BitXor => Val::I32(a ^ b),
                And | Or => return Err("logical op on int".into()),
            }
        }
        PrimKind::Long => {
            let (a, b) = (l.as_i64()?, r.as_i64()?);
            match op {
                Add => Val::I64(a.wrapping_add(b)),
                Sub => Val::I64(a.wrapping_sub(b)),
                Mul => Val::I64(a.wrapping_mul(b)),
                Div => {
                    if b == 0 {
                        return Err("division by zero".into());
                    }
                    Val::I64(a.wrapping_div(b))
                }
                Rem => {
                    if b == 0 {
                        return Err("remainder by zero".into());
                    }
                    Val::I64(a.wrapping_rem(b))
                }
                Lt => Val::Bool(a < b),
                Le => Val::Bool(a <= b),
                Gt => Val::Bool(a > b),
                Ge => Val::Bool(a >= b),
                Eq => Val::Bool(a == b),
                Ne => Val::Bool(a != b),
                Shl => Val::I64(a.wrapping_shl(b as u32 & 63)),
                Shr => Val::I64(a.wrapping_shr(b as u32 & 63)),
                BitAnd => Val::I64(a & b),
                BitOr => Val::I64(a | b),
                BitXor => Val::I64(a ^ b),
                And | Or => return Err("logical op on long".into()),
            }
        }
        PrimKind::Float => {
            let (a, b) = (l.as_f32()?, r.as_f32()?);
            match op {
                Add => Val::F32(a + b),
                Sub => Val::F32(a - b),
                Mul => Val::F32(a * b),
                Div => Val::F32(a / b),
                Rem => Val::F32(a % b),
                Lt => Val::Bool(a < b),
                Le => Val::Bool(a <= b),
                Gt => Val::Bool(a > b),
                Ge => Val::Bool(a >= b),
                Eq => Val::Bool(a == b),
                Ne => Val::Bool(a != b),
                _ => return Err("bitwise op on float".into()),
            }
        }
        PrimKind::Double => {
            let (a, b) = (l.as_f64()?, r.as_f64()?);
            match op {
                Add => Val::F64(a + b),
                Sub => Val::F64(a - b),
                Mul => Val::F64(a * b),
                Div => Val::F64(a / b),
                Rem => Val::F64(a % b),
                Lt => Val::Bool(a < b),
                Le => Val::Bool(a <= b),
                Gt => Val::Bool(a > b),
                Ge => Val::Bool(a >= b),
                Eq => Val::Bool(a == b),
                Ne => Val::Bool(a != b),
                _ => return Err("bitwise op on double".into()),
            }
        }
        PrimKind::Boolean => {
            let (a, b) = (l.as_bool()?, r.as_bool()?);
            match op {
                Eq => Val::Bool(a == b),
                Ne => Val::Bool(a != b),
                And => Val::Bool(a && b),
                Or => Val::Bool(a || b),
                _ => return Err("arith op on bool".into()),
            }
        }
    })
}

fn numcast(to: PrimKind, v: Val) -> Result<Val, ExecError> {
    Ok(match to {
        PrimKind::Int => Val::I32(match v {
            Val::I32(x) => x,
            Val::I64(x) => x as i32,
            Val::F32(x) => x as i32,
            Val::F64(x) => x as i32,
            other => return Err(ExecError::msg(format!("cannot cast {other:?} to int"))),
        }),
        PrimKind::Long => Val::I64(match v {
            Val::I32(x) => x as i64,
            Val::I64(x) => x,
            Val::F32(x) => x as i64,
            Val::F64(x) => x as i64,
            other => return Err(ExecError::msg(format!("cannot cast {other:?} to long"))),
        }),
        PrimKind::Float => Val::F32(match v {
            Val::I32(x) => x as f32,
            Val::I64(x) => x as f32,
            Val::F32(x) => x,
            Val::F64(x) => x as f32,
            other => return Err(ExecError::msg(format!("cannot cast {other:?} to float"))),
        }),
        PrimKind::Double => Val::F64(match v {
            Val::I32(x) => x as f64,
            Val::I64(x) => x as f64,
            Val::F32(x) => x as f64,
            Val::F64(x) => x,
            other => return Err(ExecError::msg(format!("cannot cast {other:?} to double"))),
        }),
        PrimKind::Boolean => match v {
            Val::Bool(_) => v,
            other => return Err(ExecError::msg(format!("cannot cast {other:?} to boolean"))),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nir::{FuncBuilder, FuncKind, Ty};

    fn program_sum_to(n: i32) -> (Program, FuncId) {
        // fn f() -> i32 { s = 0; i = 0; while i < n { s += i; i += 1 }; s }
        let mut fb = FuncBuilder::new("f", vec![], Some(Ty::I32), FuncKind::Host);
        let s = fb.reg(Ty::I32);
        let i = fb.reg(Ty::I32);
        let nn = fb.reg(Ty::I32);
        let one = fb.reg(Ty::I32);
        let c = fb.reg(Ty::Bool);
        fb.emit(Instr::ConstI32(s, 0));
        fb.emit(Instr::ConstI32(i, 0));
        fb.emit(Instr::ConstI32(nn, n));
        fb.emit(Instr::ConstI32(one, 1));
        let head = fb.label();
        let body = fb.label();
        let done = fb.label();
        fb.bind(head);
        fb.emit(Instr::Bin {
            op: BinOp::Lt,
            kind: PrimKind::Int,
            dst: c,
            lhs: i,
            rhs: nn,
        });
        fb.br(c, body, done);
        fb.bind(body);
        fb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: s,
            lhs: s,
            rhs: i,
        });
        fb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: i,
            lhs: i,
            rhs: one,
        });
        fb.jmp(head);
        fb.bind(done);
        fb.emit(Instr::Ret(Some(s)));
        let mut p = Program::default();
        let id = p.add_func(fb.finish().unwrap());
        p.entry = Some(id);
        p.validate().unwrap();
        (p, id)
    }

    #[test]
    fn loop_executes() {
        let (p, id) = program_sum_to(100);
        let mut m = Machine::new();
        let v = run_to_completion(&p, id, vec![], &mut m).unwrap();
        assert_eq!(v, Some(Val::I32(4950)));
        assert!(m.counters.instrs > 400);
    }

    #[test]
    fn fuel_suspends_and_resumes() {
        let (p, id) = program_sum_to(1000);
        let mut m = Machine::new();
        let mut t = Thread::new(&p, id, vec![]).unwrap();
        let mut rounds = 0;
        let v = loop {
            match run(&mut t, &p, &mut m, 100).unwrap() {
                Yield::Done(v) => break v,
                Yield::OutOfFuel => rounds += 1,
                other => panic!("unexpected {other:?}"),
            }
        };
        assert_eq!(v, Some(Val::I32(499_500)));
        assert!(rounds > 10, "should have suspended many times: {rounds}");
    }

    #[test]
    fn counters_deterministic() {
        let (p, id) = program_sum_to(50);
        let mut m1 = Machine::new();
        run_to_completion(&p, id, vec![], &mut m1).unwrap();
        let mut m2 = Machine::new();
        run_to_completion(&p, id, vec![], &mut m2).unwrap();
        assert_eq!(m1.counters.instrs, m2.counters.instrs);
        assert_eq!(m1.counters.cycles, m2.counters.cycles);
    }

    #[test]
    fn calls_pass_args_and_return() {
        // g(x) = x * 2; f(a) = g(a) + 1
        let mut p = Program::default();
        let mut gb = FuncBuilder::new("g", vec![Ty::I32], Some(Ty::I32), FuncKind::Host);
        let two = gb.reg(Ty::I32);
        let r = gb.reg(Ty::I32);
        gb.emit(Instr::ConstI32(two, 2));
        gb.emit(Instr::Bin {
            op: BinOp::Mul,
            kind: PrimKind::Int,
            dst: r,
            lhs: 0,
            rhs: two,
        });
        gb.emit(Instr::Ret(Some(r)));
        let g = p.add_func(gb.finish().unwrap());
        let mut fbb = FuncBuilder::new("f", vec![Ty::I32], Some(Ty::I32), FuncKind::Host);
        let gr = fbb.reg(Ty::I32);
        let one = fbb.reg(Ty::I32);
        let out = fbb.reg(Ty::I32);
        fbb.emit(Instr::Call {
            func: g,
            args: vec![0],
            dst: Some(gr),
        });
        fbb.emit(Instr::ConstI32(one, 1));
        fbb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: out,
            lhs: gr,
            rhs: one,
        });
        fbb.emit(Instr::Ret(Some(out)));
        let f = p.add_func(fbb.finish().unwrap());
        p.validate().unwrap();
        let mut m = Machine::new();
        let v = run_to_completion(&p, f, vec![Val::I32(21)], &mut m).unwrap();
        assert_eq!(v, Some(Val::I32(43)));
    }

    #[test]
    fn arrays_alloc_store_load_free() {
        let mut fb = FuncBuilder::new("f", vec![Ty::I32], Some(Ty::F32), FuncKind::Host);
        let arr = fb.reg(Ty::Arr(ElemTy::F32));
        let idx = fb.reg(Ty::I32);
        let v = fb.reg(Ty::F32);
        let out = fb.reg(Ty::F32);
        fb.emit(Instr::NewArr {
            elem: ElemTy::F32,
            len: 0,
            dst: arr,
        });
        fb.emit(Instr::ConstI32(idx, 3));
        fb.emit(Instr::ConstF32(v, 2.5));
        fb.emit(Instr::StArr { arr, idx, src: v });
        fb.emit(Instr::LdArr { arr, idx, dst: out });
        fb.emit(Instr::FreeArr { arr });
        fb.emit(Instr::Ret(Some(out)));
        let mut p = Program::default();
        let id = p.add_func(fb.finish().unwrap());
        p.validate().unwrap();
        let mut m = Machine::new();
        let r = run_to_completion(&p, id, vec![Val::I32(8)], &mut m).unwrap();
        assert_eq!(r, Some(Val::F32(2.5)));
    }

    #[test]
    fn bounds_and_use_after_free_detected() {
        let mut fb = FuncBuilder::new("f", vec![Ty::I32], Some(Ty::F32), FuncKind::Host);
        let arr = fb.reg(Ty::Arr(ElemTy::F32));
        let idx = fb.reg(Ty::I32);
        let out = fb.reg(Ty::F32);
        fb.emit(Instr::NewArr {
            elem: ElemTy::F32,
            len: 0,
            dst: arr,
        });
        fb.emit(Instr::ConstI32(idx, 100));
        fb.emit(Instr::LdArr { arr, idx, dst: out });
        fb.emit(Instr::Ret(Some(out)));
        let mut p = Program::default();
        let id = p.add_func(fb.finish().unwrap());
        let mut m = Machine::new();
        let e = run_to_completion(&p, id, vec![Val::I32(4)], &mut m).unwrap_err();
        assert!(e.message.contains("out of bounds"), "{e}");

        // use-after-free
        let mut fb = FuncBuilder::new("g", vec![Ty::I32], Some(Ty::I32), FuncKind::Host);
        let arr = fb.reg(Ty::Arr(ElemTy::F32));
        let n = fb.reg(Ty::I32);
        fb.emit(Instr::NewArr {
            elem: ElemTy::F32,
            len: 0,
            dst: arr,
        });
        fb.emit(Instr::FreeArr { arr });
        fb.emit(Instr::ArrLen { arr, dst: n });
        fb.emit(Instr::Ret(Some(n)));
        let mut p = Program::default();
        let id = p.add_func(fb.finish().unwrap());
        let mut m = Machine::new();
        let e = run_to_completion(&p, id, vec![Val::I32(4)], &mut m).unwrap_err();
        assert!(e.message.contains("freed"), "{e}");
    }

    #[test]
    fn vtable_dispatch() {
        // Two classes implementing selector "area": square -> x*x, twice -> 2x.
        let mut p = Program::default();
        p.selectors.push("area".into());
        let mut sq = FuncBuilder::new(
            "Square_area",
            vec![Ty::Obj, Ty::I32],
            Some(Ty::I32),
            FuncKind::Host,
        );
        let r = sq.reg(Ty::I32);
        sq.emit(Instr::Bin {
            op: BinOp::Mul,
            kind: PrimKind::Int,
            dst: r,
            lhs: 1,
            rhs: 1,
        });
        sq.emit(Instr::Ret(Some(r)));
        let sqf = p.add_func(sq.finish().unwrap());
        let mut tw = FuncBuilder::new(
            "Twice_area",
            vec![Ty::Obj, Ty::I32],
            Some(Ty::I32),
            FuncKind::Host,
        );
        let r = tw.reg(Ty::I32);
        let two = tw.reg(Ty::I32);
        tw.emit(Instr::ConstI32(two, 2));
        tw.emit(Instr::Bin {
            op: BinOp::Mul,
            kind: PrimKind::Int,
            dst: r,
            lhs: 1,
            rhs: two,
        });
        tw.emit(Instr::Ret(Some(r)));
        let twf = p.add_func(tw.finish().unwrap());
        p.classes.push(nir::ClassMeta {
            name: "Square".into(),
            field_count: 0,
            vtable: vec![(0, sqf)],
        });
        p.classes.push(nir::ClassMeta {
            name: "Twice".into(),
            field_count: 0,
            vtable: vec![(0, twf)],
        });

        // f(which, x): obj = new (which ? Twice : Square); obj.area(x)
        let mut fb = FuncBuilder::new("f", vec![Ty::Bool, Ty::I32], Some(Ty::I32), FuncKind::Host);
        let obj = fb.reg(Ty::Obj);
        let out = fb.reg(Ty::I32);
        let t = fb.label();
        let e = fb.label();
        let join = fb.label();
        fb.br(0, t, e);
        fb.bind(t);
        fb.emit(Instr::NewObj { class: 1, dst: obj });
        fb.jmp(join);
        fb.bind(e);
        fb.emit(Instr::NewObj { class: 0, dst: obj });
        fb.jmp(join);
        fb.bind(join);
        fb.emit(Instr::CallVirt {
            selector: 0,
            recv: obj,
            args: vec![1],
            dst: Some(out),
        });
        fb.emit(Instr::Ret(Some(out)));
        let f = p.add_func(fb.finish().unwrap());
        p.validate().unwrap();
        let mut m = Machine::new();
        assert_eq!(
            run_to_completion(&p, f, vec![Val::Bool(false), Val::I32(5)], &mut m).unwrap(),
            Some(Val::I32(25))
        );
        assert_eq!(
            run_to_completion(&p, f, vec![Val::Bool(true), Val::I32(5)], &mut m).unwrap(),
            Some(Val::I32(10))
        );
    }

    #[test]
    fn virtual_dispatch_costs_more_than_direct() {
        // weight table sanity: CallVirt > Call > Bin
        let virt = weight(&Instr::CallVirt {
            selector: 0,
            recv: 0,
            args: vec![],
            dst: None,
        });
        let call = weight(&Instr::Call {
            func: FuncId(0),
            args: vec![],
            dst: None,
        });
        let bin = weight(&Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: 0,
            lhs: 0,
            rhs: 0,
        });
        assert!(virt > call);
        assert!(call > bin);
        let gf = weight(&Instr::GetField {
            obj: 0,
            slot: 0,
            dst: 0,
        });
        let ld = weight(&Instr::LdArr {
            arr: 0,
            idx: 0,
            dst: 0,
        });
        assert!(gf > ld);
    }

    #[test]
    fn mpi_intrinsic_yields() {
        let mut fb = FuncBuilder::new("f", vec![], Some(Ty::I32), FuncKind::Host);
        let r = fb.reg(Ty::I32);
        fb.emit(Instr::Intrin {
            op: IntrinOp::MpiRank,
            args: vec![],
            dst: Some(r),
        });
        fb.emit(Instr::Ret(Some(r)));
        let mut p = Program::default();
        let id = p.add_func(fb.finish().unwrap());
        let mut m = Machine::new();
        let mut t = Thread::new(&p, id, vec![]).unwrap();
        match run(&mut t, &p, &mut m, u64::MAX).unwrap() {
            Yield::Mpi {
                op: IntrinOp::MpiRank,
                ..
            } => {}
            other => panic!("expected MPI yield, got {other:?}"),
        }
        // Service the yield: this is rank 3.
        t.resume_with(Val::I32(3));
        match run(&mut t, &p, &mut m, u64::MAX).unwrap() {
            Yield::Done(Some(Val::I32(3))) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sync_yields_and_resumes() {
        let mut fb = FuncBuilder::new("k", vec![], Some(Ty::I32), FuncKind::Kernel);
        let a = fb.reg(Ty::I32);
        let b = fb.reg(Ty::I32);
        fb.emit(Instr::ConstI32(a, 1));
        fb.emit(Instr::Sync);
        fb.emit(Instr::ConstI32(b, 2));
        fb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: a,
            lhs: a,
            rhs: b,
        });
        fb.emit(Instr::Ret(Some(a)));
        let mut p = Program::default();
        let id = p.add_func(fb.finish().unwrap());
        p.validate().unwrap();
        let mut m = Machine::new();
        let mut t = Thread::new(&p, id, vec![]).unwrap();
        match run(&mut t, &p, &mut m, u64::MAX).unwrap() {
            Yield::Sync => {}
            other => panic!("expected sync, got {other:?}"),
        }
        match run(&mut t, &p, &mut m, u64::MAX).unwrap() {
            Yield::Done(Some(Val::I32(3))) => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn launch_yields_with_dimensions() {
        let mut p = Program::default();
        let mut kb = FuncBuilder::new("k", vec![Ty::I32], None, FuncKind::Kernel);
        kb.emit(Instr::Ret(None));
        let k = p.add_func(kb.finish().unwrap());
        let mut fb = FuncBuilder::new("f", vec![], None, FuncKind::Host);
        let g = fb.reg(Ty::I32);
        let one = fb.reg(Ty::I32);
        let x = fb.reg(Ty::I32);
        fb.emit(Instr::ConstI32(g, 4));
        fb.emit(Instr::ConstI32(one, 1));
        fb.emit(Instr::ConstI32(x, 7));
        fb.emit(Instr::Launch {
            kernel: k,
            grid: [g, one, one],
            block: [one, one, one],
            args: vec![x],
        });
        fb.emit(Instr::Ret(None));
        let f = p.add_func(fb.finish().unwrap());
        p.validate().unwrap();
        let mut m = Machine::new();
        let mut t = Thread::new(&p, f, vec![]).unwrap();
        match run(&mut t, &p, &mut m, u64::MAX).unwrap() {
            Yield::Launch {
                kernel,
                grid,
                block,
                args,
            } => {
                assert_eq!(kernel, k);
                assert_eq!(grid, [4, 1, 1]);
                assert_eq!(block, [1, 1, 1]);
                assert_eq!(args, vec![Val::I32(7)]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn division_by_zero_reported_with_location() {
        let mut fb = FuncBuilder::new("f", vec![Ty::I32], Some(Ty::I32), FuncKind::Host);
        let z = fb.reg(Ty::I32);
        let r = fb.reg(Ty::I32);
        fb.emit(Instr::ConstI32(z, 0));
        fb.emit(Instr::Bin {
            op: BinOp::Div,
            kind: PrimKind::Int,
            dst: r,
            lhs: 0,
            rhs: z,
        });
        fb.emit(Instr::Ret(Some(r)));
        let mut p = Program::default();
        let id = p.add_func(fb.finish().unwrap());
        let mut m = Machine::new();
        let e = run_to_completion(&p, id, vec![Val::I32(5)], &mut m).unwrap_err();
        assert_eq!(e.pc, 1);
        assert_eq!(e.func, "f");
    }
}
