//! Deterministic fault injection.
//!
//! A [`FaultPlan`] is a seeded xorshift64\* stream of fault decisions that
//! the execution engine (and the MPI scheduler above it) consults at
//! well-defined points: slice starts, yield points, host-FFI attempts, and
//! message sends. Because the cooperative schedulers are deterministic,
//! the same [`FaultConfig`] produces the *same* faults at the same step
//! counts on every run — a failing seed is a reproducer, not a flake.
//!
//! Every injected fault is counted in [`ResilienceStats`], which the
//! runtimes thread through `WorldRun` / `RunReport` so resilience behavior
//! is observable (and bit-for-bit comparable across runs).

/// Deterministic xorshift64\* PRNG — the same in-repo idiom as the
/// property-test suites; public so runtimes can derive per-rank streams.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultRng(u64);

impl FaultRng {
    pub fn new(seed: u64) -> Self {
        FaultRng(seed.max(1))
    }

    /// The raw stream state — the "consumed cursor" a checkpoint captures
    /// so a restored plan resumes exactly where the snapshot left off.
    pub fn state(&self) -> u64 {
        self.0
    }

    /// Rebuild a stream at a previously captured [`FaultRng::state`].
    pub fn from_state(state: u64) -> Self {
        FaultRng(state.max(1))
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// One Bernoulli draw with probability `p`. Rates outside (0, 1)
    /// short-circuit without consuming the stream, so zero-rate fault
    /// kinds are free.
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        let u = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        u < p
    }
}

/// Injection rates and knobs for one run. All rates are probabilities per
/// decision point; the default config injects nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed of the fault stream (per-rank streams are derived from it).
    pub seed: u64,
    /// Probability that a yield point kills the rank (rank crash).
    pub crash: f64,
    /// Probability that a scheduling slice's fuel is cut short.
    pub fuel_exhaust: f64,
    /// Probability that one host-FFI attempt transiently fails.
    pub host_transient: f64,
    /// Probability that an outgoing point-to-point message is dropped.
    pub msg_drop: f64,
    /// Probability that a message / collective payload is bit-corrupted.
    pub msg_corrupt: f64,
    /// Probability that a message / collective is delayed.
    pub msg_delay: f64,
    /// Probability that writing one checkpoint fails (I/O fault). The
    /// world keeps running on its previous snapshot.
    pub ckpt_write_fail: f64,
    /// Probability that a rank's transport connection attempt is refused
    /// (the rank re-dials with backoff; the refusals are counted and the
    /// retry latency is charged to its clock).
    pub connect_refuse: f64,
    /// Probability that one framed transport message is truncated in
    /// flight. Truncation is *detected* (length prefix + checksum), so
    /// the frame is discarded typed — the receiver waits on, exactly like
    /// a dropped message, and the timeout/restart machinery recovers.
    pub frame_truncate: f64,
    /// Probability that a frame's acknowledgement is delayed, pushing the
    /// message's delivery `ack_delay_cycles` into the virtual future.
    pub ack_delay: f64,
    /// Probability that one JIT-service translation attempt fails with an
    /// injected typed error (the `jitd` daemon's service-loop fault: the
    /// requesting client gets a typed failure reply, never a hang, and
    /// single-flight followers are released with the same typed error).
    pub translate_fail: f64,
    /// Extra virtual cycles a delayed message waits before delivery.
    pub delay_cycles: u64,
    /// Extra virtual cycles a delayed transport acknowledgement adds.
    pub ack_delay_cycles: u64,
    /// Retry budget for transient host-FFI failures before giving up.
    pub max_host_retries: u32,
    /// Base virtual-cycle backoff charged per host-FFI retry (doubles
    /// with each attempt).
    pub retry_backoff_cycles: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            seed: 0x5EED_FA17,
            crash: 0.0,
            fuel_exhaust: 0.0,
            host_transient: 0.0,
            msg_drop: 0.0,
            msg_corrupt: 0.0,
            msg_delay: 0.0,
            ckpt_write_fail: 0.0,
            connect_refuse: 0.0,
            frame_truncate: 0.0,
            ack_delay: 0.0,
            translate_fail: 0.0,
            delay_cycles: 50_000,
            ack_delay_cycles: 20_000,
            max_host_retries: 4,
            retry_backoff_cycles: 1_000,
        }
    }
}

impl FaultConfig {
    /// A no-fault config with the given seed (rates are then set by
    /// struct update: `FaultConfig { msg_delay: 0.1, ..FaultConfig::seeded(7) }`).
    pub fn seeded(seed: u64) -> Self {
        FaultConfig {
            seed,
            ..Default::default()
        }
    }
}

/// Cumulative resilience counters: every injected fault, retry, timeout,
/// and degradation, observable through `WorldRun` / `RunReport`.
/// `Eq` on purpose — determinism tests compare these bit-for-bit.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Injected rank crashes.
    pub crashes: u64,
    /// Injected short fuel slices.
    pub fuel_exhaustions: u64,
    /// Injected transient host-FFI failures.
    pub host_transients: u64,
    /// Host-FFI retries performed (with virtual-time backoff).
    pub host_retries: u64,
    /// Point-to-point messages dropped in flight.
    pub dropped_messages: u64,
    /// Message / collective payloads bit-corrupted.
    pub corrupted_messages: u64,
    /// Messages / collectives delayed.
    pub delayed_messages: u64,
    /// Checkpoint writes that failed with an injected I/O fault.
    pub ckpt_write_failures: u64,
    /// Transport connection attempts refused (each one re-dialed).
    pub connect_refusals: u64,
    /// Framed transport messages truncated in flight (detected typed by
    /// the length prefix + checksum and discarded).
    pub truncated_frames: u64,
    /// Transport acknowledgements delayed in virtual time.
    pub delayed_acks: u64,
    /// Real (wall-clock) transport connection attempts that were retried
    /// with seeded backoff + jitter before succeeding — the `dist`
    /// worker's re-dial loop, a recovery action like `host_retries`.
    pub connect_retries: u64,
    /// JIT-service translation attempts failed with an injected fault
    /// (the requesting client received a typed error reply).
    pub translate_failures: u64,
    /// Blocked states converted into typed timeouts.
    pub timeouts: u64,
    /// JIT requests served by a degraded translation mode.
    pub degraded_jits: u64,
    /// Checkpoints taken at collective boundaries.
    pub checkpoints_taken: u64,
    /// Worlds rolled back to a checkpoint (or cold-restarted) and resumed.
    pub restarts: u64,
    /// Coordinator RPC rounds fanned out overlapped (all request frames
    /// written before any reply is awaited) instead of rank-serially —
    /// the `dist` backend's Init/Restore/Finish broadcasts.
    pub overlapped_rounds: u64,
}

impl ResilienceStats {
    /// Fold another counter set into this one (per-rank aggregation).
    pub fn merge(&mut self, other: &ResilienceStats) {
        self.crashes += other.crashes;
        self.fuel_exhaustions += other.fuel_exhaustions;
        self.host_transients += other.host_transients;
        self.host_retries += other.host_retries;
        self.dropped_messages += other.dropped_messages;
        self.corrupted_messages += other.corrupted_messages;
        self.delayed_messages += other.delayed_messages;
        self.ckpt_write_failures += other.ckpt_write_failures;
        self.connect_refusals += other.connect_refusals;
        self.truncated_frames += other.truncated_frames;
        self.delayed_acks += other.delayed_acks;
        self.connect_retries += other.connect_retries;
        self.translate_failures += other.translate_failures;
        self.timeouts += other.timeouts;
        self.degraded_jits += other.degraded_jits;
        self.checkpoints_taken += other.checkpoints_taken;
        self.restarts += other.restarts;
        self.overlapped_rounds += other.overlapped_rounds;
    }

    /// Total injected faults (not counting recovery actions).
    pub fn injected(&self) -> u64 {
        self.crashes
            + self.fuel_exhaustions
            + self.host_transients
            + self.dropped_messages
            + self.corrupted_messages
            + self.delayed_messages
            + self.ckpt_write_failures
            + self.connect_refusals
            + self.truncated_frames
            + self.delayed_acks
            + self.translate_failures
    }
}

impl std::fmt::Display for ResilienceStats {
    /// Compact one-line resilience picture for bench output and
    /// post-mortems.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected {} (crash {}, fuel {}, ffi {}, drop {}, corrupt {}, \
             delay {}, ckpt-io {}, refuse {}, trunc {}, ack-delay {}, \
             xlate-fail {}) · retries {} · redials {} · timeouts {} \
             · degraded {} · ckpts {} · restarts {} · overlapped {}",
            self.injected(),
            self.crashes,
            self.fuel_exhaustions,
            self.host_transients,
            self.dropped_messages,
            self.corrupted_messages,
            self.delayed_messages,
            self.ckpt_write_failures,
            self.connect_refusals,
            self.truncated_frames,
            self.delayed_acks,
            self.translate_failures,
            self.host_retries,
            self.connect_retries,
            self.timeouts,
            self.degraded_jits,
            self.checkpoints_taken,
            self.restarts,
            self.overlapped_rounds,
        )
    }
}

/// What happens to one outgoing message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgFault {
    None,
    /// The message is silently lost (the receiver keeps waiting).
    Drop,
    /// One element of the payload has a mantissa bit flipped.
    Corrupt,
    /// Delivery is pushed `cycles` into the virtual future.
    Delay(u64),
}

/// What happens to one framed transport message (drawn *after* the
/// payload-level [`MsgFault`], so armies of zero-rate configs keep their
/// historical streams bit-identical).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportFault {
    None,
    /// The frame is truncated in flight; the checksum rejects it typed
    /// and the message is lost (the receiver keeps waiting).
    Truncate,
    /// The frame's acknowledgement is late; delivery lands `cycles`
    /// later in virtual time.
    DelayAck(u64),
}

/// Fuel granted to a slice when exhaustion is injected — small enough to
/// visibly perturb scheduling, large enough to keep making progress.
const EXHAUSTED_SLICE_FUEL: u64 = 128;

/// A seeded, stateful fault decision stream for one execution context
/// (one rank). Consulted by `exec::run` at slice starts and yield points
/// and by the MPI scheduler at send/host-call sites.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    pub config: FaultConfig,
    rng: FaultRng,
    pub stats: ResilienceStats,
}

impl FaultPlan {
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan {
            config,
            rng: FaultRng::new(config.seed),
            stats: ResilienceStats::default(),
        }
    }

    /// Derive the decorrelated per-rank stream of a world-level config.
    pub fn for_rank(config: FaultConfig, rank: u32) -> Self {
        let seed = config
            .seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(rank as u64 + 1));
        FaultPlan {
            config,
            rng: FaultRng::new(seed),
            stats: ResilienceStats::default(),
        }
    }

    /// The stream's consumed cursor, captured by checkpoints.
    pub fn rng_state(&self) -> u64 {
        self.rng.state()
    }

    /// Rebuild a plan exactly as a checkpoint captured it.
    pub fn restore(config: FaultConfig, rng_state: u64, stats: ResilienceStats) -> Self {
        FaultPlan {
            config,
            rng: FaultRng::from_state(rng_state),
            stats,
        }
    }

    /// Perturb the stream past its consumed cursor after a rollback.
    /// Mixing the captured state with the restart ordinal keeps replay
    /// deterministic while guaranteeing the decisions that killed the
    /// previous attempt are not re-drawn identically forever.
    pub fn reseed(&mut self, salt: u64) {
        let mixed = self
            .rng
            .state()
            .rotate_left(17)
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(salt.max(1)));
        self.rng = FaultRng::new(mixed);
    }

    /// Fuel the next scheduling slice may burn (injects fuel exhaustion).
    pub fn slice_fuel(&mut self, fuel: u64) -> u64 {
        if self.rng.chance(self.config.fuel_exhaust) {
            self.stats.fuel_exhaustions += 1;
            fuel.min(EXHAUSTED_SLICE_FUEL)
        } else {
            fuel
        }
    }

    /// Does this yield point kill the rank?
    pub fn crash_at_yield(&mut self) -> bool {
        if self.rng.chance(self.config.crash) {
            self.stats.crashes += 1;
            true
        } else {
            false
        }
    }

    /// Does this host-FFI attempt transiently fail?
    pub fn host_attempt_fails(&mut self) -> bool {
        if self.rng.chance(self.config.host_transient) {
            self.stats.host_transients += 1;
            true
        } else {
            false
        }
    }

    /// Does this checkpoint write fail with an injected I/O fault?
    pub fn ckpt_write_fails(&mut self) -> bool {
        if self.rng.chance(self.config.ckpt_write_fail) {
            self.stats.ckpt_write_failures += 1;
            true
        } else {
            false
        }
    }

    /// Fate of one outgoing point-to-point message.
    pub fn message_fault(&mut self) -> MsgFault {
        if self.rng.chance(self.config.msg_drop) {
            self.stats.dropped_messages += 1;
            return MsgFault::Drop;
        }
        self.collective_fault()
    }

    /// Fate of one collective payload (collectives cannot be dropped —
    /// a lost collective is a crash, not a message fault).
    pub fn collective_fault(&mut self) -> MsgFault {
        if self.rng.chance(self.config.msg_corrupt) {
            self.stats.corrupted_messages += 1;
            return MsgFault::Corrupt;
        }
        if self.rng.chance(self.config.msg_delay) {
            self.stats.delayed_messages += 1;
            return MsgFault::Delay(self.config.delay_cycles);
        }
        MsgFault::None
    }

    /// Is this transport connection attempt refused? Each refusal is
    /// counted; callers re-dial with [`FaultPlan::backoff_cycles`].
    pub fn connect_refused(&mut self) -> bool {
        if self.rng.chance(self.config.connect_refuse) {
            self.stats.connect_refusals += 1;
            true
        } else {
            false
        }
    }

    /// Does this JIT-service translation attempt fail with an injected
    /// typed error? A zero rate consumes nothing, so configs predating
    /// the service daemon keep bit-identical streams.
    pub fn translate_fails(&mut self) -> bool {
        if self.rng.chance(self.config.translate_fail) {
            self.stats.translate_failures += 1;
            true
        } else {
            false
        }
    }

    /// Fate of one framed transport message, drawn after its payload
    /// fault. Zero rates consume nothing, so configs predating the
    /// socket-transport faults keep bit-identical streams.
    pub fn transport_fault(&mut self) -> TransportFault {
        if self.rng.chance(self.config.frame_truncate) {
            self.stats.truncated_frames += 1;
            return TransportFault::Truncate;
        }
        if self.rng.chance(self.config.ack_delay) {
            self.stats.delayed_acks += 1;
            return TransportFault::DelayAck(self.config.ack_delay_cycles);
        }
        TransportFault::None
    }

    /// Virtual-cycle backoff before retry number `attempt` (1-based);
    /// doubles per attempt, capped to keep virtual time bounded.
    pub fn backoff_cycles(&self, attempt: u32) -> u64 {
        self.config.retry_backoff_cycles << attempt.saturating_sub(1).min(8)
    }
}

/// Flip a mantissa bit of one payload element — a detectable, non-NaN
/// corruption (bit 22 keeps f32 exponents intact).
pub fn corrupt_f32(payload: &mut [f32]) {
    if payload.is_empty() {
        return;
    }
    let i = payload.len() / 2;
    payload[i] = f32::from_bits(payload[i].to_bits() ^ (1 << 21));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_decisions() {
        let cfg = FaultConfig {
            crash: 0.1,
            msg_drop: 0.2,
            msg_corrupt: 0.2,
            msg_delay: 0.3,
            fuel_exhaust: 0.25,
            ..FaultConfig::seeded(42)
        };
        let mut a = FaultPlan::for_rank(cfg, 3);
        let mut b = FaultPlan::for_rank(cfg, 3);
        for _ in 0..500 {
            assert_eq!(a.crash_at_yield(), b.crash_at_yield());
            assert_eq!(a.message_fault(), b.message_fault());
            assert_eq!(a.slice_fuel(1_000_000), b.slice_fuel(1_000_000));
        }
        assert_eq!(a.stats, b.stats);
        assert!(a.stats.injected() > 0, "rates ~0.2 must fire in 500 draws");
    }

    #[test]
    fn ranks_get_decorrelated_streams() {
        let cfg = FaultConfig {
            crash: 0.5,
            ..FaultConfig::seeded(7)
        };
        let mut a = FaultPlan::for_rank(cfg, 0);
        let mut b = FaultPlan::for_rank(cfg, 1);
        let da: Vec<bool> = (0..64).map(|_| a.crash_at_yield()).collect();
        let db: Vec<bool> = (0..64).map(|_| b.crash_at_yield()).collect();
        assert_ne!(da, db, "per-rank streams must differ");
    }

    #[test]
    fn zero_rates_inject_nothing() {
        let mut p = FaultPlan::new(FaultConfig::seeded(9));
        for _ in 0..100 {
            assert!(!p.crash_at_yield());
            assert!(!p.host_attempt_fails());
            assert!(!p.ckpt_write_fails());
            assert_eq!(p.message_fault(), MsgFault::None);
            assert_eq!(p.slice_fuel(500), 500);
        }
        assert_eq!(p.stats, ResilienceStats::default());
    }

    #[test]
    fn ckpt_write_faults_are_seeded_and_counted() {
        let cfg = FaultConfig {
            ckpt_write_fail: 0.4,
            ..FaultConfig::seeded(21)
        };
        let mut a = FaultPlan::for_rank(cfg, 0);
        let mut b = FaultPlan::for_rank(cfg, 0);
        let da: Vec<bool> = (0..200).map(|_| a.ckpt_write_fails()).collect();
        let db: Vec<bool> = (0..200).map(|_| b.ckpt_write_fails()).collect();
        assert_eq!(da, db, "same seed, same checkpoint I/O faults");
        let fired = da.iter().filter(|&&x| x).count() as u64;
        assert!(fired > 0, "rate 0.4 must fire in 200 draws");
        assert_eq!(a.stats.ckpt_write_failures, fired);
        assert_eq!(a.stats.injected(), fired);
    }

    #[test]
    fn transport_faults_are_seeded_counted_and_stream_safe() {
        // Zero transport rates must not consume the stream: interleaving
        // the new draws with crash draws leaves the crash stream of a
        // pre-transport config bit-identical.
        let cfg = FaultConfig {
            crash: 0.3,
            ..FaultConfig::seeded(5)
        };
        let mut a = FaultPlan::for_rank(cfg, 0);
        let mut b = FaultPlan::for_rank(cfg, 0);
        let da: Vec<bool> = (0..64).map(|_| a.crash_at_yield()).collect();
        let db: Vec<bool> = (0..64)
            .map(|_| {
                assert_eq!(b.transport_fault(), TransportFault::None);
                assert!(!b.connect_refused());
                b.crash_at_yield()
            })
            .collect();
        assert_eq!(da, db, "zero-rate transport draws must be stream-free");

        let cfg = FaultConfig {
            frame_truncate: 0.3,
            ack_delay: 0.3,
            connect_refuse: 0.5,
            ..FaultConfig::seeded(6)
        };
        let mut a = FaultPlan::for_rank(cfg, 1);
        let mut b = FaultPlan::for_rank(cfg, 1);
        let fa: Vec<TransportFault> = (0..200).map(|_| a.transport_fault()).collect();
        let fb: Vec<TransportFault> = (0..200).map(|_| b.transport_fault()).collect();
        assert_eq!(fa, fb, "same seed, same transport faults");
        assert!(a.stats.truncated_frames > 0, "truncate rate 0.3 must fire");
        assert!(a.stats.delayed_acks > 0, "ack-delay rate 0.3 must fire");
        let refusals = (0..64).filter(|_| a.connect_refused()).count() as u64;
        assert!(refusals > 0, "refuse rate 0.5 must fire in 64 draws");
        assert_eq!(a.stats.connect_refusals, refusals);
        assert_eq!(
            a.stats.injected(),
            a.stats.truncated_frames + a.stats.delayed_acks + refusals
        );
        let line = a.stats.to_string();
        assert!(line.contains("refuse") && line.contains("trunc"));
    }

    #[test]
    fn translate_faults_are_seeded_counted_and_stream_safe() {
        // Zero-rate translate draws must not consume the stream: a config
        // predating the service daemon keeps bit-identical crash draws.
        let cfg = FaultConfig {
            crash: 0.3,
            ..FaultConfig::seeded(13)
        };
        let mut a = FaultPlan::for_rank(cfg, 0);
        let mut b = FaultPlan::for_rank(cfg, 0);
        let da: Vec<bool> = (0..64).map(|_| a.crash_at_yield()).collect();
        let db: Vec<bool> = (0..64)
            .map(|_| {
                assert!(!b.translate_fails());
                b.crash_at_yield()
            })
            .collect();
        assert_eq!(da, db, "zero-rate translate draws must be stream-free");

        let cfg = FaultConfig {
            translate_fail: 0.4,
            ..FaultConfig::seeded(14)
        };
        let mut a = FaultPlan::new(cfg);
        let mut b = FaultPlan::new(cfg);
        let fa: Vec<bool> = (0..200).map(|_| a.translate_fails()).collect();
        let fb: Vec<bool> = (0..200).map(|_| b.translate_fails()).collect();
        assert_eq!(fa, fb, "same seed, same translate faults");
        let fired = fa.iter().filter(|&&x| x).count() as u64;
        assert!(fired > 0, "rate 0.4 must fire in 200 draws");
        assert_eq!(a.stats.translate_failures, fired);
        assert_eq!(a.stats.injected(), fired);
        assert!(a.stats.to_string().contains("xlate-fail"));
    }

    #[test]
    fn stats_display_is_one_line() {
        let s = ResilienceStats {
            crashes: 2,
            ckpt_write_failures: 1,
            restarts: 3,
            ..ResilienceStats::default()
        };
        let line = s.to_string();
        assert!(!line.contains('\n'));
        assert!(line.contains("crash 2"));
        assert!(line.contains("ckpt-io 1"));
        assert!(line.contains("restarts 3"));
    }

    #[test]
    fn fuel_exhaustion_caps_the_slice() {
        let mut p = FaultPlan::new(FaultConfig {
            fuel_exhaust: 1.0,
            ..FaultConfig::seeded(1)
        });
        assert_eq!(p.slice_fuel(1_000_000), EXHAUSTED_SLICE_FUEL);
        assert_eq!(p.slice_fuel(8), 8, "never grants more than asked");
        assert_eq!(p.stats.fuel_exhaustions, 2);
    }

    #[test]
    fn corruption_changes_exactly_one_element() {
        let mut v = vec![1.0f32, 2.0, 3.0];
        corrupt_f32(&mut v);
        assert_eq!(v[0], 1.0);
        assert_eq!(v[2], 3.0);
        assert_ne!(v[1], 2.0);
        assert!(v[1].is_finite(), "corruption must not produce NaN/inf");
    }

    #[test]
    fn restore_resumes_the_exact_cursor() {
        let cfg = FaultConfig {
            crash: 0.3,
            ..FaultConfig::seeded(11)
        };
        let mut a = FaultPlan::for_rank(cfg, 2);
        for _ in 0..10 {
            a.crash_at_yield();
        }
        let mut b = FaultPlan::restore(a.config, a.rng_state(), a.stats);
        for _ in 0..50 {
            assert_eq!(a.crash_at_yield(), b.crash_at_yield());
        }
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn reseed_diverges_but_stays_deterministic() {
        let cfg = FaultConfig {
            crash: 0.5,
            ..FaultConfig::seeded(3)
        };
        let mut a = FaultPlan::for_rank(cfg, 0);
        let mut b = a.clone();
        let mut c = a.clone();
        b.reseed(1);
        c.reseed(1);
        let da: Vec<bool> = (0..64).map(|_| a.crash_at_yield()).collect();
        let db: Vec<bool> = (0..64).map(|_| b.crash_at_yield()).collect();
        let dc: Vec<bool> = (0..64).map(|_| c.crash_at_yield()).collect();
        assert_ne!(da, db, "reseed must move the stream");
        assert_eq!(db, dc, "reseed must be deterministic");
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let p = FaultPlan::new(FaultConfig::seeded(1));
        assert_eq!(p.backoff_cycles(1), 1_000);
        assert_eq!(p.backoff_cycles(2), 2_000);
        assert_eq!(p.backoff_cycles(3), 4_000);
        assert_eq!(p.backoff_cycles(40), 1_000 << 8);
    }
}
