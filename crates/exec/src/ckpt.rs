//! Checkpoint serialization for interpreter state.
//!
//! Everything a resumable execution context owns — call stack (pc, locals,
//! return plumbing), heap arrays, object heap, globals, captured output,
//! work counters, and the fault-plan PRNG cursor — round-trips through the
//! sealed `nir::codec` container (`WJAR` magic, version byte, xorshift64\*
//! digest). [`Machine::snapshot`] / [`Machine::restore`] cover a single
//! context; the building-block `write_*` / `read_*` functions are public so
//! the MPI scheduler can compose whole-world checkpoints out of them.
//!
//! Decoding is total: truncation, corruption, and version skew all surface
//! as a typed [`CkptError`], never a panic — callers degrade to a cold
//! restart.

use crate::fault::{FaultConfig, FaultPlan, ResilienceStats};
use crate::{ArrStore, Counters, Frame, Machine, MemSpace, ObjHeap, Thread, Val};
use nir::codec::{seal, unseal, CodecError, Reader, Writer};
use nir::{FuncId, Program};

/// Version byte of the checkpoint payload (inside the sealed container,
/// independent of the container's own version). v3 added the
/// socket-transport fault knobs/counters to the fault-plan record; v2
/// added the checkpoint-write fault counters and the delta-chain payload
/// kinds. Older snapshots degrade to a cold restart by design.
pub const CKPT_VERSION: u8 = 5;

/// Payload kind: a single [`Machine`] snapshot.
pub const TAG_MACHINE: u8 = 0xA1;
/// Payload kind: a whole-world checkpoint (written by `mpi-sim`).
pub const TAG_WORLD: u8 = 0xB7;
/// Payload kind: the base link of a delta checkpoint chain.
pub const TAG_CHAIN_BASE: u8 = 0xC1;
/// Payload kind: a delta link encoded against its parent in the chain.
pub const TAG_CHAIN_DELTA: u8 = 0xC3;

#[path = "ckpt_chain.rs"]
pub mod chain;

/// Why a checkpoint failed to decode. Mirrors `nir::codec::CodecError`
/// so checkpoint consumers never need to name the lower layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// The byte stream ended mid-record.
    Truncated { offset: usize },
    /// Not a sealed checkpoint container at all.
    BadMagic,
    /// Container or checkpoint format version mismatch.
    VersionSkew { found: u8, expected: u8 },
    /// Checksum failure or structurally invalid content.
    Corrupt { offset: usize, message: String },
    /// A delta-chain link does not connect to its parent (wrong parent
    /// digest or out-of-order sequence number).
    ChainBroken { seq: u64, message: String },
    /// The checkpoint belongs to a different platform namespace (its
    /// fingerprint salt does not match the restoring world's) — a `dist`
    /// chain must never restore into an `mpi-sim` world, and vice versa.
    ScopeMismatch { expected: u64, found: u64 },
}

impl std::fmt::Display for CkptError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CkptError::Truncated { offset } => {
                write!(f, "checkpoint truncated at byte {offset}")
            }
            CkptError::BadMagic => write!(f, "not a checkpoint container"),
            CkptError::VersionSkew { found, expected } => {
                write!(f, "checkpoint version {found}, expected {expected}")
            }
            CkptError::Corrupt { offset, message } => {
                write!(f, "corrupt checkpoint at byte {offset}: {message}")
            }
            CkptError::ChainBroken { seq, message } => {
                write!(f, "checkpoint chain broken at link {seq}: {message}")
            }
            CkptError::ScopeMismatch { expected, found } => write!(
                f,
                "checkpoint belongs to platform namespace {found:#018x}, \
                 this world restores only {expected:#018x}"
            ),
        }
    }
}

impl std::error::Error for CkptError {}

impl From<CodecError> for CkptError {
    fn from(e: CodecError) -> Self {
        match e {
            CodecError::Truncated { offset } => CkptError::Truncated { offset },
            CodecError::BadMagic => CkptError::BadMagic,
            CodecError::VersionSkew { found, expected } => {
                CkptError::VersionSkew { found, expected }
            }
            CodecError::Corrupt { offset, message } => CkptError::Corrupt { offset, message },
        }
    }
}

/// Start a checkpoint payload of the given kind.
pub fn begin(tag: u8) -> Writer {
    let mut w = Writer::new();
    w.u8(CKPT_VERSION);
    w.u8(tag);
    w
}

/// Seal a finished checkpoint payload into its container bytes.
pub fn finish(w: Writer) -> Vec<u8> {
    seal(&w.into_bytes())
}

/// Unseal container bytes and position a reader past the version/kind
/// header, verifying both.
pub fn open(bytes: &[u8], tag: u8) -> Result<Reader<'_>, CkptError> {
    let payload = unseal(bytes)?;
    let mut r = Reader::new(payload);
    let found = r.u8()?;
    if found != CKPT_VERSION {
        return Err(CkptError::VersionSkew {
            found,
            expected: CKPT_VERSION,
        });
    }
    let kind = r.u8()?;
    if kind != tag {
        return Err(r
            .corrupt(format!("checkpoint kind {kind:#04x}, expected {tag:#04x}"))
            .into());
    }
    Ok(r)
}

pub fn write_val(w: &mut Writer, v: Val) {
    match v {
        Val::I32(x) => {
            w.u8(0);
            w.i32(x);
        }
        Val::I64(x) => {
            w.u8(1);
            w.i64(x);
        }
        Val::F32(x) => {
            w.u8(2);
            w.f32(x);
        }
        Val::F64(x) => {
            w.u8(3);
            w.f64(x);
        }
        Val::Bool(x) => {
            w.u8(4);
            w.bool(x);
        }
        Val::Arr(h) => {
            w.u8(5);
            w.u32(h);
        }
        Val::Obj(h) => {
            w.u8(6);
            w.u32(h);
        }
        Val::Unit => w.u8(7),
    }
}

pub fn read_val(r: &mut Reader) -> Result<Val, CkptError> {
    Ok(match r.u8()? {
        0 => Val::I32(r.i32()?),
        1 => Val::I64(r.i64()?),
        2 => Val::F32(r.f32()?),
        3 => Val::F64(r.f64()?),
        4 => Val::Bool(r.bool()?),
        5 => Val::Arr(r.u32()?),
        6 => Val::Obj(r.u32()?),
        7 => Val::Unit,
        t => return Err(r.corrupt(format!("bad value tag {t}")).into()),
    })
}

fn write_vals(w: &mut Writer, vals: &[Val]) {
    w.len(vals.len());
    for &v in vals {
        write_val(w, v);
    }
}

fn read_vals(r: &mut Reader) -> Result<Vec<Val>, CkptError> {
    let n = r.len()?;
    let mut vals = Vec::with_capacity(n);
    for _ in 0..n {
        vals.push(read_val(r)?);
    }
    Ok(vals)
}

pub fn write_arr(w: &mut Writer, a: &ArrStore) {
    match a {
        ArrStore::I32(v) => {
            w.u8(0);
            w.len(v.len());
            for &x in v {
                w.i32(x);
            }
        }
        ArrStore::I64(v) => {
            w.u8(1);
            w.len(v.len());
            for &x in v {
                w.i64(x);
            }
        }
        ArrStore::F32(v) => {
            w.u8(2);
            w.len(v.len());
            for &x in v {
                w.f32(x);
            }
        }
        ArrStore::F64(v) => {
            w.u8(3);
            w.len(v.len());
            for &x in v {
                w.f64(x);
            }
        }
        ArrStore::Bool(v) => {
            w.u8(4);
            w.len(v.len());
            for &x in v {
                w.bool(x);
            }
        }
        ArrStore::Freed => w.u8(5),
    }
}

pub fn read_arr(r: &mut Reader) -> Result<ArrStore, CkptError> {
    Ok(match r.u8()? {
        0 => {
            let n = r.len()?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.i32()?);
            }
            ArrStore::I32(v)
        }
        1 => {
            let n = r.len()?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.i64()?);
            }
            ArrStore::I64(v)
        }
        2 => {
            let n = r.len()?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.f32()?);
            }
            ArrStore::F32(v)
        }
        3 => {
            let n = r.len()?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.f64()?);
            }
            ArrStore::F64(v)
        }
        4 => {
            let n = r.len()?;
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(r.bool()?);
            }
            ArrStore::Bool(v)
        }
        5 => ArrStore::Freed,
        t => return Err(r.corrupt(format!("bad array tag {t}")).into()),
    })
}

fn write_fault_plan(w: &mut Writer, plan: &FaultPlan) {
    let c = plan.config;
    w.u64(c.seed);
    w.f64(c.crash);
    w.f64(c.fuel_exhaust);
    w.f64(c.host_transient);
    w.f64(c.msg_drop);
    w.f64(c.msg_corrupt);
    w.f64(c.msg_delay);
    w.f64(c.ckpt_write_fail);
    w.f64(c.connect_refuse);
    w.f64(c.frame_truncate);
    w.f64(c.ack_delay);
    w.f64(c.translate_fail);
    w.u64(c.delay_cycles);
    w.u64(c.ack_delay_cycles);
    w.u32(c.max_host_retries);
    w.u64(c.retry_backoff_cycles);
    w.u64(plan.rng_state());
    let s = plan.stats;
    w.u64(s.crashes);
    w.u64(s.fuel_exhaustions);
    w.u64(s.host_transients);
    w.u64(s.host_retries);
    w.u64(s.dropped_messages);
    w.u64(s.corrupted_messages);
    w.u64(s.delayed_messages);
    w.u64(s.ckpt_write_failures);
    w.u64(s.connect_refusals);
    w.u64(s.truncated_frames);
    w.u64(s.delayed_acks);
    w.u64(s.connect_retries);
    w.u64(s.translate_failures);
    w.u64(s.timeouts);
    w.u64(s.degraded_jits);
    w.u64(s.checkpoints_taken);
    w.u64(s.restarts);
    w.u64(s.overlapped_rounds);
}

fn read_fault_plan(r: &mut Reader) -> Result<FaultPlan, CkptError> {
    let config = FaultConfig {
        seed: r.u64()?,
        crash: r.f64()?,
        fuel_exhaust: r.f64()?,
        host_transient: r.f64()?,
        msg_drop: r.f64()?,
        msg_corrupt: r.f64()?,
        msg_delay: r.f64()?,
        ckpt_write_fail: r.f64()?,
        connect_refuse: r.f64()?,
        frame_truncate: r.f64()?,
        ack_delay: r.f64()?,
        translate_fail: r.f64()?,
        delay_cycles: r.u64()?,
        ack_delay_cycles: r.u64()?,
        max_host_retries: r.u32()?,
        retry_backoff_cycles: r.u64()?,
    };
    let rng_state = r.u64()?;
    let stats = ResilienceStats {
        crashes: r.u64()?,
        fuel_exhaustions: r.u64()?,
        host_transients: r.u64()?,
        host_retries: r.u64()?,
        dropped_messages: r.u64()?,
        corrupted_messages: r.u64()?,
        delayed_messages: r.u64()?,
        ckpt_write_failures: r.u64()?,
        connect_refusals: r.u64()?,
        truncated_frames: r.u64()?,
        delayed_acks: r.u64()?,
        connect_retries: r.u64()?,
        translate_failures: r.u64()?,
        timeouts: r.u64()?,
        degraded_jits: r.u64()?,
        checkpoints_taken: r.u64()?,
        restarts: r.u64()?,
        overlapped_rounds: r.u64()?,
    };
    Ok(FaultPlan::restore(config, rng_state, stats))
}

/// Serialize one machine (memory, object heap, globals, output, counters,
/// fault stream) into an open payload.
pub fn write_machine(w: &mut Writer, m: &Machine) {
    w.len(m.mem.arrays.len());
    for a in &m.mem.arrays {
        write_arr(w, a);
    }
    write_machine_rest(w, m);
}

/// One standalone payload per heap array — the unit of delta encoding
/// for checkpoint chains (each array becomes its own chain section, so
/// an untouched mesh costs nothing in a delta link).
pub fn machine_array_sections(m: &Machine) -> Vec<Vec<u8>> {
    m.mem
        .arrays
        .iter()
        .map(|a| {
            let mut w = Writer::new();
            write_arr(&mut w, a);
            w.into_bytes()
        })
        .collect()
}

/// Everything in [`write_machine`] except the heap arrays: object heap,
/// globals, captured output, counters, and the fault-stream cursor.
pub fn write_machine_rest(w: &mut Writer, m: &Machine) {
    w.len(m.objs.objects.len());
    for (class, fields) in &m.objs.objects {
        w.u32(*class);
        write_vals(w, fields);
    }
    write_vals(w, &m.globals);
    w.len(m.output.len());
    for line in &m.output {
        w.str(line);
    }
    w.u64(m.counters.instrs);
    w.u64(m.counters.cycles);
    match &m.fault {
        Some(plan) => {
            w.bool(true);
            write_fault_plan(w, plan);
        }
        None => w.bool(false),
    }
}

pub fn read_machine(r: &mut Reader) -> Result<Machine, CkptError> {
    let n_arrays = r.len()?;
    let mut arrays = Vec::with_capacity(n_arrays);
    for _ in 0..n_arrays {
        arrays.push(read_arr(r)?);
    }
    read_machine_rest(r, arrays)
}

/// Inverse of [`write_machine_rest`], reassembling the machine around
/// separately decoded heap arrays.
pub fn read_machine_rest(r: &mut Reader, arrays: Vec<ArrStore>) -> Result<Machine, CkptError> {
    let n_objs = r.len()?;
    let mut objects = Vec::with_capacity(n_objs);
    for _ in 0..n_objs {
        let class = r.u32()?;
        objects.push((class, read_vals(r)?));
    }
    let globals = read_vals(r)?;
    let n_out = r.len()?;
    let mut output = Vec::with_capacity(n_out);
    for _ in 0..n_out {
        output.push(r.str()?);
    }
    let counters = Counters {
        instrs: r.u64()?,
        cycles: r.u64()?,
    };
    let fault = if r.bool()? {
        Some(read_fault_plan(r)?)
    } else {
        None
    };
    Ok(Machine {
        mem: MemSpace { arrays },
        objs: ObjHeap { objects },
        globals,
        output,
        counters,
        fault,
    })
}

/// Serialize a resumable call stack into an open payload.
pub fn write_thread(w: &mut Writer, t: &Thread) {
    w.len(t.frames.len());
    for f in &t.frames {
        w.u32(f.func.0);
        w.u32(f.pc);
        write_vals(w, &f.regs);
        match f.ret_to {
            Some(reg) => {
                w.bool(true);
                w.u32(reg);
            }
            None => w.bool(false),
        }
    }
    match t.pending_dst {
        Some(reg) => {
            w.bool(true);
            w.u32(reg);
        }
        None => w.bool(false),
    }
    w.bool(t.done);
}

/// Read a call stack back, validating every frame against `program` so a
/// checkpoint from a different program surfaces as [`CkptError::Corrupt`]
/// rather than an interpreter panic.
pub fn read_thread(r: &mut Reader, program: &Program) -> Result<Thread, CkptError> {
    let n_frames = r.len()?;
    let mut frames = Vec::with_capacity(n_frames);
    for _ in 0..n_frames {
        let func = r.u32()?;
        let pc = r.u32()?;
        let regs = read_vals(r)?;
        let ret_to = if r.bool()? { Some(r.u32()?) } else { None };
        let Some(f) = program.funcs.get(func as usize) else {
            return Err(r
                .corrupt(format!("frame references unknown func {func}"))
                .into());
        };
        if regs.len() != f.regs.len() {
            return Err(r
                .corrupt(format!(
                    "frame of `{}` has {} regs, expected {}",
                    f.name,
                    regs.len(),
                    f.regs.len()
                ))
                .into());
        }
        if pc as usize > f.code.len() {
            return Err(r
                .corrupt(format!("frame pc {pc} past end of `{}`", f.name))
                .into());
        }
        frames.push(Frame {
            func: FuncId(func),
            pc,
            regs,
            ret_to,
        });
    }
    let pending_dst = if r.bool()? { Some(r.u32()?) } else { None };
    let done = r.bool()?;
    Ok(Thread {
        frames,
        pending_dst,
        done,
    })
}

impl Machine {
    /// Capture the full machine state into sealed, checksummed bytes.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut w = begin(TAG_MACHINE);
        write_machine(&mut w, self);
        finish(w)
    }

    /// Rebuild a machine from [`Machine::snapshot`] bytes. Corruption,
    /// truncation, and version skew come back as a typed [`CkptError`].
    pub fn restore(bytes: &[u8]) -> Result<Machine, CkptError> {
        let mut r = open(bytes, TAG_MACHINE)?;
        let m = read_machine(&mut r)?;
        if !r.is_at_end() {
            return Err(r.corrupt("trailing bytes after machine state").into());
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_machine() -> Machine {
        let mut m = Machine::new();
        m.mem.alloc(ArrStore::F32(vec![1.5, -2.25, 3.0]));
        m.mem.alloc(ArrStore::I64(vec![i64::MIN, 0, i64::MAX]));
        let freed = m.mem.alloc(ArrStore::Bool(vec![true, false]));
        m.mem.free(freed).unwrap();
        let obj = m.objs.alloc(7, 2);
        m.objs.set(obj, 0, Val::F64(0.1 + 0.2)).unwrap();
        m.objs.set(obj, 1, Val::Arr(0)).unwrap();
        m.globals = vec![Val::I32(-9), Val::Unit, Val::Obj(obj)];
        m.output = vec!["hello".into(), "42".into()];
        m.counters = Counters {
            instrs: 1234,
            cycles: 56789,
        };
        let mut plan = FaultPlan::for_rank(
            FaultConfig {
                crash: 0.25,
                ..FaultConfig::seeded(99)
            },
            3,
        );
        for _ in 0..17 {
            plan.crash_at_yield();
        }
        m.fault = Some(plan);
        m
    }

    fn assert_machines_eq(a: &Machine, b: &Machine) {
        assert_eq!(a.mem.arrays, b.mem.arrays);
        assert_eq!(a.objs.objects, b.objs.objects);
        assert_eq!(a.globals, b.globals);
        assert_eq!(a.output, b.output);
        assert_eq!(a.counters.instrs, b.counters.instrs);
        assert_eq!(a.counters.cycles, b.counters.cycles);
        assert_eq!(a.fault, b.fault);
    }

    #[test]
    fn machine_round_trips_bit_identical() {
        let m = busy_machine();
        let bytes = m.snapshot();
        let back = Machine::restore(&bytes).expect("restore");
        assert_machines_eq(&m, &back);
        assert_eq!(bytes, back.snapshot(), "snapshot must be deterministic");
    }

    #[test]
    fn restored_fault_stream_continues_from_cursor() {
        let m = busy_machine();
        let mut back = Machine::restore(&m.snapshot()).unwrap();
        let mut orig = m;
        let a = orig.fault.as_mut().unwrap();
        let b = back.fault.as_mut().unwrap();
        for _ in 0..50 {
            assert_eq!(a.crash_at_yield(), b.crash_at_yield());
        }
    }

    #[test]
    fn truncation_and_corruption_are_typed_never_panics() {
        let bytes = busy_machine().snapshot();
        for cut in 0..bytes.len().min(64) {
            assert!(Machine::restore(&bytes[..cut]).is_err());
        }
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            // Every single-bit flip must fail (digest) — never panic.
            assert!(Machine::restore(&bad).is_err(), "flip at byte {i}");
        }
    }

    #[test]
    fn wrong_kind_and_version_rejected() {
        let m = busy_machine();
        let mut w = begin(TAG_WORLD);
        write_machine(&mut w, &m);
        let as_world = finish(w);
        assert!(matches!(
            Machine::restore(&as_world),
            Err(CkptError::Corrupt { .. })
        ));

        let mut w = Writer::new();
        w.u8(CKPT_VERSION + 1);
        w.u8(TAG_MACHINE);
        write_machine(&mut w, &m);
        let skewed = finish(w);
        assert!(matches!(
            Machine::restore(&skewed),
            Err(CkptError::VersionSkew { found, expected })
                if found == CKPT_VERSION + 1 && expected == CKPT_VERSION
        ));
    }

    #[test]
    fn thread_round_trips_through_payload() {
        use nir::{FuncBuilder, FuncKind, Instr, Ty};
        let mut fb = FuncBuilder::new("f", vec![], Some(Ty::I32), FuncKind::Host);
        let a = fb.reg(Ty::I32);
        fb.emit(Instr::ConstI32(a, 5));
        fb.emit(Instr::Ret(Some(a)));
        let mut p = Program::default();
        let entry = p.add_func(fb.finish().unwrap());

        let t = Thread::new(&p, entry, vec![]).unwrap();
        let mut w = begin(TAG_WORLD);
        write_thread(&mut w, &t);
        let bytes = finish(w);
        let mut r = open(&bytes, TAG_WORLD).unwrap();
        let back = read_thread(&mut r, &p).unwrap();
        assert_eq!(back.depth(), t.depth());
        assert_eq!(back.frame_location(), t.frame_location());
        assert_eq!(back.is_done(), t.is_done());
    }
}
