//! Differential semantics: the NIR engine's arithmetic must agree with
//! the jvm interpreter's Java semantics on every operator and operand —
//! the two execution paths of the framework must never diverge.
//!
//! Randomized inputs come from a small deterministic xorshift generator
//! so the suite builds without external crates on offline hosts.

use jlang::ast::BinOp;
use jlang::types::PrimKind;
use nir::{FuncBuilder, FuncKind, Instr, Program, Ty};

/// Deterministic xorshift64* PRNG — same sequence on every run.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }

    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn next_i32(&mut self) -> i32 {
        self.next_u64() as i32
    }

    fn next_f64(&mut self) -> f64 {
        f64::from_bits(self.next_u64())
    }
}

/// Build `fn f(a, b) { a op b }` for int operands.
fn int_binop_program(op: BinOp) -> Program {
    let out_ty = if op.is_comparison() {
        Ty::Bool
    } else {
        Ty::I32
    };
    let mut fb = FuncBuilder::new("f", vec![Ty::I32, Ty::I32], Some(out_ty), FuncKind::Host);
    let dst = fb.reg(out_ty);
    fb.emit(Instr::Bin {
        op,
        kind: PrimKind::Int,
        dst,
        lhs: 0,
        rhs: 1,
    });
    fb.emit(Instr::Ret(Some(dst)));
    let mut p = Program::default();
    let id = p.add_func(fb.finish().unwrap());
    p.entry = Some(id);
    p
}

/// Java reference semantics for the same operator.
fn java_int_binop(op: BinOp, a: i32, b: i32) -> Option<exec::Val> {
    use BinOp::*;
    Some(match op {
        Add => exec::Val::I32(a.wrapping_add(b)),
        Sub => exec::Val::I32(a.wrapping_sub(b)),
        Mul => exec::Val::I32(a.wrapping_mul(b)),
        Div => {
            if b == 0 {
                return None;
            }
            exec::Val::I32(a.wrapping_div(b))
        }
        Rem => {
            if b == 0 {
                return None;
            }
            exec::Val::I32(a.wrapping_rem(b))
        }
        Shl => exec::Val::I32(a.wrapping_shl(b as u32 & 31)),
        Shr => exec::Val::I32(a.wrapping_shr(b as u32 & 31)),
        BitAnd => exec::Val::I32(a & b),
        BitOr => exec::Val::I32(a | b),
        BitXor => exec::Val::I32(a ^ b),
        Lt => exec::Val::Bool(a < b),
        Le => exec::Val::Bool(a <= b),
        Gt => exec::Val::Bool(a > b),
        Ge => exec::Val::Bool(a >= b),
        Eq => exec::Val::Bool(a == b),
        Ne => exec::Val::Bool(a != b),
        And | Or => return None,
    })
}

#[test]
fn int_operators_match_java_semantics() {
    use BinOp::*;
    let mut rng = Rng::new(0x5EED_0001);
    let mut cases: Vec<(i32, i32)> = vec![
        (0, 0),
        (1, -1),
        (i32::MIN, -1),
        (i32::MIN, i32::MAX),
        (7, 0),
        (-7, 3),
        (i32::MAX, 1),
        (1, 33),
    ];
    for _ in 0..120 {
        cases.push((rng.next_i32(), rng.next_i32()));
    }
    for (a, b) in cases {
        for op in [
            Add, Sub, Mul, Div, Rem, Shl, Shr, BitAnd, BitOr, BitXor, Lt, Le, Gt, Ge, Eq, Ne,
        ] {
            let p = int_binop_program(op);
            let mut m = exec::Machine::new();
            let got = exec::run_to_completion(
                &p,
                p.entry.unwrap(),
                vec![exec::Val::I32(a), exec::Val::I32(b)],
                &mut m,
            );
            match java_int_binop(op, a, b) {
                Some(want) => assert_eq!(got.unwrap(), Some(want), "op {op:?} on ({a}, {b})"),
                None => assert!(got.is_err(), "op {op:?} on ({a}, {b}) should error"),
            }
        }
    }
}

#[test]
fn float_to_int_cast_saturates_like_java() {
    // Java (JLS 5.1.3): NaN -> 0, +/-inf -> min/max; Rust `as` matches.
    let mut rng = Rng::new(0x5EED_0002);
    let mut cases: Vec<f64> = vec![
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        0.0,
        -0.0,
        1e300,
        -1e300,
        2147483647.9,
        -2147483648.9,
    ];
    for _ in 0..120 {
        cases.push(rng.next_f64());
    }
    for x in cases {
        let mut fb = FuncBuilder::new("f", vec![Ty::F64], Some(Ty::I32), FuncKind::Host);
        let dst = fb.reg(Ty::I32);
        fb.emit(Instr::Cast {
            to: PrimKind::Int,
            from: PrimKind::Double,
            dst,
            src: 0,
        });
        fb.emit(Instr::Ret(Some(dst)));
        let mut p = Program::default();
        let id = p.add_func(fb.finish().unwrap());
        let mut m = exec::Machine::new();
        let got = exec::run_to_completion(&p, id, vec![exec::Val::F64(x)], &mut m).unwrap();
        assert_eq!(got, Some(exec::Val::I32(x as i32)), "cast of {x}");
    }
}

#[test]
fn cycle_count_is_a_pure_function_of_the_trace() {
    // Same program + same input => identical counters.
    for n in [1i32, 2, 3, 17, 50, 199] {
        let mut fb = FuncBuilder::new("loop", vec![Ty::I32], Some(Ty::I32), FuncKind::Host);
        let s = fb.reg(Ty::I32);
        let i = fb.reg(Ty::I32);
        let one = fb.reg(Ty::I32);
        let c = fb.reg(Ty::Bool);
        fb.emit(Instr::ConstI32(s, 0));
        fb.emit(Instr::ConstI32(i, 0));
        fb.emit(Instr::ConstI32(one, 1));
        let head = fb.label();
        let body = fb.label();
        let done = fb.label();
        fb.bind(head);
        fb.emit(Instr::Bin {
            op: BinOp::Lt,
            kind: PrimKind::Int,
            dst: c,
            lhs: i,
            rhs: 0,
        });
        fb.br(c, body, done);
        fb.bind(body);
        fb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: s,
            lhs: s,
            rhs: i,
        });
        fb.emit(Instr::Bin {
            op: BinOp::Add,
            kind: PrimKind::Int,
            dst: i,
            lhs: i,
            rhs: one,
        });
        fb.jmp(head);
        fb.bind(done);
        fb.emit(Instr::Ret(Some(s)));
        let mut p = Program::default();
        let id = p.add_func(fb.finish().unwrap());
        let run = |n: i32| {
            let mut m = exec::Machine::new();
            exec::run_to_completion(&p, id, vec![exec::Val::I32(n)], &mut m).unwrap();
            (m.counters.instrs, m.counters.cycles)
        };
        assert_eq!(run(n), run(n));
    }
}

#[test]
fn fuel_boundary_never_changes_results() {
    // Running with tiny fuel slices must produce the same result and the
    // same final counters as one big run.
    let p = int_binop_program(BinOp::Add);
    let big = {
        let mut m = exec::Machine::new();
        let v = exec::run_to_completion(
            &p,
            p.entry.unwrap(),
            vec![exec::Val::I32(7), exec::Val::I32(35)],
            &mut m,
        )
        .unwrap();
        (v, m.counters.instrs)
    };
    let small = {
        let mut m = exec::Machine::new();
        let mut t = exec::Thread::new(
            &p,
            p.entry.unwrap(),
            vec![exec::Val::I32(7), exec::Val::I32(35)],
        )
        .unwrap();
        loop {
            match exec::run(&mut t, &p, &mut m, 1).unwrap() {
                exec::Yield::Done(v) => break (v, m.counters.instrs),
                exec::Yield::OutOfFuel => {}
                other => panic!("unexpected {other:?}"),
            }
        }
    };
    assert_eq!(big, small);
}
