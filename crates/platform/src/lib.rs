//! Pluggable execution-platform layer: one trait in front of every
//! backend the WootinJ reproduction can retarget to.
//!
//! The paper's pitch is *multiplatform*: one `@WootinJ` source,
//! exhaustively specialized, retargeted to C, CUDA, or MPI. The
//! reproduction grew three targets — the NIR interpreter (`exec`), the
//! device simulator (`gpu-sim`), and the rank simulator (`mpi-sim`) —
//! but they were hard-wired through `wootinj::jit`/`jit4mpi` and
//! per-target knobs, so adding a fourth meant editing every layer.
//! This crate is the seam that breaks that coupling:
//!
//! - [`Platform`] owns a target's identity ([`Platform::id`]), its
//!   capability surface ([`Caps`]), its artifact-cache scoping salt
//!   ([`Platform::fingerprint_salt`], mixed into `CacheKey`
//!   fingerprints so per-platform artifacts and `.wckpt` world
//!   checkpoints never clobber each other), and a uniform
//!   [`Platform::run`] that drives the program under the platform's
//!   world shape — including the shared fault-injection and
//!   checkpoint/restart machinery, which every backend reuses rather
//!   than reimplementing.
//! - [`registry`] enumerates the built-in platforms so conformance
//!   tests and the `repro backend-matrix` sweep can instantiate the
//!   same property set per backend.
//!
//! Five built-ins prove the seam:
//!
//! | id         | backend                | world shape                |
//! |------------|------------------------|----------------------------|
//! | `interp`   | [`InterpPlatform`]     | 1 rank, no device          |
//! | `gpu-sim`  | [`GpuSimPlatform`]     | 1 rank + simulated GPU     |
//! | `mpi-sim`  | [`MpiSimPlatform`]     | N ranks (optional GPU)     |
//! | `host-mt`  | [`HostMtPlatform`]     | N workers, seeded schedule |
//! | `dist`     | [`DistPlatform`]       | N socket-connected workers |
//!
//! `host-mt` is a deterministic multi-threaded host backend modeled as
//! a fixed worker pool over shared-memory-grade link costs, with a
//! *seeded* per-round worker service order ([`Schedule::Seeded`])
//! standing in for an OS scheduler's arbitrary interleaving. It needs
//! only this trait impl — zero translator or facade edits — and still
//! gets fault plans, checkpoints, and restart for free through
//! [`RunRequest`].
//!
//! `dist` is the newcomer and the first *real-concurrency* backend:
//! each rank runs the same `LocalPool` engine behind a typed,
//! length-prefixed loopback-TCP wire protocol (threads by default, one
//! OS process per rank via [`dist::Launch::Processes`]), coordinated by
//! the shared transport-agnostic rank runtime. It is held to
//! bit-identity with `mpi-sim` by the conformance suite, and it cannot
//! offer host FFI — foreign function pointers do not cross a process
//! boundary.
//!
//! All backends here are simulators by design (see DESIGN.md): worlds
//! execute NIR cooperatively under virtual time, which is what makes
//! the cross-backend bit-identity assertions of `repro backend-matrix`
//! possible at all.

#![forbid(unsafe_code)]

use exec::{ExecMode, ExecutorCfg, FaultConfig, HostRegistry, Machine, Val};
use gpu_sim::GpuConfig;
use mpi_sim::{CheckpointPolicy, CostModel, Schedule, SimError, World, WorldRun};
use nir::{FuncId, Program};
use std::sync::Arc;

/// What a platform can do. Capability checks happen *before* a run is
/// attempted (see [`Platform::check`]), so an unsupported workload
/// fails typed at JIT time instead of deep inside a backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Caps {
    /// Can launch `global` kernels (has a device or device simulator).
    pub global_kernels: bool,
    /// Workers share one coherent memory (no per-byte wire cost model).
    pub shared_memory: bool,
    /// Supports the collective surface (barrier/allreduce/bcast/...).
    /// Single-worker platforms still qualify: collectives degenerate to
    /// identities, which is exactly MPI's size-1 semantics.
    pub collectives: bool,
    /// Can call registered `@Native` host functions.
    pub host_ffi: bool,
    /// Degree of parallelism the platform presents (ranks, workers, or
    /// device lanes) — informational, for reports and the README table.
    pub parallelism: u32,
}

/// What a translated entry needs from its platform, derived by the
/// facade from the translation (`uses_gpu`, `uses_mpi`, host bindings).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Needs {
    /// The program launches `global` kernels.
    pub kernels: bool,
    /// The program calls MPI collectives or point-to-point ops.
    pub collectives: bool,
    /// The program calls `@Native` host functions.
    pub host_ffi: bool,
}

/// Typed capability mismatch: the platform cannot run this workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlatformError {
    Unsupported {
        platform: &'static str,
        feature: &'static str,
    },
}

impl std::fmt::Display for PlatformError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlatformError::Unsupported { platform, feature } => {
                write!(f, "platform `{platform}` does not support {feature}")
            }
        }
    }
}

impl std::error::Error for PlatformError {}

/// Everything a platform needs to run one translated entry. The
/// fault/checkpoint surface lives here — on the *request*, not the
/// platform — so every backend inherits injection and restart
/// uniformly instead of reimplementing them.
pub struct RunRequest<'p> {
    pub program: &'p Program,
    pub entry: FuncId,
    /// Host `@Native` registry; `None` runs with FFI unavailable.
    pub host: Option<&'p HostRegistry>,
    /// Deterministic fault injection, if any.
    pub fault: Option<FaultConfig>,
    /// Blocked-collective fuel bound (see `mpi_sim::World`).
    pub timeout_rounds: Option<u64>,
    /// Checkpoint cadence; `Some` routes through restart-on-crash.
    pub checkpoint: Option<CheckpointPolicy>,
    /// Restart budget when `checkpoint` is set.
    pub max_restarts: u32,
    /// Who executes ready slices each round (see `exec::pool`):
    /// the in-process cooperative loop ([`ExecutorCfg::Sim`], the
    /// default) or real OS-thread workers. Platforms with their own
    /// executor preference (see [`HostMtPlatform::with_executor`])
    /// apply it only when the request keeps the default.
    pub executor: ExecutorCfg,
}

/// What a run produces — the full world outcome (per-rank results,
/// virtual time, resilience and restart accounting). One type across
/// all platforms is what lets the backend matrix diff outcomes.
pub type RunOutcome = WorldRun;

/// Builds one rank's/worker's entry arguments into that worker's own
/// memory space (deep copies — workers never alias host memory).
pub type ArgBuilder<'a> = &'a mut dyn FnMut(u32, &mut Machine) -> Result<Vec<Val>, String>;

/// One execution target. Implementations own the world shape (size,
/// device, link costs, scheduling) and nothing else: programs, faults,
/// checkpoints, and argument binding all arrive via [`RunRequest`].
pub trait Platform {
    /// Stable target id (`interp`, `gpu-sim`, `mpi-sim`, `host-mt`,
    /// `dist`).
    fn id(&self) -> &'static str;

    /// Capability surface used by [`Platform::check`] and the docs.
    fn caps(&self) -> Caps;

    /// Salt mixed into `CacheKey` fingerprints so per-platform sealed
    /// artifacts and `.wckpt` world checkpoints are scoped per target
    /// (a 4-rank mpi-sim checkpoint must never restore into an 8-worker
    /// host-mt world). Zero means "unscoped" — the legacy/default
    /// namespace — and is reserved for [`InterpPlatform`] so caches
    /// written before this layer existed stay valid.
    fn fingerprint_salt(&self) -> u64 {
        fnv1a64(self.id().as_bytes())
    }

    /// Reject workloads this platform cannot run, *typed and early*.
    fn check(&self, needs: Needs) -> Result<(), PlatformError> {
        let caps = self.caps();
        if needs.kernels && !caps.global_kernels {
            return Err(PlatformError::Unsupported {
                platform: self.id(),
                feature: "global kernels",
            });
        }
        if needs.collectives && !caps.collectives {
            return Err(PlatformError::Unsupported {
                platform: self.id(),
                feature: "collectives",
            });
        }
        if needs.host_ffi && !caps.host_ffi {
            return Err(PlatformError::Unsupported {
                platform: self.id(),
                feature: "host FFI",
            });
        }
        Ok(())
    }

    /// Run `entry` under this platform's world shape. Checkpointed
    /// requests roll back and restart on crash/timeout exactly like
    /// `mpi_sim::World::run_with_restart` (they *are* that machinery —
    /// reused through the trait, not per backend).
    fn run(&self, req: RunRequest<'_>, make_args: ArgBuilder<'_>) -> Result<RunOutcome, SimError>;
}

// The platform-salt hash is the workspace-wide stable FNV-1a from
// `nir::hash` — one implementation, baked into on-disk fingerprints.
use nir::hash::fnv1a64;

/// Apply the request's shared surface (host/fault/timeout) to a world,
/// in the facade's historical builder order so behavior is
/// bit-identical to the pre-platform code path — then stamp the
/// platform's fingerprint salt so every `.wckpt` chain this world
/// persists is scoped to the platform that wrote it.
fn apply_request<'p>(mut world: World<'p>, req: &RunRequest<'p>, salt: u64) -> World<'p> {
    if let Some(h) = req.host {
        world = world.with_host(h);
    }
    if let Some(f) = req.fault {
        world = world.with_faults(f);
    }
    if let Some(t) = req.timeout_rounds {
        world = world.with_timeout(t);
    }
    world.with_executor(req.executor).with_ckpt_salt(salt)
}

/// Drive the world, routing through checkpoint/restart when requested.
fn drive(
    world: World<'_>,
    req: &RunRequest<'_>,
    make_args: ArgBuilder<'_>,
) -> Result<RunOutcome, SimError> {
    match &req.checkpoint {
        Some(policy) => world.run_with_restart(req.entry, make_args, policy, req.max_restarts),
        None => world.run(req.entry, make_args),
    }
}

/// The sequential host interpreter: one rank, no device. Collectives
/// degenerate to size-1 identities (MPI's own semantics), which is what
/// lets a collective-bearing program produce the same answer here as on
/// a fanned-out world when the workload partitions by rank.
#[derive(Debug, Clone, Copy, Default)]
pub struct InterpPlatform {
    pub cost: CostModel,
}

impl Platform for InterpPlatform {
    fn id(&self) -> &'static str {
        "interp"
    }

    fn caps(&self) -> Caps {
        Caps {
            global_kernels: false,
            shared_memory: true,
            collectives: true,
            host_ffi: true,
            parallelism: 1,
        }
    }

    /// The legacy/default namespace: artifacts and checkpoints written
    /// before the platform layer existed belong to `interp`.
    fn fingerprint_salt(&self) -> u64 {
        0
    }

    fn run(&self, req: RunRequest<'_>, make_args: ArgBuilder<'_>) -> Result<RunOutcome, SimError> {
        let world = apply_request(
            World::new(req.program, 1).with_cost(self.cost),
            &req,
            self.fingerprint_salt(),
        );
        drive(world, &req, make_args)
    }
}

/// One host rank driving the simulated device: `global` kernels launch
/// on a modeled GPU (SMs × lanes, copy costs), everything else runs on
/// the host rank.
#[derive(Debug, Clone, Copy, Default)]
pub struct GpuSimPlatform {
    pub gpu: GpuConfig,
    pub cost: CostModel,
}

impl Platform for GpuSimPlatform {
    fn id(&self) -> &'static str {
        "gpu-sim"
    }

    fn caps(&self) -> Caps {
        Caps {
            global_kernels: true,
            shared_memory: true,
            collectives: true,
            host_ffi: true,
            parallelism: self.gpu.n_sms * self.gpu.lanes_per_sm,
        }
    }

    fn run(&self, req: RunRequest<'_>, make_args: ArgBuilder<'_>) -> Result<RunOutcome, SimError> {
        let world = apply_request(
            World::new(req.program, 1)
                .with_cost(self.cost)
                .with_gpu(self.gpu),
            &req,
            self.fingerprint_salt(),
        );
        drive(world, &req, make_args)
    }
}

/// N simulated ranks over a wire-cost fabric, optionally each with a
/// device (the paper's CUDA+MPI configuration).
#[derive(Debug, Clone, Copy)]
pub struct MpiSimPlatform {
    pub ranks: u32,
    pub cost: CostModel,
    pub gpu: Option<GpuConfig>,
}

impl MpiSimPlatform {
    pub fn new(ranks: u32) -> Self {
        MpiSimPlatform {
            ranks,
            cost: CostModel::default(),
            gpu: None,
        }
    }

    pub fn with_gpu(mut self, gpu: GpuConfig) -> Self {
        self.gpu = Some(gpu);
        self
    }
}

impl Platform for MpiSimPlatform {
    fn id(&self) -> &'static str {
        "mpi-sim"
    }

    fn caps(&self) -> Caps {
        Caps {
            global_kernels: self.gpu.is_some(),
            shared_memory: false,
            collectives: true,
            host_ffi: true,
            parallelism: self.ranks,
        }
    }

    fn run(&self, req: RunRequest<'_>, make_args: ArgBuilder<'_>) -> Result<RunOutcome, SimError> {
        let mut world = World::new(req.program, self.ranks).with_cost(self.cost);
        if let Some(g) = self.gpu {
            world = world.with_gpu(g);
        }
        let world = apply_request(world, &req, self.fingerprint_salt());
        drive(world, &req, make_args)
    }
}

/// The fourth backend: a deterministic multi-threaded host pool.
///
/// A fixed number of workers share one node's memory, so link costs are
/// shared-memory-grade (two orders cheaper than the fabric defaults),
/// and the per-round worker service order is a seeded permutation
/// ([`Schedule::Seeded`]) — the simulator's stand-in for an OS
/// scheduler interleaving threads arbitrarily. Determinism is the
/// point: the same seed replays the same interleaving, and because
/// world results are schedule-independent by construction, *any* seed
/// must produce bit-identical answers (the conformance suite asserts
/// exactly that). Fault plans and checkpoint/restart arrive through
/// [`RunRequest`] like every other backend — this platform needed zero
/// translator or facade edits.
#[derive(Debug, Clone, Copy)]
pub struct HostMtPlatform {
    /// Pool width (worker count == world size).
    pub workers: u32,
    /// Scheduling seed for the per-round worker permutation.
    pub seed: u64,
    pub cost: CostModel,
    /// Who executes slices: the cooperative loop by default, real OS
    /// threads via [`HostMtPlatform::with_executor`]. Replay-mode
    /// threads are bit-identical to the loop and keep the platform's
    /// fingerprint salt (warm caches survive); free-running mode can
    /// legitimately change virtual timing, so it gets its own salt.
    pub executor: ExecutorCfg,
}

impl HostMtPlatform {
    pub fn new(workers: u32) -> Self {
        HostMtPlatform {
            workers,
            seed: 0x4057_A11E_7001_u64,
            cost: CostModel {
                // Shared-memory exchange: a cache-line handoff plus
                // memcpy bandwidth, not a NIC traversal.
                alpha: 40,
                beta: 0.05,
                collective_alpha: 200,
            },
            executor: ExecutorCfg::Sim,
        }
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Back this platform with a specific executor (real OS threads in
    /// replay or free-running mode). A non-default executor on the
    /// [`RunRequest`] still wins over this platform-level choice.
    pub fn with_executor(mut self, executor: ExecutorCfg) -> Self {
        self.executor = executor;
        self
    }
}

impl Platform for HostMtPlatform {
    fn id(&self) -> &'static str {
        "host-mt"
    }

    fn caps(&self) -> Caps {
        Caps {
            global_kernels: false,
            shared_memory: true,
            collectives: true,
            host_ffi: true,
            parallelism: self.workers,
        }
    }

    /// Replay-mode (and sim) execution keeps the historical `host-mt`
    /// salt — results are bit-identical, so warm artifacts and `.wckpt`
    /// chains stay valid. Free-running mode can change virtual timing,
    /// which is semantic for checkpoint chains: distinct salt.
    fn fingerprint_salt(&self) -> u64 {
        match self.executor {
            ExecutorCfg::Threads {
                mode: ExecMode::Free,
                ..
            } => fnv1a64(b"host-mt-free"),
            _ => fnv1a64(b"host-mt"),
        }
    }

    fn run(&self, req: RunRequest<'_>, make_args: ArgBuilder<'_>) -> Result<RunOutcome, SimError> {
        // The request's executor wins when set; otherwise the
        // platform-level choice applies.
        let effective = match req.executor {
            ExecutorCfg::Sim => self.executor,
            e => e,
        };
        let world = apply_request(
            World::new(req.program, self.workers)
                .with_cost(self.cost)
                .with_schedule(Schedule::Seeded(self.seed)),
            &req,
            self.fingerprint_salt(),
        )
        .with_executor(effective);
        drive(world, &req, make_args)
    }
}

/// The fifth backend: socket-connected rank workers (`dist`).
///
/// Every rank lives behind the typed, length-prefixed loopback-TCP
/// wire protocol of the `dist` crate and executes through the same
/// `LocalPool` engine as `mpi-sim` — the conformance suite holds the
/// two backends to bit-identical outcomes on every workload. Workers
/// are threads by default ([`dist::Launch::Threads`]: full wire
/// fidelity, no executable needed); real per-rank OS processes arrive
/// via [`DistPlatform::with_launch`]. Host FFI is structurally
/// unavailable — foreign function pointers cannot cross a process
/// boundary — so `caps().host_ffi` is `false` and a [`RunRequest`]
/// carrying a host registry fails typed before any worker spawns.
#[derive(Debug, Clone)]
pub struct DistPlatform {
    /// World size (one socket-connected worker per rank).
    pub ranks: u32,
    pub cost: CostModel,
    launch: dist::Launch,
}

impl DistPlatform {
    pub fn new(ranks: u32) -> Self {
        DistPlatform {
            ranks,
            cost: CostModel::default(),
            launch: dist::Launch::Threads,
        }
    }

    /// Choose how rank workers launch (default: in-process threads
    /// speaking the full wire protocol over real loopback sockets).
    pub fn with_launch(mut self, launch: dist::Launch) -> Self {
        self.launch = launch;
        self
    }
}

impl Platform for DistPlatform {
    fn id(&self) -> &'static str {
        "dist"
    }

    fn caps(&self) -> Caps {
        Caps {
            global_kernels: false,
            shared_memory: false,
            collectives: true,
            host_ffi: false,
            parallelism: self.ranks,
        }
    }

    fn run(&self, req: RunRequest<'_>, make_args: ArgBuilder<'_>) -> Result<RunOutcome, SimError> {
        // The facade hands every run its host registry; an *empty* one
        // is harmless (nothing to call). Bound natives are not: their
        // function pointers cannot cross the worker boundary, so fail
        // typed here instead of deep inside a rank.
        if req.host.is_some_and(|h| h.keys().next().is_some()) {
            return Err(SimError::World {
                message: "platform `dist` cannot run with host FFI bindings: \
                          foreign function pointers do not cross a process boundary"
                    .into(),
            });
        }
        let mut world = dist::DistWorld::new(req.program, self.ranks)
            .with_cost(self.cost)
            .with_launch(self.launch.clone())
            .with_ckpt_salt(self.fingerprint_salt());
        if let Some(f) = req.fault {
            world = world.with_faults(f);
        }
        if let Some(t) = req.timeout_rounds {
            world = world.with_timeout(t);
        }
        match &req.checkpoint {
            Some(policy) => world.run_with_restart(req.entry, make_args, policy, req.max_restarts),
            None => world.run(req.entry, make_args),
        }
    }
}

/// Every built-in platform, in presentation order. The conformance
/// suite and `repro backend-matrix` iterate this list — registering a
/// platform here is all it takes to put it under the shared property
/// set.
pub fn registry() -> Vec<Arc<dyn Platform>> {
    vec![
        Arc::new(InterpPlatform::default()),
        Arc::new(GpuSimPlatform::default()),
        Arc::new(MpiSimPlatform::new(4).with_gpu(GpuConfig::default())),
        Arc::new(HostMtPlatform::new(4)),
        Arc::new(DistPlatform::new(4)),
    ]
}

/// Look a built-in platform up by its stable id.
pub fn by_id(id: &str) -> Option<Arc<dyn Platform>> {
    registry().into_iter().find(|p| p.id() == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_ids_are_unique_and_complete() {
        let ids: Vec<&str> = registry().iter().map(|p| p.id()).collect();
        assert_eq!(ids, ["interp", "gpu-sim", "mpi-sim", "host-mt", "dist"]);
        for p in registry() {
            assert_eq!(by_id(p.id()).unwrap().id(), p.id());
        }
        assert!(by_id("vax").is_none());
    }

    #[test]
    fn salts_scope_platforms_and_interp_is_the_legacy_namespace() {
        let mut salts: Vec<u64> = registry().iter().map(|p| p.fingerprint_salt()).collect();
        assert_eq!(salts[0], 0, "interp owns the unscoped legacy namespace");
        salts.sort_unstable();
        salts.dedup();
        assert_eq!(salts.len(), 5, "every platform gets a distinct salt");
        // Salts are baked into on-disk fingerprints: pin them.
        assert_eq!(
            by_id("host-mt").unwrap().fingerprint_salt(),
            fnv1a64(b"host-mt")
        );
        assert_eq!(by_id("dist").unwrap().fingerprint_salt(), fnv1a64(b"dist"));
        // Replay-mode threads are bit-identical to the cooperative
        // loop, so warm caches must survive the executor switch; only
        // free-running mode (which may change virtual timing) gets its
        // own namespace.
        let replay = HostMtPlatform::new(4).with_executor(ExecutorCfg::Threads {
            workers: 4,
            mode: ExecMode::Replay,
        });
        assert_eq!(replay.fingerprint_salt(), fnv1a64(b"host-mt"));
        let free = HostMtPlatform::new(4).with_executor(ExecutorCfg::Threads {
            workers: 4,
            mode: ExecMode::Free,
        });
        assert_eq!(free.fingerprint_salt(), fnv1a64(b"host-mt-free"));
    }

    #[test]
    fn capability_checks_fail_typed() {
        let interp = InterpPlatform::default();
        let needs = Needs {
            kernels: true,
            ..Needs::default()
        };
        match interp.check(needs) {
            Err(PlatformError::Unsupported { platform, feature }) => {
                assert_eq!(platform, "interp");
                assert_eq!(feature, "global kernels");
            }
            other => panic!("expected typed Unsupported, got {other:?}"),
        }
        assert!(GpuSimPlatform::default().check(needs).is_ok());
        assert!(MpiSimPlatform::new(4).check(needs).is_err());
        assert!(MpiSimPlatform::new(4)
            .with_gpu(GpuConfig::default())
            .check(needs)
            .is_ok());
        assert!(HostMtPlatform::new(4)
            .check(Needs {
                collectives: true,
                host_ffi: true,
                ..Needs::default()
            })
            .is_ok());
        let dist = DistPlatform::new(4);
        assert!(dist
            .check(Needs {
                collectives: true,
                ..Needs::default()
            })
            .is_ok());
        match dist.check(Needs {
            host_ffi: true,
            ..Needs::default()
        }) {
            Err(PlatformError::Unsupported { platform, feature }) => {
                assert_eq!(platform, "dist");
                assert_eq!(feature, "host FFI");
            }
            other => panic!("expected typed Unsupported for dist FFI, got {other:?}"),
        }
    }
}
