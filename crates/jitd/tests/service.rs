//! Service-level robustness gates for the `jitd` daemon: single-flight
//! translation under concurrency, typed quota and overload shedding,
//! deadline expiry, chaos clients (truncated frames, mid-request
//! death), injected translate faults, and graceful drain. Every wire
//! wait in these tests is timeout-bounded — a daemon bug surfaces as a
//! typed failure or an assert, never as a hung test run.

use jitd::client::{jit_request, Client};
use jitd::proto::{Arg, Reply, Request, ServiceStats, ShedReason};
use jitd::{Daemon, DaemonConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

const DOUBLER: &str = "@WootinJ final class Doubler {
    Doubler() { }
    int run(int x) { return x * 2; }
}";

const TRIPLER: &str = "@WootinJ final class Tripler {
    Tripler() { }
    int run(int x) { return x * 3; }
}";

struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("wj-jitd-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        ScratchDir(dir)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Boot a daemon on an ephemeral port; the returned handle resolves to
/// the final stats once the daemon drains.
fn boot(config: DaemonConfig) -> (u16, std::thread::JoinHandle<ServiceStats>) {
    let daemon = Daemon::bind(config, 0).expect("bind");
    let port = daemon.port();
    (port, std::thread::spawn(move || daemon.serve()))
}

fn drain(port: u16, handle: std::thread::JoinHandle<ServiceStats>) -> ServiceStats {
    Client::connect(port, "ops").unwrap().shutdown().unwrap();
    handle.join().expect("daemon panicked")
}

fn doubler_req(x: i32) -> jitd::proto::JitRequest {
    jit_request("doubler.jl", DOUBLER, "Doubler", "run", vec![Arg::I32(x)])
}

#[test]
fn concurrent_clients_for_one_cache_key_cause_exactly_one_translation() {
    let scratch = ScratchDir::new("singleflight");
    let (port, handle) = boot(DaemonConfig {
        workers: 8,
        queue_cap: 16,
        root: scratch.0.clone(),
        ..DaemonConfig::default()
    });

    // N concurrent clients, all asking for the same CacheKey. Whether a
    // given client leads, follows the in-flight leader, or warm-starts
    // from the artifact the leader sealed, the translator runs once.
    let n = 8;
    let clients: Vec<_> = (0..n)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(port, "acme").unwrap();
                c.jit(doubler_req(21 + i)).unwrap()
            })
        })
        .collect();
    let replies: Vec<Reply> = clients.into_iter().map(|h| h.join().unwrap()).collect();

    // The cache key is shaped by types, not values: all N requests share
    // one key, yet each client's run binds its *own* argument values.
    let mut translated = 0;
    for (i, r) in replies.iter().enumerate() {
        match r {
            Reply::Done(o) => {
                assert_eq!(
                    o.result,
                    Some(wootinj::Val::I32(2 * (21 + i as i32))),
                    "client {i} must run the shared artifact on its own args"
                );
                translated += u64::from(o.translated);
            }
            other => panic!("every concurrent client must complete, got {other:?}"),
        }
    }
    assert_eq!(
        translated, 1,
        "exactly one client is the translating leader"
    );

    let stats = drain(port, handle);
    assert_eq!(
        stats.translations, 1,
        "N concurrent same-key clients must cause exactly 1 translation, got {}",
        stats.translations
    );
    assert_eq!(stats.completed, n as u64);
    assert_eq!(stats.resilience.translate_failures, 0);
}

#[test]
fn over_quota_tenants_get_typed_rejections_but_warm_keys_still_serve() {
    let scratch = ScratchDir::new("quota");
    let (port, handle) = boot(DaemonConfig {
        root: scratch.0.clone(),
        quotas: vec![("cramped".into(), 1), ("locked".into(), 0)],
        ..DaemonConfig::default()
    });

    // A zero-quota tenant is refused before any translator work.
    let mut locked = Client::connect(port, "locked").unwrap();
    match locked.jit(doubler_req(1)).unwrap() {
        Reply::Shed { reason, .. } => assert_eq!(reason, ShedReason::OverQuota),
        other => panic!("zero-quota tenant must shed typed, got {other:?}"),
    }

    // A 1-byte tenant fits its first artifact (admission is checked
    // against *current* usage), then is at quota for anything new...
    let mut cramped = Client::connect(port, "cramped").unwrap();
    match cramped.jit(doubler_req(21)).unwrap() {
        Reply::Done(o) => assert_eq!(o.result, Some(wootinj::Val::I32(42))),
        other => panic!("first artifact must serve, got {other:?}"),
    }
    let tripler = jit_request("tripler.jl", TRIPLER, "Tripler", "run", vec![Arg::I32(5)]);
    match cramped.jit(tripler).unwrap() {
        Reply::Shed { reason, message } => {
            assert_eq!(reason, ShedReason::OverQuota);
            assert!(
                message.contains("quota"),
                "message names the policy: {message}"
            );
        }
        other => panic!("over-quota translation must shed typed, got {other:?}"),
    }
    // ...while its warm key keeps serving without new bytes.
    match cramped.jit(doubler_req(50)).unwrap() {
        Reply::Done(o) => {
            assert_eq!(o.result, Some(wootinj::Val::I32(100)));
            assert!(!o.translated, "warm serve must not re-translate");
        }
        other => panic!("warm key must serve over-quota tenant, got {other:?}"),
    }

    let stats = drain(port, handle);
    assert_eq!(stats.shed_over_quota, 2);
    assert_eq!(stats.translations, 1);
    assert!(stats.warm_hits >= 1, "the repeat serve comes from disk");
}

#[test]
fn chaos_clients_never_hang_or_kill_the_daemon() {
    let scratch = ScratchDir::new("chaos");
    let (port, handle) = boot(DaemonConfig {
        root: scratch.0.clone(),
        ..DaemonConfig::default()
    });

    // A client that sends a valid request and dies without reading the
    // reply: the daemon does the work, fails the delivery, and counts it.
    Client::connect(port, "ghost")
        .unwrap()
        .send_and_die(&Request::Jit(doubler_req(2)));

    // A client that truncates its frame mid-payload.
    Client::connect(port, "cutter")
        .unwrap()
        .send_truncated_frame(&Request::Jit(doubler_req(3)), 9);

    // A client that speaks no framing at all.
    Client::connect(port, "noise")
        .unwrap()
        .send_garbage(b"definitely not WFR1");

    // The daemon must still be fully alive for a well-behaved client —
    // poll stats until the chaos above has been absorbed and counted.
    let mut c = Client::connect(port, "acme").unwrap();
    match c.jit(doubler_req(21)).unwrap() {
        Reply::Done(o) => assert_eq!(o.result, Some(wootinj::Val::I32(42))),
        other => panic!("daemon must survive chaos clients, got {other:?}"),
    }
    let deadline = Instant::now() + Duration::from_secs(20);
    let stats = loop {
        let s = c.stats().unwrap();
        if (s.disconnects >= 1 && s.bad_frames >= 2) || Instant::now() > deadline {
            break s;
        }
        std::thread::sleep(Duration::from_millis(20));
    };
    assert!(
        stats.disconnects >= 1,
        "the mid-request death must be observed and counted: {stats:?}"
    );
    assert!(
        stats.bad_frames >= 2,
        "the truncated frame and the garbage must be counted: {stats:?}"
    );

    drain(port, handle);
}

#[test]
fn overload_sheds_typed_queue_full_and_deadline() {
    let scratch = ScratchDir::new("overload");
    let (port, handle) = boot(DaemonConfig {
        workers: 1,
        queue_cap: 1,
        root: scratch.0.clone(),
        ..DaemonConfig::default()
    });

    // Warm the artifact first so the holder's slot time is dominated by
    // the deterministic hold, not by translation timing.
    let mut warmer = Client::connect(port, "acme").unwrap();
    warmer.jit(doubler_req(1)).unwrap();

    // Occupy the single worker slot for a while.
    let holder = std::thread::spawn(move || {
        let mut c = Client::connect(port, "acme").unwrap();
        let mut req = doubler_req(2);
        req.hold_ms = 1_200;
        c.jit(req).unwrap()
    });
    std::thread::sleep(Duration::from_millis(300));

    // One request fits the queue but dies there on its own deadline...
    let queued = std::thread::spawn(move || {
        let mut c = Client::connect(port, "acme").unwrap();
        let mut req = doubler_req(3);
        req.deadline_ms = 150;
        c.jit(req).unwrap()
    });
    std::thread::sleep(Duration::from_millis(50));
    // ...and with the queue occupied, the next is refused immediately.
    let mut c = Client::connect(port, "acme").unwrap();
    let overflow = c.jit(doubler_req(4)).unwrap();
    match overflow {
        Reply::Shed { reason, .. } => assert_eq!(reason, ShedReason::QueueFull),
        other => panic!("queue overflow must shed typed, got {other:?}"),
    }
    match queued.join().unwrap() {
        Reply::Shed { reason, .. } => assert_eq!(reason, ShedReason::Deadline),
        other => panic!("queued request must shed on its deadline, got {other:?}"),
    }
    match holder.join().unwrap() {
        Reply::Done(_) => {}
        other => panic!("the slot holder itself must complete, got {other:?}"),
    }

    let stats = drain(port, handle);
    assert!(stats.shed_queue_full >= 1);
    assert!(stats.shed_deadline >= 1);
}

#[test]
fn injected_translate_faults_are_typed_counted_and_seeded() {
    let scratch = ScratchDir::new("xlate-fault");
    let mut fault = wootinj::FaultConfig::seeded(7);
    fault.translate_fail = 1.0;
    let (port, handle) = boot(DaemonConfig {
        root: scratch.0.clone(),
        fault: Some(fault),
        ..DaemonConfig::default()
    });

    let mut c = Client::connect(port, "acme").unwrap();
    for _ in 0..3 {
        match c.jit(doubler_req(21)).unwrap() {
            Reply::Err { message } => {
                assert!(
                    message.contains("injected translate failure"),
                    "the injected fault must be typed: {message}"
                )
            }
            other => panic!("rate-1.0 translate faults must fail typed, got {other:?}"),
        }
    }

    let stats = drain(port, handle);
    assert_eq!(stats.request_errors, 3);
    assert_eq!(stats.resilience.translate_failures, 3);
    assert_eq!(stats.translations, 0, "a failed draw must never translate");
}

#[test]
fn shutdown_drains_in_flight_work_then_sheds_new_requests() {
    let scratch = ScratchDir::new("drain");
    let (port, handle) = boot(DaemonConfig {
        workers: 2,
        root: scratch.0.clone(),
        ..DaemonConfig::default()
    });

    let mut warmer = Client::connect(port, "acme").unwrap();
    warmer.jit(doubler_req(1)).unwrap();

    // Put a request in flight (held slot), then ask for the drain.
    let inflight = std::thread::spawn(move || {
        let mut c = Client::connect(port, "acme").unwrap();
        let mut req = doubler_req(21);
        req.hold_ms = 600;
        c.jit(req).unwrap()
    });
    std::thread::sleep(Duration::from_millis(200));

    let mut late = Client::connect(port, "acme").unwrap();
    Client::connect(port, "ops").unwrap().shutdown().unwrap();

    // New work on an existing connection sheds typed while draining.
    match late.jit(doubler_req(9)).unwrap() {
        Reply::Shed { reason, .. } => assert_eq!(reason, ShedReason::Draining),
        other => panic!("post-shutdown work must shed as draining, got {other:?}"),
    }

    // The in-flight request still completes — drain flushes, not kills.
    match inflight.join().unwrap() {
        Reply::Done(o) => assert_eq!(o.result, Some(wootinj::Val::I32(42))),
        other => panic!("in-flight work must flush through the drain, got {other:?}"),
    }

    let stats = handle.join().expect("daemon panicked");
    assert!(stats.shed_draining >= 1);
    assert_eq!(
        stats.admitted,
        stats.completed + stats.request_errors,
        "every admitted request must terminate: {stats:?}"
    );
}
