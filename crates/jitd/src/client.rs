//! # client — a blocking service client (and the chaos toolkit)
//!
//! One [`Client`] per connection: connect, handshake as a tenant, then
//! issue any number of requests in lockstep (one reply per request).
//! Every wire wait is bounded by the I/O timeout, so a wedged daemon
//! surfaces as a typed [`TransportError::Timeout`], never a hang.
//!
//! The chaos constructors ([`Client::send_truncated_frame`],
//! [`Client::send_garbage`], and plain `drop` mid-request) exist for the
//! robustness tests and the bench storm: they *are* the misbehaving
//! clients the daemon must survive.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use mpi_sim::{read_frame, write_frame, TransportError};

use crate::proto::{self, Arg, Hello, JitRequest, Reply, Request, ServiceStats, SERVICE_PROTO};

fn io_err(op: &'static str, e: std::io::Error) -> TransportError {
    TransportError::Io {
        op,
        message: e.to_string(),
    }
}

/// A connected, handshaken service client.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to a daemon on loopback and handshake as `tenant`.
    pub fn connect(port: u16, tenant: &str) -> Result<Client, TransportError> {
        Self::connect_with_timeout(port, tenant, Duration::from_secs(10))
    }

    pub fn connect_with_timeout(
        port: u16,
        tenant: &str,
        io_timeout: Duration,
    ) -> Result<Client, TransportError> {
        let stream = TcpStream::connect(("127.0.0.1", port)).map_err(|e| io_err("connect", e))?;
        let _ = stream.set_nodelay(true);
        stream
            .set_read_timeout(Some(io_timeout))
            .map_err(|e| io_err("set timeout", e))?;
        stream
            .set_write_timeout(Some(io_timeout))
            .map_err(|e| io_err("set timeout", e))?;
        let mut client = Client { stream };
        let hello = Hello {
            proto: SERVICE_PROTO,
            tenant: tenant.to_string(),
        };
        write_frame(&mut client.stream, &proto::encode_hello(&hello))?;
        match client.read_reply()? {
            Reply::HelloOk { .. } => Ok(client),
            Reply::Err { message } => Err(TransportError::Refused { message }),
            other => Err(TransportError::Corrupt {
                message: format!("unexpected handshake reply: {other:?}"),
            }),
        }
    }

    fn read_reply(&mut self) -> Result<Reply, TransportError> {
        let buf = read_frame(&mut self.stream)?;
        proto::decode_reply(&buf)
    }

    /// One request, one reply.
    pub fn request(&mut self, req: &Request) -> Result<Reply, TransportError> {
        write_frame(&mut self.stream, &proto::encode_request(req))?;
        self.read_reply()
    }

    /// Convenience: jit-and-invoke `class.method(args)` from `source`.
    pub fn jit(&mut self, req: JitRequest) -> Result<Reply, TransportError> {
        self.request(&Request::Jit(req))
    }

    /// Snapshot the daemon's service counters.
    pub fn stats(&mut self) -> Result<ServiceStats, TransportError> {
        match self.request(&Request::Stats)? {
            Reply::Stats(s) => Ok(*s),
            other => Err(TransportError::Corrupt {
                message: format!("unexpected stats reply: {other:?}"),
            }),
        }
    }

    /// Ask the daemon to drain and exit; resolves once acknowledged.
    pub fn shutdown(&mut self) -> Result<(), TransportError> {
        match self.request(&Request::Shutdown)? {
            Reply::Bye => Ok(()),
            other => Err(TransportError::Corrupt {
                message: format!("unexpected shutdown reply: {other:?}"),
            }),
        }
    }

    /// Chaos: send the first `keep` bytes of a valid request frame and
    /// drop the connection — the daemon must count a bad frame and move
    /// on, never hang on the missing remainder.
    pub fn send_truncated_frame(mut self, req: &Request, keep: usize) {
        let mut full = Vec::new();
        let _ = write_frame(&mut full, &proto::encode_request(req));
        let cut = keep.min(full.len().saturating_sub(1)).max(1);
        let _ = self.stream.write_all(&full[..cut]);
        let _ = self.stream.flush();
        // Drop closes the socket mid-frame.
    }

    /// Chaos: send bytes that are not a `WFR1` frame at all.
    pub fn send_garbage(mut self, junk: &[u8]) {
        let _ = self.stream.write_all(junk);
        let _ = self.stream.flush();
    }

    /// Chaos: send a fully valid request and drop the connection without
    /// reading the reply — a client that dies mid-request.
    pub fn send_and_die(mut self, req: &Request) {
        let _ = write_frame(&mut self.stream, &proto::encode_request(req));
        // Drop: the daemon's reply write hits a dead peer.
    }
}

/// A convenient seed-arg builder for storm clients.
pub fn jit_request(
    file: &str,
    source: &str,
    class: &str,
    method: &str,
    args: Vec<Arg>,
) -> JitRequest {
    JitRequest {
        file: file.into(),
        source: source.into(),
        class: class.into(),
        method: method.into(),
        args,
        deadline_ms: 0,
        hold_ms: 0,
    }
}
