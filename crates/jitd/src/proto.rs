//! # proto — the client <-> daemon service wire protocol
//!
//! Typed request/reply payloads carried inside the length-prefixed,
//! checksummed `WFR1` frames of [`mpi_sim::transport`] — the same frame
//! layer the `dist` backend speaks, so truncation, corruption, and
//! version skew all surface as typed [`TransportError`]s, never as
//! panics or hangs.
//!
//! The conversation per connection:
//!
//! ```text
//! client                          daemon
//!   Hello { proto, tenant } ───────▶
//!        ◀─────────────────── Reply::HelloOk
//!   Request::Jit(..) ──────────────▶
//!        ◀──── Reply::Done | Reply::Shed | Reply::Err
//!   ... (any number of requests) ...
//!   Request::Shutdown ─────────────▶      (drains the daemon)
//!        ◀─────────────────── Reply::Bye
//! ```
//!
//! Every admitted request ends in exactly one reply; every rejected
//! request ends in a typed [`Reply::Shed`] naming the policy that
//! refused it. The daemon never silently drops a decodable request.

use exec::{ResilienceStats, Val};
use mpi_sim::TransportError;
use nir::codec::{CodecError, Reader, Writer};

/// Version of the service payload layout (independent of the frame-level
/// [`mpi_sim::WIRE_VERSION`]). Carried in `Hello`; a skew is refused
/// with a typed error before any state moves.
pub const SERVICE_PROTO: u32 = 2;

fn corrupt(message: impl Into<String>) -> TransportError {
    TransportError::Corrupt {
        message: message.into(),
    }
}

fn codec(e: CodecError) -> TransportError {
    corrupt(format!("jitd payload: {e}"))
}

/// The first frame on a fresh connection: protocol version plus the
/// tenant every subsequent request on this connection is billed to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    pub proto: u32,
    pub tenant: String,
}

/// One entry argument, by value. The service boundary is a process
/// boundary: arguments are data, never heap handles.
#[derive(Debug, Clone, PartialEq)]
pub enum Arg {
    I32(i32),
    F32(f32),
    F32Arr(Vec<f32>),
}

/// A jit-and-invoke request: compile `source`, instantiate `class`
/// (nullary constructor), JIT `method` against `args`, run it, and
/// reply with the result — all within `deadline_ms`.
#[derive(Debug, Clone, PartialEq)]
pub struct JitRequest {
    /// Source file name (keys the compile; diagnostics point at it).
    pub file: String,
    /// jlang source text.
    pub source: String,
    pub class: String,
    pub method: String,
    pub args: Vec<Arg>,
    /// Wall-clock budget for the whole request (queue wait + translate +
    /// run), measured from the instant the daemon decodes the frame.
    /// 0 means "use the daemon's default".
    pub deadline_ms: u64,
    /// Chaos knob: keep holding the worker slot for this long after the
    /// reply is computed — a deterministic way for tests and the bench
    /// storm to occupy capacity and force queueing/shedding downstream.
    pub hold_ms: u64,
}

/// A client -> daemon request (after `Hello`).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    Jit(JitRequest),
    /// Snapshot the service counters.
    Stats,
    /// Begin a graceful drain: admission stops (new work is shed as
    /// `Draining`), in-flight requests flush, the daemon then exits.
    Shutdown,
}

/// Why an admission was refused. Every variant is a *policy* outcome —
/// the request was understood, considered, and deliberately rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedReason {
    /// The bounded admission queue is full (overload).
    QueueFull,
    /// The daemon is draining after a `Shutdown`.
    Draining,
    /// The tenant's artifact store is at its byte quota and this
    /// request would need a new translation. Warm keys still serve.
    OverQuota,
    /// The request's deadline expired before it could be served
    /// (in queue, waiting on a translation, or before the run).
    Deadline,
}

impl std::fmt::Display for ShedReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ShedReason::QueueFull => write!(f, "queue-full"),
            ShedReason::Draining => write!(f, "draining"),
            ShedReason::OverQuota => write!(f, "over-quota"),
            ShedReason::Deadline => write!(f, "deadline"),
        }
    }
}

/// The successful outcome of one [`Request::Jit`].
#[derive(Debug, Clone, PartialEq)]
pub struct Outcome {
    /// Rank 0's return value (the scalar subset crosses the wire;
    /// `Arr`/`Obj` handles are meaningless across processes and are
    /// reported as `Unit`).
    pub result: Option<Val>,
    /// This request translated the artifact itself (single-flight
    /// leader on a cold key).
    pub translated: bool,
    /// This request was served the sealed artifact published by a
    /// concurrent leader (single-flight follower).
    pub followed: bool,
    pub compile_us: u64,
    pub run_us: u64,
}

/// Aggregated per-pass optimizer totals across every translation the
/// daemon performed (the service-level view of `nir::PassProfile`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PassTotals {
    pub pass: String,
    pub wall_us: u64,
    pub instrs_before: u64,
    pub instrs_after: u64,
}

/// Service counters: admission, shedding, artifact reuse, and the
/// observed-fault tallies. Every path a request can take increments
/// exactly one terminal counter (`completed`, one `shed_*`, or
/// `request_errors`), so `admitted + sheds + errors` accounts for every
/// decodable request the daemon ever saw.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ServiceStats {
    /// Requests that passed admission (got a worker slot).
    pub admitted: u64,
    /// Admitted requests that ended in a `Done` reply.
    pub completed: u64,
    /// Actual translator runs (single-flight leaders on cold keys).
    pub translations: u64,
    /// Requests served from a tenant's on-disk artifact store.
    pub warm_hits: u64,
    /// Requests served a concurrent leader's sealed artifact.
    pub follower_serves: u64,
    pub shed_queue_full: u64,
    pub shed_draining: u64,
    pub shed_over_quota: u64,
    pub shed_deadline: u64,
    /// Admitted requests that ended in a typed `Err` reply (compile
    /// failure, run failure, injected translate fault, ...).
    pub request_errors: u64,
    /// Clients observed dead while the daemon was writing their reply.
    pub disconnects: u64,
    /// Connections dropped on an undecodable frame (truncation,
    /// corruption, version skew).
    pub bad_frames: u64,
    /// Fault counters, including injected translate failures.
    pub resilience: ResilienceStats,
    /// Per-pass optimizer totals across all leader translations.
    pub passes: Vec<PassTotals>,
}

impl ServiceStats {
    /// Total typed rejections across every shed policy.
    pub fn sheds(&self) -> u64 {
        self.shed_queue_full + self.shed_draining + self.shed_over_quota + self.shed_deadline
    }
}

/// A daemon -> client reply.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// Handshake accepted.
    HelloOk {
        proto: u32,
    },
    Done(Outcome),
    /// Typed rejection: the request was *not* served, and this is why.
    Shed {
        reason: ShedReason,
        message: String,
    },
    /// The request was admitted but failed; the message carries the
    /// typed source error's rendering.
    Err {
        message: String,
    },
    Stats(Box<ServiceStats>),
    /// Drain acknowledged; the daemon exits once in-flight work flushes.
    Bye,
}

// ---------------------------------------------------------------------
// codec
// ---------------------------------------------------------------------

pub fn encode_hello(h: &Hello) -> Vec<u8> {
    let mut w = Writer::new();
    w.u32(h.proto);
    w.str(&h.tenant);
    w.into_bytes()
}

pub fn decode_hello(buf: &[u8]) -> Result<Hello, TransportError> {
    let mut r = Reader::new(buf);
    Ok(Hello {
        proto: r.u32().map_err(codec)?,
        tenant: r.str().map_err(codec)?,
    })
}

fn write_args(w: &mut Writer, args: &[Arg]) {
    w.u64(args.len() as u64);
    for a in args {
        match a {
            Arg::I32(v) => {
                w.u8(0);
                w.i32(*v);
            }
            Arg::F32(v) => {
                w.u8(1);
                w.f32(*v);
            }
            Arg::F32Arr(xs) => {
                w.u8(2);
                w.u64(xs.len() as u64);
                for x in xs {
                    w.f32(*x);
                }
            }
        }
    }
}

fn read_args(r: &mut Reader) -> Result<Vec<Arg>, CodecError> {
    let n = r.u64()? as usize;
    let mut args = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        args.push(match r.u8()? {
            0 => Arg::I32(r.i32()?),
            1 => Arg::F32(r.f32()?),
            2 => {
                let k = r.u64()? as usize;
                let mut xs = Vec::with_capacity(k.min(1 << 20));
                for _ in 0..k {
                    xs.push(r.f32()?);
                }
                Arg::F32Arr(xs)
            }
            t => {
                return Err(CodecError::Corrupt {
                    offset: 0,
                    message: format!("unknown arg tag {t}"),
                })
            }
        });
    }
    Ok(args)
}

pub fn encode_request(q: &Request) -> Vec<u8> {
    let mut w = Writer::new();
    match q {
        Request::Jit(j) => {
            w.u8(0);
            w.str(&j.file);
            w.str(&j.source);
            w.str(&j.class);
            w.str(&j.method);
            write_args(&mut w, &j.args);
            w.u64(j.deadline_ms);
            w.u64(j.hold_ms);
        }
        Request::Stats => w.u8(1),
        Request::Shutdown => w.u8(2),
    }
    w.into_bytes()
}

pub fn decode_request(buf: &[u8]) -> Result<Request, TransportError> {
    let mut r = Reader::new(buf);
    let go = |r: &mut Reader| -> Result<Request, CodecError> {
        Ok(match r.u8()? {
            0 => Request::Jit(JitRequest {
                file: r.str()?,
                source: r.str()?,
                class: r.str()?,
                method: r.str()?,
                args: read_args(r)?,
                deadline_ms: r.u64()?,
                hold_ms: r.u64()?,
            }),
            1 => Request::Stats,
            2 => Request::Shutdown,
            t => {
                return Err(CodecError::Corrupt {
                    offset: 0,
                    message: format!("unknown request tag {t}"),
                })
            }
        })
    };
    go(&mut r).map_err(codec)
}

fn write_val(w: &mut Writer, v: Option<Val>) {
    match v {
        None => w.u8(0),
        Some(Val::I32(x)) => {
            w.u8(1);
            w.i32(x);
        }
        Some(Val::I64(x)) => {
            w.u8(2);
            w.u64(x as u64);
        }
        Some(Val::F32(x)) => {
            w.u8(3);
            w.f32(x);
        }
        Some(Val::F64(x)) => {
            w.u8(4);
            w.f64(x);
        }
        Some(Val::Bool(x)) => {
            w.u8(5);
            w.bool(x);
        }
        // Heap handles don't survive the process boundary.
        Some(Val::Arr(_) | Val::Obj(_) | Val::Unit) => w.u8(6),
    }
}

fn read_val(r: &mut Reader) -> Result<Option<Val>, CodecError> {
    Ok(match r.u8()? {
        0 => None,
        1 => Some(Val::I32(r.i32()?)),
        2 => Some(Val::I64(r.u64()? as i64)),
        3 => Some(Val::F32(r.f32()?)),
        4 => Some(Val::F64(r.f64()?)),
        5 => Some(Val::Bool(r.bool()?)),
        6 => Some(Val::Unit),
        t => {
            return Err(CodecError::Corrupt {
                offset: 0,
                message: format!("unknown val tag {t}"),
            })
        }
    })
}

fn shed_tag(reason: ShedReason) -> u8 {
    match reason {
        ShedReason::QueueFull => 0,
        ShedReason::Draining => 1,
        ShedReason::OverQuota => 2,
        ShedReason::Deadline => 3,
    }
}

fn shed_of(tag: u8) -> Result<ShedReason, CodecError> {
    Ok(match tag {
        0 => ShedReason::QueueFull,
        1 => ShedReason::Draining,
        2 => ShedReason::OverQuota,
        3 => ShedReason::Deadline,
        t => {
            return Err(CodecError::Corrupt {
                offset: 0,
                message: format!("unknown shed tag {t}"),
            })
        }
    })
}

fn write_resilience(w: &mut Writer, s: &ResilienceStats) {
    w.u64(s.crashes);
    w.u64(s.fuel_exhaustions);
    w.u64(s.host_transients);
    w.u64(s.host_retries);
    w.u64(s.dropped_messages);
    w.u64(s.corrupted_messages);
    w.u64(s.delayed_messages);
    w.u64(s.ckpt_write_failures);
    w.u64(s.connect_refusals);
    w.u64(s.truncated_frames);
    w.u64(s.delayed_acks);
    w.u64(s.connect_retries);
    w.u64(s.translate_failures);
    w.u64(s.timeouts);
    w.u64(s.degraded_jits);
    w.u64(s.checkpoints_taken);
    w.u64(s.restarts);
    w.u64(s.overlapped_rounds);
}

fn read_resilience(r: &mut Reader) -> Result<ResilienceStats, CodecError> {
    Ok(ResilienceStats {
        crashes: r.u64()?,
        fuel_exhaustions: r.u64()?,
        host_transients: r.u64()?,
        host_retries: r.u64()?,
        dropped_messages: r.u64()?,
        corrupted_messages: r.u64()?,
        delayed_messages: r.u64()?,
        ckpt_write_failures: r.u64()?,
        connect_refusals: r.u64()?,
        truncated_frames: r.u64()?,
        delayed_acks: r.u64()?,
        connect_retries: r.u64()?,
        translate_failures: r.u64()?,
        timeouts: r.u64()?,
        degraded_jits: r.u64()?,
        checkpoints_taken: r.u64()?,
        restarts: r.u64()?,
        overlapped_rounds: r.u64()?,
    })
}

fn write_stats(w: &mut Writer, s: &ServiceStats) {
    w.u64(s.admitted);
    w.u64(s.completed);
    w.u64(s.translations);
    w.u64(s.warm_hits);
    w.u64(s.follower_serves);
    w.u64(s.shed_queue_full);
    w.u64(s.shed_draining);
    w.u64(s.shed_over_quota);
    w.u64(s.shed_deadline);
    w.u64(s.request_errors);
    w.u64(s.disconnects);
    w.u64(s.bad_frames);
    write_resilience(w, &s.resilience);
    w.u64(s.passes.len() as u64);
    for p in &s.passes {
        w.str(&p.pass);
        w.u64(p.wall_us);
        w.u64(p.instrs_before);
        w.u64(p.instrs_after);
    }
}

fn read_stats(r: &mut Reader) -> Result<ServiceStats, CodecError> {
    let mut s = ServiceStats {
        admitted: r.u64()?,
        completed: r.u64()?,
        translations: r.u64()?,
        warm_hits: r.u64()?,
        follower_serves: r.u64()?,
        shed_queue_full: r.u64()?,
        shed_draining: r.u64()?,
        shed_over_quota: r.u64()?,
        shed_deadline: r.u64()?,
        request_errors: r.u64()?,
        disconnects: r.u64()?,
        bad_frames: r.u64()?,
        resilience: read_resilience(r)?,
        passes: Vec::new(),
    };
    let n = r.u64()? as usize;
    for _ in 0..n.min(1024) {
        s.passes.push(PassTotals {
            pass: r.str()?,
            wall_us: r.u64()?,
            instrs_before: r.u64()?,
            instrs_after: r.u64()?,
        });
    }
    Ok(s)
}

pub fn encode_reply(p: &Reply) -> Vec<u8> {
    let mut w = Writer::new();
    match p {
        Reply::HelloOk { proto } => {
            w.u8(0);
            w.u32(*proto);
        }
        Reply::Done(o) => {
            w.u8(1);
            write_val(&mut w, o.result);
            w.bool(o.translated);
            w.bool(o.followed);
            w.u64(o.compile_us);
            w.u64(o.run_us);
        }
        Reply::Shed { reason, message } => {
            w.u8(2);
            w.u8(shed_tag(*reason));
            w.str(message);
        }
        Reply::Err { message } => {
            w.u8(3);
            w.str(message);
        }
        Reply::Stats(s) => {
            w.u8(4);
            write_stats(&mut w, s);
        }
        Reply::Bye => w.u8(5),
    }
    w.into_bytes()
}

pub fn decode_reply(buf: &[u8]) -> Result<Reply, TransportError> {
    let mut r = Reader::new(buf);
    let go = |r: &mut Reader| -> Result<Reply, CodecError> {
        Ok(match r.u8()? {
            0 => Reply::HelloOk { proto: r.u32()? },
            1 => Reply::Done(Outcome {
                result: read_val(r)?,
                translated: r.bool()?,
                followed: r.bool()?,
                compile_us: r.u64()?,
                run_us: r.u64()?,
            }),
            2 => Reply::Shed {
                reason: shed_of(r.u8()?)?,
                message: r.str()?,
            },
            3 => Reply::Err { message: r.str()? },
            4 => Reply::Stats(Box::new(read_stats(r)?)),
            5 => Reply::Bye,
            t => {
                return Err(CodecError::Corrupt {
                    offset: 0,
                    message: format!("unknown reply tag {t}"),
                })
            }
        })
    };
    go(&mut r).map_err(codec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_message_round_trips() {
        let hello = Hello {
            proto: SERVICE_PROTO,
            tenant: "acme".into(),
        };
        assert_eq!(decode_hello(&encode_hello(&hello)).unwrap(), hello);

        let reqs = [
            Request::Jit(JitRequest {
                file: "a.jl".into(),
                source: "class A { }".into(),
                class: "A".into(),
                method: "run".into(),
                args: vec![Arg::I32(7), Arg::F32(1.5), Arg::F32Arr(vec![1.0, 2.0])],
                deadline_ms: 2_000,
                hold_ms: 10,
            }),
            Request::Stats,
            Request::Shutdown,
        ];
        for q in &reqs {
            assert_eq!(&decode_request(&encode_request(q)).unwrap(), q);
        }

        let mut stats = ServiceStats {
            admitted: 10,
            completed: 8,
            translations: 1,
            warm_hits: 3,
            follower_serves: 4,
            shed_queue_full: 2,
            shed_draining: 1,
            shed_over_quota: 1,
            shed_deadline: 1,
            request_errors: 2,
            disconnects: 1,
            bad_frames: 1,
            resilience: ResilienceStats::default(),
            passes: vec![PassTotals {
                pass: "inline".into(),
                wall_us: 120,
                instrs_before: 40,
                instrs_after: 22,
            }],
        };
        stats.resilience.translate_failures = 2;
        stats.resilience.connect_retries = 3;
        let replies = [
            Reply::HelloOk {
                proto: SERVICE_PROTO,
            },
            Reply::Done(Outcome {
                result: Some(Val::I32(42)),
                translated: true,
                followed: false,
                compile_us: 900,
                run_us: 50,
            }),
            Reply::Done(Outcome {
                result: Some(Val::F64(2.5)),
                translated: false,
                followed: true,
                compile_us: 0,
                run_us: 51,
            }),
            Reply::Shed {
                reason: ShedReason::QueueFull,
                message: "admission queue is full (8 queued)".into(),
            },
            Reply::Err {
                message: "injected translate failure".into(),
            },
            Reply::Stats(Box::new(stats)),
            Reply::Bye,
        ];
        for p in &replies {
            assert_eq!(&decode_reply(&encode_reply(p)).unwrap(), p);
        }
    }

    #[test]
    fn junk_decodes_to_typed_errors() {
        for buf in [&b""[..], &b"\xFF"[..], &b"\x09garbage"[..]] {
            assert!(decode_request(buf).is_err());
            assert!(decode_reply(buf).is_err());
        }
    }
}
